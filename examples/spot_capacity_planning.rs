//! Capacity planning with spot VMs: how much does the hybrid
//! spot/on-demand procurement save at each spot-availability regime,
//! and what does the aggressive spot-only strategy cost in SLO terms?
//!
//! ```text
//! cargo run --release -p protean-experiments --example spot_capacity_planning
//! ```

use protean::ProteanBuilder;
use protean_experiments::report::{banner, table};
use protean_experiments::{run_scheme, PaperSetup};
use protean_models::ModelId;
use protean_sim::SimDuration;
use protean_spot::{PricingTable, ProcurementPolicy, Provider, SpotAvailability, VmTier};

fn main() {
    let pricing = PricingTable::paper_table3();
    println!(
        "worker VM (1/8 of an 8xA100 {} instance): on-demand ${:.2}/h, spot ${:.2}/h",
        Provider::Aws,
        pricing.worker_price(Provider::Aws, VmTier::OnDemand),
        pricing.worker_price(Provider::Aws, VmTier::Spot),
    );

    let setup = PaperSetup {
        duration_secs: 120.0,
        seed: 11,
    };
    let trace = setup.wiki_trace(ModelId::DenseNet121);
    banner("capacity plan", "DenseNet 121, Wiki trace, 8 workers");
    let mut rows = Vec::new();
    for availability in [
        SpotAvailability::High,
        SpotAvailability::Moderate,
        SpotAvailability::Low,
    ] {
        for policy in [
            ProcurementPolicy::OnDemandOnly,
            ProcurementPolicy::Hybrid,
            ProcurementPolicy::SpotOnly,
        ] {
            let mut config = setup.cluster();
            config.availability = availability;
            config.procurement = policy;
            config.revocation_check = SimDuration::from_secs(20.0);
            config.vm_startup = SimDuration::from_secs(20.0);
            config.procurement_retry = SimDuration::from_secs(20.0);
            let row = run_scheme(&config, &ProteanBuilder::paper(), &trace);
            rows.push(vec![
                availability.to_string(),
                format!("{policy:?}"),
                format!("${:.2}", row.cost_usd),
                format!("{:.2}", row.slo_compliance_pct),
                row.evictions.to_string(),
            ]);
        }
    }
    table(
        &["spot availability", "policy", "cost", "SLO%", "evictions"],
        &rows,
    );
    println!("\n  -> Hybrid keeps SLO compliance while cutting cost whenever spot is available.");
}
