//! Quickstart: simulate PROTEAN serving a mixed strict/best-effort
//! inference workload on an 8-GPU cluster and print the headline
//! numbers.
//!
//! ```text
//! cargo run --release -p protean-experiments --example quickstart
//! ```

use protean::ProteanBuilder;
use protean_cluster::{run_simulation, ClusterConfig};
use protean_metrics::record::Class;
use protean_models::{catalog, ModelId};
use protean_sim::SimDuration;
use protean_trace::{TraceConfig, TraceShape};

fn main() {
    // 1. Describe the workload: ResNet 50 strict requests under a
    //    Wiki-shaped diurnal trace at 5000 rps, with best-effort
    //    requests rotating through low-interference vision models.
    let cat = catalog();
    let trace = TraceConfig {
        shape: TraceShape::wiki(5000.0),
        duration: SimDuration::from_secs(60.0),
        strict_model: ModelId::ResNet50,
        strict_fraction: 0.5,
        be_pool: cat.opposite_pool(ModelId::ResNet50),
        be_rotation_period: SimDuration::from_secs(20.0),
        batch_arrivals: true,
    };

    // 2. The paper's cluster: 8 workers, one A100 each, 3x SLOs.
    let config = ClusterConfig::paper_default();

    // 3. Run PROTEAN and inspect the result.
    let result = run_simulation(&config, &ProteanBuilder::paper(), &trace);
    let slo = |m: ModelId| cat.profile(m).slo();
    println!("scheme:            {}", result.scheme);
    println!(
        "requests served:   {} ({} strict)",
        result.metrics.count(Class::All),
        result.metrics.count(Class::Strict)
    );
    println!(
        "SLO compliance:    {:.2}%",
        result.metrics.slo_compliance(&slo) * 100.0
    );
    println!(
        "strict P99:        {:.1} ms",
        result
            .metrics
            .latency_percentile_ms(Class::Strict, 0.99)
            .unwrap_or(0.0)
    );
    println!(
        "best-effort P99:   {:.1} ms",
        result
            .metrics
            .latency_percentile_ms(Class::BestEffort, 0.99)
            .unwrap_or(0.0)
    );
    println!(
        "GPU utilization:   {:.1}%",
        result.compute_utilization * 100.0
    );
    println!("reconfigurations:  {}", result.reconfigs);
    println!("dollar cost:       ${:.2}", result.cost.total_usd);
}
