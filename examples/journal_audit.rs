//! Observability: record a run's event journal and audit it — when did
//! GPUs reconfigure, which workers were evicted, how long did batches
//! spend between sealing and placement?
//!
//! ```text
//! cargo run --release -p protean-experiments --example journal_audit
//! ```

use std::collections::HashMap;

use protean::ProteanBuilder;
use protean_cluster::{run_simulation, BatchId, JournalEvent};
use protean_experiments::PaperSetup;
use protean_models::ModelId;
use protean_sim::{SimDuration, SimTime};
use protean_spot::{ProcurementPolicy, SpotAvailability};
use protean_trace::TraceConfig;

fn main() {
    let setup = PaperSetup {
        duration_secs: 60.0,
        seed: 9,
    };
    let mut config = setup.cluster();
    config.journal_capacity = 2_000_000;
    config.procurement = ProcurementPolicy::Hybrid;
    config.availability = SpotAvailability::Moderate;
    config.revocation_check = SimDuration::from_secs(20.0);
    let trace = TraceConfig {
        be_pool: vec![ModelId::MobileNet, ModelId::Dpn92],
        ..setup.wiki_trace(ModelId::ShuffleNetV2)
    };
    let result = run_simulation(&config, &ProteanBuilder::paper(), &trace);

    println!(
        "journal: {} events ({} dropped)",
        result.journal.entries().len(),
        result.journal.dropped()
    );

    // 1. Reconfiguration audit.
    println!("\nreconfigurations:");
    for (t, e) in result
        .journal
        .filter(|e| matches!(e, JournalEvent::Reconfigured { .. }))
    {
        if let JournalEvent::Reconfigured { worker, geometry } = e {
            println!(
                "  t={:>7.2}s worker {worker} -> {geometry}",
                t.as_secs_f64()
            );
        }
    }

    // 2. Spot-market audit.
    let notices = result
        .journal
        .filter(|e| matches!(e, JournalEvent::EvictionNotice { .. }))
        .count();
    let evicted = result
        .journal
        .filter(|e| matches!(e, JournalEvent::Evicted { .. }))
        .count();
    let installed = result
        .journal
        .filter(|e| matches!(e, JournalEvent::VmInstalled { .. }))
        .count();
    println!("\nspot market: {notices} notices, {evicted} evictions, {installed} replacements");

    // 3. Seal-to-placement latency distribution from the journal alone.
    let mut sealed_at: HashMap<BatchId, SimTime> = HashMap::new();
    let mut gaps_ms: Vec<f64> = Vec::new();
    for (t, e) in result.journal.entries() {
        match e {
            JournalEvent::BatchSealed { batch, .. } => {
                sealed_at.insert(*batch, *t);
            }
            JournalEvent::BatchPlaced { batch, .. } => {
                if let Some(s) = sealed_at.remove(batch) {
                    gaps_ms.push(t.saturating_since(s).as_millis_f64());
                }
            }
            _ => {}
        }
    }
    gaps_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    if !gaps_ms.is_empty() {
        let p = |q: f64| gaps_ms[((gaps_ms.len() as f64 * q) as usize).min(gaps_ms.len() - 1)];
        println!(
            "\nseal->placement gap over {} batches: P50 {:.2} ms, P99 {:.2} ms, max {:.2} ms",
            gaps_ms.len(),
            p(0.50),
            p(0.99),
            gaps_ms.last().expect("non-empty")
        );
    }
}
