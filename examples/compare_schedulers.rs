//! Scheduler bake-off: an inference-serving operator evaluating which
//! request-serving policy to deploy for a latency-critical vision
//! model. Compares PROTEAN against the three published baselines on
//! the same trace and prints a decision table.
//!
//! ```text
//! cargo run --release -p protean-experiments --example compare_schedulers [model]
//! ```
//!
//! `model` is an optional catalog index (0–21); default is VGG 19.

use protean_experiments::report::{banner, scheme_table};
use protean_experiments::{run_scheme, schemes, PaperSetup};
use protean_models::{catalog, ModelId};

fn main() {
    let model = std::env::args()
        .nth(1)
        .and_then(|a| a.parse::<usize>().ok())
        .and_then(|i| ModelId::ALL.get(i).copied())
        .unwrap_or(ModelId::Vgg19);
    let setup = PaperSetup {
        duration_secs: 60.0,
        seed: 7,
    };
    let config = setup.cluster();
    let trace = setup.wiki_trace(model);
    let profile = *catalog().profile(model);
    banner(
        "bake-off",
        &format!(
            "{model} (batch {}, SLO {:.0} ms), Wiki trace, 8 GPUs",
            profile.batch_size,
            profile.slo().as_millis_f64()
        ),
    );
    let rows: Vec<_> = schemes::primary()
        .iter()
        .map(|s| run_scheme(&config, s.as_ref(), &trace))
        .collect();
    scheme_table(&rows);
    let best = rows
        .iter()
        .max_by(|a, b| {
            a.slo_compliance_pct
                .partial_cmp(&b.slo_compliance_pct)
                .expect("compliance is finite")
        })
        .expect("at least one scheme ran");
    println!(
        "\n  -> deploy {}: {:.2}% SLO compliance, {:.0} ms strict P99",
        best.scheme, best.slo_compliance_pct, best.strict_p99_ms
    );
}
