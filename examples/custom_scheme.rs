//! Extending the framework: implement a custom scheduling [`Scheme`]
//! against the public API and race it against PROTEAN.
//!
//! The custom policy here is "biggest-slice-first": every batch goes to
//! the largest slice with room, ignoring strictness and interference —
//! a plausible first attempt that the η-based PROTEAN policy should
//! beat on tail latency.
//!
//! ```text
//! cargo run --release -p protean-experiments --example custom_scheme
//! ```

use protean::ProteanBuilder;
use protean_cluster::{BatchView, Placement, PlacementCtx, Scheme, SchemeBuilder};
use protean_experiments::report::{banner, scheme_table};
use protean_experiments::{run_scheme, PaperSetup};
use protean_gpu::{Geometry, SharingMode};
use protean_models::ModelId;

/// Always place on the largest slice with free memory.
struct BiggestSliceFirst;

impl Scheme for BiggestSliceFirst {
    fn name(&self) -> &'static str {
        "biggest-slice-first"
    }

    fn initial_geometry(&self) -> Geometry {
        Geometry::g4_g3()
    }

    fn sharing_mode(&self) -> SharingMode {
        SharingMode::Mps
    }

    fn place(&mut self, ctx: &PlacementCtx<'_>, batch: &BatchView) -> Option<Placement> {
        let mem = ctx.catalog.profile(batch.model).mem_gb;
        // Slices are ordered largest-first; take the first with room.
        ctx.gpu
            .slices()
            .iter()
            .position(|s| s.mem_available_gb() + 1e-9 >= mem)
            .map(Placement::on_slice)
    }
}

struct BiggestSliceFirstBuilder;

impl SchemeBuilder for BiggestSliceFirstBuilder {
    fn build(&self, _worker: usize) -> Box<dyn Scheme> {
        Box::new(BiggestSliceFirst)
    }
    fn name(&self) -> &'static str {
        "biggest-slice-first"
    }
}

fn main() {
    let setup = PaperSetup {
        duration_secs: 60.0,
        seed: 3,
    };
    let config = setup.cluster();
    let trace = setup.wiki_trace(ModelId::ResNet50);
    banner(
        "custom scheme",
        "biggest-slice-first vs PROTEAN (ResNet 50)",
    );
    let rows = vec![
        run_scheme(&config, &BiggestSliceFirstBuilder, &trace),
        run_scheme(&config, &ProteanBuilder::paper(), &trace),
    ];
    scheme_table(&rows);
}
