//! Offline stand-in for the `criterion` crate.
//!
//! The build environment for this repository has no network access and
//! no crates.io mirror, so the workspace vendors a minimal,
//! API-compatible subset of `criterion` 0.5: [`Criterion`],
//! `bench_function` / `benchmark_group`, `Bencher::iter` /
//! `iter_batched`, [`BatchSize`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — one warmup iteration, then
//! `sample_size` timed iterations, reporting mean / min / max to
//! stdout. There are no HTML reports, no statistical regression tests
//! and no saved baselines; the numbers are for eyeballing hot-path
//! changes, which is all this workspace's benches do with them.
//!
//! See `shims/README.md` for how to swap the registry crate back in.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver: times closures and prints a one-line summary per
/// benchmark.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs `f` as the benchmark named `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples_target: self.sample_size,
            samples: Vec::with_capacity(self.sample_size),
        };
        f(&mut bencher);
        bencher.report(id);
        self
    }

    /// Starts a named group; benchmarks report as `group/id`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named benchmark group (prefixes member benchmark ids).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs `f` as the benchmark named `group/id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Overrides the sample size for the rest of the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.criterion.sample_size = n;
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op shim).
    pub fn finish(self) {}
}

/// How `iter_batched` amortizes setup; the shim sets up per iteration
/// regardless, so the variants only exist for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to the benchmark closure; runs and times the measured code.
#[derive(Debug)]
pub struct Bencher {
    samples_target: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f` once per sample.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        black_box(f()); // warmup, untimed
        for _ in 0..self.samples_target {
            let start = Instant::now();
            let out = f();
            self.samples.push(start.elapsed());
            black_box(out);
        }
    }

    /// Times `routine` on fresh `setup()` output per sample; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warmup, untimed
        for _ in 0..self.samples_target {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.samples.push(start.elapsed());
            black_box(out);
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} no samples recorded");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        let max = self.samples.iter().max().copied().unwrap_or_default();
        println!(
            "{id:<40} mean {mean:>12?}  min {min:>12?}  max {max:>12?}  ({} samples)",
            self.samples.len()
        );
    }
}

/// Declares a group function running each target against one
/// [`Criterion`] instance.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples_and_returns() {
        let mut c = Criterion::default().sample_size(5);
        let mut runs = 0usize;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // 5 timed samples + 1 warmup.
        assert_eq!(runs, 6);
    }

    #[test]
    fn iter_batched_separates_setup_from_routine() {
        let mut c = Criterion::default().sample_size(4);
        let mut setups = 0usize;
        let mut routines = 0usize;
        c.bench_function("shim/batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u64, 2, 3]
                },
                |v| {
                    routines += 1;
                    v.iter().sum::<u64>()
                },
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 5);
        assert_eq!(routines, 5);
    }

    #[test]
    fn groups_prefix_names_and_finish() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.bench_function("member", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
