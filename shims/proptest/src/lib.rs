//! Offline stand-in for the `proptest` crate.
//!
//! The build environment for this repository has no network access and
//! no crates.io mirror, so the workspace vendors a minimal,
//! API-compatible subset of `proptest` 1.x: the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`] macros,
//! [`ProptestConfig`], the [`Strategy`] trait for ranges, tuples,
//! [`collection::vec`], [`bool::ANY`] and [`sample::select`].
//!
//! Differences from upstream, by design:
//!
//! * Cases are generated from a **fixed seed** derived from the test's
//!   module path, so runs are reproducible in CI (upstream randomizes
//!   and persists regressions).
//! * There is **no shrinking**: a failing case panics with the case
//!   index and message; rerunning reproduces it exactly.
//!
//! See `shims/README.md` for how to swap the registry crate back in.

use std::ops::{Range, RangeInclusive};

/// Runner configuration; only `cases` is interpreted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the heavier simulation
        // properties fast while still exploring the space.
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic per-case generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for case `case` of the property named `name`.
    /// The same `(name, case)` always produces the same sequence.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: hash ^ (u64::from(case) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// The next 64 random bits (splitmix64 stream).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "cannot sample empty range [{lo}, {hi})");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// A value generator. The subset of upstream `Strategy` this workspace
/// needs: one `sample` per case, no shrinking tree.
pub trait Strategy {
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + (hi - lo) * rng.next_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for [`vec`]: inclusive on both ends.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                lo: exact,
                hi: exact,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of `element` values with length in `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.lo, self.size.hi + 1);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy type behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        items: Vec<T>,
    }

    /// Picks a uniformly random element of `items` per case.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "cannot select from an empty list");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.items[rng.usize_in(0, self.items.len())].clone()
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy};
}

/// Defines property tests: each `fn name(pat in strategy, ...)` becomes
/// a `#[test]` (the attribute is written inside the block, as with
/// upstream proptest) that runs `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$attr:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let __name = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(__name, __case);
                $(let $pat = $crate::Strategy::sample(&($strategy), &mut __rng);)+
                let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    panic!("property {} failed at case {}: {}", __name, __case, __msg);
                }
            }
        }
        $crate::__proptest_impl!(($config) $($rest)*);
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Skips the current case when its inputs do not satisfy `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        let mut a = crate::TestRng::for_case("x", 3);
        let mut b = crate::TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("x", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn strategies_respect_bounds() {
        let mut rng = crate::TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let f = (1.5f64..2.5).sample(&mut rng);
            assert!((1.5..2.5).contains(&f));
            let u = (3usize..=5).sample(&mut rng);
            assert!((3..=5).contains(&u));
            let v = crate::collection::vec(0u64..10, 2..6).sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
            let (x, b) = ((0.0f64..1.0), crate::bool::ANY).sample(&mut rng);
            assert!((0.0..1.0).contains(&x));
            let _ = b;
            let s = crate::sample::select(vec![7, 8, 9]).sample(&mut rng);
            assert!((7..=9).contains(&s));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro pipeline itself: generation, assertion, assumption.
        #[test]
        fn prop_macro_roundtrip(x in 0u64..100, flip in prop::bool::ANY) {
            prop_assume!(x != 99);
            prop_assert!(x < 99, "x was {}", x);
            let doubled = x * 2;
            prop_assert_eq!(doubled % 2, 0);
            let _ = flip;
        }
    }
}
