//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no network access and
//! no crates.io mirror, so the workspace vendors a minimal,
//! API-compatible subset of `rand` 0.8: [`rngs::SmallRng`], [`Rng`] and
//! [`SeedableRng`], which is everything `protean-sim` uses. The
//! generator is xoshiro256++ (the same family real `SmallRng` uses on
//! 64-bit targets); sequences are deterministic per seed but are *not*
//! guaranteed to match upstream `rand` bit-for-bit. Every consumer in
//! this workspace derives its own semantics from `protean_sim::RngFactory`,
//! so only in-repo determinism matters.
//!
//! See `shims/README.md` for how to swap the registry crate back in.

use std::ops::Range;

/// Seeding subset of `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed (via splitmix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Core entropy source: everything else is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Sampling subset of `rand::Rng`, blanket-implemented for any
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample of `T` (`f64` in `[0, 1)`, integers over their
    /// full range).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A uniform sample from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types `Rng::gen` can produce.
pub trait Standard {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform double in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges `Rng::gen_range` can sample from.
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is < 2^-32 for the span sizes used in
                // simulation and irrelevant to its statistics.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(usize, u64, u32, i64, i32);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::from_rng(rng)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // Expand the seed with splitmix64, as upstream rand does, so
            // nearby seeds yield unrelated states.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }
}
