//! Spot-market emulation and cost accounting (paper §2.3, §4.5, §5).
//!
//! The paper itself *emulates* the spot/on-demand worker aspect: it
//! projects dollar cost from VM running time at average AWS prices and
//! generates revocation notifications at fixed intervals with a
//! revocation probability `P_rev` derived from Narayanan et al.:
//!
//! * high spot availability: `P_rev = 0`
//! * moderate availability: `P_rev = 0.354`
//! * low availability: `P_rev = 0.708`
//!
//! Eviction notices arrive 30–120 s before the VM is reclaimed, which is
//! what makes the hybrid scheme viable: GPU serverless batches run <1 s,
//! so in-flight work drains comfortably inside the notice window while a
//! replacement VM (spot if available, otherwise on-demand) spins up.
//!
//! This crate reproduces that emulation: [`PricingTable`] carries the
//! paper's Table 3 prices, [`SpotMarket`] drives revocations and spot
//! acquisition, [`ProcurementPolicy`] captures the three strategies
//! compared in Fig. 9, and [`VmLedger`] integrates dollar cost. The
//! cluster engine consumes the market through the [`SpotOracle`] trait,
//! which fault-injection harnesses implement with scripted schedules to
//! drive adversarial eviction/procurement interleavings
//! deterministically.
//!
//! # Example
//!
//! ```
//! use protean_spot::{PricingTable, Provider, SpotAvailability, VmTier};
//!
//! let table = PricingTable::paper_table3();
//! let aws = table.price(Provider::Aws, VmTier::Spot);
//! assert!((aws - 9.8318).abs() < 1e-4);
//! assert!(table.savings(Provider::Gcp) > 0.70);
//! assert_eq!(SpotAvailability::Low.revocation_probability(), 0.708);
//! ```

use std::fmt;

use protean_sim::{SimDuration, SimRng, SimTime};

/// The three IaaS providers of Table 3 (by market share).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Provider {
    /// Amazon Web Services.
    Aws,
    /// Microsoft Azure.
    Azure,
    /// Google Cloud.
    Gcp,
}

impl Provider {
    /// All providers in Table 3 order.
    pub const ALL: [Provider; 3] = [Provider::Aws, Provider::Azure, Provider::Gcp];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Provider::Aws => "AWS",
            Provider::Azure => "Microsoft Azure",
            Provider::Gcp => "Google Cloud",
        }
    }
}

impl fmt::Display for Provider {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// VM reliability tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VmTier {
    /// Reliable, full-price VM.
    OnDemand,
    /// Discounted, revocable VM.
    Spot,
}

impl fmt::Display for VmTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            VmTier::OnDemand => "on-demand",
            VmTier::Spot => "spot",
        })
    }
}

/// Hourly prices (USD) for an 8×A100 instance, per provider and tier —
/// the paper's Table 3 (averaged across US-east/west).
#[derive(Debug, Clone, PartialEq)]
pub struct PricingTable {
    rows: [(Provider, f64, f64); 3],
}

impl PricingTable {
    /// The exact Table 3 numbers.
    pub fn paper_table3() -> Self {
        PricingTable {
            rows: [
                (Provider::Aws, 32.7726, 9.8318),
                (Provider::Azure, 32.7700, 18.0235),
                (Provider::Gcp, 30.0846, 8.8147),
            ],
        }
    }

    /// Hourly price of a full 8×A100 instance.
    pub fn price(&self, provider: Provider, tier: VmTier) -> f64 {
        let row = self
            .rows
            .iter()
            .find(|(p, _, _)| *p == provider)
            .expect("all providers present");
        match tier {
            VmTier::OnDemand => row.1,
            VmTier::Spot => row.2,
        }
    }

    /// Hourly price of one single-GPU worker VM (the paper's cluster has
    /// one A100 per worker node; we apportion the 8×A100 instance price).
    pub fn worker_price(&self, provider: Provider, tier: VmTier) -> f64 {
        self.price(provider, tier) / 8.0
    }

    /// Fractional saving of spot over on-demand for `provider`
    /// (Table 3's "Cost Savings" column).
    pub fn savings(&self, provider: Provider) -> f64 {
        1.0 - self.price(provider, VmTier::Spot) / self.price(provider, VmTier::OnDemand)
    }
}

/// Spot-market availability regimes (§5), with `P_rev` values from
/// Narayanan et al.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpotAvailability {
    /// High availability: never revoked.
    High,
    /// Moderate availability.
    Moderate,
    /// Low availability.
    Low,
}

impl SpotAvailability {
    /// The revocation probability applied at each check interval.
    pub fn revocation_probability(self) -> f64 {
        match self {
            SpotAvailability::High => 0.0,
            SpotAvailability::Moderate => 0.354,
            SpotAvailability::Low => 0.708,
        }
    }

    /// Probability a fresh spot request is granted. Revocation pressure
    /// and scarcity move together: when the provider is reclaiming spot
    /// capacity it is also not granting new spot requests, so we model
    /// grant probability as the complement of `P_rev`.
    pub fn acquisition_probability(self) -> f64 {
        1.0 - self.revocation_probability()
    }

    /// Display name used in Fig. 9.
    pub fn name(self) -> &'static str {
        match self {
            SpotAvailability::High => "high",
            SpotAvailability::Moderate => "medium",
            SpotAvailability::Low => "low",
        }
    }
}

impl fmt::Display for SpotAvailability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The procurement strategies compared in Fig. 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcurementPolicy {
    /// Only reliable VMs (what the comparison schemes use).
    OnDemandOnly,
    /// Only spot VMs; workers lost to eviction are replaced only when
    /// the spot market grants a new VM (the `Spot Only` variant).
    SpotOnly,
    /// PROTEAN's policy: prefer spot, fall back to on-demand when the
    /// spot request fails.
    Hybrid,
}

impl ProcurementPolicy {
    /// Decides the tier of a replacement VM given whether the spot
    /// market granted the request. `None` means no VM can be acquired
    /// now (Spot-only under scarcity) and the caller should retry later.
    pub fn replacement_tier(self, spot_granted: bool) -> Option<VmTier> {
        match self {
            ProcurementPolicy::OnDemandOnly => Some(VmTier::OnDemand),
            ProcurementPolicy::SpotOnly => spot_granted.then_some(VmTier::Spot),
            ProcurementPolicy::Hybrid => Some(if spot_granted {
                VmTier::Spot
            } else {
                VmTier::OnDemand
            }),
        }
    }

    /// The tier this policy provisions initially (before any eviction).
    pub fn initial_tier(self) -> VmTier {
        match self {
            ProcurementPolicy::OnDemandOnly => VmTier::OnDemand,
            ProcurementPolicy::SpotOnly | ProcurementPolicy::Hybrid => VmTier::Spot,
        }
    }
}

/// Default interval between revocation checks per spot VM (§5: notices
/// are generated "at fixed time intervals").
pub const DEFAULT_REVOCATION_CHECK: SimDuration = SimDuration::from_micros(60_000_000);

/// Default delay between acquiring a VM and it serving traffic.
pub const DEFAULT_VM_STARTUP: SimDuration = SimDuration::from_micros(30_000_000);

/// The spot market: drives revocation notices and spot-request grants.
#[derive(Debug, Clone)]
pub struct SpotMarket {
    availability: SpotAvailability,
    rng: SimRng,
    notice_min: SimDuration,
    notice_max: SimDuration,
}

impl SpotMarket {
    /// Creates a market under the given availability regime, drawing
    /// randomness from `rng`.
    pub fn new(availability: SpotAvailability, rng: SimRng) -> Self {
        SpotMarket {
            availability,
            rng,
            notice_min: SimDuration::from_secs(30.0),
            notice_max: SimDuration::from_secs(120.0),
        }
    }

    /// The market's availability regime.
    pub fn availability(&self) -> SpotAvailability {
        self.availability
    }

    /// Rolls one revocation check for a running spot VM. `Some(lead)`
    /// means an eviction notice fires now and the VM is reclaimed after
    /// `lead` (uniform in the providers' 30–120 s band).
    pub fn roll_revocation(&mut self) -> Option<SimDuration> {
        if self.rng.chance(self.availability.revocation_probability()) {
            let lead = self
                .rng
                .uniform_range(self.notice_min.as_secs_f64(), self.notice_max.as_secs_f64());
            Some(SimDuration::from_secs(lead))
        } else {
            None
        }
    }

    /// Rolls one spot acquisition request.
    pub fn try_acquire_spot(&mut self) -> bool {
        self.rng.chance(self.availability.acquisition_probability())
    }
}

/// The engine-facing abstraction over the spot market's two stochastic
/// decisions: revocation rolls and spot-acquisition grants.
///
/// The production implementation is [`SpotMarket`], which draws both
/// from a seeded RNG stream. Deterministic fault-injection harnesses
/// substitute scripted implementations so a test can drive a *specific*
/// eviction × cold-start × reconfiguration interleaving (eviction
/// notice while a boot is in flight, replacement VM ready before the
/// old one drains, procurement denial bursts) instead of scanning
/// seeds hoping the RNG produces one.
///
/// `now` and `worker` identify the roll site; [`SpotMarket`] ignores
/// them (every roll is i.i.d.), scripted markets key on them.
pub trait SpotOracle {
    /// Rolls one revocation check for the spot VM backing `worker` at
    /// `now`. `Some(lead)` means an eviction notice fires now and the
    /// VM is reclaimed after `lead`.
    fn roll_revocation(&mut self, now: SimTime, worker: usize) -> Option<SimDuration>;

    /// Rolls one spot-acquisition request on behalf of `worker` at
    /// `now`. `true` means the provider grants a spot VM.
    fn try_acquire_spot(&mut self, now: SimTime, worker: usize) -> bool;
}

impl SpotOracle for SpotMarket {
    fn roll_revocation(&mut self, _now: SimTime, _worker: usize) -> Option<SimDuration> {
        SpotMarket::roll_revocation(self)
    }

    fn try_acquire_spot(&mut self, _now: SimTime, _worker: usize) -> bool {
        SpotMarket::try_acquire_spot(self)
    }
}

/// Identifier of a VM in the ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VmId(pub u64);

#[derive(Debug, Clone, Copy, PartialEq)]
struct LedgerEntry {
    vm: VmId,
    tier: VmTier,
    started: SimTime,
    ended: Option<SimTime>,
}

/// Integrates dollar cost over VM lifetimes, per tier.
///
/// # Example
///
/// ```
/// use protean_spot::{PricingTable, Provider, VmLedger, VmId, VmTier};
/// use protean_sim::SimTime;
///
/// let mut ledger = VmLedger::new(PricingTable::paper_table3(), Provider::Aws);
/// ledger.open(VmId(0), VmTier::Spot, SimTime::ZERO);
/// ledger.close(VmId(0), SimTime::from_secs(3600.0));
/// let cost = ledger.total_cost(SimTime::from_secs(3600.0));
/// assert!((cost - 9.8318 / 8.0).abs() < 1e-6); // one worker spot-hour
/// ```
#[derive(Debug, Clone)]
pub struct VmLedger {
    pricing: PricingTable,
    provider: Provider,
    entries: Vec<LedgerEntry>,
    next_id: u64,
    misuse_events: u64,
}

impl VmLedger {
    /// Creates an empty ledger billing at `provider`'s prices.
    pub fn new(pricing: PricingTable, provider: Provider) -> Self {
        VmLedger {
            pricing,
            provider,
            entries: Vec::new(),
            next_id: 0,
            misuse_events: 0,
        }
    }

    /// Allocates a fresh [`VmId`].
    pub fn allocate_id(&mut self) -> VmId {
        let id = VmId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Starts billing `vm` at `now`.
    ///
    /// Opening a VM that is already open is caller misuse: it would
    /// double-bill the same machine. Debug builds panic; release builds
    /// ignore the duplicate open, record it in [`VmLedger::misuse_events`],
    /// and keep the original entry so cost stays conservative.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `vm` is already open.
    pub fn open(&mut self, vm: VmId, tier: VmTier, now: SimTime) {
        if self.entries.iter().any(|e| e.vm == vm && e.ended.is_none()) {
            // Tally before asserting so the count survives a caught
            // debug panic identically to the release no-op.
            self.misuse_events += 1;
            debug_assert!(false, "VM {vm:?} is already open");
            return;
        }
        self.entries.push(LedgerEntry {
            vm,
            tier,
            started: now,
            ended: None,
        });
    }

    /// Stops billing `vm` at `now`.
    ///
    /// Closing a VM with no open entry (unknown id, or already closed) is
    /// caller misuse. Debug builds panic; release builds ignore the close
    /// and record it in [`VmLedger::misuse_events`]. A close timestamped
    /// before the matching open is clamped to the open time, so the entry
    /// can never bill a negative interval.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `vm` has no open entry or `now` precedes
    /// its open time.
    pub fn close(&mut self, vm: VmId, now: SimTime) {
        let Some(entry) = self
            .entries
            .iter_mut()
            .find(|e| e.vm == vm && e.ended.is_none())
        else {
            self.misuse_events += 1;
            debug_assert!(false, "VM {vm:?} is not open");
            return;
        };
        if now < entry.started {
            let started = entry.started;
            entry.ended = Some(started);
            self.misuse_events += 1;
            debug_assert!(
                false,
                "VM {vm:?} closed at {now} before it opened at {started}"
            );
            return;
        }
        entry.ended = Some(now);
    }

    /// How many misuse edges (double open, close of a non-open VM, close
    /// before open) release builds have saturated away. Always 0 on a
    /// correctly driven ledger; the auditor flags any increase.
    pub fn misuse_events(&self) -> u64 {
        self.misuse_events
    }

    /// Dollar cost accrued by `tier` VMs up to `now`.
    pub fn cost_by_tier(&self, tier: VmTier, now: SimTime) -> f64 {
        let hourly = self.pricing.worker_price(self.provider, tier);
        self.entries
            .iter()
            .filter(|e| e.tier == tier)
            .map(|e| {
                let end = e.ended.unwrap_or(now).min(now);
                end.saturating_since(e.started).as_secs_f64() / 3600.0 * hourly
            })
            .sum()
    }

    /// Total dollar cost up to `now`.
    pub fn total_cost(&self, now: SimTime) -> f64 {
        self.cost_by_tier(VmTier::OnDemand, now) + self.cost_by_tier(VmTier::Spot, now)
    }

    /// Count of currently open VMs.
    pub fn open_count(&self) -> usize {
        self.entries.iter().filter(|e| e.ended.is_none()).count()
    }

    /// Total evicted/closed VM count by tier (for reporting).
    pub fn closed_count(&self, tier: VmTier) -> usize {
        self.entries
            .iter()
            .filter(|e| e.tier == tier && e.ended.is_some())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use protean_sim::RngFactory;

    #[test]
    fn table3_savings_match_paper() {
        let t = PricingTable::paper_table3();
        assert!((t.savings(Provider::Aws) - 0.6999).abs() < 1e-3);
        assert!((t.savings(Provider::Azure) - 0.4501).abs() < 1e-3);
        assert!((t.savings(Provider::Gcp) - 0.7070).abs() < 1e-3);
    }

    #[test]
    fn availability_probabilities_match_paper() {
        assert_eq!(SpotAvailability::High.revocation_probability(), 0.0);
        assert_eq!(SpotAvailability::Moderate.revocation_probability(), 0.354);
        assert_eq!(SpotAvailability::Low.revocation_probability(), 0.708);
        assert!((SpotAvailability::Low.acquisition_probability() - 0.292).abs() < 1e-12);
    }

    #[test]
    fn high_availability_never_revokes() {
        let mut m = SpotMarket::new(SpotAvailability::High, RngFactory::new(1).stream("m"));
        for _ in 0..1000 {
            assert!(m.roll_revocation().is_none());
            assert!(m.try_acquire_spot());
        }
    }

    #[test]
    fn low_availability_revokes_and_denies_at_rate() {
        let mut m = SpotMarket::new(SpotAvailability::Low, RngFactory::new(2).stream("m"));
        let n = 10_000;
        let mut revocations = 0;
        let mut grants = 0;
        for _ in 0..n {
            if let Some(lead) = m.roll_revocation() {
                revocations += 1;
                let secs = lead.as_secs_f64();
                assert!((30.0..=120.0).contains(&secs), "lead {secs}");
            }
            if m.try_acquire_spot() {
                grants += 1;
            }
        }
        let rev_rate = revocations as f64 / n as f64;
        let grant_rate = grants as f64 / n as f64;
        assert!((rev_rate - 0.708).abs() < 0.02, "rev {rev_rate}");
        assert!((grant_rate - 0.292).abs() < 0.02, "grant {grant_rate}");
    }

    #[test]
    fn spot_market_oracle_impl_matches_direct_calls() {
        // The blanket SpotOracle impl must consume the RNG exactly like
        // the inherent methods, or swapping the engine to the trait
        // would shift every digest.
        let factory = RngFactory::new(9);
        let mut direct = SpotMarket::new(SpotAvailability::Moderate, factory.stream("m"));
        let mut via_trait = SpotMarket::new(SpotAvailability::Moderate, factory.stream("m"));
        let oracle: &mut dyn SpotOracle = &mut via_trait;
        for i in 0..500 {
            let now = SimTime::from_secs(i as f64);
            assert_eq!(direct.roll_revocation(), oracle.roll_revocation(now, i % 3));
            assert_eq!(
                direct.try_acquire_spot(),
                oracle.try_acquire_spot(now, i % 3)
            );
        }
    }

    #[test]
    fn policy_replacement_tiers() {
        use ProcurementPolicy::*;
        assert_eq!(OnDemandOnly.replacement_tier(true), Some(VmTier::OnDemand));
        assert_eq!(OnDemandOnly.replacement_tier(false), Some(VmTier::OnDemand));
        assert_eq!(SpotOnly.replacement_tier(true), Some(VmTier::Spot));
        assert_eq!(SpotOnly.replacement_tier(false), None);
        assert_eq!(Hybrid.replacement_tier(true), Some(VmTier::Spot));
        assert_eq!(Hybrid.replacement_tier(false), Some(VmTier::OnDemand));
        assert_eq!(OnDemandOnly.initial_tier(), VmTier::OnDemand);
        assert_eq!(Hybrid.initial_tier(), VmTier::Spot);
    }

    #[test]
    fn ledger_bills_open_and_closed_vms() {
        let mut l = VmLedger::new(PricingTable::paper_table3(), Provider::Aws);
        let a = l.allocate_id();
        let b = l.allocate_id();
        assert_ne!(a, b);
        l.open(a, VmTier::OnDemand, SimTime::ZERO);
        l.open(b, VmTier::Spot, SimTime::ZERO);
        l.close(b, SimTime::from_secs(1800.0));
        assert_eq!(l.open_count(), 1);
        assert_eq!(l.closed_count(VmTier::Spot), 1);
        let now = SimTime::from_secs(3600.0);
        let od = l.cost_by_tier(VmTier::OnDemand, now);
        let spot = l.cost_by_tier(VmTier::Spot, now);
        assert!((od - 32.7726 / 8.0).abs() < 1e-6);
        assert!((spot - 9.8318 / 16.0).abs() < 1e-6);
        assert!((l.total_cost(now) - od - spot).abs() < 1e-12);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic]
    fn double_open_panics() {
        let mut l = VmLedger::new(PricingTable::paper_table3(), Provider::Aws);
        l.open(VmId(0), VmTier::Spot, SimTime::ZERO);
        l.open(VmId(0), VmTier::Spot, SimTime::ZERO);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic]
    fn close_unopened_panics() {
        let mut l = VmLedger::new(PricingTable::paper_table3(), Provider::Aws);
        l.close(VmId(3), SimTime::ZERO);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic]
    fn close_before_open_panics() {
        let mut l = VmLedger::new(PricingTable::paper_table3(), Provider::Aws);
        l.open(VmId(0), VmTier::Spot, SimTime::from_secs(100.0));
        l.close(VmId(0), SimTime::from_secs(50.0));
    }

    /// Release builds must not corrupt cost accounting on misuse: the
    /// double open is ignored, the bogus close is ignored, the
    /// close-before-open clamps to a zero-length interval, and every edge
    /// is tallied in `misuse_events` for the auditor.
    #[cfg(not(debug_assertions))]
    #[test]
    fn misuse_saturates_and_is_counted_in_release() {
        let mut l = VmLedger::new(PricingTable::paper_table3(), Provider::Aws);
        l.open(VmId(0), VmTier::Spot, SimTime::ZERO);
        l.open(VmId(0), VmTier::OnDemand, SimTime::from_secs(10.0)); // double open
        assert_eq!(l.misuse_events(), 1);
        assert_eq!(l.open_count(), 1);
        l.close(VmId(7), SimTime::from_secs(20.0)); // unknown id
        assert_eq!(l.misuse_events(), 2);
        l.close(VmId(0), SimTime::from_secs(3600.0));
        l.close(VmId(0), SimTime::from_secs(7200.0)); // already closed
        assert_eq!(l.misuse_events(), 3);
        let spot_hour = 9.8318 / 8.0;
        assert!((l.total_cost(SimTime::from_secs(7200.0)) - spot_hour).abs() < 1e-9);
        // Close before open clamps the interval to zero length.
        l.open(VmId(1), VmTier::Spot, SimTime::from_secs(8000.0));
        l.close(VmId(1), SimTime::from_secs(7000.0));
        assert_eq!(l.misuse_events(), 4);
        assert_eq!(l.open_count(), 0);
        assert!((l.total_cost(SimTime::from_secs(9000.0)) - spot_hour).abs() < 1e-9);
    }

    /// Cost queries at a `now` earlier than an entry's open must saturate
    /// to zero, never bill a negative interval — in every build.
    #[test]
    fn cost_query_before_open_saturates() {
        let mut l = VmLedger::new(PricingTable::paper_table3(), Provider::Aws);
        l.open(VmId(0), VmTier::Spot, SimTime::from_secs(100.0));
        assert_eq!(l.total_cost(SimTime::from_secs(50.0)), 0.0);
        l.close(VmId(0), SimTime::from_secs(3700.0));
        assert_eq!(l.total_cost(SimTime::from_secs(50.0)), 0.0);
        // And a query between open and close bills only the elapsed part.
        let partial = l.total_cost(SimTime::from_secs(1900.0));
        assert!((partial - 0.5 * 9.8318 / 8.0).abs() < 1e-9);
        assert_eq!(l.misuse_events(), 0);
    }

    proptest! {
        /// Hybrid policy always produces a replacement; the cost ledger
        /// is additive and non-negative.
        #[test]
        fn prop_ledger_monotone(hours in proptest::collection::vec(0.0f64..10.0, 1..20)) {
            let mut l = VmLedger::new(PricingTable::paper_table3(), Provider::Gcp);
            let mut t = SimTime::ZERO;
            for (i, h) in hours.iter().enumerate() {
                let id = l.allocate_id();
                let tier = if i % 2 == 0 { VmTier::Spot } else { VmTier::OnDemand };
                l.open(id, tier, t);
                t += SimDuration::from_secs(h * 3600.0);
                l.close(id, t);
            }
            let mid = SimTime::from_secs(t.as_secs_f64() / 2.0);
            prop_assert!(l.total_cost(mid) <= l.total_cost(t) + 1e-9);
            prop_assert!(l.total_cost(t) >= 0.0);
        }
    }
}
