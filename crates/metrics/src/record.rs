//! Per-request records and aggregate summaries.

use protean_models::ModelId;
use protean_sim::{SimDuration, SimTime};

use crate::stats::SortedLatencies;

/// Where a completed request's end-to-end latency went, in milliseconds.
///
/// The components mirror the stacked bars in Figs. 2, 6 and 11:
/// `min_exec` is the batch's solo time on the full GPU (`7g`) — the
/// floor no scheme can beat — `deficiency` the extra solo time due to
/// running on a smaller MIG slice, `interference` the further stretch
/// from MPS co-location, `queueing` all time between arrival and
/// execution start (batch assembly + waiting for containers/slices), and
/// `cold_start` container boot time on the critical path.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyBreakdown {
    /// Solo execution on `7g`, ms ("min possible time").
    pub min_exec_ms: f64,
    /// Extra solo time from the slice's reduced resources, ms.
    pub deficiency_ms: f64,
    /// Extra time from MPS co-location (Eq. 1), ms.
    pub interference_ms: f64,
    /// Waiting before execution began, ms.
    pub queueing_ms: f64,
    /// Container cold-start on the critical path, ms.
    pub cold_start_ms: f64,
}

impl LatencyBreakdown {
    /// Sum of all components, ms. Equals the end-to-end latency of the
    /// request (up to clock rounding).
    pub fn total_ms(&self) -> f64 {
        self.min_exec_ms
            + self.deficiency_ms
            + self.interference_ms
            + self.queueing_ms
            + self.cold_start_ms
    }
}

/// A completed request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestRecord {
    /// The model the request invoked.
    pub model: ModelId,
    /// Whether the request carried a strict SLO.
    pub strict: bool,
    /// Arrival at the gateway.
    pub arrival: SimTime,
    /// Completion of its batch.
    pub completion: SimTime,
    /// Where the latency went.
    pub breakdown: LatencyBreakdown,
}

impl RequestRecord {
    /// End-to-end latency.
    pub fn latency(&self) -> SimDuration {
        self.completion.saturating_since(self.arrival)
    }
}

/// A growing collection of request records with the aggregations used by
/// every experiment.
///
/// Two storage modes:
///
/// * **Full** (the default): every [`RequestRecord`] is retained, all
///   aggregations are exact. Memory is O(requests) — at 48 bytes per
///   record a billion-request soak would need ~45 GB, so fleet-scale
///   endurance runs cannot use it.
/// * **Aggregate** ([`MetricsSet::aggregate`]): per-class log-spaced
///   latency histograms plus counts/means — O(1) memory regardless of
///   request count. Quantiles are approximate to the bucket ratio
///   (128 buckets per decade ⇒ ≤ ~0.9% relative error); per-record
///   views ([`MetricsSet::records`], [`MetricsSet::latencies_ms`],
///   [`MetricsSet::tail_breakdown`], [`MetricsSet::slo_compliance`],
///   [`MetricsSet::per_model_summaries`]) see an empty record store
///   and degrade accordingly. Used by the streaming soak benchmarks,
///   which prove flat RSS over ≥10⁹ requests.
#[derive(Debug, Clone, Default)]
pub struct MetricsSet {
    records: Vec<RequestRecord>,
    aggregate: Option<AggregateStore>,
}

/// Histogram geometry for aggregate mode: nine decades of latency,
/// 0.001 ms .. 1e6 ms, 128 log-spaced buckets per decade.
const BUCKETS_PER_DECADE: f64 = 128.0;
const DECADES: usize = 9;
const BUCKETS: usize = DECADES * 128;
const MIN_MS: f64 = 1e-3;

/// Fixed-size per-class latency statistics for aggregate mode.
#[derive(Debug, Clone)]
struct AggregateStore {
    strict: LatencyHistogram,
    be: LatencyHistogram,
}

impl AggregateStore {
    fn new() -> Self {
        AggregateStore {
            strict: LatencyHistogram::new(),
            be: LatencyHistogram::new(),
        }
    }

    fn merge_from(&mut self, other: &AggregateStore) {
        self.strict.merge_from(&other.strict);
        self.be.merge_from(&other.be);
    }

    fn push(&mut self, record: &RequestRecord) {
        let ms = record.latency().as_millis_f64();
        if record.strict {
            self.strict.push(ms);
        } else {
            self.be.push(ms);
        }
    }

    fn count(&self, class: Class) -> u64 {
        match class {
            Class::Strict => self.strict.count,
            Class::BestEffort => self.be.count,
            Class::All => self.strict.count + self.be.count,
        }
    }

    fn mean_ms(&self, class: Class) -> Option<f64> {
        let (sum, count) = match class {
            Class::Strict => (self.strict.sum_ms, self.strict.count),
            Class::BestEffort => (self.be.sum_ms, self.be.count),
            Class::All => (
                self.strict.sum_ms + self.be.sum_ms,
                self.strict.count + self.be.count,
            ),
        };
        (count > 0).then(|| sum / count as f64)
    }

    /// Nearest-rank quantile over the bucket CDF, mirroring
    /// `SortedLatencies::percentile`'s rank convention. The returned
    /// latency is the geometric midpoint of the rank's bucket, clamped
    /// to the exact observed [min, max].
    fn percentile_ms(&self, class: Class, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        let (a, b) = match class {
            Class::Strict => (&self.strict, None),
            Class::BestEffort => (&self.be, None),
            Class::All => (&self.strict, Some(&self.be)),
        };
        let at = |i: usize| a.buckets[i] + b.map_or(0, |h: &LatencyHistogram| h.buckets[i]);
        let count = a.count + b.map_or(0, |h| h.count);
        if count == 0 {
            return None;
        }
        let rank = ((count as f64 * q).ceil() as u64).max(1);
        let min = a.min_ms.min(b.map_or(f64::INFINITY, |h| h.min_ms));
        let max = a.max_ms.max(b.map_or(f64::NEG_INFINITY, |h| h.max_ms));
        let mut cum = 0u64;
        for i in 0..BUCKETS {
            cum += at(i);
            if cum >= rank {
                return Some(LatencyHistogram::bucket_mid_ms(i).clamp(min, max));
            }
        }
        Some(max)
    }
}

/// A log-spaced latency histogram with exact count/sum/min/max.
#[derive(Debug, Clone)]
struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ms: f64,
    min_ms: f64,
    max_ms: f64,
}

impl LatencyHistogram {
    fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum_ms: 0.0,
            min_ms: f64::INFINITY,
            max_ms: f64::NEG_INFINITY,
        }
    }

    fn bucket_of(ms: f64) -> usize {
        if ms <= MIN_MS {
            return 0;
        }
        (((ms / MIN_MS).log10() * BUCKETS_PER_DECADE) as usize).min(BUCKETS - 1)
    }

    /// Geometric midpoint of bucket `i` — the representative latency
    /// reported for quantiles landing in it.
    fn bucket_mid_ms(i: usize) -> f64 {
        MIN_MS * 10f64.powf((i as f64 + 0.5) / BUCKETS_PER_DECADE)
    }

    fn push(&mut self, ms: f64) {
        self.buckets[Self::bucket_of(ms)] += 1;
        self.count += 1;
        self.sum_ms += ms;
        self.min_ms = self.min_ms.min(ms);
        self.max_ms = self.max_ms.max(ms);
    }

    /// Bucket-wise sum plus count/sum/min/max fold. Histograms are
    /// order-insensitive, so merging per-shard histograms in any order
    /// gives the same store a sequential run builds — except `sum_ms`,
    /// where float addition is associative only in exact arithmetic; the
    /// sharded engine merges shards in ascending shard order to keep the
    /// result deterministic for a fixed shard count.
    fn merge_from(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum_ms += other.sum_ms;
        self.min_ms = self.min_ms.min(other.min_ms);
        self.max_ms = self.max_ms.max(other.max_ms);
    }
}

/// Which request class an aggregation ranges over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Only strict requests.
    Strict,
    /// Only best-effort requests.
    BestEffort,
    /// All requests.
    All,
}

impl MetricsSet {
    /// Creates an empty set in full (exact, per-record) mode.
    pub fn new() -> Self {
        MetricsSet::default()
    }

    /// Creates an empty set in aggregate (O(1)-memory histogram) mode.
    /// See the type docs for what degrades.
    pub fn aggregate() -> Self {
        MetricsSet {
            records: Vec::new(),
            aggregate: Some(AggregateStore::new()),
        }
    }

    /// `true` when this set keeps histograms instead of records.
    pub fn is_aggregate(&self) -> bool {
        self.aggregate.is_some()
    }

    /// Records a completed request.
    pub fn push(&mut self, record: RequestRecord) {
        if let Some(agg) = &mut self.aggregate {
            agg.push(&record);
        } else {
            self.records.push(record);
        }
    }

    /// Merges another set into this one. Both sets must be in the same
    /// storage mode. In full mode the other set's records are appended
    /// (the sharded engine merges shards in ascending shard order, so
    /// record order is deterministic but generally differs from a
    /// sequential run's completion order; every digest-visible
    /// aggregation — counts, percentiles, CDFs — is order-insensitive).
    /// In aggregate mode the histograms are summed bucket-wise.
    ///
    /// # Panics
    ///
    /// Panics if the storage modes differ.
    pub fn absorb(&mut self, other: MetricsSet) {
        match (&mut self.aggregate, &other.aggregate) {
            (None, None) => self.records.extend(other.records),
            (Some(mine), Some(theirs)) => mine.merge_from(theirs),
            _ => panic!("cannot absorb a MetricsSet of a different storage mode"),
        }
    }

    /// Pre-sizes the record store for `additional` more requests.
    /// Million-request fleet benchmarks otherwise spend measurable time
    /// re-growing (and re-copying) a multi-hundred-megabyte vector.
    /// No-op in aggregate mode, whose footprint is fixed.
    pub fn reserve(&mut self, additional: usize) {
        if self.aggregate.is_none() {
            self.records.reserve(additional);
        }
    }

    /// All records in completion order (empty in aggregate mode).
    pub fn records(&self) -> &[RequestRecord] {
        &self.records
    }

    /// Number of records in `class` (exact in both modes).
    pub fn count(&self, class: Class) -> usize {
        if let Some(agg) = &self.aggregate {
            return agg.count(class) as usize;
        }
        self.iter_class(class).count()
    }

    /// Mean latency (ms) for `class`; `None` if empty. Exact in both
    /// modes (aggregate mode keeps running sums).
    pub fn latency_mean_ms(&self, class: Class) -> Option<f64> {
        if let Some(agg) = &self.aggregate {
            return agg.mean_ms(class);
        }
        let lats = self.latencies_ms(class);
        (!lats.is_empty()).then(|| lats.iter().sum::<f64>() / lats.len() as f64)
    }

    fn iter_class(&self, class: Class) -> impl Iterator<Item = &RequestRecord> {
        self.records.iter().filter(move |r| match class {
            Class::Strict => r.strict,
            Class::BestEffort => !r.strict,
            Class::All => true,
        })
    }

    /// Latencies in milliseconds for `class`, unsorted.
    pub fn latencies_ms(&self, class: Class) -> Vec<f64> {
        self.iter_class(class)
            .map(|r| r.latency().as_millis_f64())
            .collect()
    }

    /// Fraction of **strict** requests whose latency met their
    /// per-model SLO (the paper's headline "SLO compliance"). Returns 1.0
    /// for an empty strict set.
    pub fn slo_compliance(&self, slo: &dyn Fn(ModelId) -> SimDuration) -> f64 {
        let mut total = 0usize;
        let mut met = 0usize;
        for r in self.iter_class(Class::Strict) {
            total += 1;
            if r.latency() <= slo(r.model) {
                met += 1;
            }
        }
        if total == 0 {
            1.0
        } else {
            met as f64 / total as f64
        }
    }

    /// The latencies of `class` sorted once into a [`SortedLatencies`]
    /// view. Build this when a report needs several quantiles, a CDF or
    /// a tail cut from the same class — each query then reuses the one
    /// sort instead of re-sorting per call.
    pub fn sorted_latencies(&self, class: Class) -> SortedLatencies {
        SortedLatencies::from_unsorted(self.latencies_ms(class))
    }

    /// The `q`-quantile latency (ms) for `class`; `None` if empty.
    /// Exact in full mode; bucket-resolution (≤ ~0.9% relative) in
    /// aggregate mode.
    ///
    /// Sorts on every call in full mode; for repeated queries use
    /// [`MetricsSet::sorted_latencies`].
    pub fn latency_percentile_ms(&self, class: Class, q: f64) -> Option<f64> {
        if let Some(agg) = &self.aggregate {
            return agg.percentile_ms(class, q);
        }
        self.sorted_latencies(class).percentile(q)
    }

    /// Mean latency breakdown over the requests of `class` whose latency
    /// is at or above that class's `q`-quantile — the stacked "tail
    /// breakdown" of Figs. 2/6/11.
    ///
    /// Sorts on every call; when the caller already holds the class's
    /// [`SortedLatencies`], use [`MetricsSet::tail_breakdown_with`].
    pub fn tail_breakdown(&self, class: Class, q: f64) -> Option<LatencyBreakdown> {
        self.tail_breakdown_with(class, &self.sorted_latencies(class), q)
    }

    /// [`MetricsSet::tail_breakdown`] with the `q`-cut taken from an
    /// already-sorted view of the same class (no extra sort).
    pub fn tail_breakdown_with(
        &self,
        class: Class,
        sorted: &SortedLatencies,
        q: f64,
    ) -> Option<LatencyBreakdown> {
        let cut = sorted.percentile(q)?;
        let tail: Vec<&RequestRecord> = self
            .iter_class(class)
            .filter(|r| r.latency().as_millis_f64() >= cut)
            .collect();
        if tail.is_empty() {
            return None;
        }
        let n = tail.len() as f64;
        let mut b = LatencyBreakdown::default();
        for r in tail {
            b.min_exec_ms += r.breakdown.min_exec_ms;
            b.deficiency_ms += r.breakdown.deficiency_ms;
            b.interference_ms += r.breakdown.interference_ms;
            b.queueing_ms += r.breakdown.queueing_ms;
            b.cold_start_ms += r.breakdown.cold_start_ms;
        }
        b.min_exec_ms /= n;
        b.deficiency_ms /= n;
        b.interference_ms /= n;
        b.queueing_ms /= n;
        b.cold_start_ms /= n;
        Some(b)
    }

    /// The latency CDF for `class`: `points` evenly spaced quantiles as
    /// `(latency_ms, cumulative_fraction)` pairs (Fig. 8).
    pub fn latency_cdf(&self, class: Class, points: usize) -> Vec<(f64, f64)> {
        self.sorted_latencies(class).cdf(points)
    }

    /// Completed requests of `class` per GPU per second — the paper's
    /// throughput metric (Fig. 10a uses strict requests).
    pub fn throughput_per_gpu(&self, class: Class, duration: SimDuration, gpus: usize) -> f64 {
        if duration.is_zero() || gpus == 0 {
            return 0.0;
        }
        self.count(class) as f64 / duration.as_secs_f64() / gpus as f64
    }

    /// A compact summary for tables. Each class's latency vector is
    /// sorted exactly once (full mode); aggregate mode reads the
    /// histograms, and its `slo_compliance` reports 1.0 (per-request
    /// SLO checks need full records).
    pub fn summary(&self, slo: &dyn Fn(ModelId) -> SimDuration) -> Summary {
        if self.aggregate.is_some() {
            return Summary {
                total: self.count(Class::All),
                strict: self.count(Class::Strict),
                slo_compliance: self.slo_compliance(slo),
                strict_p50_ms: self
                    .latency_percentile_ms(Class::Strict, 0.50)
                    .unwrap_or(0.0),
                strict_p99_ms: self
                    .latency_percentile_ms(Class::Strict, 0.99)
                    .unwrap_or(0.0),
                be_p50_ms: self
                    .latency_percentile_ms(Class::BestEffort, 0.50)
                    .unwrap_or(0.0),
                be_p99_ms: self
                    .latency_percentile_ms(Class::BestEffort, 0.99)
                    .unwrap_or(0.0),
            };
        }
        let strict = self.sorted_latencies(Class::Strict);
        let be = self.sorted_latencies(Class::BestEffort);
        Summary {
            total: self.count(Class::All),
            strict: self.count(Class::Strict),
            slo_compliance: self.slo_compliance(slo),
            strict_p50_ms: strict.p50().unwrap_or(0.0),
            strict_p99_ms: strict.p99().unwrap_or(0.0),
            be_p50_ms: be.p50().unwrap_or(0.0),
            be_p99_ms: be.p99().unwrap_or(0.0),
        }
    }
}

impl MetricsSet {
    /// Per-model summaries, in `ModelId::ALL` order, covering only the
    /// models with at least one record. Used by multi-model reports.
    pub fn per_model_summaries(
        &self,
        slo: &dyn Fn(ModelId) -> SimDuration,
    ) -> Vec<(ModelId, Summary)> {
        let mut out = Vec::new();
        for model in ModelId::ALL {
            let subset: Vec<&RequestRecord> =
                self.records.iter().filter(|r| r.model == model).collect();
            if subset.is_empty() {
                continue;
            }
            let mut m = MetricsSet::new();
            for r in subset {
                m.push(*r);
            }
            out.push((model, m.summary(slo)));
        }
        out
    }
}

/// Headline numbers for one experiment run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Total completed requests.
    pub total: usize,
    /// Completed strict requests.
    pub strict: usize,
    /// Fraction of strict requests meeting their SLO.
    pub slo_compliance: f64,
    /// Strict median latency, ms.
    pub strict_p50_ms: f64,
    /// Strict P99 latency, ms.
    pub strict_p99_ms: f64,
    /// Best-effort median latency, ms.
    pub be_p50_ms: f64,
    /// Best-effort P99 latency, ms.
    pub be_p99_ms: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(strict: bool, lat_ms: f64) -> RequestRecord {
        RequestRecord {
            model: ModelId::ResNet50,
            strict,
            arrival: SimTime::ZERO,
            completion: SimTime::from_millis(lat_ms),
            breakdown: LatencyBreakdown {
                min_exec_ms: lat_ms / 2.0,
                deficiency_ms: lat_ms / 4.0,
                interference_ms: lat_ms / 8.0,
                queueing_ms: lat_ms / 8.0,
                cold_start_ms: 0.0,
            },
        }
    }

    #[test]
    fn slo_compliance_counts_only_strict() {
        let mut m = MetricsSet::new();
        m.push(rec(true, 100.0));
        m.push(rec(true, 400.0));
        m.push(rec(false, 10_000.0)); // BE never counts
        let slo = |_| SimDuration::from_millis(285.0);
        assert_eq!(m.slo_compliance(&slo), 0.5);
        assert_eq!(m.count(Class::Strict), 2);
        assert_eq!(m.count(Class::BestEffort), 1);
    }

    #[test]
    fn empty_strict_set_is_fully_compliant() {
        let m = MetricsSet::new();
        assert_eq!(m.slo_compliance(&|_| SimDuration::ZERO), 1.0);
        assert_eq!(m.latency_percentile_ms(Class::Strict, 0.99), None);
    }

    #[test]
    fn percentiles_split_by_class() {
        let mut m = MetricsSet::new();
        for i in 1..=100 {
            m.push(rec(true, i as f64));
            m.push(rec(false, 10.0 * i as f64));
        }
        let strict_p50 = m.latency_percentile_ms(Class::Strict, 0.5).unwrap();
        let be_p50 = m.latency_percentile_ms(Class::BestEffort, 0.5).unwrap();
        assert!((strict_p50 - 50.0).abs() <= 1.0);
        assert!((be_p50 - 500.0).abs() <= 10.0);
    }

    #[test]
    fn tail_breakdown_averages_tail_set() {
        let mut m = MetricsSet::new();
        for i in 1..=100 {
            m.push(rec(true, i as f64));
        }
        let b = m.tail_breakdown(Class::Strict, 0.99).unwrap();
        // The tail set is requests >= p99 (~99, 100): mean total ≈ 99.5.
        assert!((b.total_ms() - 99.5).abs() < 1.0, "total {}", b.total_ms());
        assert!(b.min_exec_ms > b.interference_ms);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_max() {
        let mut m = MetricsSet::new();
        for i in 1..=50 {
            m.push(rec(true, i as f64));
        }
        let cdf = m.latency_cdf(Class::Strict, 10);
        assert_eq!(cdf.len(), 10);
        for w in cdf.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 > w[0].1);
        }
        assert_eq!(cdf.last().unwrap().0, 50.0);
        assert_eq!(cdf.last().unwrap().1, 1.0);
    }

    #[test]
    fn throughput_normalises_by_gpus_and_time() {
        let mut m = MetricsSet::new();
        for _ in 0..800 {
            m.push(rec(true, 10.0));
        }
        let thr = m.throughput_per_gpu(Class::Strict, SimDuration::from_secs(10.0), 8);
        assert_eq!(thr, 10.0);
        assert_eq!(
            m.throughput_per_gpu(Class::Strict, SimDuration::ZERO, 8),
            0.0
        );
    }

    #[test]
    fn summary_contains_consistent_numbers() {
        let mut m = MetricsSet::new();
        m.push(rec(true, 100.0));
        m.push(rec(false, 200.0));
        let s = m.summary(&|_| SimDuration::from_millis(150.0));
        assert_eq!(s.total, 2);
        assert_eq!(s.strict, 1);
        assert_eq!(s.slo_compliance, 1.0);
        assert_eq!(s.strict_p50_ms, 100.0);
        assert_eq!(s.be_p99_ms, 200.0);
    }

    #[test]
    fn per_model_summaries_partition_the_records() {
        let mut m = MetricsSet::new();
        for i in 1..=10 {
            m.push(rec(true, i as f64));
        }
        let mut other = rec(false, 500.0);
        other.model = ModelId::MobileNet;
        m.push(other);
        let slo = |_| SimDuration::from_millis(5.0);
        let per_model = m.per_model_summaries(&slo);
        assert_eq!(per_model.len(), 2);
        let total: usize = per_model.iter().map(|(_, s)| s.total).sum();
        assert_eq!(total, m.count(Class::All));
        let (resnet, s) = per_model[0];
        assert_eq!(resnet, ModelId::ResNet50);
        assert_eq!(s.strict, 10);
        assert_eq!(s.slo_compliance, 0.5);
        let (mobile, s) = per_model[1];
        assert_eq!(mobile, ModelId::MobileNet);
        assert_eq!(s.be_p99_ms, 500.0);
    }

    #[test]
    fn aggregate_counts_are_exact_and_memory_is_fixed() {
        let mut m = MetricsSet::aggregate();
        assert!(m.is_aggregate());
        for i in 1..=1000 {
            m.push(rec(i % 2 == 0, i as f64));
        }
        assert_eq!(m.count(Class::All), 1000);
        assert_eq!(m.count(Class::Strict), 500);
        assert_eq!(m.count(Class::BestEffort), 500);
        // Per-record views see an empty store.
        assert!(m.records().is_empty());
        assert!(m.latencies_ms(Class::All).is_empty());
    }

    #[test]
    fn aggregate_percentiles_track_exact_within_bucket_resolution() {
        let mut full = MetricsSet::new();
        let mut agg = MetricsSet::aggregate();
        // A latency spread covering several decades.
        for i in 1..=5000u64 {
            let ms = 0.5 * 1.002f64.powi(i as i32 % 4000);
            full.push(rec(i % 3 == 0, ms));
            agg.push(rec(i % 3 == 0, ms));
        }
        for class in [Class::Strict, Class::BestEffort, Class::All] {
            for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
                let exact = full.latency_percentile_ms(class, q).unwrap();
                let approx = agg.latency_percentile_ms(class, q).unwrap();
                let rel = (approx - exact).abs() / exact;
                assert!(
                    rel < 0.01,
                    "class {class:?} q {q}: approx {approx} vs exact {exact} (rel {rel})"
                );
            }
        }
        // Means are exact in both modes.
        let em = full.latency_mean_ms(Class::All).unwrap();
        let am = agg.latency_mean_ms(Class::All).unwrap();
        assert!((em - am).abs() < 1e-9);
    }

    #[test]
    fn aggregate_summary_uses_histogram_quantiles() {
        let mut m = MetricsSet::aggregate();
        for i in 1..=100 {
            m.push(rec(true, i as f64));
            m.push(rec(false, 10.0 * i as f64));
        }
        let s = m.summary(&|_| SimDuration::from_millis(1000.0));
        assert_eq!(s.total, 200);
        assert_eq!(s.strict, 100);
        assert!((s.strict_p50_ms - 50.0).abs() / 50.0 < 0.01);
        assert!((s.be_p99_ms - 990.0).abs() / 990.0 < 0.01);
    }

    #[test]
    fn absorb_merges_full_and_aggregate_modes() {
        // Full mode: the union's counts and percentiles match a set
        // built from all records directly.
        let mut a = MetricsSet::new();
        let mut b = MetricsSet::new();
        let mut whole = MetricsSet::new();
        for i in 1..=100 {
            let r = rec(i % 2 == 0, i as f64);
            if i <= 60 {
                a.push(r)
            } else {
                b.push(r)
            }
            whole.push(r);
        }
        a.absorb(b);
        assert_eq!(a.count(Class::All), 100);
        for class in [Class::Strict, Class::BestEffort, Class::All] {
            assert_eq!(
                a.latency_percentile_ms(class, 0.99),
                whole.latency_percentile_ms(class, 0.99)
            );
        }
        // Aggregate mode: histograms sum bucket-wise.
        let mut a = MetricsSet::aggregate();
        let mut b = MetricsSet::aggregate();
        let mut whole = MetricsSet::aggregate();
        for i in 1..=500 {
            let r = rec(i % 3 == 0, (i as f64).sqrt());
            if i % 2 == 0 {
                a.push(r)
            } else {
                b.push(r)
            }
            whole.push(r);
        }
        a.absorb(b);
        assert_eq!(a.count(Class::All), 500);
        for class in [Class::Strict, Class::BestEffort, Class::All] {
            assert_eq!(
                a.latency_percentile_ms(class, 0.5),
                whole.latency_percentile_ms(class, 0.5)
            );
        }
    }

    #[test]
    #[should_panic(expected = "different storage mode")]
    fn absorb_rejects_mode_mismatch() {
        let mut a = MetricsSet::new();
        a.absorb(MetricsSet::aggregate());
    }

    #[test]
    fn breakdown_total_matches_components() {
        let b = LatencyBreakdown {
            min_exec_ms: 50.0,
            deficiency_ms: 10.0,
            interference_ms: 20.0,
            queueing_ms: 15.0,
            cold_start_ms: 5.0,
        };
        assert_eq!(b.total_ms(), 100.0);
    }
}
