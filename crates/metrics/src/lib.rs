//! Metrics collection and statistics for the reproduction experiments.
//!
//! The paper's evaluation reports, per scheme: strict-request **SLO
//! compliance**, **tail (P99) latency** with a stacked breakdown into
//! *queueing*, *cold start*, *interference*, *resource deficiency* and
//! *minimum possible time* (Figs. 2, 6, 11), the end-to-end latency
//! **CDF** (Fig. 8), **throughput** per GPU (Fig. 10a), GPU/memory
//! **utilization** (Fig. 10b), and dollar **cost** (Fig. 9). §7 adds
//! confidence intervals, Welch p-values and Cohen's *d*. This crate
//! provides all of those over per-request [`RequestRecord`]s.
//!
//! # Example
//!
//! ```
//! use protean_metrics::{LatencyBreakdown, MetricsSet, RequestRecord};
//! use protean_models::ModelId;
//! use protean_sim::{SimDuration, SimTime};
//!
//! let mut m = MetricsSet::new();
//! m.push(RequestRecord {
//!     model: ModelId::ResNet50,
//!     strict: true,
//!     arrival: SimTime::ZERO,
//!     completion: SimTime::from_millis(120.0),
//!     breakdown: LatencyBreakdown::default(),
//! });
//! let slo = |_| SimDuration::from_millis(285.0);
//! assert_eq!(m.slo_compliance(&slo), 1.0);
//! ```

pub mod record;
pub mod stats;

pub use record::{LatencyBreakdown, MetricsSet, RequestRecord, Summary};
pub use stats::{cohens_d, mean_ci95, percentile, welch_t_test, SortedLatencies, TTestResult};
