//! Statistical significance machinery (paper §7).
//!
//! The paper reports narrow confidence intervals (<0.1%), ~0 p-values
//! from pairwise tests between schemes, and very large Cohen's *d*
//! values (7.8–304). This module implements those three instruments:
//! 95% CIs on means, Welch's unequal-variance t-test (with a normal
//! approximation for the p-value — sample sizes here are in the
//! thousands, where t and normal are indistinguishable), and Cohen's
//! *d* with pooled standard deviation.

/// Result of Welch's t-test between two samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TTestResult {
    /// The t statistic.
    pub t: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub df: f64,
    /// Two-sided p-value (normal approximation).
    pub p_value: f64,
}

/// A latency sample sorted **once**, serving any number of quantile,
/// CDF and tail queries without re-sorting.
///
/// `percentile(&v, q)` re-sorts on every call, which is fine for a
/// single query but quadratic-ish when a report wants P50, P99, a CDF
/// and a tail cut from the same vector. Build one `SortedLatencies`
/// per class per run and read everything off it.
#[derive(Debug, Clone, Default)]
pub struct SortedLatencies {
    sorted: Vec<f64>,
}

impl SortedLatencies {
    /// Sorts `values` (ascending) into a reusable view. This is the
    /// only sort; every query afterwards is O(1) or O(points).
    ///
    /// # Panics
    ///
    /// Panics if any value is NaN.
    pub fn from_unsorted(mut values: Vec<f64>) -> Self {
        values.sort_by(|a, b| a.partial_cmp(b).expect("values are finite"));
        SortedLatencies { sorted: values }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The ascending sample.
    pub fn as_slice(&self) -> &[f64] {
        &self.sorted
    }

    /// The `q`-quantile (nearest-rank); `None` if the sample is empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.sorted.is_empty() {
            return None;
        }
        let rank = ((self.sorted.len() as f64 * q).ceil() as usize).max(1) - 1;
        Some(self.sorted[rank.min(self.sorted.len() - 1)])
    }

    /// Median; `None` if empty.
    pub fn p50(&self) -> Option<f64> {
        self.percentile(0.50)
    }

    /// 99th percentile; `None` if empty.
    pub fn p99(&self) -> Option<f64> {
        self.percentile(0.99)
    }

    /// Smallest observation; `None` if empty.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Largest observation; `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// `points` evenly spaced quantiles as `(value, cumulative_fraction)`
    /// pairs — the latency CDF of Fig. 8. Empty if the sample is empty
    /// or `points` is 0.
    pub fn cdf(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        (1..=points)
            .map(|i| {
                let frac = i as f64 / points as f64;
                let idx = ((self.sorted.len() as f64 * frac).ceil() as usize - 1)
                    .min(self.sorted.len() - 1);
                (self.sorted[idx], frac)
            })
            .collect()
    }
}

/// The `q`-quantile of `values` (nearest-rank on the sorted sample).
///
/// Sorts a copy of `values` on every call. For repeated queries over
/// the same sample, build a [`SortedLatencies`] instead.
///
/// # Panics
///
/// Panics if `values` is empty or `q` is outside `[0, 1]`.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    let sorted = SortedLatencies::from_unsorted(values.to_vec());
    sorted.percentile(q).expect("percentile of empty sample")
}

fn mean(values: &[f64]) -> f64 {
    values.iter().sum::<f64>() / values.len() as f64
}

fn sample_variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (values.len() - 1) as f64
}

/// Mean and half-width of the 95% confidence interval of the mean
/// (normal approximation).
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn mean_ci95(values: &[f64]) -> (f64, f64) {
    assert!(!values.is_empty(), "CI of empty sample");
    let m = mean(values);
    let se = (sample_variance(values) / values.len() as f64).sqrt();
    (m, 1.96 * se)
}

/// Welch's unequal-variance t-test between samples `a` and `b`.
///
/// # Panics
///
/// Panics if either sample has fewer than 2 observations.
pub fn welch_t_test(a: &[f64], b: &[f64]) -> TTestResult {
    assert!(
        a.len() >= 2 && b.len() >= 2,
        "need ≥2 observations per side"
    );
    let (ma, mb) = (mean(a), mean(b));
    let (va, vb) = (sample_variance(a), sample_variance(b));
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let sa = va / na;
    let sb = vb / nb;
    let denom = (sa + sb).sqrt();
    let t = if denom == 0.0 { 0.0 } else { (ma - mb) / denom };
    let df = if sa + sb == 0.0 {
        na + nb - 2.0
    } else {
        (sa + sb).powi(2) / (sa.powi(2) / (na - 1.0) + sb.powi(2) / (nb - 1.0))
    };
    let p_value = 2.0 * (1.0 - standard_normal_cdf(t.abs()));
    TTestResult { t, df, p_value }
}

/// Cohen's *d* effect size with pooled standard deviation.
///
/// # Panics
///
/// Panics if either sample has fewer than 2 observations.
pub fn cohens_d(a: &[f64], b: &[f64]) -> f64 {
    assert!(
        a.len() >= 2 && b.len() >= 2,
        "need ≥2 observations per side"
    );
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let pooled = (((na - 1.0) * sample_variance(a) + (nb - 1.0) * sample_variance(b))
        / (na + nb - 2.0))
        .sqrt();
    if pooled == 0.0 {
        0.0
    } else {
        (mean(a) - mean(b)) / pooled
    }
}

/// Φ(x) via the Abramowitz–Stegun erf approximation (|error| < 1.5e-7).
fn standard_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[42.0], 0.5), 42.0);
    }

    #[test]
    fn ci_narrows_with_more_data() {
        let small: Vec<f64> = (0..10).map(|i| f64::from(i % 5)).collect();
        let large: Vec<f64> = (0..1000).map(|i| f64::from(i % 5)).collect();
        let (_, hw_small) = mean_ci95(&small);
        let (_, hw_large) = mean_ci95(&large);
        assert!(hw_large < hw_small);
    }

    #[test]
    fn welch_detects_clear_difference() {
        let a: Vec<f64> = (0..500).map(|i| 10.0 + f64::from(i % 3)).collect();
        let b: Vec<f64> = (0..500).map(|i| 20.0 + f64::from(i % 3)).collect();
        let r = welch_t_test(&a, &b);
        assert!(r.p_value < 1e-6, "p {}", r.p_value);
        assert!(r.t < 0.0);
        assert!(r.df > 100.0);
    }

    #[test]
    fn welch_same_distribution_high_p() {
        let a: Vec<f64> = (0..500).map(|i| f64::from(i % 7)).collect();
        let r = welch_t_test(&a, &a);
        assert!((r.t).abs() < 1e-12);
        assert!(r.p_value > 0.99);
    }

    #[test]
    fn cohens_d_large_effect_for_separated_samples() {
        let a: Vec<f64> = (0..100).map(|i| 100.0 + f64::from(i % 3)).collect();
        let b: Vec<f64> = (0..100).map(|i| f64::from(i % 3)).collect();
        let d = cohens_d(&a, &b);
        assert!(d > 50.0, "d {d}");
    }

    #[test]
    fn cohens_d_zero_for_identical() {
        let a: Vec<f64> = (0..100).map(|i| f64::from(i % 3)).collect();
        assert_eq!(cohens_d(&a, &a), 0.0);
    }

    #[test]
    fn erf_matches_known_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427007).abs() < 1e-5);
        assert!((erf(-1.0) + 0.8427007).abs() < 1e-5);
        assert!((standard_normal_cdf(1.96) - 0.975).abs() < 1e-3);
    }

    #[test]
    fn sorted_latencies_matches_percentile() {
        let v: Vec<f64> = (1..=100).rev().map(f64::from).collect();
        let s = SortedLatencies::from_unsorted(v.clone());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(s.percentile(q), Some(percentile(&v, q)));
        }
        assert_eq!(s.p50(), Some(50.0));
        assert_eq!(s.p99(), Some(99.0));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(100.0));
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn sorted_latencies_empty_sample() {
        let s = SortedLatencies::from_unsorted(Vec::new());
        assert!(s.is_empty());
        assert_eq!(s.percentile(0.5), None);
        assert_eq!(s.p99(), None);
        assert_eq!(s.min(), None);
        assert!(s.cdf(10).is_empty());
    }

    #[test]
    fn sorted_latencies_cdf_monotone() {
        let s = SortedLatencies::from_unsorted((1..=50).map(f64::from).collect());
        let cdf = s.cdf(10);
        assert_eq!(cdf.len(), 10);
        for w in cdf.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 > w[0].1);
        }
        assert_eq!(cdf.last().unwrap().0, 50.0);
        assert!(s.cdf(0).is_empty());
    }

    proptest! {
        /// Percentile is bounded by the sample extremes and monotone in
        /// q — all queries served from ONE sorted view.
        #[test]
        fn prop_percentile_bounds(
            v in proptest::collection::vec(-1e6f64..1e6, 1..200),
            q1 in 0.0f64..1.0, q2 in 0.0f64..1.0,
        ) {
            let lo = q1.min(q2);
            let hi = q1.max(q2);
            let s = SortedLatencies::from_unsorted(v);
            let p_lo = s.percentile(lo).unwrap();
            let p_hi = s.percentile(hi).unwrap();
            prop_assert!(p_lo >= s.min().unwrap() && p_hi <= s.max().unwrap());
            prop_assert!(p_lo <= p_hi);
        }

        /// p-values always land in [0, 1].
        #[test]
        fn prop_p_value_in_unit_interval(
            a in proptest::collection::vec(-100.0f64..100.0, 2..50),
            b in proptest::collection::vec(-100.0f64..100.0, 2..50),
        ) {
            let r = welch_t_test(&a, &b);
            prop_assert!((0.0..=1.0).contains(&r.p_value));
        }
    }
}
