//! A small `--flag value` argument parser (the workspace stays within
//! its approved dependency set, so no clap).

use std::collections::HashMap;
use std::fmt;

/// Error produced while parsing command-line arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

/// Parsed `--flag value` pairs plus the leading subcommand.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The first positional token (subcommand), if any.
    pub command: Option<String>,
    flags: HashMap<String, String>,
}

impl Args {
    /// Parses a token stream of the form `command --flag value …`.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] on a flag without a value, a value without a
    /// flag, or a repeated flag.
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut iter = tokens.into_iter().peekable();
        if let Some(first) = iter.peek() {
            if !first.starts_with("--") {
                args.command = iter.next();
            }
        }
        while let Some(token) = iter.next() {
            let Some(name) = token.strip_prefix("--") else {
                return Err(ArgError(format!(
                    "unexpected positional argument '{token}' (flags are --name value)"
                )));
            };
            let value = iter
                .next()
                .ok_or_else(|| ArgError(format!("flag --{name} is missing its value")))?;
            if value.starts_with("--") {
                return Err(ArgError(format!(
                    "flag --{name} is missing its value (found '{value}')"
                )));
            }
            if args.flags.insert(name.to_string(), value).is_some() {
                return Err(ArgError(format!("flag --{name} given twice")));
            }
        }
        Ok(args)
    }

    /// The raw value of `--name`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// A typed value of `--name`, or `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when the value does not parse as `T`.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ArgError(format!("--{name}: cannot parse '{raw}'"))),
        }
    }

    /// Flags that were provided but not consumed by the command — used
    /// to report typos.
    pub fn flag_names(&self) -> impl Iterator<Item = &str> {
        self.flags.keys().map(String::as_str)
    }

    /// Validates that every provided flag is in `known`, reporting the
    /// first unknown one.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] naming the unknown flag.
    pub fn reject_unknown(&self, known: &[&str]) -> Result<(), ArgError> {
        let mut names: Vec<&str> = self.flag_names().collect();
        names.sort_unstable();
        for name in names {
            if !known.contains(&name) {
                return Err(ArgError(format!(
                    "unknown flag --{name} (expected one of: {})",
                    known.join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let a = Args::parse(toks("simulate --rps 5000 --scheme protean")).unwrap();
        assert_eq!(a.command.as_deref(), Some("simulate"));
        assert_eq!(a.get("rps"), Some("5000"));
        assert_eq!(a.get_or("rps", 0.0).unwrap(), 5000.0);
        assert_eq!(a.get_or("missing", 7u32).unwrap(), 7);
    }

    #[test]
    fn flags_without_command() {
        let a = Args::parse(toks("--rps 100")).unwrap();
        assert_eq!(a.command, None);
        assert_eq!(a.get("rps"), Some("100"));
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Args::parse(toks("run --rps")).is_err());
        assert!(Args::parse(toks("run --rps --seed 1")).is_err());
    }

    #[test]
    fn duplicate_flag_is_an_error() {
        assert!(Args::parse(toks("run --x 1 --x 2")).is_err());
    }

    #[test]
    fn stray_positional_is_an_error() {
        assert!(Args::parse(toks("run --x 1 oops")).is_err());
    }

    #[test]
    fn unparseable_value_is_an_error() {
        let a = Args::parse(toks("run --rps banana")).unwrap();
        assert!(a.get_or("rps", 1.0).is_err());
    }

    #[test]
    fn unknown_flags_are_reported() {
        let a = Args::parse(toks("run --speling 1")).unwrap();
        let err = a.reject_unknown(&["spelling"]).unwrap_err();
        assert!(err.0.contains("--speling"));
        assert!(a.reject_unknown(&["speling"]).is_ok());
    }
}
