//! `protean-cli` — run PROTEAN simulations from the command line.
//!
//! ```text
//! protean-cli simulate --model resnet50 --scheme protean --rps 5000 \
//!     --duration 60 --trace wiki --strict-frac 0.5 --procurement hybrid \
//!     --availability low --workers 8 --seed 42 --slo-mult 3
//! protean-cli compare --model vgg19 --duration 60
//! protean-cli catalog
//! protean-cli geometries
//! protean-cli help
//! ```

mod args;
mod commands;

use args::Args;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // `scenario` takes a second positional (the action) the flag parser
    // would otherwise reject; peel both off before parsing flags.
    if raw.first().map(String::as_str) == Some("scenario") {
        let action = raw.get(1).filter(|a| !a.starts_with("--")).cloned();
        let rest = raw[1 + usize::from(action.is_some())..].to_vec();
        let outcome =
            Args::parse(rest).and_then(|args| commands::scenario(action.as_deref(), &args));
        if let Err(e) = outcome {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
        return;
    }
    let parsed = match Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `protean-cli help` for usage");
            std::process::exit(2);
        }
    };
    let outcome = match parsed.command.as_deref() {
        Some("simulate") => commands::simulate(&parsed),
        Some("compare") => commands::compare(&parsed),
        Some("replay") => commands::replay(&parsed),
        Some("gen-trace") => commands::gen_trace(&parsed),
        Some("catalog") => commands::catalog_cmd(&parsed),
        Some("geometries") => commands::geometries(&parsed),
        Some("help") | None => {
            print!("{}", commands::USAGE);
            Ok(())
        }
        Some(other) => Err(args::ArgError(format!(
            "unknown command '{other}' (simulate | compare | replay | gen-trace | catalog | geometries | scenario | help)"
        ))),
    };
    if let Err(e) = outcome {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}
