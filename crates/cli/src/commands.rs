//! The CLI subcommands.

use protean::ProteanBuilder;
use protean_baselines::Baseline;
use protean_cluster::{run_simulation_on, ClusterConfig, SchemeBuilder};
use protean_experiments::harness::{run_grid, thread_count_or, GridCell};
use protean_experiments::report::{scheme_table, table};
use protean_experiments::run_scheme;
use protean_gpu::{find_placement, Geometry};
use protean_metrics::record::Class;
use protean_models::{catalog, ModelId};
use protean_sim::SimDuration;
use protean_spot::{ProcurementPolicy, SpotAvailability};
use protean_trace::{Trace, TraceConfig, TraceShape};

use crate::args::{ArgError, Args};

/// Top-level usage text.
pub const USAGE: &str = "\
protean-cli — PROTEAN GPU-serverless simulator

USAGE:
  protean-cli simulate  [flags]  run one scheme and print its report
  protean-cli compare   [flags]  run all primary schemes side by side
  protean-cli replay    [flags]  replay a CSV trace file (--trace-file)
  protean-cli gen-trace [flags]  write a generated trace to --out
  protean-cli catalog            list the 22 workload models
  protean-cli geometries         list valid MIG geometries + placements
  protean-cli scenario list      list the scenario catalog (--dir)
  protean-cli scenario run       run scenarios with report cards
  protean-cli help               this text

FLAGS (simulate / compare):
  --model <name>          workload model, e.g. resnet50, vgg19, gpt2
                          (see `catalog`; default resnet50)
  --scheme <name>         simulate only: protean | oracle | molecule |
                          infless | naive | migonly | mpsmig | smart |
                          gpulet (default protean)
  --trace <kind>          wiki | twitter | constant (default wiki)
  --rps <f64>             arrival rate; default 5000 vision / 128 language
  --duration <secs>       trace length (default 60)
  --strict-frac <f64>     strict share of requests (default 0.5)
  --workers <n>           cluster size (default 8)
  --seed <u64>            root seed (default 42)
  --slo-mult <f64>        SLO = mult x 7g latency (default 3)
  --procurement <p>       ondemand | spot | hybrid (default ondemand)
  --threads <n>           compare only: worker threads for the scheme
                          grid (default PROTEAN_THREADS, then the
                          machine's available parallelism)
  --shards <n>            engine shards; 1 = sequential engine
                          (default 1; results are bit-identical;
                          0 is rejected — there is no zero-shard run)
  --shard-threads <n>     OS threads driving the shard phases
                          (default 1 = inline; 0 = auto, the machine's
                          available parallelism)
  --max-epoch-arrivals <n> arrival-run coarsening cap for the sharded
                          engine; 0 and 1 both mean one epoch per
                          arrival, no coarsening (default 64)
  --coalesce-expiries <bool> sharded engine: admit batch-window expiry
                          dispatches into coarsened runs (default true;
                          false = every expiry is its own epoch; both
                          settings are bit-identical)
  --availability <a>      high | medium | low (default high)
  --per-model <bool>      simulate only: also print a per-model table

FLAGS (replay):
  --trace-file <path>     CSV produced by gen-trace (arrival_us,model,strict)
  --scheme / --workers / --seed / --slo-mult as above

FLAGS (gen-trace):
  --out <path>            output CSV path
  --model / --trace / --rps / --duration / --strict-frac / --seed as above

FLAGS (scenario list / scenario run):
  --dir <path>            scenario catalog directory (default scenarios)
  --name <scenario>       run only the scenario with this name
  --smoke <bool>          scale request rates to 25% (never durations;
                          scripted evictions stay at absolute times)
  --out <path>            write one <name>.json report card per scenario
                          into this directory
";

/// Flags shared by `simulate` and `compare`.
const RUN_FLAGS: [&str; 15] = [
    "model",
    "scheme",
    "trace",
    "rps",
    "duration",
    "strict-frac",
    "workers",
    "seed",
    "slo-mult",
    "procurement",
    "threads",
    "shards",
    "shard-threads",
    "max-epoch-arrivals",
    "coalesce-expiries",
];
const RUN_FLAGS_EXT: [&str; 17] = [
    "model",
    "scheme",
    "trace",
    "rps",
    "duration",
    "strict-frac",
    "workers",
    "seed",
    "slo-mult",
    "procurement",
    "threads",
    "shards",
    "shard-threads",
    "max-epoch-arrivals",
    "coalesce-expiries",
    "availability",
    "per-model",
];

/// Resolves a model name like `resnet50` or `ResNet 50`.
pub fn parse_model(name: &str) -> Result<ModelId, ArgError> {
    let norm = |s: &str| {
        s.chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase()
    };
    let wanted = norm(name);
    ModelId::ALL
        .into_iter()
        .find(|m| norm(m.name()) == wanted)
        .ok_or_else(|| {
            ArgError(format!(
                "unknown model '{name}' (run `protean-cli catalog` for the list)"
            ))
        })
}

/// Resolves a scheme name.
pub fn parse_scheme(name: &str) -> Result<Box<dyn SchemeBuilder>, ArgError> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "protean" => Box::new(ProteanBuilder::paper()),
        "oracle" => Box::new(ProteanBuilder::oracle()),
        "molecule" => Box::new(Baseline::MoleculeBeta),
        "infless" | "llama" => Box::new(Baseline::InflessLlama),
        "naive" => Box::new(Baseline::NaiveSlicing),
        "migonly" => Box::new(Baseline::MigOnly),
        "mpsmig" => Box::new(Baseline::MpsMigEven),
        "smart" => Box::new(Baseline::SmartMpsMig),
        "gpulet" => Box::new(Baseline::Gpulet),
        other => {
            return Err(ArgError(format!(
                "unknown scheme '{other}' (protean | oracle | molecule | infless | naive | migonly | mpsmig | smart | gpulet)"
            )))
        }
    })
}

fn parse_procurement(name: &str) -> Result<ProcurementPolicy, ArgError> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "ondemand" | "on-demand" => ProcurementPolicy::OnDemandOnly,
        "spot" => ProcurementPolicy::SpotOnly,
        "hybrid" => ProcurementPolicy::Hybrid,
        other => {
            return Err(ArgError(format!(
                "unknown procurement '{other}' (ondemand | spot | hybrid)"
            )))
        }
    })
}

fn parse_availability(name: &str) -> Result<SpotAvailability, ArgError> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "high" => SpotAvailability::High,
        "medium" | "moderate" => SpotAvailability::Moderate,
        "low" => SpotAvailability::Low,
        other => {
            return Err(ArgError(format!(
                "unknown availability '{other}' (high | medium | low)"
            )))
        }
    })
}

fn build_run(args: &Args) -> Result<(ClusterConfig, TraceConfig), ArgError> {
    let model = parse_model(args.get("model").unwrap_or("resnet50"))?;
    let cat = catalog();
    let default_rps = match cat.profile(model).domain {
        protean_models::Domain::Vision => 5000.0,
        protean_models::Domain::Language => 128.0,
    };
    let rps: f64 = args.get_or("rps", default_rps)?;
    if rps <= 0.0 {
        return Err(ArgError("--rps must be positive".into()));
    }
    let duration: f64 = args.get_or("duration", 60.0)?;
    if duration <= 0.0 {
        return Err(ArgError("--duration must be positive".into()));
    }
    let strict_fraction: f64 = args.get_or("strict-frac", 0.5)?;
    if !(0.0..=1.0).contains(&strict_fraction) {
        return Err(ArgError("--strict-frac must be in [0, 1]".into()));
    }
    let shape = match args.get("trace").unwrap_or("wiki") {
        "wiki" => TraceShape::wiki(rps),
        "twitter" => TraceShape::twitter(rps),
        "constant" => TraceShape::constant(rps),
        other => {
            return Err(ArgError(format!(
                "unknown trace '{other}' (wiki | twitter | constant)"
            )))
        }
    };
    let mut be_pool = cat.opposite_pool(model);
    if be_pool.is_empty() {
        be_pool.push(model);
    }
    let trace = TraceConfig {
        shape,
        duration: SimDuration::from_secs(duration),
        strict_model: model,
        strict_fraction,
        be_pool,
        be_rotation_period: SimDuration::from_secs(20.0),
        batch_arrivals: true,
    };
    let mut config = ClusterConfig::paper_default();
    config.workers = args.get_or("workers", 8usize)?;
    if config.workers == 0 {
        return Err(ArgError("--workers must be at least 1".into()));
    }
    config.seed = args.get_or("seed", 42u64)?;
    config.slo_multiplier = args.get_or("slo-mult", 3.0)?;
    if config.slo_multiplier < 1.0 {
        return Err(ArgError("--slo-mult must be >= 1".into()));
    }
    config.procurement = parse_procurement(args.get("procurement").unwrap_or("ondemand"))?;
    config.availability = parse_availability(args.get("availability").unwrap_or("high"))?;
    config.shards = args.get_or("shards", 1usize)?;
    if config.shards == 0 {
        return Err(ArgError(
            "--shards must be at least 1 (1 = the sequential engine; there is no zero-shard run)"
                .into(),
        ));
    }
    // 0 = auto (the machine's available parallelism); any positive value
    // is an explicit thread budget including the coordinator.
    config.shard_threads = args.get_or("shard-threads", 1usize)?;
    // 0 and 1 both mean one epoch per arrival (no coarsening); the
    // engine clamps internally, so normalize here to keep the config
    // explicit about the semantics.
    config.max_epoch_arrivals = args.get_or("max-epoch-arrivals", 64u64)?.max(1);
    // Both settings are bit-identical (expiry admission only elides
    // provably-empty phases); the knob exists as the differential arm.
    config.coalesce_window_expiries = args.get_or("coalesce-expiries", true)?;
    Ok((config, trace))
}

/// `simulate`: one scheme, full report.
pub fn simulate(args: &Args) -> Result<(), ArgError> {
    args.reject_unknown(&RUN_FLAGS_EXT)?;
    let (config, trace) = build_run(args)?;
    let scheme = parse_scheme(args.get("scheme").unwrap_or("protean"))?;
    let row = run_scheme(&config, scheme.as_ref(), &trace);
    scheme_table(std::slice::from_ref(&row));
    println!();
    println!(
        "  cost ${:.2} ({} evictions) · GPU util {:.1}% · mem util {:.1}% · {} reconfigs · {} cold starts",
        row.cost_usd,
        row.evictions,
        row.gpu_util_pct,
        row.mem_util_pct,
        row.reconfigs,
        row.result.cold_starts,
    );
    if args.get_or("per-model", false)? {
        let cat = catalog();
        let mult = config.slo_multiplier;
        let slo = move |m: ModelId| cat.profile(m).slo_with_multiplier(mult);
        let rows: Vec<Vec<String>> = row
            .result
            .metrics
            .per_model_summaries(&slo)
            .into_iter()
            .map(|(model, s)| {
                vec![
                    model.to_string(),
                    s.total.to_string(),
                    s.strict.to_string(),
                    format!("{:.2}", s.slo_compliance * 100.0),
                    format!("{:.1}", s.strict_p99_ms.max(s.be_p99_ms)),
                ]
            })
            .collect();
        println!();
        table(&["model", "requests", "strict", "SLO%", "P99 ms"], &rows);
    }
    Ok(())
}

/// `compare`: the primary line-up side by side.
pub fn compare(args: &Args) -> Result<(), ArgError> {
    args.reject_unknown(&RUN_FLAGS[..RUN_FLAGS.len()])?;
    if args.get("scheme").is_some() {
        return Err(ArgError(
            "--scheme does not apply to `compare` (it runs all primary schemes)".into(),
        ));
    }
    let (config, trace) = build_run(args)?;
    let threads = thread_count_or(match args.get("threads") {
        None => None,
        Some(_) => Some(args.get_or("threads", 1usize)?),
    });
    let lineup = protean_experiments::schemes::primary();
    let cells: Vec<GridCell<'_>> = lineup
        .iter()
        .map(|s| GridCell::new(config.clone(), s.as_ref(), trace.clone()))
        .collect();
    let rows = run_grid(&cells, threads);
    scheme_table(&rows);
    Ok(())
}

/// `catalog`: the 22 workload models.
pub fn catalog_cmd(args: &Args) -> Result<(), ArgError> {
    args.reject_unknown(&[])?;
    let cat = catalog();
    let rows: Vec<Vec<String>> = cat
        .profiles()
        .iter()
        .map(|p| {
            vec![
                p.id.to_string(),
                format!("{:?}", p.domain),
                format!("{:?}", p.class),
                p.batch_size.to_string(),
                format!("{:.1}", p.mem_gb),
                format!("{:.0}", p.solo_7g.as_millis_f64()),
                format!("{:.2}", p.fbr),
            ]
        })
        .collect();
    table(
        &[
            "model", "domain", "class", "batch", "mem GB", "7g ms", "FBR",
        ],
        &rows,
    );
    Ok(())
}

/// `geometries`: every valid MIG geometry with a physical placement.
pub fn geometries(args: &Args) -> Result<(), ArgError> {
    args.reject_unknown(&[])?;
    let mut all = Geometry::enumerate_all();
    all.sort_by_key(|g| (std::cmp::Reverse(g.total_compute_sevenths()), g.len()));
    let rows: Vec<Vec<String>> = all
        .iter()
        .map(|g| {
            let placement = find_placement(g.slices())
                .expect("enumerated geometries are placeable")
                .iter()
                .map(|(p, s)| format!("{p}@{s}"))
                .collect::<Vec<_>>()
                .join(" ");
            vec![
                g.to_string(),
                format!("{}/7", g.total_compute_sevenths()),
                format!("{:.0} GB", g.total_mem_gb()),
                placement,
            ]
        })
        .collect();
    table(
        &["geometry", "compute", "memory", "placement (slice@start)"],
        &rows,
    );
    println!("\n  {} valid geometries", all.len());
    Ok(())
}

/// `replay`: run a scheme over a CSV trace file.
pub fn replay(args: &Args) -> Result<(), ArgError> {
    args.reject_unknown(&["trace-file", "scheme", "workers", "seed", "slo-mult"])?;
    let path = args
        .get("trace-file")
        .ok_or_else(|| ArgError("replay requires --trace-file <path>".into()))?;
    let trace = Trace::read_csv_file(path).map_err(|e| ArgError(e.to_string()))?;
    let mut config = ClusterConfig::paper_default();
    config.workers = args.get_or("workers", 8usize)?;
    if config.workers == 0 {
        return Err(ArgError("--workers must be at least 1".into()));
    }
    config.seed = args.get_or("seed", 42u64)?;
    config.slo_multiplier = args.get_or("slo-mult", 3.0)?;
    if config.slo_multiplier < 1.0 {
        return Err(ArgError("--slo-mult must be >= 1.0".into()));
    }
    let scheme = parse_scheme(args.get("scheme").unwrap_or("protean"))?;
    println!(
        "  replaying {} requests over {}",
        trace.requests().len(),
        trace.duration()
    );
    let result = run_simulation_on(&config, scheme.as_ref(), trace);
    let cat = catalog();
    let slo = protean_cluster::SimulationResult::slo_fn(&cat, config.slo_multiplier);
    println!(
        "  scheme {} · SLO {:.2}% · strict P99 {:.1} ms · BE P99 {:.1} ms · censored {}",
        result.scheme,
        result.metrics.slo_compliance(&slo) * 100.0,
        result
            .metrics
            .latency_percentile_ms(Class::Strict, 0.99)
            .unwrap_or(0.0),
        result
            .metrics
            .latency_percentile_ms(Class::BestEffort, 0.99)
            .unwrap_or(0.0),
        result.censored,
    );
    Ok(())
}

/// `gen-trace`: write a generated trace to a CSV file.
pub fn gen_trace(args: &Args) -> Result<(), ArgError> {
    args.reject_unknown(&[
        "out",
        "model",
        "trace",
        "rps",
        "duration",
        "strict-frac",
        "seed",
    ])?;
    let out = args
        .get("out")
        .ok_or_else(|| ArgError("gen-trace requires --out <path>".into()))?;
    let (_, trace_config) = build_run(args)?;
    let seed: u64 = args.get_or("seed", 42u64)?;
    let trace = trace_config.generate(&protean_sim::RngFactory::new(seed));
    let file =
        std::fs::File::create(out).map_err(|e| ArgError(format!("cannot create {out}: {e}")))?;
    trace
        .write_csv(std::io::BufWriter::new(file))
        .map_err(|e| ArgError(format!("write failed: {e}")))?;
    println!(
        "  wrote {} requests ({} strict) to {out}",
        trace.stats().total,
        trace.stats().strict
    );
    Ok(())
}

/// `scenario list` / `scenario run`: the declarative adversarial
/// scenario catalog (see `scenarios/` and the scenario DSL docs).
pub fn scenario(action: Option<&str>, args: &Args) -> Result<(), ArgError> {
    args.reject_unknown(&["dir", "name", "smoke", "out"])?;
    let dir = std::path::PathBuf::from(args.get("dir").unwrap_or("scenarios"));
    let files =
        protean_experiments::scenario::catalog_files(&dir).map_err(|e| ArgError(e.to_string()))?;
    if files.is_empty() {
        return Err(ArgError(format!(
            "no scenario files (*.toml) found in {}",
            dir.display()
        )));
    }
    let specs: Vec<(
        std::path::PathBuf,
        protean_experiments::scenario::ScenarioSpec,
    )> = files
        .iter()
        .map(|f| {
            protean_experiments::scenario::load_file(f)
                .map(|s| (f.clone(), s))
                .map_err(|e| ArgError(e.to_string()))
        })
        .collect::<Result<_, _>>()?;
    match action {
        Some("list") => {
            let rows: Vec<Vec<String>> = specs
                .iter()
                .map(|(f, s)| {
                    vec![
                        s.name.clone(),
                        f.file_name()
                            .unwrap_or_default()
                            .to_string_lossy()
                            .into_owned(),
                        s.description.clone(),
                    ]
                })
                .collect();
            table(&["scenario", "file", "description"], &rows);
            Ok(())
        }
        Some("run") => {
            let smoke: bool = args.get_or("smoke", false)?;
            let only = args.get("name");
            let out_dir = args.get("out").map(std::path::PathBuf::from);
            if let Some(d) = &out_dir {
                std::fs::create_dir_all(d)
                    .map_err(|e| ArgError(format!("cannot create {}: {e}", d.display())))?;
            }
            let selected: Vec<_> = specs
                .iter()
                .filter(|(_, s)| only.is_none_or(|n| s.name == n))
                .collect();
            if selected.is_empty() {
                return Err(ArgError(format!(
                    "no scenario named '{}' in {} (run `scenario list`)",
                    only.unwrap_or_default(),
                    dir.display()
                )));
            }
            let mut outcomes = Vec::with_capacity(selected.len());
            for (file, spec) in selected {
                let base = file.parent().unwrap_or(std::path::Path::new("."));
                let outcome = protean_experiments::scenario::run(spec, base, smoke)
                    .map_err(|e| ArgError(e.to_string()))?;
                if let Some(d) = &out_dir {
                    let path = d.join(format!("{}.json", spec.name));
                    std::fs::write(&path, outcome.to_json())
                        .map_err(|e| ArgError(format!("cannot write {}: {e}", path.display())))?;
                }
                outcomes.push(outcome);
            }
            let headers = protean_experiments::scenario::card_headers();
            let rows: Vec<Vec<String>> = outcomes.iter().map(|o| o.table_row()).collect();
            table(&headers, &rows);
            println!(
                "\n  {} scenario(s) green: sequential and sharded digests identical, audits clean{}",
                outcomes.len(),
                if smoke { " (smoke rates)" } else { "" }
            );
            Ok(())
        }
        Some(other) => Err(ArgError(format!(
            "unknown scenario action '{other}' (list | run)"
        ))),
        None => Err(ArgError("scenario requires an action: list | run".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_names_resolve_loosely() {
        assert_eq!(parse_model("resnet50").unwrap(), ModelId::ResNet50);
        assert_eq!(parse_model("ResNet 50").unwrap(), ModelId::ResNet50);
        assert_eq!(parse_model("GPT-2").unwrap(), ModelId::Gpt2);
        assert_eq!(parse_model("shufflenetv2").unwrap(), ModelId::ShuffleNetV2);
        assert!(parse_model("resnet5000").is_err());
    }

    #[test]
    fn schemes_resolve() {
        for s in [
            "protean", "oracle", "molecule", "infless", "naive", "migonly", "mpsmig", "smart",
            "gpulet",
        ] {
            assert!(parse_scheme(s).is_ok(), "{s}");
        }
        assert!(parse_scheme("unknown").is_err());
    }

    #[test]
    fn build_run_applies_defaults_and_validates() {
        let args = Args::parse(vec!["simulate".to_string()]).unwrap();
        let (config, trace) = build_run(&args).unwrap();
        assert_eq!(config.workers, 8);
        assert_eq!(trace.strict_model, ModelId::ResNet50);
        assert!(trace.batch_arrivals);

        let bad = Args::parse(
            "simulate --strict-frac 1.5"
                .split_whitespace()
                .map(String::from)
                .collect::<Vec<_>>(),
        )
        .unwrap();
        assert!(build_run(&bad).is_err());
    }

    #[test]
    fn language_models_default_to_their_rate() {
        let args = Args::parse(
            "simulate --model bert"
                .split_whitespace()
                .map(String::from)
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let (_, trace) = build_run(&args).unwrap();
        match trace.shape {
            TraceShape::WikiDiurnal { mean_rps, .. } => assert_eq!(mean_rps, 128.0),
            _ => panic!("expected wiki"),
        }
    }

    #[test]
    fn catalog_and_geometries_commands_run() {
        let none = Args::parse(Vec::new()).unwrap();
        catalog_cmd(&none).unwrap();
        geometries(&none).unwrap();
        // Unknown flags are rejected.
        let bad = Args::parse(
            "catalog --oops 1"
                .split_whitespace()
                .map(String::from)
                .collect::<Vec<_>>(),
        )
        .unwrap();
        assert!(catalog_cmd(&bad).is_err());
    }

    #[test]
    fn compare_rejects_scheme_flag_and_replay_requires_file() {
        let a = Args::parse(
            "compare --scheme protean"
                .split_whitespace()
                .map(String::from)
                .collect::<Vec<_>>(),
        )
        .unwrap();
        assert!(compare(&a).is_err());
        let r = Args::parse(vec!["replay".to_string()]).unwrap();
        assert!(replay(&r).is_err());
        let missing = Args::parse(
            "replay --trace-file /nonexistent/x.csv"
                .split_whitespace()
                .map(String::from)
                .collect::<Vec<_>>(),
        )
        .unwrap();
        assert!(replay(&missing).is_err());
        let g = Args::parse(vec!["gen-trace".to_string()]).unwrap();
        assert!(gen_trace(&g).is_err(), "gen-trace without --out must fail");
    }

    #[test]
    fn gen_trace_and_replay_round_trip() {
        let dir = std::env::temp_dir().join("protean_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let toks = format!(
            "gen-trace --model mobilenet --rps 400 --duration 5 --out {}",
            path.display()
        );
        let a = Args::parse(
            toks.split_whitespace()
                .map(String::from)
                .collect::<Vec<_>>(),
        )
        .unwrap();
        gen_trace(&a).unwrap();
        let toks = format!("replay --trace-file {} --workers 2", path.display());
        let a = Args::parse(
            toks.split_whitespace()
                .map(String::from)
                .collect::<Vec<_>>(),
        )
        .unwrap();
        replay(&a).unwrap();

        // A malformed trace comes back as an ArgError naming the file and
        // line — not a panic deep inside the reader.
        let bad = dir.join("bad.csv");
        std::fs::write(&bad, "arrival_us,model,strict\n100,resnet50\n").unwrap();
        let toks = format!("replay --trace-file {}", bad.display());
        let a = Args::parse(
            toks.split_whitespace()
                .map(String::from)
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let err = replay(&a).unwrap_err();
        assert!(err.0.contains("bad.csv"), "no path in '{}'", err.0);
        assert!(err.0.contains("line 2"), "no line in '{}'", err.0);

        // Nonsensical replay flags are rejected up front.
        let toks = format!("replay --trace-file {} --workers 0", path.display());
        let a = Args::parse(
            toks.split_whitespace()
                .map(String::from)
                .collect::<Vec<_>>(),
        )
        .unwrap();
        assert!(replay(&a).unwrap_err().0.contains("--workers"));
        let toks = format!("replay --trace-file {} --slo-mult 0.5", path.display());
        let a = Args::parse(
            toks.split_whitespace()
                .map(String::from)
                .collect::<Vec<_>>(),
        )
        .unwrap();
        assert!(replay(&a).unwrap_err().0.contains("--slo-mult"));
        std::fs::remove_file(path).ok();
        std::fs::remove_file(bad).ok();
    }

    #[test]
    fn sharding_flags_flow_into_the_config_and_validate() {
        let args = Args::parse(
            "simulate --shards 4 --shard-threads 2 --max-epoch-arrivals 16"
                .split_whitespace()
                .map(String::from)
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let (config, _) = build_run(&args).unwrap();
        assert_eq!(config.shards, 4);
        assert_eq!(config.shard_threads, 2);
        assert_eq!(config.max_epoch_arrivals, 16);

        // Defaults: sequential engine, coarsening cap at the paper
        // default, expiry coalescing on.
        let none = Args::parse(vec!["simulate".to_string()]).unwrap();
        let (config, _) = build_run(&none).unwrap();
        assert_eq!(config.shards, 1);
        assert_eq!(config.shard_threads, 1);
        assert_eq!(config.max_epoch_arrivals, 64);
        assert!(config.coalesce_window_expiries);

        // The expiry-coalescing differential arm is reachable from the
        // command line.
        let a = Args::parse(
            "simulate --coalesce-expiries false"
                .split_whitespace()
                .map(String::from)
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let (config, _) = build_run(&a).unwrap();
        assert!(!config.coalesce_window_expiries);

        // --shards 0 is nonsense (no zero-shard run) and the message
        // says so; --shard-threads 0 means auto; --max-epoch-arrivals 0
        // is normalized to the explicit per-arrival cap of 1.
        let a = Args::parse(
            "simulate --shards 0"
                .split_whitespace()
                .map(String::from)
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let err = build_run(&a).unwrap_err();
        assert!(err.0.contains("zero-shard"), "{err}");
        let a = Args::parse(
            "simulate --shard-threads 0 --max-epoch-arrivals 0"
                .split_whitespace()
                .map(String::from)
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let (config, _) = build_run(&a).unwrap();
        assert_eq!(config.shard_threads, 0, "0 = auto must be accepted");
        assert_eq!(config.max_epoch_arrivals, 1, "0 normalizes to per-arrival");
    }

    #[test]
    fn procurement_and_availability_parse() {
        assert_eq!(
            parse_procurement("hybrid").unwrap(),
            ProcurementPolicy::Hybrid
        );
        assert!(parse_procurement("free").is_err());
        assert_eq!(
            parse_availability("medium").unwrap(),
            SpotAvailability::Moderate
        );
        assert!(parse_availability("none").is_err());
    }
}
