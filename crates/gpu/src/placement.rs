//! Physical MIG placement on the A100's memory slices.
//!
//! MIG instances are not free-floating: the A100-40GB exposes 8 memory
//! slices and each profile may only *start* at specific slice indices
//! (NVIDIA's published placement table):
//!
//! | profile | memory slices occupied | allowed start indices |
//! |---|---|---|
//! | `1g.5gb` | 1 | 0–6 |
//! | `2g.10gb` | 2 | 0, 2, 4 |
//! | `3g.20gb` | 4 | 0, 4 |
//! | `4g.20gb` | 4 | 0 |
//! | `7g.40gb` | 8 | 0 |
//!
//! A multiset of profiles is a valid geometry only if every instance
//! can be placed at an allowed start without overlap. This rules out
//! combinations a pure compute-budget check would accept — e.g.
//! `(3g, 3g, 1g)` sums to 7/7 compute but needs 9 of the 8 memory
//! slices. Conversely, the flexible starts admit non-obvious packings:
//! `(3g, 2g, 2g)` is legal with the `3g` at slice 4 and the `2g`s at
//! slices 0 and 2.

use crate::profile::SliceProfile;

/// Number of memory slices on an A100-40GB.
pub const MEMORY_SLICES: usize = 8;

impl SliceProfile {
    /// Memory slices one instance of this profile occupies.
    pub const fn memory_slices(self) -> usize {
        match self {
            SliceProfile::G1 => 1,
            SliceProfile::G2 => 2,
            SliceProfile::G3 => 4,
            SliceProfile::G4 => 4,
            SliceProfile::G7 => 8,
        }
    }

    /// The slice indices an instance may start at (NVIDIA placement
    /// table).
    pub const fn allowed_starts(self) -> &'static [usize] {
        match self {
            SliceProfile::G1 => &[0, 1, 2, 3, 4, 5, 6],
            SliceProfile::G2 => &[0, 2, 4],
            SliceProfile::G3 => &[0, 4],
            SliceProfile::G4 => &[0],
            SliceProfile::G7 => &[0],
        }
    }
}

/// Finds a physical placement (start slice per instance) for the given
/// profiles, or `None` if no legal non-overlapping assignment exists.
/// Profiles are placed largest-first (fewest start options first),
/// which keeps the backtracking search tiny.
pub fn find_placement(profiles: &[SliceProfile]) -> Option<Vec<(SliceProfile, usize)>> {
    let mut ordered: Vec<SliceProfile> = profiles.to_vec();
    ordered.sort_by_key(|p| {
        (
            p.allowed_starts().len(),
            std::cmp::Reverse(p.memory_slices()),
        )
    });
    let mut occupied = [false; MEMORY_SLICES];
    let mut placement = Vec::with_capacity(ordered.len());
    if place_rec(&ordered, 0, &mut occupied, &mut placement) {
        Some(placement)
    } else {
        None
    }
}

fn place_rec(
    profiles: &[SliceProfile],
    idx: usize,
    occupied: &mut [bool; MEMORY_SLICES],
    placement: &mut Vec<(SliceProfile, usize)>,
) -> bool {
    let Some(&p) = profiles.get(idx) else {
        return true;
    };
    let width = p.memory_slices();
    for &start in p.allowed_starts() {
        if start + width > MEMORY_SLICES {
            continue;
        }
        if occupied[start..start + width].iter().any(|&o| o) {
            continue;
        }
        occupied[start..start + width]
            .iter_mut()
            .for_each(|o| *o = true);
        placement.push((p, start));
        if place_rec(profiles, idx + 1, occupied, placement) {
            return true;
        }
        placement.pop();
        occupied[start..start + width]
            .iter_mut()
            .for_each(|o| *o = false);
    }
    false
}

/// `true` if the profiles admit a legal physical placement.
pub fn is_placeable(profiles: &[SliceProfile]) -> bool {
    find_placement(profiles).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn profiles(s: &str) -> Vec<SliceProfile> {
        s.split(',')
            .map(|t| match t.trim() {
                "1g" => SliceProfile::G1,
                "2g" => SliceProfile::G2,
                "3g" => SliceProfile::G3,
                "4g" => SliceProfile::G4,
                "7g" => SliceProfile::G7,
                other => panic!("bad profile {other}"),
            })
            .collect()
    }

    #[test]
    fn paper_geometries_are_placeable() {
        for g in [
            "7g",
            "4g,3g",
            "4g,2g,1g",
            "3g,3g",
            "2g,2g,2g,1g",
            "1g,1g,1g,1g,1g,1g,1g",
        ] {
            assert!(is_placeable(&profiles(g)), "{g} should be placeable");
        }
    }

    #[test]
    fn slot_constrained_combinations_are_rejected() {
        // 3g + 3g + 1g: compute fits (7/7) but the 3g instances consume
        // all 8 memory slices (4 each) leaving none for the 1g.
        assert!(!is_placeable(&profiles("3g,3g,1g")));
        // 4g + 3g + 1g: again 9 memory slices.
        assert!(!is_placeable(&profiles("4g,3g,1g")));
        // Two 4g instances can never coexist (both must start at 0).
        assert!(!is_placeable(&profiles("4g,4g")));
        // 7g excludes everything else.
        assert!(!is_placeable(&profiles("7g,1g")));
    }

    #[test]
    fn flexible_starts_allow_nontrivial_packings() {
        // 3g at slice 4 leaves slices 0-3 for two 2g (starts 0 and 2):
        // placeable even though a naive left-to-right packing fails.
        assert!(is_placeable(&profiles("3g,2g,2g")));
        // Similarly 3g at 4 + 2g at 0 + 1g at 2 and 3.
        assert!(is_placeable(&profiles("3g,2g,1g,1g")));
        // 3g at 4 + four 1g at 0-3.
        assert!(is_placeable(&profiles("3g,1g,1g,1g,1g")));
    }

    #[test]
    fn placement_returns_legal_starts() {
        let placement = find_placement(&profiles("4g,2g,1g")).unwrap();
        let mut occupied = [false; MEMORY_SLICES];
        for (p, start) in &placement {
            assert!(p.allowed_starts().contains(start), "{p} at {start}");
            for (s, slot) in occupied
                .iter_mut()
                .enumerate()
                .skip(*start)
                .take(p.memory_slices())
            {
                assert!(!*slot, "overlap at slice {s}");
                *slot = true;
            }
        }
    }

    #[test]
    fn memory_slice_widths_are_consistent_with_capacity() {
        // 5 GB per memory slice on the A100-40GB.
        for p in SliceProfile::ALL {
            assert_eq!(p.mem_gb(), 5.0 * p.memory_slices() as f64, "{p}");
        }
    }

    proptest! {
        /// Placeability implies the compute and memory-slice budgets
        /// hold (the converse is false — that is the point).
        #[test]
        fn prop_placeable_implies_budgets(
            g4 in 0usize..=1, g3 in 0usize..=2, g2 in 0usize..=3, g1 in 0usize..=7,
        ) {
            prop_assume!(g4 + g3 + g2 + g1 > 0);
            let mut v = Vec::new();
            v.extend(std::iter::repeat_n(SliceProfile::G4, g4));
            v.extend(std::iter::repeat_n(SliceProfile::G3, g3));
            v.extend(std::iter::repeat_n(SliceProfile::G2, g2));
            v.extend(std::iter::repeat_n(SliceProfile::G1, g1));
            if is_placeable(&v) {
                let compute: u32 = v.iter().map(|p| p.compute_sevenths()).sum();
                let slices: usize = v.iter().map(|p| p.memory_slices()).sum();
                prop_assert!(compute <= 7);
                prop_assert!(slices <= MEMORY_SLICES);
            }
        }

        /// find_placement and is_placeable agree, and any returned
        /// placement is non-overlapping and start-legal.
        #[test]
        fn prop_placement_is_sound(
            g3 in 0usize..=2, g2 in 0usize..=3, g1 in 0usize..=7,
        ) {
            let mut v = Vec::new();
            v.extend(std::iter::repeat_n(SliceProfile::G3, g3));
            v.extend(std::iter::repeat_n(SliceProfile::G2, g2));
            v.extend(std::iter::repeat_n(SliceProfile::G1, g1));
            match find_placement(&v) {
                None => prop_assert!(!is_placeable(&v)),
                Some(placement) => {
                    let mut occupied = [false; MEMORY_SLICES];
                    for (p, start) in placement {
                        prop_assert!(p.allowed_starts().contains(&start));
                        for slot in occupied.iter_mut().skip(start).take(p.memory_slices()) {
                            prop_assert!(!*slot);
                            *slot = true;
                        }
                    }
                }
            }
        }
    }
}
