//! Simulated NVIDIA A100 GPU with MIG partitioning and MPS spatial
//! sharing.
//!
//! The paper evaluates PROTEAN on real 8×A100 hardware. This crate is the
//! synthetic substitute: a discrete-event model of one A100 that exposes
//! exactly the knobs the paper's policies manipulate —
//!
//! * **MIG**: the GPU can be partitioned into *slices* according to a
//!   [`Geometry`] built from the Table 2 [`SliceProfile`]s (`1g.5gb` …
//!   `7g.40gb`). Reconfiguring requires all slices to be idle and takes
//!   ~2 s (the paper's reported reconfiguration latency).
//! * **MPS**: jobs placed on the same slice space-share it. Their
//!   execution time follows the paper's interference model (Eq. 1):
//!   `T_k = Solo_k × max(Σ_j FBR_j, 1)` where the sum ranges over all
//!   co-located jobs and FBRs are expressed relative to the *slice's*
//!   memory bandwidth.
//! * **Time sharing**: a slice can instead run jobs one-at-a-time FIFO
//!   (how `Molecule (beta)` and `MIG Only` serve batches).
//!
//! Execution is modelled as processor sharing with a dynamically changing
//! rate: whenever slice membership changes, every resident job's progress
//! is advanced at the old slowdown factor and the slice hands back its
//! *earliest* re-projected completion ([`Slice::next_completion`]) — the
//! caller arms a single completion event per slice and replaces it on
//! the next membership change. Events carry a generation counter so
//! stale completions can be discarded.
//!
//! # Example
//!
//! ```
//! use protean_gpu::{Geometry, SliceProfile, Slice, SharingMode, JobSpec, JobId};
//! use protean_sim::{SimTime, SimDuration};
//!
//! let geom = Geometry::new(vec![SliceProfile::G4, SliceProfile::G3])?;
//! assert_eq!(geom.total_compute_sevenths(), 7);
//!
//! let mut slice = Slice::new(SliceProfile::G4, SharingMode::Mps, SimTime::ZERO);
//! let job = JobSpec {
//!     id: JobId(1),
//!     solo: SimDuration::from_millis(100.0),
//!     fbr: 0.3,
//!     mem_gb: 6.0,
//! };
//! let next = slice.admit(SimTime::ZERO, job).unwrap();
//! // Alone on the slice: finishes after its solo time.
//! assert_eq!(next.job, JobId(1));
//! assert_eq!(next.at, SimTime::ZERO + SimDuration::from_millis(100.0));
//! # Ok::<(), protean_gpu::GeometryError>(())
//! ```

pub mod device;
pub mod interference;
pub mod placement;
pub mod profile;
pub mod slice;

pub use device::{Gpu, GpuId, GpuState, ReconfigError};
pub use interference::{
    execution_time, slowdown_factor, slowdown_factor_excluding, slowdown_factor_iter,
    slowdown_factor_substituting,
};
pub use placement::{find_placement, is_placeable, MEMORY_SLICES};
pub use profile::{Geometry, GeometryError, SliceProfile};
pub use slice::{AdmitError, Completion, JobId, JobSpec, SharingMode, Slice};
