//! MIG slice profiles and geometries (paper Table 2).

use std::fmt;

/// A MIG instance profile on an A100-40GB, as listed in Table 2 of the
/// paper.
///
/// The short names follow the paper's convention: `7g` is the whole GPU,
/// `4g` has 4/7 of the SMs and 20 GB of memory, and so on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SliceProfile {
    /// `1g.5gb` — 1/7 compute, 5 GB, 1/8 cache+bandwidth.
    G1,
    /// `2g.10gb` — 2/7 compute, 10 GB, 2/8 cache+bandwidth.
    G2,
    /// `3g.20gb` — 3/7 compute, 20 GB, 4/8 cache+bandwidth.
    G3,
    /// `4g.20gb` — 4/7 compute, 20 GB, 4/8 cache+bandwidth.
    G4,
    /// `7g.40gb` — the full GPU.
    G7,
}

impl SliceProfile {
    /// All profiles in ascending order of resources.
    pub const ALL: [SliceProfile; 5] = [
        SliceProfile::G1,
        SliceProfile::G2,
        SliceProfile::G3,
        SliceProfile::G4,
        SliceProfile::G7,
    ];

    /// Compute share in sevenths of the GPU's SMs.
    pub const fn compute_sevenths(self) -> u32 {
        match self {
            SliceProfile::G1 => 1,
            SliceProfile::G2 => 2,
            SliceProfile::G3 => 3,
            SliceProfile::G4 => 4,
            SliceProfile::G7 => 7,
        }
    }

    /// Compute share as a fraction of the whole GPU.
    pub fn compute_fraction(self) -> f64 {
        f64::from(self.compute_sevenths()) / 7.0
    }

    /// Dedicated memory capacity in GB (Table 2).
    pub const fn mem_gb(self) -> f64 {
        match self {
            SliceProfile::G1 => 5.0,
            SliceProfile::G2 => 10.0,
            SliceProfile::G3 => 20.0,
            SliceProfile::G4 => 20.0,
            SliceProfile::G7 => 40.0,
        }
    }

    /// Cache (and, on MIG, memory-bandwidth) share in eighths (Table 2).
    pub const fn cache_eighths(self) -> u32 {
        match self {
            SliceProfile::G1 => 1,
            SliceProfile::G2 => 2,
            SliceProfile::G3 => 4,
            SliceProfile::G4 => 4,
            SliceProfile::G7 => 8,
        }
    }

    /// Memory-bandwidth share as a fraction of the whole GPU. MIG
    /// isolates bandwidth per slice in proportion to the memory/cache
    /// partition.
    pub fn bandwidth_fraction(self) -> f64 {
        f64::from(self.cache_eighths()) / 8.0
    }

    /// Maximum number of instances of this profile on one GPU (Table 2).
    pub const fn max_count(self) -> usize {
        match self {
            SliceProfile::G1 => 7,
            SliceProfile::G2 => 3,
            SliceProfile::G3 => 2,
            SliceProfile::G4 => 1,
            SliceProfile::G7 => 1,
        }
    }

    /// The paper's short name (`"1g"`, …, `"7g"`).
    pub const fn short_name(self) -> &'static str {
        match self {
            SliceProfile::G1 => "1g",
            SliceProfile::G2 => "2g",
            SliceProfile::G3 => "3g",
            SliceProfile::G4 => "4g",
            SliceProfile::G7 => "7g",
        }
    }

    /// The full NVIDIA profile name (`"1g.5gb"`, …, `"7g.40gb"`).
    pub const fn full_name(self) -> &'static str {
        match self {
            SliceProfile::G1 => "1g.5gb",
            SliceProfile::G2 => "2g.10gb",
            SliceProfile::G3 => "3g.20gb",
            SliceProfile::G4 => "4g.20gb",
            SliceProfile::G7 => "7g.40gb",
        }
    }
}

impl fmt::Display for SliceProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Error returned when a slice combination is not a valid MIG geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeometryError {
    /// The geometry contains no slices.
    Empty,
    /// The combined compute share exceeds the GPU's 7 sevenths.
    ComputeOverflow {
        /// Total compute share requested, in sevenths.
        sevenths: u32,
    },
    /// A profile appears more times than MIG allows (Table 2 max count).
    TooMany {
        /// The over-subscribed profile.
        profile: SliceProfile,
        /// How many instances were requested.
        count: usize,
    },
    /// `7g` must be the only slice on the GPU.
    FullGpuNotAlone,
    /// The combination fits the compute budget but admits no legal
    /// physical placement on the A100's memory slices (see
    /// [`crate::placement`]).
    Unplaceable,
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::Empty => write!(f, "geometry has no slices"),
            GeometryError::ComputeOverflow { sevenths } => {
                write!(f, "geometry needs {sevenths}/7 compute units")
            }
            GeometryError::TooMany { profile, count } => write!(
                f,
                "{count} instances of {profile} exceed the maximum of {}",
                profile.max_count()
            ),
            GeometryError::FullGpuNotAlone => {
                write!(f, "7g cannot be combined with other slices")
            }
            GeometryError::Unplaceable => {
                write!(f, "no legal placement on the GPU's memory slices")
            }
        }
    }
}

impl std::error::Error for GeometryError {}

/// A validated MIG configuration: the multiset of slice profiles the GPU
/// is partitioned into. The paper calls this a *geometry*.
///
/// Slices are stored in descending order of resources, so index 0 is
/// always the largest slice.
///
/// # Example
///
/// ```
/// use protean_gpu::{Geometry, SliceProfile};
/// let g = Geometry::new(vec![SliceProfile::G1, SliceProfile::G4, SliceProfile::G2])?;
/// assert_eq!(g.slices()[0], SliceProfile::G4);
/// assert_eq!(g.to_string(), "(4g, 2g, 1g)");
/// # Ok::<(), protean_gpu::GeometryError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Geometry {
    slices: Vec<SliceProfile>,
}

impl Geometry {
    /// Validates and creates a geometry from the given profiles.
    ///
    /// Validation enforces the Table 2 rules — at least one slice,
    /// per-profile instance limits, total compute ≤ 7/7, `7g` only as
    /// the sole slice — **and** the physical placement rules: the
    /// combination must admit a legal, non-overlapping assignment to
    /// the A100's 8 memory slices at NVIDIA's allowed start indices
    /// (see [`crate::placement`]).
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] describing the violated rule.
    pub fn new(mut slices: Vec<SliceProfile>) -> Result<Self, GeometryError> {
        if slices.is_empty() {
            return Err(GeometryError::Empty);
        }
        for &p in &SliceProfile::ALL {
            let count = slices.iter().filter(|&&s| s == p).count();
            if count > p.max_count() {
                return Err(GeometryError::TooMany { profile: p, count });
            }
        }
        if slices.contains(&SliceProfile::G7) && slices.len() > 1 {
            return Err(GeometryError::FullGpuNotAlone);
        }
        let sevenths: u32 = slices.iter().map(|s| s.compute_sevenths()).sum();
        if sevenths > 7 {
            return Err(GeometryError::ComputeOverflow { sevenths });
        }
        if !crate::placement::is_placeable(&slices) {
            return Err(GeometryError::Unplaceable);
        }
        slices.sort_by(|a, b| b.cmp(a));
        Ok(Geometry { slices })
    }

    /// The whole-GPU geometry `(7g)`.
    pub fn full() -> Self {
        Geometry {
            slices: vec![SliceProfile::G7],
        }
    }

    /// The `(4g, 3g)` geometry the paper uses as its robust fallback.
    pub fn g4_g3() -> Self {
        Geometry {
            slices: vec![SliceProfile::G4, SliceProfile::G3],
        }
    }

    /// The `(4g, 2g, 1g)` geometry PROTEAN starts from (Fig. 7).
    pub fn g4_g2_g1() -> Self {
        Geometry {
            slices: vec![SliceProfile::G4, SliceProfile::G2, SliceProfile::G1],
        }
    }

    /// The `(3g, 3g)` even split.
    pub fn g3_g3() -> Self {
        Geometry {
            slices: vec![SliceProfile::G3, SliceProfile::G3],
        }
    }

    /// The slices in descending order of resources.
    pub fn slices(&self) -> &[SliceProfile] {
        &self.slices
    }

    /// Number of slices.
    pub fn len(&self) -> usize {
        self.slices.len()
    }

    /// `true` if the geometry has no slices (never true for a validated
    /// geometry; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }

    /// Total compute share in sevenths.
    pub fn total_compute_sevenths(&self) -> u32 {
        self.slices.iter().map(|s| s.compute_sevenths()).sum()
    }

    /// Total slice memory in GB.
    pub fn total_mem_gb(&self) -> f64 {
        self.slices.iter().map(|s| s.mem_gb()).sum()
    }

    /// The largest slice.
    pub fn largest(&self) -> SliceProfile {
        self.slices[0]
    }

    /// Enumerates every valid geometry (by this crate's rules) that fully
    /// or partially uses the GPU, without the trivial duplicates that
    /// differ only in slice order. Used by the `Oracle` baseline's
    /// exhaustive sweep.
    pub fn enumerate_all() -> Vec<Geometry> {
        let mut out = vec![Geometry::full()];
        // counts: (g4, g3, g2, g1) with compute 4a+3b+2c+d <= 7.
        for g4 in 0..=1u32 {
            for g3 in 0..=2u32 {
                for g2 in 0..=3u32 {
                    for g1 in 0..=7u32 {
                        let total = 4 * g4 + 3 * g3 + 2 * g2 + g1;
                        if total == 0 || total > 7 {
                            continue;
                        }
                        let mut v = Vec::new();
                        v.extend(std::iter::repeat_n(SliceProfile::G4, g4 as usize));
                        v.extend(std::iter::repeat_n(SliceProfile::G3, g3 as usize));
                        v.extend(std::iter::repeat_n(SliceProfile::G2, g2 as usize));
                        v.extend(std::iter::repeat_n(SliceProfile::G1, g1 as usize));
                        // Combinations within the compute budget may
                        // still be physically unplaceable.
                        if let Ok(g) = Geometry::new(v) {
                            out.push(g);
                        }
                    }
                }
            }
        }
        out
    }
}

impl fmt::Display for Geometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, s) in self.slices.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn table2_values() {
        assert_eq!(SliceProfile::G7.mem_gb(), 40.0);
        assert_eq!(SliceProfile::G4.mem_gb(), 20.0);
        assert_eq!(SliceProfile::G3.mem_gb(), 20.0);
        assert_eq!(SliceProfile::G2.mem_gb(), 10.0);
        assert_eq!(SliceProfile::G1.mem_gb(), 5.0);
        assert_eq!(SliceProfile::G4.bandwidth_fraction(), 0.5);
        assert_eq!(SliceProfile::G3.bandwidth_fraction(), 0.5);
        assert_eq!(SliceProfile::G1.max_count(), 7);
        assert_eq!(SliceProfile::G3.max_count(), 2);
        assert_eq!(SliceProfile::G7.full_name(), "7g.40gb");
    }

    #[test]
    fn paper_geometries_are_valid() {
        for g in [
            Geometry::full(),
            Geometry::g4_g3(),
            Geometry::g4_g2_g1(),
            Geometry::g3_g3(),
        ] {
            assert!(g.total_compute_sevenths() <= 7, "{g}");
        }
        assert!(Geometry::new(vec![SliceProfile::G1; 7]).is_ok());
        assert!(Geometry::new(vec![
            SliceProfile::G2,
            SliceProfile::G2,
            SliceProfile::G2,
            SliceProfile::G1
        ])
        .is_ok());
    }

    #[test]
    fn invalid_geometries_rejected() {
        assert_eq!(Geometry::new(vec![]), Err(GeometryError::Empty));
        assert_eq!(
            Geometry::new(vec![SliceProfile::G4, SliceProfile::G4]),
            Err(GeometryError::TooMany {
                profile: SliceProfile::G4,
                count: 2
            })
        );
        assert_eq!(
            Geometry::new(vec![SliceProfile::G7, SliceProfile::G1]),
            Err(GeometryError::FullGpuNotAlone)
        );
        assert_eq!(
            Geometry::new(vec![SliceProfile::G3, SliceProfile::G3, SliceProfile::G2]),
            Err(GeometryError::ComputeOverflow { sevenths: 8 })
        );
        // Fits the compute budget (7/7) but needs 9 of the 8 memory
        // slices — the old compute-only rule would wrongly accept this
        // 45 GB configuration.
        assert_eq!(
            Geometry::new(vec![SliceProfile::G3, SliceProfile::G3, SliceProfile::G1]),
            Err(GeometryError::Unplaceable)
        );
    }

    #[test]
    fn slices_sorted_descending() {
        let g = Geometry::new(vec![SliceProfile::G1, SliceProfile::G3, SliceProfile::G2]).unwrap();
        assert_eq!(
            g.slices(),
            &[SliceProfile::G3, SliceProfile::G2, SliceProfile::G1]
        );
        assert_eq!(g.largest(), SliceProfile::G3);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Geometry::g4_g3().to_string(), "(4g, 3g)");
        assert_eq!(Geometry::g4_g2_g1().to_string(), "(4g, 2g, 1g)");
    }

    #[test]
    fn enumerate_all_is_valid_and_deduplicated() {
        let all = Geometry::enumerate_all();
        assert!(
            all.len() > 20,
            "expected many geometries, got {}",
            all.len()
        );
        for g in &all {
            assert!(g.total_compute_sevenths() <= 7);
        }
        let mut seen = std::collections::HashSet::new();
        for g in &all {
            assert!(seen.insert(g.clone()), "duplicate geometry {g}");
        }
        assert!(all.contains(&Geometry::g4_g3()));
        assert!(all.contains(&Geometry::full()));
    }

    proptest! {
        /// Any multiset of non-7g profiles within per-profile limits is
        /// valid iff its compute total fits in 7 sevenths.
        #[test]
        fn prop_validation_matches_compute_budget(
            g4 in 0usize..=1, g3 in 0usize..=2, g2 in 0usize..=3, g1 in 0usize..=7,
        ) {
            prop_assume!(g4 + g3 + g2 + g1 > 0);
            let mut v = Vec::new();
            v.extend(std::iter::repeat_n(SliceProfile::G4, g4));
            v.extend(std::iter::repeat_n(SliceProfile::G3, g3));
            v.extend(std::iter::repeat_n(SliceProfile::G2, g2));
            v.extend(std::iter::repeat_n(SliceProfile::G1, g1));
            let total = 4*g4 + 3*g3 + 2*g2 + g1;
            let placeable = crate::placement::is_placeable(&v);
            let result = Geometry::new(v);
            if total <= 7 && placeable {
                prop_assert!(result.is_ok());
            } else {
                prop_assert!(result.is_err());
            }
        }
    }
}
