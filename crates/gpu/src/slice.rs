//! A single MIG slice executing jobs under MPS spatial sharing or FIFO
//! time sharing.
//!
//! MPS execution is modelled as processor sharing with a global slowdown
//! factor (Eq. 1): all resident jobs progress at rate `1 / slowdown`,
//! and the slowdown changes whenever slice membership changes. On each
//! membership change the slice hands back its **earliest** projected
//! completion ([`Slice::next_completion`]), tagged with a generation
//! counter so stale events can be discarded: the caller keeps at most
//! one live completion event per slice and re-arms it whenever
//! membership changes, instead of re-projecting every resident job.
//! [`Slice::project_completions`] still exposes the full projection set
//! for diagnostics and tests.
//!
//! The slice also maintains its Σ FBR-share and Σ memory incrementally:
//! admission appends to the running sums (bit-identical to a fresh
//! left-fold) and departure recomputes them from scratch (floating-point
//! subtraction would not be), so `fbr_load`/`advance` never re-sum the
//! resident set.

use std::collections::VecDeque;
use std::fmt;

use protean_sim::{Accumulator, SimDuration, SimTime};

use crate::interference::slowdown_factor_iter;
use crate::profile::SliceProfile;

/// Identifier of a job (a request batch) running on a GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// Everything the GPU needs to know to execute one job on one slice.
///
/// The caller (the cluster) pre-resolves workload-specific quantities:
/// `solo` is the job's isolated execution time *on this slice* (i.e.
/// `Solo_7g × RDF(slice)`), and `fbr` is the job's Fractional Bandwidth
/// Requirement relative to the *whole GPU's* bandwidth — the slice scales
/// it to its own bandwidth share internally.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobSpec {
    /// Unique id of the job.
    pub id: JobId,
    /// Isolated execution time on this slice.
    pub solo: SimDuration,
    /// Fractional Bandwidth Requirement relative to the full GPU.
    pub fbr: f64,
    /// GPU memory occupied while the job runs, in GB.
    pub mem_gb: f64,
}

/// How jobs on the slice share its resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SharingMode {
    /// NVIDIA MPS: jobs run concurrently, interfering per Eq. 1.
    Mps,
    /// One job at a time; the slice reports [`AdmitError::Busy`] while
    /// occupied (the caller queues).
    TimeShared,
}

/// A projected job completion, tagged with the slice generation at which
/// the projection was made. A completion is only valid while the slice's
/// [`Slice::generation`] still equals `generation`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The job that will complete.
    pub job: JobId,
    /// Projected completion instant.
    pub at: SimTime,
    /// Slice generation the projection belongs to.
    pub generation: u64,
}

/// Error returned by [`Slice::admit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmitError {
    /// The job's memory footprint does not fit in the slice's free memory.
    OutOfMemory {
        /// Free memory at admission time, in GB.
        available_gb: f64,
        /// The job's requested memory, in GB.
        requested_gb: f64,
    },
    /// Time-shared slice already has a running job.
    Busy,
    /// A job with the same id is already resident.
    DuplicateJob(JobId),
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::OutOfMemory {
                available_gb,
                requested_gb,
            } => write!(
                f,
                "job needs {requested_gb} GB but only {available_gb} GB free"
            ),
            AdmitError::Busy => write!(f, "time-shared slice is busy"),
            AdmitError::DuplicateJob(id) => write!(f, "{id} is already resident"),
        }
    }
}

impl std::error::Error for AdmitError {}

/// Error returned by [`Slice::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinishError {
    /// No resident job has the given id.
    UnknownJob(JobId),
    /// The job exists but still has work remaining (the completion event
    /// that triggered this call was stale).
    NotDone(JobId),
}

impl fmt::Display for FinishError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FinishError::UnknownJob(id) => write!(f, "{id} is not resident"),
            FinishError::NotDone(id) => write!(f, "{id} has work remaining"),
        }
    }
}

impl std::error::Error for FinishError {}

/// Information about a job that has just finished on the slice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FinishedJob {
    /// The job's spec as admitted.
    pub spec: JobSpec,
    /// When the job was admitted.
    pub admitted_at: SimTime,
}

#[derive(Debug, Clone)]
struct Running {
    spec: JobSpec,
    admitted_at: SimTime,
    /// Remaining solo-equivalent work, in (fractional) microseconds.
    remaining_us: f64,
}

/// Tolerance (in solo-microseconds) under which a job counts as done;
/// absorbs the rounding introduced by projecting completions onto the
/// integer-microsecond clock.
const DONE_EPSILON_US: f64 = 1e-3;

/// Additional slowdown per *extra* co-located MPS process, beyond the
/// Eq. 1 bandwidth term: MPS processes share L2/caches (Fig. 1a), so
/// every additional co-runner thrashes them a little even below
/// bandwidth saturation. MIG isolation avoids this across slices, which
/// is exactly the super-additive penalty the paper's motivational study
/// attributes to "MPS Only" consolidation.
pub const MPS_CACHE_PENALTY: f64 = 0.1;

/// The super-additive MPS cache-thrashing term: zero for a lone
/// process, [`MPS_CACHE_PENALTY`] per additional co-runner.
fn cache_penalty(co_located: usize) -> f64 {
    MPS_CACHE_PENALTY * co_located.saturating_sub(1) as f64
}

/// One MIG slice: the unit PROTEAN schedules jobs onto.
///
/// See the [crate docs](crate) for the execution model and an example.
#[derive(Debug, Clone)]
pub struct Slice {
    profile: SliceProfile,
    mode: SharingMode,
    running: Vec<Running>,
    last_advance: SimTime,
    generation: u64,
    busy: Accumulator,
    mem: Accumulator,
    completed_jobs: u64,
    busy_started: SimTime,
    /// Cached Σ `fbr_share` over resident jobs; equals the left-fold sum
    /// of [`Slice::fbr_share`] in admission order at all times.
    fbr_share_sum: f64,
    /// Cached Σ `mem_gb` over resident jobs, same discipline.
    mem_gb_sum: f64,
}

impl Slice {
    /// Creates an idle slice observing metrics from `now`.
    pub fn new(profile: SliceProfile, mode: SharingMode, now: SimTime) -> Self {
        Slice {
            profile,
            mode,
            running: Vec::new(),
            last_advance: now,
            generation: 0,
            busy: Accumulator::new(now),
            mem: Accumulator::new(now),
            completed_jobs: 0,
            busy_started: now,
            fbr_share_sum: 0.0,
            mem_gb_sum: 0.0,
        }
    }

    /// The slice's MIG profile.
    pub fn profile(&self) -> SliceProfile {
        self.profile
    }

    /// The slice's sharing mode.
    pub fn mode(&self) -> SharingMode {
        self.mode
    }

    /// The current generation; completions from earlier generations are
    /// stale.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Memory currently occupied by resident jobs, in GB.
    pub fn mem_used_gb(&self) -> f64 {
        self.mem_gb_sum
    }

    /// Free memory, in GB.
    pub fn mem_available_gb(&self) -> f64 {
        (self.profile.mem_gb() - self.mem_used_gb()).max(0.0)
    }

    /// `true` if no jobs are resident.
    pub fn is_idle(&self) -> bool {
        self.running.is_empty()
    }

    /// Number of resident jobs.
    pub fn job_count(&self) -> usize {
        self.running.len()
    }

    /// Specs of the resident jobs, in admission order.
    pub fn jobs(&self) -> impl Iterator<Item = &JobSpec> {
        self.running.iter().map(|r| &r.spec)
    }

    /// Jobs completed on this slice so far.
    pub fn completed_jobs(&self) -> u64 {
        self.completed_jobs
    }

    /// The Eq. 1 slowdown an *unstarved* job (bandwidth share ≤ 1)
    /// currently experiences on this slice. Jobs whose own demand
    /// exceeds the slice's bandwidth are normalised by their own share
    /// (`max(1, total / max(1, share)) + penalty`): their solo starvation is
    /// already captured by the RDF in their solo time, so Eq. 1 here
    /// models only the *contention between co-located jobs*.
    pub fn current_slowdown(&self) -> f64 {
        match self.mode {
            SharingMode::TimeShared => 1.0,
            SharingMode::Mps => {
                slowdown_factor_iter(self.running.iter().map(|r| self.fbr_share(&r.spec)))
                    + cache_penalty(self.running.len())
            }
        }
    }

    /// The per-job slowdown for a resident job with bandwidth share
    /// `share`, given the slice's total share load `total` and `n`
    /// co-located jobs: `max(1, total / max(1, share)) + penalty`.
    fn slowdown_of_share(share: f64, total: f64, n: usize) -> f64 {
        (total / share.max(1.0)).max(1.0) + cache_penalty(n)
    }

    /// The slowdown factor that *would* be in force if `extra` additional
    /// full-GPU FBR were added — what `choose_strict_slice` consults when
    /// estimating Eq. 2 before placing a job.
    pub fn projected_slowdown(&self, extra_fbr: f64) -> f64 {
        match self.mode {
            SharingMode::TimeShared => 1.0,
            SharingMode::Mps => {
                let extra_share = extra_fbr / self.profile.bandwidth_fraction();
                let total: f64 = self
                    .running
                    .iter()
                    .map(|r| self.fbr_share(&r.spec))
                    .sum::<f64>()
                    + extra_share;
                Self::slowdown_of_share(extra_share, total, self.running.len() + 1)
            }
        }
    }

    fn fbr_share(&self, spec: &JobSpec) -> f64 {
        spec.fbr / self.profile.bandwidth_fraction()
    }

    /// The raw sum of resident jobs' bandwidth shares (before Eq. 1's
    /// `max(·, 1)`), scaled to this slice's bandwidth. Zero for
    /// time-shared slices. O(1): served from the incrementally
    /// maintained sum.
    pub fn fbr_load(&self) -> f64 {
        match self.mode {
            SharingMode::TimeShared => 0.0,
            SharingMode::Mps => self.fbr_share_sum,
        }
    }

    /// Rebuilds the cached sums with the same left-fold the fresh
    /// iterator sums used, so departures stay bit-identical (an
    /// incremental subtraction would not be).
    fn recompute_sums(&mut self) {
        let fbr: f64 = self.running.iter().map(|r| self.fbr_share(&r.spec)).sum();
        let mem: f64 = self.running.iter().map(|r| r.spec.mem_gb).sum();
        self.fbr_share_sum = fbr;
        self.mem_gb_sum = mem;
    }

    /// Admits a job at `now` and returns the slice's **earliest**
    /// projected completion (previous projections become stale — the
    /// caller replaces its single live completion event for this slice).
    ///
    /// # Errors
    ///
    /// * [`AdmitError::OutOfMemory`] if the job does not fit in free slice
    ///   memory.
    /// * [`AdmitError::Busy`] if the slice is time-shared and occupied.
    /// * [`AdmitError::DuplicateJob`] if the id is already resident.
    pub fn admit(&mut self, now: SimTime, spec: JobSpec) -> Result<Completion, AdmitError> {
        if self.running.iter().any(|r| r.spec.id == spec.id) {
            return Err(AdmitError::DuplicateJob(spec.id));
        }
        if self.mode == SharingMode::TimeShared && !self.running.is_empty() {
            return Err(AdmitError::Busy);
        }
        let available = self.mem_available_gb();
        if spec.mem_gb > available + 1e-9 {
            return Err(AdmitError::OutOfMemory {
                available_gb: available,
                requested_gb: spec.mem_gb,
            });
        }
        self.advance(now);
        if self.running.is_empty() {
            self.busy_started = now;
        }
        self.running.push(Running {
            spec,
            admitted_at: now,
            remaining_us: spec.solo.as_micros() as f64,
        });
        self.fbr_share_sum += self.fbr_share(&spec);
        self.mem_gb_sum += spec.mem_gb;
        self.after_membership_change(now);
        Ok(self
            .next_completion(now)
            .expect("slice just admitted a job"))
    }

    /// Completes `job` at `now` (which must match a live completion
    /// projection) and returns the finished job plus the earliest
    /// projection among the jobs still resident (`None` if the slice is
    /// now idle).
    ///
    /// # Errors
    ///
    /// * [`FinishError::UnknownJob`] if the job is not resident.
    /// * [`FinishError::NotDone`] if the job still has work remaining —
    ///   the triggering event was stale and should have been discarded
    ///   via [`Slice::generation`].
    pub fn finish(
        &mut self,
        now: SimTime,
        job: JobId,
    ) -> Result<(FinishedJob, Option<Completion>), FinishError> {
        self.advance(now);
        let idx = self
            .running
            .iter()
            .position(|r| r.spec.id == job)
            .ok_or(FinishError::UnknownJob(job))?;
        if self.running[idx].remaining_us > DONE_EPSILON_US {
            return Err(FinishError::NotDone(job));
        }
        let done = self.running.remove(idx);
        self.completed_jobs += 1;
        self.recompute_sums();
        self.after_membership_change(now);
        Ok((
            FinishedJob {
                spec: done.spec,
                admitted_at: done.admitted_at,
            },
            self.next_completion(now),
        ))
    }

    /// Advances job progress to `now`, each job at its own slowdown.
    fn advance(&mut self, now: SimTime) {
        let elapsed_us = now.saturating_since(self.last_advance).as_micros() as f64;
        if elapsed_us > 0.0 && !self.running.is_empty() {
            let total = self.fbr_load();
            let n = self.running.len();
            for i in 0..n {
                let sd = self.job_slowdown(&self.running[i].spec, total, n);
                let r = &mut self.running[i];
                r.remaining_us = (r.remaining_us - elapsed_us / sd).max(0.0);
            }
        }
        self.last_advance = self.last_advance.max(now);
    }

    /// The slowdown of one resident job given the precomputed total
    /// share load `total` and job count `n` — evaluated per job without
    /// materialising a slowdown vector.
    fn job_slowdown(&self, spec: &JobSpec, total: f64, n: usize) -> f64 {
        match self.mode {
            SharingMode::TimeShared => 1.0,
            SharingMode::Mps => Self::slowdown_of_share(self.fbr_share(spec), total, n),
        }
    }

    fn after_membership_change(&mut self, now: SimTime) {
        self.generation += 1;
        self.busy
            .set_level(now, if self.running.is_empty() { 0.0 } else { 1.0 });
        self.mem.set_level(now, self.mem_used_gb());
    }

    /// Current completion projections for all resident jobs.
    ///
    /// The event hot path uses [`Slice::next_completion`] instead; this
    /// full projection set remains for placement diagnostics and tests.
    pub fn project_completions(&self, now: SimTime) -> Vec<Completion> {
        let total = self.fbr_load();
        let n = self.running.len();
        self.running
            .iter()
            .map(|r| {
                let sd = self.job_slowdown(&r.spec, total, n);
                Completion {
                    job: r.spec.id,
                    at: now + SimDuration::from_micros((r.remaining_us * sd).ceil() as u64),
                    generation: self.generation,
                }
            })
            .collect()
    }

    /// The earliest projected completion among resident jobs, or `None`
    /// if the slice is idle. Ties resolve to the earliest-admitted
    /// resident — exactly the event the all-jobs re-projection
    /// discipline would have delivered first (its contiguous push block
    /// popped FIFO at equal times), so arming only this one event is
    /// observationally identical.
    pub fn next_completion(&self, now: SimTime) -> Option<Completion> {
        let total = self.fbr_load();
        let n = self.running.len();
        let mut best: Option<Completion> = None;
        for r in &self.running {
            let sd = self.job_slowdown(&r.spec, total, n);
            let at = now + SimDuration::from_micros((r.remaining_us * sd).ceil() as u64);
            if best.is_none_or(|b| at < b.at) {
                best = Some(Completion {
                    job: r.spec.id,
                    at,
                    generation: self.generation,
                });
            }
        }
        best
    }

    /// Fraction of observed time the slice had at least one resident job.
    pub fn busy_fraction(&self, now: SimTime) -> f64 {
        self.busy.mean(now)
    }

    /// Total busy time in seconds (`∫ busy dt`) up to `now`.
    pub fn busy_integral_secs(&self, now: SimTime) -> f64 {
        self.busy.integral(now)
    }

    /// Total memory occupancy integral in GB·seconds up to `now`.
    pub fn mem_integral_gb_secs(&self, now: SimTime) -> f64 {
        self.mem.integral(now)
    }

    /// Time-averaged memory occupancy in GB.
    pub fn mean_mem_gb(&self, now: SimTime) -> f64 {
        self.mem.mean(now)
    }
}

/// A FIFO queue of jobs waiting for a slice, with deterministic ordering.
/// Provided here because every scheme needs per-slice wait queues; the
/// queue itself is policy-free (schemes reorder before enqueueing).
#[derive(Debug, Clone, Default)]
pub struct WaitQueue {
    jobs: VecDeque<JobSpec>,
}

impl WaitQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        WaitQueue::default()
    }

    /// Appends a job at the back.
    pub fn push_back(&mut self, spec: JobSpec) {
        self.jobs.push_back(spec);
    }

    /// Inserts a job at the front (used by strict-priority reordering).
    pub fn push_front(&mut self, spec: JobSpec) {
        self.jobs.push_front(spec);
    }

    /// Removes and returns the frontmost job.
    pub fn pop_front(&mut self) -> Option<JobSpec> {
        self.jobs.pop_front()
    }

    /// The frontmost job without removing it.
    pub fn front(&self) -> Option<&JobSpec> {
        self.jobs.front()
    }

    /// Number of waiting jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` if no jobs are waiting.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Iterates over waiting jobs front to back.
    pub fn iter(&self) -> impl Iterator<Item = &JobSpec> {
        self.jobs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spec(id: u64, solo_ms: f64, fbr: f64, mem: f64) -> JobSpec {
        JobSpec {
            id: JobId(id),
            solo: SimDuration::from_millis(solo_ms),
            fbr,
            mem_gb: mem,
        }
    }

    /// Completion instants are ceiled onto the microsecond clock, so
    /// float noise can land them 1 us late.
    fn assert_close(actual: SimTime, expected_ms: f64) {
        let expected = SimTime::from_millis(expected_ms);
        assert!(
            actual.saturating_since(expected) <= SimDuration::from_micros(2)
                && expected.saturating_since(actual) <= SimDuration::from_micros(2),
            "got {actual:?}, expected ~{expected:?}"
        );
    }

    #[test]
    fn solo_job_finishes_after_solo_time() {
        let mut s = Slice::new(SliceProfile::G7, SharingMode::Mps, SimTime::ZERO);
        let next = s.admit(SimTime::ZERO, spec(1, 100.0, 0.3, 4.0)).unwrap();
        assert_eq!(next.job, JobId(1));
        assert_eq!(next.at, SimTime::from_millis(100.0));
        let (done, rest) = s.finish(next.at, JobId(1)).unwrap();
        assert_eq!(done.spec.id, JobId(1));
        assert_eq!(rest, None);
        assert!(s.is_idle());
        assert_eq!(s.completed_jobs(), 1);
    }

    #[test]
    fn two_saturating_jobs_slow_each_other() {
        // Two jobs with FBR 0.8 on 7g: slowdown = 1.6.
        let mut s = Slice::new(SliceProfile::G7, SharingMode::Mps, SimTime::ZERO);
        s.admit(SimTime::ZERO, spec(1, 100.0, 0.8, 4.0)).unwrap();
        let next = s.admit(SimTime::ZERO, spec(2, 100.0, 0.8, 4.0)).unwrap();
        // Both jobs project the same instant; the earliest-admitted
        // resident wins the tie.
        assert_eq!(next.job, JobId(1));
        let completions = s.project_completions(SimTime::ZERO);
        assert_eq!(completions.len(), 2);
        for c in &completions {
            // Bandwidth term 1.6 plus one co-runner's cache penalty.
            assert_close(c.at, 170.0);
        }
    }

    #[test]
    fn bandwidth_scales_with_slice() {
        // A 0.3-FBR job consumes 0.6 of a 3g slice's bandwidth (4/8).
        let mut s = Slice::new(SliceProfile::G3, SharingMode::Mps, SimTime::ZERO);
        s.admit(SimTime::ZERO, spec(1, 100.0, 0.3, 4.0)).unwrap();
        assert!((s.current_slowdown() - 1.0).abs() < 1e-12);
        s.admit(SimTime::ZERO, spec(2, 100.0, 0.3, 4.0)).unwrap();
        // 1.2 bandwidth + 0.1 cache penalty for the second co-runner.
        assert!((s.current_slowdown() - 1.3).abs() < 1e-12);
    }

    #[test]
    fn departure_speeds_up_survivor() {
        // Job 1: FBR 0.9, job 2: FBR 0.9 on 7g. Slowdown 1.8 while both
        // run. Job 1 admitted at t=0, job 2 at t=0; both solo 100ms.
        let mut s = Slice::new(SliceProfile::G7, SharingMode::Mps, SimTime::ZERO);
        s.admit(SimTime::ZERO, spec(1, 100.0, 0.9, 4.0)).unwrap();
        let c = s.admit(SimTime::ZERO, spec(2, 100.0, 0.9, 4.0)).unwrap();
        // Bandwidth term 1.8 plus one co-runner's 0.1 cache penalty
        // (completions are ceiled onto the microsecond clock).
        let eta = c.at;
        assert!(eta.saturating_since(SimTime::from_millis(190.0)) <= SimDuration::from_micros(2));
        // Finish job 1 at its projected completion; job 2 is also done.
        let (_, rest) = s.finish(eta, JobId(1)).unwrap();
        let rest = rest.expect("job 2 still resident");
        assert_eq!(rest.job, JobId(2));
        assert!(rest.at.saturating_since(eta) <= SimDuration::from_micros(2));
    }

    #[test]
    fn late_arrival_stretches_early_job() {
        // Job 1 runs alone (FBR 0.8) for 50ms (half done), then job 2
        // (FBR 0.8) arrives: slowdown 1.6 + 0.1 cache penalty, so the
        // remaining 50ms of work takes 85ms. Total: 135ms.
        let mut s = Slice::new(SliceProfile::G7, SharingMode::Mps, SimTime::ZERO);
        s.admit(SimTime::ZERO, spec(1, 100.0, 0.8, 4.0)).unwrap();
        let next = s
            .admit(SimTime::from_millis(50.0), spec(2, 100.0, 0.8, 4.0))
            .unwrap();
        // Job 1 finishes first and is what the admit hands back.
        assert_eq!(next.job, JobId(1));
        assert_close(next.at, 135.0);
        let c = s.project_completions(SimTime::from_millis(50.0));
        let j1 = c.iter().find(|c| c.job == JobId(1)).unwrap();
        assert_close(j1.at, 135.0);
        let j2 = c.iter().find(|c| c.job == JobId(2)).unwrap();
        assert_close(j2.at, 220.0);
    }

    #[test]
    fn memory_admission_control() {
        let mut s = Slice::new(SliceProfile::G1, SharingMode::Mps, SimTime::ZERO);
        s.admit(SimTime::ZERO, spec(1, 100.0, 0.1, 4.0)).unwrap();
        let err = s
            .admit(SimTime::ZERO, spec(2, 100.0, 0.1, 2.0))
            .unwrap_err();
        assert!(matches!(err, AdmitError::OutOfMemory { .. }));
        assert_eq!(s.mem_available_gb(), 1.0);
    }

    #[test]
    fn time_shared_slice_rejects_second_job() {
        let mut s = Slice::new(SliceProfile::G7, SharingMode::TimeShared, SimTime::ZERO);
        s.admit(SimTime::ZERO, spec(1, 100.0, 0.9, 4.0)).unwrap();
        assert_eq!(
            s.admit(SimTime::ZERO, spec(2, 100.0, 0.9, 4.0)),
            Err(AdmitError::Busy)
        );
        // No interference in time-shared mode regardless of FBR.
        assert_eq!(s.current_slowdown(), 1.0);
    }

    #[test]
    fn duplicate_job_rejected() {
        let mut s = Slice::new(SliceProfile::G7, SharingMode::Mps, SimTime::ZERO);
        s.admit(SimTime::ZERO, spec(1, 100.0, 0.1, 1.0)).unwrap();
        assert_eq!(
            s.admit(SimTime::ZERO, spec(1, 50.0, 0.1, 1.0)),
            Err(AdmitError::DuplicateJob(JobId(1)))
        );
    }

    #[test]
    fn stale_finish_is_rejected() {
        let mut s = Slice::new(SliceProfile::G7, SharingMode::Mps, SimTime::ZERO);
        s.admit(SimTime::ZERO, spec(1, 100.0, 0.9, 4.0)).unwrap();
        // Try to finish long before the job is done.
        assert_eq!(
            s.finish(SimTime::from_millis(10.0), JobId(1)),
            Err(FinishError::NotDone(JobId(1)))
        );
        assert_eq!(
            s.finish(SimTime::from_millis(10.0), JobId(2)),
            Err(FinishError::UnknownJob(JobId(2)))
        );
    }

    #[test]
    fn generation_increments_on_membership_changes() {
        let mut s = Slice::new(SliceProfile::G7, SharingMode::Mps, SimTime::ZERO);
        let g0 = s.generation();
        let c = s.admit(SimTime::ZERO, spec(1, 100.0, 0.2, 1.0)).unwrap();
        assert_eq!(c.generation, g0 + 1);
        s.finish(c.at, JobId(1)).unwrap();
        assert_eq!(s.generation(), g0 + 2);
    }

    #[test]
    fn busy_fraction_tracks_occupancy() {
        let mut s = Slice::new(SliceProfile::G7, SharingMode::Mps, SimTime::ZERO);
        let c = s.admit(SimTime::ZERO, spec(1, 100.0, 0.2, 1.0)).unwrap();
        s.finish(c.at, JobId(1)).unwrap();
        // Busy 100ms out of 200ms observed.
        assert!((s.busy_fraction(SimTime::from_millis(200.0)) - 0.5).abs() < 1e-9);
        // Memory: 1 GB for half the window.
        assert!((s.mean_mem_gb(SimTime::from_millis(200.0)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn projected_slowdown_previews_extra_job() {
        let mut s = Slice::new(SliceProfile::G3, SharingMode::Mps, SimTime::ZERO);
        s.admit(SimTime::ZERO, spec(1, 100.0, 0.3, 1.0)).unwrap();
        // 0.3/0.5 resident + 0.25/0.5 extra = 1.1, plus one co-runner's
        // cache penalty.
        assert!((s.projected_slowdown(0.25) - 1.2).abs() < 1e-12);
        // Preview does not mutate.
        assert!((s.current_slowdown() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wait_queue_fifo_and_priority_front() {
        let mut q = WaitQueue::new();
        q.push_back(spec(1, 1.0, 0.1, 1.0));
        q.push_back(spec(2, 1.0, 0.1, 1.0));
        q.push_front(spec(3, 1.0, 0.1, 1.0));
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop_front().unwrap().id, JobId(3));
        assert_eq!(q.front().unwrap().id, JobId(1));
        assert_eq!(q.iter().count(), 2);
        assert!(!q.is_empty());
    }

    /// The earliest-completion invariant: [`Slice::next_completion`] is
    /// the strict minimum of [`Slice::project_completions`] with ties
    /// resolved to the earliest-admitted resident, and the cached
    /// Σ FBR-share matches a fresh re-sum bit for bit.
    fn assert_next_completion_invariant(s: &Slice, now: SimTime) {
        let full = s.project_completions(now);
        let mut expected: Option<Completion> = None;
        for c in &full {
            if expected.is_none_or(|b| c.at < b.at) {
                expected = Some(*c);
            }
        }
        assert_eq!(s.next_completion(now), expected);
        let fresh: f64 = s
            .jobs()
            .map(|sp| sp.fbr / s.profile().bandwidth_fraction())
            .sum();
        assert_eq!(
            s.fbr_load().to_bits(),
            fresh.to_bits(),
            "cached fbr sum drifted from fresh re-sum"
        );
    }

    proptest! {
        /// Conservation of work under the next-completion discipline:
        /// however arrivals interleave, jobs never finish faster than
        /// their solo time, draining by always finishing the slice's
        /// earliest projection empties the slice, and the invariant
        /// holds after every membership change.
        #[test]
        fn prop_next_completion_drains_slice(
            solos in proptest::collection::vec(10.0f64..200.0, 1..6),
            fbrs in proptest::collection::vec(0.05f64..0.9, 6),
            gaps in proptest::collection::vec(0.0f64..80.0, 6),
        ) {
            let mut s = Slice::new(SliceProfile::G7, SharingMode::Mps, SimTime::ZERO);
            let mut admitted_at = std::collections::HashMap::new();
            let mut clock = SimTime::ZERO;
            for (i, &solo) in solos.iter().enumerate() {
                clock += SimDuration::from_millis(gaps[i]);
                let sp = spec(i as u64, solo, fbrs[i], 1.0);
                let next = s.admit(clock, sp).unwrap();
                admitted_at.insert(sp.id, clock);
                prop_assert_eq!(Some(next), s.next_completion(clock));
                assert_next_completion_invariant(&s, clock);
            }
            // Drain by always finishing the earliest projection — the
            // one event the engine keeps live per slice.
            while let Some(c) = s.next_completion(clock) {
                let (done, rearmed) = s.finish(c.at, c.job).unwrap();
                let held = c.at - admitted_at[&c.job];
                // Processor sharing can only stretch a job.
                prop_assert!(held.as_micros() + 1 >= done.spec.solo.as_micros(),
                    "job finished faster than solo: {held:?} < {:?}", done.spec.solo);
                clock = c.at;
                prop_assert_eq!(rearmed, s.next_completion(clock));
                assert_next_completion_invariant(&s, clock);
            }
            prop_assert!(s.is_idle());
            prop_assert_eq!(s.completed_jobs(), solos.len() as u64);
        }
    }
}
