//! A whole GPU: a set of slices under one MIG geometry, plus the
//! drain → reconfigure → rebuild lifecycle.
//!
//! MIG reconfiguration requires every slice to be idle (no running
//! processes), and takes ~2 s on an A100 (paper §4.4). The lifecycle here
//! mirrors that: the caller *requests* a new geometry, the GPU enters a
//! draining state in which no new jobs should be placed, reconfiguration
//! *begins* once the last job finishes, and the new slices come up after
//! the reconfiguration delay.

use std::fmt;

use protean_sim::{SimDuration, SimTime};

use crate::profile::{Geometry, SliceProfile};
use crate::slice::{SharingMode, Slice};

/// Identifier of a GPU in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GpuId(pub u32);

impl fmt::Display for GpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gpu{}", self.0)
    }
}

/// Lifecycle state of a GPU with respect to MIG reconfiguration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GpuState {
    /// Serving jobs normally.
    Active,
    /// A reconfiguration is pending; no new jobs should be admitted and
    /// the reconfiguration starts once all slices are idle.
    Draining {
        /// Geometry to apply once drained.
        target: Geometry,
    },
    /// MIG partitions are being rebuilt; the GPU is unusable until
    /// `until`.
    Reconfiguring {
        /// When the new geometry becomes available.
        until: SimTime,
        /// Geometry being applied.
        target: Geometry,
    },
}

/// Error returned by the reconfiguration lifecycle methods.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReconfigError {
    /// A reconfiguration is already in progress.
    AlreadyReconfiguring,
    /// `try_begin_reconfigure` was called while jobs are still running.
    NotDrained,
    /// `complete_reconfigure` was called before the reconfiguration
    /// delay elapsed or without one in progress.
    NotReconfiguring,
}

impl fmt::Display for ReconfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReconfigError::AlreadyReconfiguring => write!(f, "reconfiguration in progress"),
            ReconfigError::NotDrained => write!(f, "slices still have running jobs"),
            ReconfigError::NotReconfiguring => write!(f, "no reconfiguration in progress"),
        }
    }
}

impl std::error::Error for ReconfigError {}

/// Default MIG reconfiguration latency (paper §4.4: ~2 s).
pub const DEFAULT_RECONFIG_DELAY: SimDuration = SimDuration::from_micros(2_000_000);

/// One simulated A100 GPU.
///
/// # Example
///
/// ```
/// use protean_gpu::{Gpu, GpuId, Geometry, SharingMode};
/// use protean_sim::SimTime;
///
/// let mut gpu = Gpu::new(GpuId(0), Geometry::g4_g3(), SharingMode::Mps, SimTime::ZERO);
/// assert_eq!(gpu.slices().len(), 2);
/// // Request a new geometry; it applies once the GPU drains.
/// gpu.request_reconfigure(Geometry::g4_g2_g1()).unwrap();
/// let until = gpu.try_begin_reconfigure(SimTime::ZERO).unwrap();
/// gpu.complete_reconfigure(until).unwrap();
/// assert_eq!(gpu.geometry(), &Geometry::g4_g2_g1());
/// ```
#[derive(Debug, Clone)]
pub struct Gpu {
    id: GpuId,
    geometry: Geometry,
    slices: Vec<Slice>,
    mode: SharingMode,
    state: GpuState,
    reconfig_delay: SimDuration,
    reconfig_count: u64,
    started: SimTime,
    /// Busy compute integral (sevenths·seconds) from retired slice sets.
    retired_busy_sevenths_secs: f64,
    /// Memory integral (GB·seconds) from retired slice sets.
    retired_mem_gb_secs: f64,
    /// Time spent reconfiguring (unavailable), seconds.
    downtime_secs: f64,
}

impl Gpu {
    /// Creates a GPU with the given initial geometry; all slices share
    /// via `mode`.
    pub fn new(id: GpuId, geometry: Geometry, mode: SharingMode, now: SimTime) -> Self {
        let slices = build_slices(&geometry, mode, now);
        Gpu {
            id,
            geometry,
            slices,
            mode,
            state: GpuState::Active,
            reconfig_delay: DEFAULT_RECONFIG_DELAY,
            reconfig_count: 0,
            started: now,
            retired_busy_sevenths_secs: 0.0,
            retired_mem_gb_secs: 0.0,
            downtime_secs: 0.0,
        }
    }

    /// Overrides the reconfiguration latency (default ~2 s).
    pub fn set_reconfig_delay(&mut self, delay: SimDuration) {
        self.reconfig_delay = delay;
    }

    /// The GPU's id.
    pub fn id(&self) -> GpuId {
        self.id
    }

    /// The current geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The lifecycle state.
    pub fn state(&self) -> &GpuState {
        &self.state
    }

    /// `true` if new jobs may be placed on this GPU's slices.
    pub fn accepting(&self) -> bool {
        matches!(self.state, GpuState::Active)
    }

    /// The slices of the current geometry, largest first.
    pub fn slices(&self) -> &[Slice] {
        &self.slices
    }

    /// Mutable access to a slice by index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn slice_mut(&mut self, idx: usize) -> &mut Slice {
        &mut self.slices[idx]
    }

    /// Shared access to a slice by index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn slice(&self, idx: usize) -> &Slice {
        &self.slices[idx]
    }

    /// `true` if no slice has a resident job.
    pub fn is_idle(&self) -> bool {
        self.slices.iter().all(Slice::is_idle)
    }

    /// How many reconfigurations have completed.
    pub fn reconfig_count(&self) -> u64 {
        self.reconfig_count
    }

    /// Total time spent reconfiguring, in seconds.
    pub fn downtime_secs(&self) -> f64 {
        self.downtime_secs
    }

    /// Requests a geometry change. The GPU stops accepting jobs and the
    /// change is applied once it drains (see
    /// [`Gpu::try_begin_reconfigure`]). Requesting the current geometry
    /// while active is a no-op returning `Ok(false)`.
    ///
    /// # Errors
    ///
    /// Returns [`ReconfigError::AlreadyReconfiguring`] if a
    /// reconfiguration has already begun (draining can be retargeted).
    pub fn request_reconfigure(&mut self, target: Geometry) -> Result<bool, ReconfigError> {
        match &self.state {
            GpuState::Reconfiguring { .. } => Err(ReconfigError::AlreadyReconfiguring),
            GpuState::Active if target == self.geometry => Ok(false),
            GpuState::Active | GpuState::Draining { .. } => {
                self.state = GpuState::Draining { target };
                Ok(true)
            }
        }
    }

    /// Cancels a pending (draining) reconfiguration, returning the GPU to
    /// active service. No-op unless draining.
    pub fn cancel_reconfigure(&mut self) {
        if matches!(self.state, GpuState::Draining { .. }) {
            self.state = GpuState::Active;
        }
    }

    /// Begins the reconfiguration if the GPU is draining and idle.
    /// Returns the completion instant.
    ///
    /// # Errors
    ///
    /// * [`ReconfigError::NotReconfiguring`] if no change was requested.
    /// * [`ReconfigError::NotDrained`] if jobs are still running.
    pub fn try_begin_reconfigure(&mut self, now: SimTime) -> Result<SimTime, ReconfigError> {
        let target = match &self.state {
            GpuState::Draining { target } => target.clone(),
            _ => return Err(ReconfigError::NotReconfiguring),
        };
        if !self.is_idle() {
            return Err(ReconfigError::NotDrained);
        }
        // Retire the old slices' accounting before they are destroyed.
        for s in &self.slices {
            self.retired_busy_sevenths_secs +=
                s.busy_integral_secs(now) * f64::from(s.profile().compute_sevenths());
            self.retired_mem_gb_secs += s.mem_integral_gb_secs(now);
        }
        let until = now + self.reconfig_delay;
        self.state = GpuState::Reconfiguring { until, target };
        Ok(until)
    }

    /// Installs the new geometry once the reconfiguration delay has
    /// elapsed.
    ///
    /// # Errors
    ///
    /// Returns [`ReconfigError::NotReconfiguring`] if called without a
    /// reconfiguration in progress or before its completion instant.
    pub fn complete_reconfigure(&mut self, now: SimTime) -> Result<(), ReconfigError> {
        let (until, target) = match &self.state {
            GpuState::Reconfiguring { until, target } => (*until, target.clone()),
            _ => return Err(ReconfigError::NotReconfiguring),
        };
        if now < until {
            return Err(ReconfigError::NotReconfiguring);
        }
        self.downtime_secs += self.reconfig_delay.as_secs_f64();
        self.slices = build_slices(&target, self.mode, now);
        self.geometry = target;
        self.state = GpuState::Active;
        self.reconfig_count += 1;
        Ok(())
    }

    /// Compute utilization: the busy-time of each slice weighted by its
    /// compute share, over the whole GPU and observation window. The
    /// paper reports this as "percentage non-idle time" per GPU.
    pub fn compute_utilization(&self, now: SimTime) -> f64 {
        let window = now.saturating_since(self.started).as_secs_f64();
        if window <= 0.0 {
            return 0.0;
        }
        let live: f64 = self
            .slices
            .iter()
            .map(|s| s.busy_integral_secs(now) * f64::from(s.profile().compute_sevenths()))
            .sum();
        (self.retired_busy_sevenths_secs + live) / (7.0 * window)
    }

    /// Memory utilization: time-averaged occupied GB over the GPU's
    /// 40 GB, across the observation window.
    pub fn memory_utilization(&self, now: SimTime) -> f64 {
        let window = now.saturating_since(self.started).as_secs_f64();
        if window <= 0.0 {
            return 0.0;
        }
        let live: f64 = self
            .slices
            .iter()
            .map(|s| s.mem_integral_gb_secs(now))
            .sum();
        (self.retired_mem_gb_secs + live) / (SliceProfile::G7.mem_gb() * window)
    }
}

fn build_slices(geometry: &Geometry, mode: SharingMode, now: SimTime) -> Vec<Slice> {
    geometry
        .slices()
        .iter()
        .map(|&p| Slice::new(p, mode, now))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice::{JobId, JobSpec};

    fn spec(id: u64, solo_ms: f64) -> JobSpec {
        JobSpec {
            id: JobId(id),
            solo: SimDuration::from_millis(solo_ms),
            fbr: 0.3,
            mem_gb: 2.0,
        }
    }

    #[test]
    fn reconfigure_happy_path() {
        let mut gpu = Gpu::new(GpuId(0), Geometry::full(), SharingMode::Mps, SimTime::ZERO);
        assert!(gpu.accepting());
        assert!(gpu.request_reconfigure(Geometry::g4_g3()).unwrap());
        assert!(!gpu.accepting());
        let until = gpu.try_begin_reconfigure(SimTime::from_secs(1.0)).unwrap();
        assert_eq!(until, SimTime::from_secs(3.0));
        assert!(gpu.complete_reconfigure(SimTime::from_secs(2.0)).is_err());
        gpu.complete_reconfigure(until).unwrap();
        assert_eq!(gpu.geometry(), &Geometry::g4_g3());
        assert_eq!(gpu.slices().len(), 2);
        assert_eq!(gpu.reconfig_count(), 1);
        assert_eq!(gpu.downtime_secs(), 2.0);
        assert!(gpu.accepting());
    }

    #[test]
    fn same_geometry_request_is_noop() {
        let mut gpu = Gpu::new(GpuId(0), Geometry::g4_g3(), SharingMode::Mps, SimTime::ZERO);
        assert!(!gpu.request_reconfigure(Geometry::g4_g3()).unwrap());
        assert!(gpu.accepting());
    }

    #[test]
    fn cannot_begin_while_jobs_running() {
        let mut gpu = Gpu::new(GpuId(0), Geometry::full(), SharingMode::Mps, SimTime::ZERO);
        gpu.slice_mut(0)
            .admit(SimTime::ZERO, spec(1, 100.0))
            .unwrap();
        gpu.request_reconfigure(Geometry::g4_g3()).unwrap();
        assert_eq!(
            gpu.try_begin_reconfigure(SimTime::ZERO),
            Err(ReconfigError::NotDrained)
        );
        // Finish the job, then the reconfiguration may begin.
        gpu.slice_mut(0)
            .finish(SimTime::from_millis(100.0), JobId(1))
            .unwrap();
        assert!(gpu
            .try_begin_reconfigure(SimTime::from_millis(100.0))
            .is_ok());
        assert_eq!(
            gpu.request_reconfigure(Geometry::full()),
            Err(ReconfigError::AlreadyReconfiguring)
        );
    }

    #[test]
    fn cancel_returns_to_active() {
        let mut gpu = Gpu::new(GpuId(0), Geometry::full(), SharingMode::Mps, SimTime::ZERO);
        gpu.request_reconfigure(Geometry::g4_g3()).unwrap();
        gpu.cancel_reconfigure();
        assert!(gpu.accepting());
        assert_eq!(gpu.geometry(), &Geometry::full());
    }

    #[test]
    fn retargeting_while_draining_is_allowed() {
        let mut gpu = Gpu::new(GpuId(0), Geometry::full(), SharingMode::Mps, SimTime::ZERO);
        gpu.request_reconfigure(Geometry::g4_g3()).unwrap();
        gpu.request_reconfigure(Geometry::g3_g3()).unwrap();
        let until = gpu.try_begin_reconfigure(SimTime::ZERO).unwrap();
        gpu.complete_reconfigure(until).unwrap();
        assert_eq!(gpu.geometry(), &Geometry::g3_g3());
    }

    #[test]
    fn utilization_survives_reconfiguration() {
        let mut gpu = Gpu::new(GpuId(0), Geometry::full(), SharingMode::Mps, SimTime::ZERO);
        // Busy 1s on the whole GPU.
        gpu.slice_mut(0)
            .admit(SimTime::ZERO, spec(1, 1000.0))
            .unwrap();
        gpu.slice_mut(0)
            .finish(SimTime::from_secs(1.0), JobId(1))
            .unwrap();
        gpu.request_reconfigure(Geometry::g4_g3()).unwrap();
        let until = gpu.try_begin_reconfigure(SimTime::from_secs(1.0)).unwrap();
        gpu.complete_reconfigure(until).unwrap();
        // Over 4 seconds: busy-compute was 7 sevenths for 1s out of 7×4.
        let util = gpu.compute_utilization(SimTime::from_secs(4.0));
        assert!((util - 0.25).abs() < 1e-9, "util was {util}");
        // Memory: 2 GB for 1 s over 40 GB × 4 s = 1.25%.
        let mem = gpu.memory_utilization(SimTime::from_secs(4.0));
        assert!((mem - 0.0125).abs() < 1e-9, "mem was {mem}");
    }

    #[test]
    fn utilization_weights_by_compute_share() {
        let mut gpu = Gpu::new(GpuId(0), Geometry::g4_g3(), SharingMode::Mps, SimTime::ZERO);
        // Keep only the 3g slice busy for the whole window.
        gpu.slice_mut(1)
            .admit(SimTime::ZERO, spec(1, 1000.0))
            .unwrap();
        let util = gpu.compute_utilization(SimTime::from_secs(1.0));
        assert!((util - 3.0 / 7.0).abs() < 1e-9, "util was {util}");
    }
}
