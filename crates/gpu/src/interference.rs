//! The paper's job-slowdown model (Eq. 1 and Eq. 2).
//!
//! *Prophet*'s interference model, re-purposed by PROTEAN for the hybrid
//! MPS+MIG setting: a job `J_k` co-located (via MPS) with jobs
//! `J_1 … J_n` runs in
//!
//! ```text
//! T_k = Solo_k × max( Σ_j bw_j × sm_j , 1 )          (Eq. 1)
//! ```
//!
//! where `bw_j × sm_j` is job `J_j`'s Fractional Bandwidth Requirement
//! (FBR) and the sum includes `J_k` itself. On a MIG slice the available
//! bandwidth is only the slice's share of the GPU's, so a job's effective
//! FBR grows by the reciprocal of the slice's bandwidth fraction.

use protean_sim::SimDuration;

/// The slowdown factor `max(Σ FBR, 1)` for a set of co-located jobs'
/// effective FBRs (already scaled to the slice's bandwidth).
///
/// Below saturation (Σ < 1) there is no slowdown: the memory system keeps
/// up with every job. Past saturation every job is stretched
/// proportionally to the total demand.
///
/// # Example
///
/// ```
/// use protean_gpu::slowdown_factor;
/// assert_eq!(slowdown_factor(&[0.3, 0.4]), 1.0);      // under capacity
/// assert_eq!(slowdown_factor(&[0.8, 0.7]), 1.5);      // 150% demand
/// ```
pub fn slowdown_factor(fbr_shares: &[f64]) -> f64 {
    slowdown_factor_iter(fbr_shares.iter().copied())
}

/// [`slowdown_factor`] over any iterator of effective FBRs —
/// allocation-free, for callers that would otherwise collect a
/// temporary `Vec` just to sum it.
pub fn slowdown_factor_iter(fbr_shares: impl IntoIterator<Item = f64>) -> f64 {
    let total: f64 = fbr_shares.into_iter().sum();
    total.max(1.0)
}

/// The slowdown that would be in force if the job at `excluded` left —
/// the "what does removing this job buy" sensitivity query. Iterates
/// with the index skipped instead of cloning a shares vector with the
/// element removed; the result is bit-identical to the cloning
/// evaluation (same summation order).
///
/// # Panics
///
/// Panics if `excluded` is out of bounds.
pub fn slowdown_factor_excluding(fbr_shares: &[f64], excluded: usize) -> f64 {
    assert!(excluded < fbr_shares.len(), "excluded index out of bounds");
    slowdown_factor_iter(
        fbr_shares
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != excluded)
            .map(|(_, &s)| s),
    )
}

/// The slowdown that would be in force if the job at `idx` had FBR
/// `substitute` instead — the "what if this job's demand changed"
/// sensitivity query. Iterates with the index substituted instead of
/// cloning and patching a shares vector; bit-identical to the cloning
/// evaluation (same summation order).
///
/// # Panics
///
/// Panics if `idx` is out of bounds.
pub fn slowdown_factor_substituting(fbr_shares: &[f64], idx: usize, substitute: f64) -> f64 {
    assert!(idx < fbr_shares.len(), "substituted index out of bounds");
    slowdown_factor_iter(
        fbr_shares
            .iter()
            .enumerate()
            .map(|(i, &s)| if i == idx { substitute } else { s }),
    )
}

/// Eq. 1: execution time of a job with solo time `solo` under the given
/// slowdown factor.
///
/// # Example
///
/// ```
/// use protean_gpu::{execution_time, slowdown_factor};
/// use protean_sim::SimDuration;
/// let solo = SimDuration::from_millis(100.0);
/// let t = execution_time(solo, slowdown_factor(&[0.9, 0.6]));
/// assert_eq!(t, SimDuration::from_millis(150.0));
/// ```
pub fn execution_time(solo: SimDuration, slowdown: f64) -> SimDuration {
    solo.mul_f64(slowdown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn no_interference_below_saturation() {
        assert_eq!(slowdown_factor(&[]), 1.0);
        assert_eq!(slowdown_factor(&[0.2]), 1.0);
        assert_eq!(slowdown_factor(&[0.5, 0.49]), 1.0);
    }

    #[test]
    fn proportional_slowdown_above_saturation() {
        assert!((slowdown_factor(&[0.7, 0.7]) - 1.4).abs() < 1e-12);
        assert!((slowdown_factor(&[1.0, 1.0, 1.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn execution_time_scales_solo() {
        let solo = SimDuration::from_millis(80.0);
        assert_eq!(execution_time(solo, 1.0), solo);
        assert_eq!(execution_time(solo, 2.5), SimDuration::from_millis(200.0));
    }

    /// The index-based sensitivity queries must pin the exact outputs of
    /// the clone-based evaluation they replaced.
    #[test]
    fn sensitivity_matches_cloned_evaluation() {
        let shares = [0.37, 1.2, 0.05, 0.9, 0.61];
        for i in 0..shares.len() {
            let mut without = shares.to_vec();
            without.remove(i);
            assert_eq!(
                slowdown_factor_excluding(&shares, i).to_bits(),
                slowdown_factor(&without).to_bits(),
                "exclusion mismatch at {i}"
            );
            for sub in [0.0, 0.33, 1.8] {
                let mut patched = shares.to_vec();
                patched[i] = sub;
                assert_eq!(
                    slowdown_factor_substituting(&shares, i, sub).to_bits(),
                    slowdown_factor(&patched).to_bits(),
                    "substitution mismatch at {i} with {sub}"
                );
            }
        }
    }

    #[test]
    fn iter_variant_matches_slice_variant() {
        let shares = [0.8, 0.7, 0.1];
        assert_eq!(
            slowdown_factor_iter(shares.iter().copied()).to_bits(),
            slowdown_factor(&shares).to_bits()
        );
        assert_eq!(slowdown_factor_iter(std::iter::empty()), 1.0);
    }

    proptest! {
        /// The no-clone sensitivity queries agree with clone-and-patch on
        /// arbitrary share vectors.
        #[test]
        fn prop_sensitivity_pins_cloned(
            shares in proptest::collection::vec(0.0f64..2.0, 1..8),
            idx in 0usize..8,
            sub in 0.0f64..2.0,
        ) {
            let idx = idx % shares.len();
            let mut without = shares.clone();
            without.remove(idx);
            prop_assert_eq!(
                slowdown_factor_excluding(&shares, idx).to_bits(),
                slowdown_factor(&without).to_bits()
            );
            let mut patched = shares.clone();
            patched[idx] = sub;
            prop_assert_eq!(
                slowdown_factor_substituting(&shares, idx, sub).to_bits(),
                slowdown_factor(&patched).to_bits()
            );
        }

        /// Slowdown is monotone in each job's FBR and never below 1.
        #[test]
        fn prop_slowdown_monotone(shares in proptest::collection::vec(0.0f64..2.0, 0..8), extra in 0.0f64..2.0) {
            let base = slowdown_factor(&shares);
            prop_assert!(base >= 1.0);
            let mut more = shares.clone();
            more.push(extra);
            prop_assert!(slowdown_factor(&more) >= base);
        }

        /// Adding a zero-FBR job never changes the slowdown.
        #[test]
        fn prop_zero_job_is_free(shares in proptest::collection::vec(0.0f64..2.0, 0..8)) {
            let mut with_zero = shares.clone();
            with_zero.push(0.0);
            prop_assert_eq!(slowdown_factor(&shares), slowdown_factor(&with_zero));
        }
    }
}
