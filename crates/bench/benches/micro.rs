//! Micro-benchmarks of the scheduler's hot paths.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use protean::{choose_best_effort_slice, choose_strict_slice, tag_slices, Protean, ProteanConfig};
use protean::{Reconfigurator, ReconfiguratorConfig};
use protean_cluster::{BatchView, PlacementCtx, Scheme};
use protean_gpu::{Geometry, Gpu, GpuId, JobId, JobSpec, SharingMode, Slice, SliceProfile};
use protean_models::{catalog, Catalog, ModelId};
use protean_sim::{RngFactory, SimDuration, SimTime};
use protean_trace::{TraceConfig, TraceShape};

/// MPS slice churn: admit four co-located jobs, then retire them in
/// projection order — the engine's innermost loop. Each membership
/// change yields a single `next_completion` rather than a re-projection
/// vector, so the whole churn cycle is allocation-free.
fn bench_slice_churn(c: &mut Criterion) {
    c.bench_function("slice/admit_finish_churn_x4", |b| {
        b.iter_batched(
            || Slice::new(SliceProfile::G4, SharingMode::Mps, SimTime::ZERO),
            |mut slice| {
                let mut next = None;
                for i in 0..4u64 {
                    next = Some(
                        slice
                            .admit(
                                SimTime::ZERO,
                                JobSpec {
                                    id: JobId(i),
                                    solo: SimDuration::from_millis(100.0),
                                    fbr: 0.4,
                                    mem_gb: 4.0,
                                },
                            )
                            .expect("admits fit"),
                    );
                }
                while let Some(first) = next {
                    let (_, rest) = slice.finish(first.at, first.job).expect("valid completion");
                    next = rest;
                }
                slice
            },
            BatchSize::SmallInput,
        )
    });
}

fn loaded_gpu(catalog: &Catalog) -> Gpu {
    let mut gpu = Gpu::new(
        GpuId(0),
        Geometry::g4_g2_g1(),
        SharingMode::Mps,
        SimTime::ZERO,
    );
    let resnet = catalog.profile(ModelId::ResNet50);
    gpu.slice_mut(0)
        .admit(
            SimTime::ZERO,
            JobSpec {
                id: JobId(900),
                solo: resnet.solo_7g,
                fbr: resnet.fbr,
                mem_gb: resnet.mem_gb,
            },
        )
        .expect("fits");
    gpu
}

/// Algorithm 1: tag + strict η selection + BE first-fit on a loaded GPU.
fn bench_job_distribution(c: &mut Criterion) {
    let cat = catalog();
    let gpu = loaded_gpu(&cat);
    let resnet = cat.profile(ModelId::ResNet50);
    let mobilenet = cat.profile(ModelId::MobileNet);
    c.bench_function("algorithm1/tag_and_choose", |b| {
        b.iter(|| {
            let tags = tag_slices(gpu.slices(), 7.5);
            let strict = choose_strict_slice(gpu.slices(), &tags, resnet, 0.2);
            let be = choose_best_effort_slice(gpu.slices(), mobilenet);
            (strict, be)
        })
    });
    // The full Scheme::place path, as the engine calls it.
    c.bench_function("algorithm1/protean_place", |b| {
        let mut scheme = Protean::new(ProteanConfig::paper(), 2.0);
        let ctx = PlacementCtx {
            now: SimTime::ZERO,
            gpu: &gpu,
            queued_be_mem_gb: 7.5,
            catalog: &cat,
        };
        let view = BatchView {
            model: ModelId::ResNet50,
            strict: true,
            size: 128,
        };
        b.iter(|| scheme.place(&ctx, &view))
    });
}

/// Algorithm 2: one reconfigurator step (EWMA + geometry selection).
fn bench_reconfigurator(c: &mut Criterion) {
    let cat = catalog();
    let mobilenet = *cat.profile(ModelId::MobileNet);
    c.bench_function("algorithm2/step", |b| {
        let mut r = Reconfigurator::new(ReconfiguratorConfig::default());
        let current = Geometry::g4_g3();
        b.iter(|| r.step(&current, 5000, 2.0, Some(&mobilenet)))
    });
}

/// Trace generation throughput (batched Wiki arrivals, 60 s at 5000 rps).
fn bench_trace_generation(c: &mut Criterion) {
    let config = TraceConfig {
        shape: TraceShape::wiki(5000.0),
        duration: SimDuration::from_secs(60.0),
        strict_model: ModelId::ResNet50,
        strict_fraction: 0.5,
        be_pool: vec![ModelId::MobileNet, ModelId::ShuffleNetV2],
        be_rotation_period: SimDuration::from_secs(20.0),
        batch_arrivals: true,
    };
    c.bench_function("trace/wiki_60s_5000rps", |b| {
        let factory = RngFactory::new(1);
        b.iter(|| config.generate(&factory))
    });
}

/// Percentile queries over 100k latencies: re-sorting per call (the
/// old `percentile` path) vs one `SortedLatencies` view serving P50,
/// P90, P99, P99.9 and a 50-point CDF from the same sorted buffer.
fn bench_percentiles(c: &mut Criterion) {
    use protean_metrics::{percentile, SortedLatencies};
    let lats: Vec<f64> = (0..100_000u64)
        .map(|i| (i.wrapping_mul(2_654_435_761) % 1_000_000) as f64 / 100.0)
        .collect();
    c.bench_function("percentiles/resort_per_query_x4", |b| {
        b.iter(|| {
            (
                percentile(&lats, 0.50),
                percentile(&lats, 0.90),
                percentile(&lats, 0.99),
                percentile(&lats, 0.999),
            )
        })
    });
    c.bench_function("percentiles/sorted_once_x4_plus_cdf", |b| {
        b.iter(|| {
            let s = SortedLatencies::from_unsorted(lats.clone());
            (
                s.percentile(0.50),
                s.percentile(0.90),
                s.percentile(0.99),
                s.percentile(0.999),
                s.cdf(50),
            )
        })
    });
}

/// The engine's placement loop (`try_place`) as driven by a real
/// simulation: a short, placement-heavy run whose events are dominated
/// by candidate scans and slice admissions. Guards the scratch-buffer
/// and allocation-free candidate-iteration optimisations.
fn bench_try_place(c: &mut Criterion) {
    use protean::ProteanBuilder;
    use protean_cluster::run_simulation;
    let setup = protean_bench::bench_setup();
    let mut config = setup.cluster();
    config.workers = 2;
    let trace = setup.constant_trace(ModelId::ResNet50, 2000.0);
    c.bench_function("engine/try_place_2w_2000rps_20s", |b| {
        b.iter(|| run_simulation(&config, &ProteanBuilder::paper(), &trace))
    });
}

/// Metric aggregation over 100k records (percentiles + compliance).
fn bench_metrics(c: &mut Criterion) {
    use protean_metrics::{LatencyBreakdown, MetricsSet, RequestRecord};
    let mut m = MetricsSet::new();
    for i in 0..100_000u64 {
        m.push(RequestRecord {
            model: ModelId::ResNet50,
            strict: i % 2 == 0,
            arrival: SimTime::from_micros(i),
            completion: SimTime::from_micros(i + 100_000 + (i % 977) * 131),
            breakdown: LatencyBreakdown::default(),
        });
    }
    let cat = catalog();
    c.bench_function("metrics/summary_100k", |b| {
        b.iter(|| m.summary(&|id| cat.profile(id).slo()))
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = bench_slice_churn,
        bench_job_distribution,
        bench_reconfigurator,
        bench_trace_generation,
        bench_percentiles,
        bench_try_place,
        bench_metrics
);
criterion_main!(micro);
