//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! PROTEAN with individual mechanisms disabled, timed end to end. The
//! quality impact (SLO compliance deltas) of the same variants is
//! printed by `cargo run -p protean-experiments --bin ablations`.

use criterion::{criterion_group, criterion_main, Criterion};
use protean::{ProteanBuilder, ProteanConfig, ReconfiguratorConfig};
use protean_cluster::run_simulation;
use protean_models::ModelId;

use protean_bench::{bench_cluster, bench_setup};

fn variant(name: &'static str, f: impl FnOnce(&mut ProteanConfig)) -> ProteanBuilder {
    let mut config = ProteanConfig::paper();
    config.name = name;
    f(&mut config);
    ProteanBuilder::with_config(config, 2.0)
}

fn bench_variants(c: &mut Criterion) {
    let setup = bench_setup();
    let trace = setup.wiki_trace(ModelId::ResNet50);
    let variants: Vec<(&str, ProteanBuilder)> = vec![
        ("paper", ProteanBuilder::paper()),
        (
            "no_reorder",
            variant("PROTEAN (no reorder)", |c| c.reorder = false),
        ),
        (
            "no_eta",
            variant("PROTEAN (largest-slice strict)", |c| {
                c.eta_placement = false
            }),
        ),
        (
            "no_reconfig",
            variant("PROTEAN (static geometry)", |c| c.dynamic_reconfig = false),
        ),
        (
            "no_wait_counter",
            variant("PROTEAN (eager reconfig)", |c| {
                c.reconfigurator = ReconfiguratorConfig {
                    wait_limit: 0,
                    ..ReconfiguratorConfig::default()
                }
            }),
        ),
        (
            "last_value_predictor",
            variant("PROTEAN (no EWMA)", |c| {
                c.reconfigurator = ReconfiguratorConfig {
                    ewma_alpha: 1.0,
                    ..ReconfiguratorConfig::default()
                }
            }),
        ),
    ];
    let mut group = c.benchmark_group("ablations");
    for (label, builder) in variants {
        group.bench_function(label, |b| {
            b.iter(|| {
                let r = run_simulation(&bench_cluster(), &builder, &trace);
                assert!(r.metrics.records().len() > 100);
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = bench_variants
);
criterion_main!(ablations);
