//! One macro benchmark per paper table/figure: each iteration runs the
//! figure's core simulation at a reduced scale (20 simulated seconds),
//! so `cargo bench` exercises every experiment end to end.
//!
//! The printed *values* of each figure come from the corresponding
//! `protean-experiments` binary (`fig05_slo_vision` etc.); these
//! benches track the cost of regenerating them.

use criterion::{criterion_group, criterion_main, Criterion};
use protean::ProteanBuilder;
use protean_baselines::Baseline;
use protean_cluster::{run_simulation, SchemeBuilder};
use protean_models::ModelId;
use protean_sim::SimDuration;
use protean_spot::{ProcurementPolicy, SpotAvailability};

use protean_bench::{bench_cluster, bench_setup};

fn run(scheme: &dyn SchemeBuilder, trace: &protean_trace::TraceConfig) {
    let result = run_simulation(&bench_cluster(), scheme, trace);
    assert!(result.metrics.records().len() > 100);
}

/// Fig. 2: the five motivational schemes on one GPU (DLA workload).
fn fig02(c: &mut Criterion) {
    let setup = bench_setup();
    let mut config = bench_cluster();
    config.workers = 1;
    let mut trace = setup.constant_trace(ModelId::SimplifiedDla, 500.0);
    trace.be_pool = vec![ModelId::SimplifiedDla];
    c.bench_function("fig02_motivation/smart_mps_mig", |b| {
        b.iter(|| {
            let r = run_simulation(&config, &Baseline::SmartMpsMig, &trace);
            assert!(r.metrics.records().len() > 100);
        })
    });
}

/// Fig. 5 / Fig. 6: the primary vision comparison (one model per scheme).
fn fig05_fig06(c: &mut Criterion) {
    let setup = bench_setup();
    let trace = setup.wiki_trace(ModelId::ResNet50);
    c.bench_function("fig05_slo_vision/protean", |b| {
        b.iter(|| run(&ProteanBuilder::paper(), &trace))
    });
    c.bench_function("fig05_slo_vision/infless_llama", |b| {
        b.iter(|| run(&Baseline::InflessLlama, &trace))
    });
    c.bench_function("fig06_breakdown/molecule", |b| {
        b.iter(|| run(&Baseline::MoleculeBeta, &trace))
    });
}

/// Fig. 7: dynamic reconfiguration under BE-model rotation.
fn fig07(c: &mut Criterion) {
    let setup = bench_setup();
    let mut trace = setup.wiki_trace(ModelId::ShuffleNetV2);
    trace.be_pool = vec![ModelId::Dpn92, ModelId::MobileNet];
    trace.be_rotation_period = SimDuration::from_secs(8.0);
    c.bench_function("fig07_reconfig_timeline/protean", |b| {
        b.iter(|| run(&ProteanBuilder::paper(), &trace))
    });
}

/// Fig. 8: the latency CDF workload (SENet 18).
fn fig08(c: &mut Criterion) {
    let setup = bench_setup();
    let trace = setup.wiki_trace(ModelId::SeNet18);
    c.bench_function("fig08_latency_cdf/naive_slicing", |b| {
        b.iter(|| run(&Baseline::NaiveSlicing, &trace))
    });
}

/// Fig. 9: the spot-market experiment (hybrid under low availability).
fn fig09(c: &mut Criterion) {
    let setup = bench_setup();
    let trace = setup.wiki_trace(ModelId::ResNet50);
    let mut config = bench_cluster();
    config.procurement = ProcurementPolicy::Hybrid;
    config.availability = SpotAvailability::Low;
    config.revocation_check = SimDuration::from_secs(10.0);
    config.vm_startup = SimDuration::from_secs(10.0);
    config.procurement_retry = SimDuration::from_secs(10.0);
    c.bench_function("fig09_cost_slo/hybrid_low_availability", |b| {
        b.iter(|| {
            let r = run_simulation(&config, &ProteanBuilder::paper(), &trace);
            assert!(r.cost.total_usd > 0.0);
        })
    });
}

/// Fig. 10: throughput/utilization workloads.
fn fig10(c: &mut Criterion) {
    let setup = bench_setup();
    let trace = setup.wiki_trace(ModelId::DenseNet121);
    c.bench_function("fig10_throughput_util/protean", |b| {
        b.iter(|| run(&ProteanBuilder::paper(), &trace))
    });
}

/// Fig. 11: the erratic Twitter trace.
fn fig11(c: &mut Criterion) {
    let setup = bench_setup();
    let trace = setup.twitter_trace(ModelId::MobileNet);
    c.bench_function("fig11_twitter/protean", |b| {
        b.iter(|| run(&ProteanBuilder::paper(), &trace))
    });
}

/// Figs. 12–13: the language-model workloads.
fn fig12_fig13(c: &mut Criterion) {
    let setup = bench_setup();
    let bert = setup.wiki_trace(ModelId::Bert);
    c.bench_function("fig12_vhi_llm/protean", |b| {
        b.iter(|| run(&ProteanBuilder::paper(), &bert))
    });
    let gpt = setup.wiki_trace(ModelId::Gpt2);
    c.bench_function("fig13_gpt/protean", |b| {
        b.iter(|| run(&ProteanBuilder::paper(), &gpt))
    });
}

/// Fig. 14 / Tables 4–5: skewed and extreme strictness ratios.
fn fig14_tables(c: &mut Criterion) {
    let setup = bench_setup();
    let skewed = setup.wiki_trace_with_ratio(ModelId::Dpn92, 0.75);
    c.bench_function("fig14_skewed/protean_75_25", |b| {
        b.iter(|| run(&ProteanBuilder::paper(), &skewed))
    });
    let mut all_strict = setup.wiki_trace_with_ratio(ModelId::ResNet50, 1.0);
    all_strict.be_pool.clear();
    c.bench_function("table4_all_strict/protean", |b| {
        b.iter(|| run(&ProteanBuilder::paper(), &all_strict))
    });
    let all_be = setup.wiki_trace_with_ratio(ModelId::ResNet50, 0.0);
    c.bench_function("table5_all_be/protean", |b| {
        b.iter(|| run(&ProteanBuilder::paper(), &all_be))
    });
}

/// Figs. 15–17: tight SLO, GPUlet and Oracle comparisons.
fn fig15_to_17(c: &mut Criterion) {
    let setup = bench_setup();
    let trace = setup.wiki_trace(ModelId::ResNet50);
    let mut tight = bench_cluster();
    tight.slo_multiplier = 2.0;
    c.bench_function("fig15_tight_slo/protean", |b| {
        b.iter(|| {
            let r = run_simulation(&tight, &ProteanBuilder::paper(), &trace);
            assert!(r.metrics.records().len() > 100);
        })
    });
    c.bench_function("fig16_gpulet/gpulet", |b| {
        b.iter(|| run(&Baseline::Gpulet, &trace))
    });
    let mut oracle_cfg = bench_cluster();
    oracle_cfg.reconfig_delay = SimDuration::ZERO;
    oracle_cfg.cold_start = SimDuration::ZERO;
    c.bench_function("fig17_oracle/oracle", |b| {
        b.iter(|| {
            let r = run_simulation(&oracle_cfg, &ProteanBuilder::oracle(), &trace);
            assert!(r.metrics.records().len() > 100);
        })
    });
}

criterion_group!(
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = fig02, fig05_fig06, fig07, fig08, fig09, fig10, fig11,
        fig12_fig13, fig14_tables, fig15_to_17
);
criterion_main!(figures);
