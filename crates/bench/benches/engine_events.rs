//! Event-queue traffic under the next-completion-only scheduling
//! discipline: each slice keeps at most one live `JobFinish` event, so
//! heap traffic should track *completions*, not resident-set size.
//!
//! Every benchmark prints one `traffic:` line from [`EngineStats`]
//! before timing — events pushed/popped and finish events per simulated
//! second, the all-jobs re-projection baseline (counted live by the
//! engine), the resulting reduction ratio, stale discards and peak heap
//! size — so a `cargo bench` run tracks the scheduling discipline
//! alongside wall-clock. The reduction ratio is asserted `>= 2` for the
//! consolidated MPS run (INFless packs every batch onto one GPU, so its
//! resident sets are deep); schemes that spread load across 8 workers
//! sit near 1x because their slices rarely hold more than one job.
//!
//! [`EngineStats`]: protean_cluster::EngineStats

use criterion::{criterion_group, criterion_main, Criterion};
use protean::ProteanBuilder;
use protean_baselines::Baseline;
use protean_bench::{bench_cluster, bench_trace};
use protean_cluster::{run_simulation, SchemeBuilder, SimulationResult};

/// Prints the per-simulated-second traffic digest for one run.
fn report(id: &str, result: &SimulationResult) -> f64 {
    let s = result.stats;
    let sim_secs = result.duration.as_secs_f64().max(1e-9);
    let reduction = s.finish_events_all_jobs as f64 / (s.finish_events_pushed as f64).max(1.0);
    println!(
        "traffic: {id} pushed/s {:.1} popped/s {:.1} finish/s {:.1} \
         all-jobs/s {:.1} reduction {reduction:.2}x stale {} peak-heap {}",
        s.events_pushed as f64 / sim_secs,
        s.events_popped as f64 / sim_secs,
        s.finish_events_pushed as f64 / sim_secs,
        s.finish_events_all_jobs as f64 / sim_secs,
        s.stale_finish_events,
        s.peak_heap_len,
    );
    reduction
}

fn bench_engine_events(c: &mut Criterion) {
    let config = bench_cluster();
    let trace = bench_trace();
    let schemes: &[(&str, &dyn SchemeBuilder)] = &[
        ("protean_8w_wiki", &ProteanBuilder::paper()),
        ("consolidated_8w_wiki", &Baseline::InflessLlama),
        ("time_shared_8w_wiki", &Baseline::MoleculeBeta),
    ];
    for (id, scheme) in schemes {
        let result = run_simulation(&config, *scheme, &trace);
        let reduction = report(id, &result);
        if *id == "consolidated_8w_wiki" {
            assert!(
                reduction >= 2.0,
                "{id}: event reduction {reduction:.2}x below the 2x floor"
            );
        }
        c.bench_function(&format!("engine_events/{id}"), |b| {
            b.iter(|| run_simulation(&config, *scheme, &trace))
        });
    }
}

criterion_group!(
    name = engine_events;
    config = Criterion::default().sample_size(10);
    targets = bench_engine_events
);
criterion_main!(engine_events);
