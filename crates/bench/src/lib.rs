//! Shared helpers for the PROTEAN benchmark suite.
//!
//! The actual benchmarks live in `benches/`:
//!
//! * `micro` — hot-path costs: MPS slice admit/finish churn, PROTEAN
//!   placement decisions (Algorithm 1 + η), the GPU Reconfigurator
//!   step (Algorithm 2), trace generation and metric aggregation.
//! * `figures` — one macro benchmark per paper table/figure: each runs
//!   the figure's core simulation at a reduced duration, so
//!   `cargo bench` regenerates every experiment end to end and tracks
//!   its wall-clock cost.
//! * `ablations` — PROTEAN with individual design choices disabled
//!   (reordering, η placement, dynamic reconfiguration), timing the
//!   full simulation of each variant. The corresponding *quality*
//!   ablation table is printed by
//!   `cargo run -p protean-experiments --bin ablations`.

use protean_cluster::ClusterConfig;
use protean_experiments::PaperSetup;
use protean_models::ModelId;
use protean_trace::TraceConfig;

/// The reduced-scale setup used by the macro benches: 20 simulated
/// seconds keeps a full `cargo bench` run in minutes while still
/// pushing ~100k requests per iteration through the cluster.
pub fn bench_setup() -> PaperSetup {
    PaperSetup {
        duration_secs: 20.0,
        seed: 42,
    }
}

/// The bench cluster: the paper's 8 workers with a short measurement
/// warmup so the 20 s window is mostly measured.
pub fn bench_cluster() -> ClusterConfig {
    let mut config = bench_setup().cluster();
    config.warmup = protean_sim::SimDuration::from_secs(5.0);
    config
}

/// The standard bench workload (ResNet 50 on the Wiki trace).
pub fn bench_trace() -> TraceConfig {
    bench_setup().wiki_trace(ModelId::ResNet50)
}

#[cfg(test)]
mod tests {
    use super::*;
    use protean::ProteanBuilder;
    use protean_cluster::run_simulation;
    use protean_metrics::record::Class;

    #[test]
    fn bench_workload_is_nontrivial() {
        let result = run_simulation(&bench_cluster(), &ProteanBuilder::paper(), &bench_trace());
        assert!(result.metrics.count(Class::All) > 10_000);
    }
}
