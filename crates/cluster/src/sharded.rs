//! Sharded fleet engine: parallel discrete-event simulation inside a
//! single run, bit-identical to the sequential [`crate::engine`].
//!
//! # Partition
//!
//! The fleet's `W` workers are strided across `S` shards (worker `g`
//! lives on shard `g % S`). Each shard owns, exclusively:
//!
//! * its workers (GPU, pools, queues, running batches),
//! * a [`KeyedEventQueue`] holding the worker-local event classes
//!   ([`ShardEvent`]: container boots, job completions, reconfiguration
//!   completions),
//! * a fleet-width [`DispatchIndex`] populated only in its own slots,
//! * its slice of every output stream (metrics, journal, timelines,
//!   engine stats).
//!
//! Everything *shared* — the gateway accumulators and backlog, the spot
//! market and VM ledger, the batch-id allocator, the auditor — lives on
//! the single [`Coordinator`], which also executes every serial event
//! class ([`CoordEvent`]: window expiries, monitor ticks, the whole
//! spot-VM lifecycle) and every arrival, in exactly the sequential
//! engine's order.
//!
//! # Phases and the key scheme
//!
//! Between two serial steps the coordinator runs a *phase*: every shard
//! advances its own queue up to an exclusive [`EventKey`] bound, in
//! parallel. Bit-identity rests on the keys:
//!
//! * Serial-context pushes (coordinator) take `(time, ++gseq, 0)` —
//!   `gseq` is the global push counter, so their relative order is the
//!   sequential engine's FIFO insertion order.
//! * Phase pushes by shard `s` take `(time, G, ((s+1) << 48) | ++ctr)`
//!   where `G` is the `gseq` snapshot at phase start and `ctr` is the
//!   shard's monotone counter. They sort after everything pushed
//!   serially before the phase and before everything pushed after it —
//!   exactly where the sequential engine's internal counter would have
//!   put them.
//! * An arrival at `ta` bounds the phase at `(ta, 0, 0)`: real event
//!   keys carry `major ≥ 1`, so events *at* `ta` wait — the sequential
//!   `ta <= te` arrival-wins rule.
//!
//! Two phase events with the *same* time but different shards may pop
//! in a different relative order than sequentially. That is harmless by
//! construction: phase handlers touch only their own shard's state and
//! append to mergeable output buffers, so their effects commute; every
//! shared-state mutation happens on the coordinator in serial order.
//!
//! # Merge
//!
//! Journal entries, audit hook calls and timeline points are buffered
//! as `(ctx_key, n, payload)` where `ctx_key` identifies the execution
//! context (the popped event's key, or `(ta, 0, ++dseq)` for the
//! `dseq`-th arrival) and `n` counts records within the context. A sort
//! by `(ctx_key, n)` reconstructs the sequential recording order
//! exactly. Metrics merge by [`MetricsSet::absorb`]; the golden digest
//! is insensitive to record order (it ranks sorted latencies and exact
//! counters), which is what makes per-shard record buffers safe.
//!
//! # Documented deviations (none digest-visible)
//!
//! * `EngineStats::peak_heap_len` is the *sum* of per-queue peaks (the
//!   queues peak at different instants).
//! * `dispatch_scan_visits` grows ~`S`-fold: each dispatch reduction
//!   queries every shard's index root.
//! * The auditor counts the same sweep opportunities (and reports the
//!   same `checks`), but physically collapses the sweeps inside one
//!   phase into a single fleet sweep at the phase boundary.
//! * `AuditReport`/journal/stats are not digest material; all digest
//!   fields (counts, sorted latencies, cost, utilization, cold starts,
//!   reconfigs, censored, evictions) merge exactly.

use std::cell::UnsafeCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

use protean_gpu::{JobId, JobSpec};
use protean_metrics::{LatencyBreakdown, MetricsSet, RequestRecord};
use protean_models::{Catalog, ModelId};
use protean_sim::{EventKey, KeyedEventQueue, RngFactory, SimRng, SimTime, TimeSeries};
use protean_spot::{PricingTable, ProcurementPolicy, SpotOracle, VmId, VmLedger, VmTier};
use protean_trace::{Lookahead, Request, Trace, TraceConfig, TraceStream};

use crate::audit::Auditor;
use crate::batch::{Accumulator, Batch, BatchId};
use crate::container::Acquire;
use crate::dispatch::DispatchIndex;
use crate::engine::{ClusterConfig, CostReport, EngineStats, GeometryChange, SimulationResult};
use crate::journal::{Journal, JournalEvent};
use crate::scheme::{BatchView, DispatchPolicy, PlacementCtx, ReconfigCtx, SchemeBuilder};
use crate::worker::{RunningBatch, Worker, WorkerStatus};

/// Epoch value signalling shard worker threads to exit.
const SHUTDOWN: u64 = u64::MAX;

/// Shard-tag shift for phase-push minors: `minor = ((s+1) << 48) | ctr`.
const SHARD_TAG_SHIFT: u32 = 48;

/// Worker-local event classes. During a phase a shard only ever pushes
/// these for its *own* workers; the coordinator deposits them with
/// serial keys (cold-start and predictive boots, initial provisioning).
#[derive(Debug)]
enum ShardEvent {
    BootDone {
        worker: usize,
        model: ModelId,
        vm_epoch: u64,
    },
    JobFinish {
        worker: usize,
        slice: usize,
        job: JobId,
        generation: u64,
        epoch: u64,
    },
    ReconfigDone {
        worker: usize,
        epoch: u64,
    },
}

/// Serial event classes, handled by the coordinator between phases.
/// They all touch shared state (gateway, market, ledger) or need the
/// fleet-wide dispatch reduction.
#[derive(Debug)]
enum CoordEvent {
    WindowExpire {
        model: ModelId,
        strict: bool,
        seq: u64,
    },
    MonitorTick,
    RevocationCheck {
        worker: usize,
    },
    EvictionFinal {
        worker: usize,
    },
    VmReady {
        worker: usize,
        tier: VmTier,
    },
    ProcurementRetry {
        worker: usize,
    },
}

/// Buffered audit hook from a phase context, flushed (sorted) at the
/// phase boundary. Coordinator-context hooks apply directly instead —
/// buffering them would misorder a placement against a later
/// eviction-orphan re-dispatch of the same batch.
#[derive(Debug)]
enum Hook {
    Placed(BatchId, usize),
    Finished(BatchId, usize),
}

/// How an execution context allocates event keys.
enum KeyAlloc<'c> {
    /// Coordinator context: `(time, ++gseq, 0)`.
    Serial { gseq: &'c mut u64 },
    /// Phase context on some shard: `(time, major, shard-tagged ctr)`.
    Phase { major: u64 },
}

/// Where an execution context's audit hooks go.
enum AuditSink<'c> {
    /// Straight into the auditor (coordinator contexts).
    Direct(&'c mut Auditor),
    /// Into the shard's hook buffer (phase contexts).
    Buffered,
}

/// Everything a [`ShardCore`] handler needs from its execution context:
/// the clock, the context key and record counter for output ordering,
/// the key allocator and the audit sink.
struct Ctx<'c> {
    config: &'c ClusterConfig,
    catalog: &'c Catalog,
    now: SimTime,
    /// Identifies this execution context in the merge order.
    ctx_key: EventKey,
    /// Next record ordinal within the context (shared across journal,
    /// hooks and timelines so a sort by `(ctx_key, n)` reproduces the
    /// context's internal recording order).
    n: u64,
    alloc: KeyAlloc<'c>,
    audit: AuditSink<'c>,
}

impl Ctx<'_> {
    fn next_n(&mut self) -> u64 {
        let n = self.n;
        self.n += 1;
        n
    }
}

/// Allocates the key for an event push from this context. A free
/// function (not a `ShardCore` method) so callers can borrow
/// `self.ctr` alongside other `ShardCore` fields.
fn next_event_key(ctx: &mut Ctx<'_>, shard: usize, ctr: &mut u64, time: SimTime) -> EventKey {
    match &mut ctx.alloc {
        KeyAlloc::Serial { gseq } => {
            **gseq += 1;
            EventKey::new(time, **gseq, 0)
        }
        KeyAlloc::Phase { major } => {
            *ctr += 1;
            debug_assert!(*ctr < 1 << SHARD_TAG_SHIFT, "phase counter overflow");
            EventKey::new(time, *major, ((shard as u64 + 1) << SHARD_TAG_SHIFT) | *ctr)
        }
    }
}

/// One shard's exclusively-owned state. During a phase exactly one
/// thread touches a given core; between phases only the coordinator
/// does.
struct ShardCore {
    shard: usize,
    /// Shard count (the stride of the worker partition).
    stride: usize,
    /// Fleet width `W` (the dispatch index spans all slots).
    /// Owned workers, locally indexed: local `l` is global
    /// `shard + l * stride`. `Worker::idx` stays global.
    workers: Vec<Worker>,
    /// Per-owned-worker execution-jitter streams
    /// (`indexed_stream("engine.exec_jitter", global_idx)`), identical
    /// to the sequential engine's per-worker streams.
    jitter_rngs: Vec<SimRng>,
    queue: KeyedEventQueue<ShardEvent>,
    /// Fleet-width index with only this shard's slots populated; keys
    /// carry global worker indices, so cross-shard reduction is a min
    /// over the per-shard roots.
    index: DispatchIndex,
    metrics: MetricsSet,
    /// `(ctx_key, n, event)` journal entries, merged by key at the end.
    journal_buf: Vec<(EventKey, u64, JournalEvent)>,
    /// Buffered phase-context audit hooks.
    hook_buf: Vec<(EventKey, u64, Hook)>,
    /// Per-strict-batch latency samples.
    strict_lat_buf: Vec<(EventKey, u64, f64)>,
    /// Completed MIG geometry changes.
    geom_buf: Vec<(EventKey, u64, GeometryChange)>,
    /// Reusable candidate buffer for `try_place`.
    scratch_views: Vec<(BatchId, BatchView)>,
    stats: EngineStats,
    reconfigs: u64,
    /// Events handled in the current phase (drained by the coordinator
    /// at each phase boundary for audit-opportunity accounting).
    events_handled: u64,
    /// Phase-push minor counter: monotone for the whole run, never
    /// reset, so phase keys stay unique and chronologically ordered
    /// across phases sharing a `major` snapshot.
    ctr: u64,
    journal_enabled: bool,
    audit_enabled: bool,
}

impl ShardCore {
    fn new(
        shard: usize,
        stride: usize,
        config: &ClusterConfig,
        scheme: &dyn SchemeBuilder,
        factory: &RngFactory,
    ) -> Self {
        let total_slots = config.workers;
        let globals: Vec<usize> = (shard..total_slots).step_by(stride).collect();
        let workers = globals
            .iter()
            .map(|&g| Worker::new(g, scheme.build(g), SimTime::ZERO))
            .collect();
        let jitter_rngs = globals
            .iter()
            .map(|&g| factory.indexed_stream("engine.exec_jitter", g as u64))
            .collect();
        ShardCore {
            shard,
            stride,
            workers,
            jitter_rngs,
            queue: KeyedEventQueue::new(),
            index: DispatchIndex::new(total_slots),
            metrics: if config.aggregate_metrics {
                MetricsSet::aggregate()
            } else {
                MetricsSet::new()
            },
            journal_buf: Vec::new(),
            hook_buf: Vec::new(),
            strict_lat_buf: Vec::new(),
            geom_buf: Vec::new(),
            scratch_views: Vec::new(),
            stats: EngineStats::default(),
            reconfigs: 0,
            events_handled: 0,
            ctr: 0,
            journal_enabled: config.journal_capacity > 0,
            audit_enabled: config.audit,
        }
    }

    /// Global worker index → local slot.
    fn local(&self, g: usize) -> usize {
        debug_assert_eq!(g % self.stride, self.shard, "worker {g} not on this shard");
        g / self.stride
    }

    fn refresh_index(&mut self, l: usize) {
        self.index.refresh_worker(&self.workers[l]);
    }

    fn journal(&mut self, ctx: &mut Ctx<'_>, ev: JournalEvent) {
        if self.journal_enabled {
            let n = ctx.next_n();
            self.journal_buf.push((ctx.ctx_key, n, ev));
        }
    }

    fn audit_placed(&mut self, ctx: &mut Ctx<'_>, id: BatchId, g: usize) {
        match &mut ctx.audit {
            AuditSink::Direct(a) => a.batch_placed(ctx.now, id, g),
            AuditSink::Buffered => {
                if self.audit_enabled {
                    let n = ctx.next_n();
                    self.hook_buf.push((ctx.ctx_key, n, Hook::Placed(id, g)));
                }
            }
        }
    }

    fn audit_finished(&mut self, ctx: &mut Ctx<'_>, id: BatchId, g: usize) {
        match &mut ctx.audit {
            AuditSink::Direct(a) => a.batch_finished(ctx.now, id, g),
            AuditSink::Buffered => {
                if self.audit_enabled {
                    let n = ctx.next_n();
                    self.hook_buf.push((ctx.ctx_key, n, Hook::Finished(id, g)));
                }
            }
        }
    }

    /// Drains this shard's queue up to (exclusive) `bound`, handling
    /// each event in key order. `major` is the phase's `gseq` snapshot
    /// for keys of newly pushed events.
    fn advance(&mut self, config: &ClusterConfig, catalog: &Catalog, bound: EventKey, major: u64) {
        loop {
            match self.queue.peek_key() {
                Some(k) if k < bound => {}
                _ => break,
            }
            let (k, ev) = self.queue.pop().expect("peeked");
            let mut ctx = Ctx {
                config,
                catalog,
                now: k.time,
                ctx_key: k,
                n: 0,
                alloc: KeyAlloc::Phase { major },
                audit: AuditSink::Buffered,
            };
            match ev {
                ShardEvent::BootDone {
                    worker,
                    model,
                    vm_epoch,
                } => self.on_boot_done(&mut ctx, worker, model, vm_epoch),
                ShardEvent::JobFinish {
                    worker,
                    slice,
                    job,
                    generation,
                    epoch,
                } => self.on_job_finish(&mut ctx, worker, slice, job, generation, epoch),
                ShardEvent::ReconfigDone { worker, epoch } => {
                    self.on_reconfig_done(&mut ctx, worker, epoch)
                }
            }
            self.events_handled += 1;
        }
    }

    // ---- handler ports (bit-identical to crate::engine) -------------

    fn on_boot_done(&mut self, ctx: &mut Ctx<'_>, g: usize, model: ModelId, vm_epoch: u64) {
        let l = self.local(g);
        let now = ctx.now;
        let w = &mut self.workers[l];
        if w.vm_epoch != vm_epoch {
            self.stats.stale_boot_events += 1;
            return;
        }
        let waiting = w.wait_container.get_mut(&model).and_then(|q| q.pop_front());
        let pool = w.pools.entry(model).or_default();
        match waiting {
            Some(mut batch) => {
                pool.boot_done(now, true);
                batch.cold_wait_ms = now.saturating_since(batch.sealed_at).as_millis_f64();
                let mem = ctx.catalog.profile(model).mem_gb;
                w.sched_queue.push(batch, mem);
                self.try_place(ctx, g);
            }
            None => pool.boot_done(now, false),
        }
    }

    fn on_job_finish(
        &mut self,
        ctx: &mut Ctx<'_>,
        g: usize,
        slice: usize,
        job: JobId,
        generation: u64,
        epoch: u64,
    ) {
        let l = self.local(g);
        let w = &mut self.workers[l];
        if !w.finish_event_live(slice, generation, epoch) {
            self.stats.stale_finish_events += 1;
            return;
        }
        let now = ctx.now;
        let (finished, next) = match w.gpu.slice_mut(slice).finish(now, job) {
            Ok(ok) => ok,
            Err(_) => {
                // Stale in a way the generation missed: re-arm the
                // slice's single live finish event.
                self.stats.stale_finish_events += 1;
                let epoch = w.epoch;
                if let Some(c) = w.gpu.slice(slice).next_completion(now) {
                    self.stats.finish_events_pushed += 1;
                    let k = next_event_key(ctx, self.shard, &mut self.ctr, c.at);
                    self.queue.push(
                        k,
                        ShardEvent::JobFinish {
                            worker: g,
                            slice,
                            job: c.job,
                            generation: c.generation,
                            epoch,
                        },
                    );
                }
                return;
            }
        };
        let batch_id = BatchId(finished.spec.id.0);
        if !w.running.contains_key(&batch_id) {
            return;
        }
        let new_epoch = w.epoch;
        self.stats.finish_events_all_jobs += w.gpu.slice(slice).job_count() as u64;
        if let Some(c) = next {
            self.stats.finish_events_pushed += 1;
            let k = next_event_key(ctx, self.shard, &mut self.ctr, c.at);
            self.queue.push(
                k,
                ShardEvent::JobFinish {
                    worker: g,
                    slice,
                    job: c.job,
                    generation: c.generation,
                    epoch: new_epoch,
                },
            );
        }
        let running = self.workers[l]
            .running
            .remove(&batch_id)
            .expect("checked above");
        self.audit_finished(ctx, batch_id, g);
        self.journal(
            ctx,
            JournalEvent::BatchFinished {
                batch: batch_id,
                worker: g,
            },
        );
        self.record_batch_completion(ctx, g, &running);
        // The container frees: reuse for a batch waiting on a
        // container, otherwise park warm.
        let model = running.batch.model;
        let w = &mut self.workers[l];
        let next = w.wait_container.get_mut(&model).and_then(|q| q.pop_front());
        let pool = w.pools.entry(model).or_default();
        match next {
            Some(batch) => {
                pool.release(now, true);
                let mem = ctx.catalog.profile(model).mem_gb;
                w.sched_queue.push(batch, mem);
            }
            None => pool.release(now, false),
        }
        self.maybe_begin_reconfigure(ctx, g);
        self.try_place(ctx, g);
    }

    fn record_batch_completion(&mut self, ctx: &mut Ctx<'_>, g: usize, running: &RunningBatch) {
        let l = self.local(g);
        let now = ctx.now;
        let exec_ms = now.saturating_since(running.exec_start).as_millis_f64();
        let interference_ms = (exec_ms - running.solo_on_slice_ms).max(0.0);
        let deficiency_ms = (running.solo_on_slice_ms - running.solo_7g_ms).max(0.0);
        let cold_ms = running.batch.cold_wait_ms;
        let measure_from = SimTime::ZERO + ctx.config.warmup;
        for req in &running.batch.requests {
            if req.arrival < measure_from {
                let w = &mut self.workers[l];
                w.outstanding = w.outstanding.saturating_sub(1);
                continue;
            }
            let total_ms = now.saturating_since(req.arrival).as_millis_f64();
            let queueing_ms =
                (total_ms - cold_ms - interference_ms - deficiency_ms - running.solo_7g_ms)
                    .max(0.0);
            self.metrics.push(RequestRecord {
                model: running.batch.model,
                strict: running.batch.strict,
                arrival: req.arrival,
                completion: now,
                breakdown: LatencyBreakdown {
                    min_exec_ms: running.solo_7g_ms,
                    deficiency_ms,
                    interference_ms,
                    queueing_ms,
                    cold_start_ms: cold_ms,
                },
            });
            let w = &mut self.workers[l];
            w.outstanding = w.outstanding.saturating_sub(1);
        }
        if running.batch.strict && !ctx.config.aggregate_metrics {
            let mean_lat_ms = running
                .batch
                .requests
                .iter()
                .map(|r| now.saturating_since(r.arrival).as_millis_f64())
                .sum::<f64>()
                / running.batch.requests.len().max(1) as f64;
            let n = ctx.next_n();
            self.strict_lat_buf.push((ctx.ctx_key, n, mean_lat_ms));
        }
        self.refresh_index(l);
    }

    /// The placement loop, verbatim from the sequential engine except
    /// that event pushes go through [`next_event_key`] and the journal
    /// and audit hooks through the context's buffers/sink.
    fn try_place(&mut self, ctx: &mut Ctx<'_>, g: usize) {
        let l = self.local(g);
        let mut views = std::mem::take(&mut self.scratch_views);
        loop {
            if !self.workers[l].gpu.accepting() {
                break;
            }
            views.clear();
            self.workers[l]
                .sched_queue
                .for_each_candidate(ctx.config.scan_depth, |b| {
                    views.push((
                        b.id,
                        BatchView {
                            model: b.model,
                            strict: b.strict,
                            size: b.size(),
                        },
                    ));
                });
            if views.is_empty() {
                break;
            }
            let mut placed_any = false;
            for &(batch_id, view) in &views {
                let placement = {
                    let w = &mut self.workers[l];
                    let pctx = PlacementCtx {
                        now: ctx.now,
                        gpu: &w.gpu,
                        queued_be_mem_gb: w.sched_queue.be_mem_gb(),
                        catalog: ctx.catalog,
                    };
                    w.scheme.place(&pctx, &view)
                };
                let Some(p) = placement else { continue };
                if p.slice >= self.workers[l].gpu.slices().len() {
                    continue;
                }
                let profile = ctx.catalog.profile(view.model);
                let slice_profile = self.workers[l].gpu.slice(p.slice).profile();
                let fill = f64::from(view.size) / f64::from(profile.batch_size);
                let fill_factor = profile.fill_factor(fill);
                let jitter = if ctx.config.exec_jitter_sigma > 0.0 {
                    (self.jitter_rngs[l].standard_normal() * ctx.config.exec_jitter_sigma)
                        .exp()
                        .clamp(0.6, 1.7)
                } else {
                    1.0
                };
                let mut solo = profile
                    .solo_on(slice_profile)
                    .mul_f64(p.solo_scale.max(0.0) * fill_factor * jitter);
                if self.workers[l].gpu.slice(p.slice).mode() == protean_gpu::SharingMode::TimeShared
                {
                    solo += protean_sim::SimDuration::from_millis(
                        ctx.config.time_share_overhead_base_ms
                            + ctx.config.time_share_overhead_ms_per_gb * profile.mem_gb,
                    );
                }
                let spec = JobSpec {
                    id: JobId(batch_id.0),
                    solo,
                    fbr: profile.fbr * p.fbr_scale.max(0.0),
                    mem_gb: profile.mem_gb,
                };
                let w = &mut self.workers[l];
                let admitted = w.gpu.slice_mut(p.slice).admit(ctx.now, spec);
                match admitted {
                    Ok(next) => {
                        let batch = w
                            .sched_queue
                            .remove(batch_id, profile.mem_gb)
                            .expect("placed batch was queued");
                        w.running.insert(
                            batch_id,
                            RunningBatch {
                                batch,
                                slice: p.slice,
                                exec_start: ctx.now,
                                solo_on_slice_ms: solo.as_millis_f64(),
                                solo_7g_ms: profile.solo_7g.as_millis_f64() * fill_factor * jitter,
                            },
                        );
                        let epoch = w.epoch;
                        let job_count = w.gpu.slice(p.slice).job_count() as u64;
                        self.stats.finish_events_all_jobs += job_count;
                        self.stats.finish_events_pushed += 1;
                        let k = next_event_key(ctx, self.shard, &mut self.ctr, next.at);
                        self.queue.push(
                            k,
                            ShardEvent::JobFinish {
                                worker: g,
                                slice: p.slice,
                                job: next.job,
                                generation: next.generation,
                                epoch,
                            },
                        );
                        self.audit_placed(ctx, batch_id, g);
                        self.journal(
                            ctx,
                            JournalEvent::BatchPlaced {
                                batch: batch_id,
                                worker: g,
                                slice: p.slice,
                            },
                        );
                        placed_any = true;
                    }
                    Err(_) => {
                        // No room right now; the batch stays queued.
                    }
                }
            }
            if !placed_any {
                break;
            }
        }
        self.scratch_views = views;
    }

    fn maybe_begin_reconfigure(&mut self, ctx: &mut Ctx<'_>, g: usize) {
        let l = self.local(g);
        let w = &mut self.workers[l];
        if matches!(w.gpu.state(), protean_gpu::GpuState::Draining { .. }) && w.gpu.is_idle() {
            if let Ok(until) = w.gpu.try_begin_reconfigure(ctx.now) {
                let epoch = w.epoch;
                let k = next_event_key(ctx, self.shard, &mut self.ctr, until);
                self.queue
                    .push(k, ShardEvent::ReconfigDone { worker: g, epoch });
            }
        }
    }

    fn on_reconfig_done(&mut self, ctx: &mut Ctx<'_>, g: usize, epoch: u64) {
        let l = self.local(g);
        let w = &mut self.workers[l];
        if w.epoch != epoch {
            return; // VM replaced while reconfiguring
        }
        if w.gpu.complete_reconfigure(ctx.now).is_ok() {
            w.epoch += 1;
            self.reconfigs += 1;
            let geometry = w.gpu.geometry().to_string();
            self.journal(
                ctx,
                JournalEvent::Reconfigured {
                    worker: g,
                    geometry: geometry.clone(),
                },
            );
            let n = ctx.next_n();
            self.geom_buf.push((
                ctx.ctx_key,
                n,
                GeometryChange {
                    at: ctx.now,
                    worker: g,
                    geometry,
                },
            ));
            self.refresh_index(l);
            self.try_place(ctx, g);
        }
    }
}

/// Per-shard synchronization block, cache-line padded so one shard's
/// epoch stores do not false-share with its neighbours'.
#[repr(align(128))]
struct ShardSync {
    /// Phase epoch the coordinator wants this shard to run
    /// ([`SHUTDOWN`] = exit).
    epoch: AtomicU64,
    /// Last epoch this shard finished.
    done: AtomicU64,
    bound_time: AtomicU64,
    bound_major: AtomicU64,
    bound_minor: AtomicU64,
    phase_major: AtomicU64,
}

impl ShardSync {
    fn new() -> Self {
        ShardSync {
            epoch: AtomicU64::new(0),
            done: AtomicU64::new(0),
            bound_time: AtomicU64::new(0),
            bound_major: AtomicU64::new(0),
            bound_minor: AtomicU64::new(0),
            phase_major: AtomicU64::new(0),
        }
    }
}

/// A [`ShardCore`] behind an [`UnsafeCell`] so shard worker threads can
/// take `&mut` access through a shared reference during phases.
struct ShardCell(UnsafeCell<ShardCore>);

/// SAFETY: access to the inner `ShardCore` is mutually exclusive by
/// protocol, not by type: between phases only the coordinator touches
/// any core; during a phase each signalled shard thread touches only
/// its own core, and the coordinator only touches cores it did not
/// signal. Hand-off is published by the `ShardSync` epoch/done
/// acquire/release pairs. The cell additionally asserts that the
/// contained state is safe to *move* across threads — `ShardCore`
/// holds `Box<dyn Scheme>` trait objects and `SimRng` streams without
/// `Send`/`Sync` bounds, which is sound because every scheme in this
/// workspace is a plain value struct (no `Rc`, no thread-local
/// handles); `SchemeBuilder: Send + Sync` already commits builders to
/// that contract.
unsafe impl Sync for ShardCell {}

/// Shard worker thread body: wait for a phase signal, drain the shard's
/// queue to the published bound, report done. Parks after a short spin
/// so idle shards cost nothing between bursts.
fn shard_worker_loop(
    cell: &ShardCell,
    sync: &ShardSync,
    config: &ClusterConfig,
    catalog: &Catalog,
) {
    let mut seen = 0u64;
    loop {
        let mut e = sync.epoch.load(Ordering::Acquire);
        let mut spins = 0u32;
        while e == seen {
            spins += 1;
            if spins > 4096 {
                std::thread::park();
                spins = 0;
            } else {
                std::hint::spin_loop();
            }
            e = sync.epoch.load(Ordering::Acquire);
        }
        if e == SHUTDOWN {
            return;
        }
        let bound = EventKey::new(
            SimTime::from_micros(sync.bound_time.load(Ordering::Relaxed)),
            sync.bound_major.load(Ordering::Relaxed),
            sync.bound_minor.load(Ordering::Relaxed),
        );
        let major = sync.phase_major.load(Ordering::Relaxed);
        // SAFETY: the coordinator signalled this epoch and will not
        // touch this core until it observes `done == e`.
        let core = unsafe { &mut *cell.0.get() };
        core.advance(config, catalog, bound, major);
        sync.done.store(e, Ordering::Release);
        seen = e;
    }
}

/// What a run feeds the coordinator: a materialised request vector or a
/// pair of lazy streams (arrivals + the prewarm pre-scan).
enum Source {
    Materialised(Vec<Request>, protean_sim::SimDuration),
    Streaming(Box<TraceStream>, Box<TraceStream>),
}

/// The serial half of the sharded engine: owns all shared state and
/// runs every arrival and [`CoordEvent`] in sequential order, with
/// shard phases in between.
struct Coordinator<'a> {
    config: &'a ClusterConfig,
    catalog: &'a Catalog,
    cells: &'a [ShardCell],
    syncs: &'a [ShardSync],
    /// Thread handles for signalling, indexed by shard (`None` = that
    /// shard always runs inline on the coordinator).
    threads: Vec<Option<std::thread::Thread>>,
    epoch: u64,
    market: &'a mut dyn SpotOracle,
    ledger: VmLedger,
    accumulators: HashMap<(ModelId, bool), Accumulator>,
    backlog: VecDeque<Batch>,
    coord_queue: KeyedEventQueue<CoordEvent>,
    /// Global serial push counter — the sequential engine's event-queue
    /// insertion counter, reified into the keys.
    gseq: u64,
    /// Arrival-context counter for `(ta, 0, dseq)` merge keys.
    dseq: u64,
    now: SimTime,
    cutoff: SimTime,
    next_batch_id: u64,
    dispatch_policy: DispatchPolicy,
    /// Censored-request records (pushed after the cutoff, merged last —
    /// the same position they hold in the sequential record stream).
    censor_metrics: MetricsSet,
    journal_buf: Vec<(EventKey, u64, JournalEvent)>,
    stats: EngineStats,
    audit: Auditor,
    evictions: u64,
    censored: u64,
    /// Reusable distinct-model buffer for the prewarm pre-pass.
    scratch_models: Vec<ModelId>,
    /// Reusable hook-merge buffer for phase boundaries.
    scratch_hooks: Vec<(EventKey, u64, Hook)>,
    /// Reusable participating-shard list for `run_phase`.
    scratch_parts: Vec<usize>,
    /// Current serial context's merge key and record ordinal.
    ctx_key: EventKey,
    ctx_n: u64,
}

impl<'a> Coordinator<'a> {
    fn new(
        config: &'a ClusterConfig,
        catalog: &'a Catalog,
        cells: &'a [ShardCell],
        syncs: &'a [ShardSync],
        dispatch_policy: DispatchPolicy,
        market: &'a mut dyn SpotOracle,
    ) -> Self {
        assert!(config.workers > 0, "cluster needs at least one worker");
        Coordinator {
            config,
            catalog,
            cells,
            syncs,
            threads: vec![None; cells.len()],
            epoch: 0,
            market,
            ledger: VmLedger::new(PricingTable::paper_table3(), config.provider),
            accumulators: HashMap::new(),
            backlog: VecDeque::new(),
            coord_queue: KeyedEventQueue::new(),
            gseq: 0,
            dseq: 0,
            now: SimTime::ZERO,
            cutoff: SimTime::MAX,
            next_batch_id: 0,
            dispatch_policy,
            censor_metrics: if config.aggregate_metrics {
                MetricsSet::aggregate()
            } else {
                MetricsSet::new()
            },
            journal_buf: Vec::new(),
            stats: EngineStats::default(),
            audit: Auditor::new(config.audit, config.audit_every_n),
            evictions: 0,
            censored: 0,
            scratch_models: Vec::new(),
            scratch_hooks: Vec::new(),
            scratch_parts: Vec::new(),
            ctx_key: EventKey::new(SimTime::ZERO, 0, 0),
            ctx_n: 0,
        }
    }

    fn shards(&self) -> usize {
        self.cells.len()
    }

    fn total_workers(&self) -> usize {
        self.config.workers
    }

    /// Between-phase access to a shard core. SAFETY: caller must be in
    /// a serial section (no phase in flight), which every call site in
    /// this file is — phases are bracketed by `run_phase`.
    fn core(&self, s: usize) -> &'a ShardCore {
        unsafe { &*self.cells[s].0.get() }
    }

    /// Mutable between-phase access. The returned borrow is tied to the
    /// cells' lifetime, not `&self`, so callers can hold it across
    /// `&mut self` calls — the aliasing discipline (never two live
    /// borrows of the same core) is maintained manually at each call
    /// site.
    #[allow(clippy::mut_from_ref)]
    fn core_mut(&self, s: usize) -> &'a mut ShardCore {
        unsafe { &mut *self.cells[s].0.get() }
    }

    /// Allocates a serial event key — the sequential engine's
    /// `queue.push` counter position.
    fn serial_key(&mut self, time: SimTime) -> EventKey {
        self.gseq += 1;
        EventKey::new(time, self.gseq, 0)
    }

    fn push_coord(&mut self, time: SimTime, ev: CoordEvent) {
        let k = self.serial_key(time);
        self.coord_queue.push(k, ev);
    }

    /// Opens a serial execution context for output-merge ordering.
    fn begin_ctx(&mut self, key: EventKey) {
        self.ctx_key = key;
        self.ctx_n = 0;
    }

    fn cjournal(&mut self, ev: JournalEvent) {
        if self.config.journal_capacity > 0 {
            self.journal_buf.push((self.ctx_key, self.ctx_n, ev));
            self.ctx_n += 1;
        }
    }

    /// Runs a [`ShardCore`] method in the current serial context:
    /// serial key allocation, direct audit sink, shared record ordinal.
    fn with_serial_ctx<R>(
        &mut self,
        g: usize,
        f: impl FnOnce(&mut ShardCore, &mut Ctx<'_>, usize) -> R,
    ) -> R {
        let core = self.core_mut(g % self.shards());
        let mut ctx = Ctx {
            config: self.config,
            catalog: self.catalog,
            now: self.now,
            ctx_key: self.ctx_key,
            n: self.ctx_n,
            alloc: KeyAlloc::Serial {
                gseq: &mut self.gseq,
            },
            audit: AuditSink::Direct(&mut self.audit),
        };
        let r = f(core, &mut ctx, g);
        self.ctx_n = ctx.n;
        r
    }

    fn try_place_on(&mut self, g: usize) {
        self.with_serial_ctx(g, |core, ctx, g| core.try_place(ctx, g));
    }

    fn maybe_begin_reconfigure_on(&mut self, g: usize) {
        self.with_serial_ctx(g, |core, ctx, g| core.maybe_begin_reconfigure(ctx, g));
    }

    // ---- startup ----------------------------------------------------

    fn provision_initial_vms(&mut self) {
        let s_count = self.shards();
        for g in 0..self.total_workers() {
            let policy = self.config.procurement;
            let tier = match policy {
                ProcurementPolicy::OnDemandOnly => Some(VmTier::OnDemand),
                _ => policy.replacement_tier(self.market.try_acquire_spot(self.now, g)),
            };
            match tier {
                Some(tier) => {
                    let id = self.ledger.allocate_id();
                    self.ledger.open(id, tier, SimTime::ZERO);
                    let core = self.core_mut(g % s_count);
                    let l = core.local(g);
                    let w = &mut core.workers[l];
                    w.vm = Some((id, tier));
                    w.status = WorkerStatus::Up;
                    w.gpu.set_reconfig_delay(self.config.reconfig_delay);
                    if tier == VmTier::Spot {
                        self.push_coord(
                            SimTime::ZERO + self.config.revocation_check,
                            CoordEvent::RevocationCheck { worker: g },
                        );
                    }
                }
                None => {
                    let core = self.core_mut(g % s_count);
                    let l = core.local(g);
                    core.workers[l].status = WorkerStatus::Down;
                    self.push_coord(
                        SimTime::ZERO + self.config.procurement_retry,
                        CoordEvent::ProcurementRetry { worker: g },
                    );
                }
            }
        }
        for g in 0..self.total_workers() {
            let core = self.core_mut(g % s_count);
            let l = core.local(g);
            core.refresh_index(l);
        }
        self.push_coord(
            SimTime::ZERO + self.config.monitor_interval,
            CoordEvent::MonitorTick,
        );
    }

    fn prewarm_pools(&mut self, requests: &[Request]) {
        if self.config.prewarm_containers == 0 {
            return;
        }
        let mut models = std::mem::take(&mut self.scratch_models);
        models.clear();
        let mut seen: HashSet<ModelId> = HashSet::new();
        let mut last: Option<ModelId> = None;
        for r in requests {
            if last == Some(r.model) {
                continue;
            }
            last = Some(r.model);
            if seen.insert(r.model) {
                models.push(r.model);
            }
        }
        self.prewarm_models(&models);
        self.scratch_models = models;
    }

    fn prewarm_pools_streaming(&mut self, stream: TraceStream) {
        if self.config.prewarm_containers == 0 {
            return;
        }
        let universe = stream.model_universe().len();
        let mut models = std::mem::take(&mut self.scratch_models);
        models.clear();
        let mut seen: HashSet<ModelId> = HashSet::new();
        let mut last: Option<ModelId> = None;
        for r in stream {
            if last == Some(r.model) {
                continue;
            }
            last = Some(r.model);
            if seen.insert(r.model) {
                models.push(r.model);
                if models.len() >= universe {
                    break;
                }
            }
        }
        self.prewarm_models(&models);
        self.scratch_models = models;
    }

    fn prewarm_models(&mut self, models: &[ModelId]) {
        let now = self.now;
        let count = self.config.prewarm_containers;
        let s_count = self.shards();
        for g in 0..self.total_workers() {
            let core = self.core_mut(g % s_count);
            let l = core.local(g);
            let w = &mut core.workers[l];
            let satisfied = models.iter().all(|m| {
                w.pools
                    .get(m)
                    .is_some_and(|p| p.total_containers() as usize >= count)
            });
            if satisfied {
                continue;
            }
            for &m in models {
                w.pools.entry(m).or_default().prewarm(now, count);
            }
        }
    }

    // ---- request path -----------------------------------------------

    fn dispatch(&mut self, request: Request) {
        self.stats.arrivals += 1;
        let batch_size = self.catalog.profile(request.model).batch_size;
        let key = (request.model, request.strict);
        let acc = self.accumulators.entry(key).or_default();
        let first = acc.push(request);
        if acc.len() as u32 >= batch_size {
            self.seal_batch(key);
        } else if first {
            let seq = self.accumulators[&key].seal_seq;
            self.push_coord(
                self.now + self.config.batch_window,
                CoordEvent::WindowExpire {
                    model: key.0,
                    strict: key.1,
                    seq,
                },
            );
        }
    }

    fn seal_batch(&mut self, key: (ModelId, bool)) {
        let requests = match self.accumulators.get_mut(&key) {
            Some(acc) if !acc.is_empty() => acc.seal(),
            _ => return,
        };
        let id = BatchId(self.next_batch_id);
        self.next_batch_id += 1;
        let batch = Batch {
            id,
            model: key.0,
            strict: key.1,
            requests,
            sealed_at: self.now,
            cold_wait_ms: 0.0,
            redispatched: false,
        };
        self.audit.batch_sealed(self.now, batch.id);
        self.cjournal(JournalEvent::BatchSealed {
            batch: batch.id,
            model: batch.model,
            strict: batch.strict,
            size: batch.size(),
        });
        self.dispatch_batch(batch);
    }

    fn dispatch_batch(&mut self, batch: Batch) {
        self.stats.dispatch_batches += 1;
        let mut visits = 0u64;
        let target = self.indexed_target(&batch, &mut visits);
        self.stats.dispatch_scan_visits += visits;
        match target {
            Some(g) => {
                let core = self.core_mut(g % self.shards());
                let l = core.local(g);
                let routable = core.workers[l].routable();
                self.audit
                    .batch_dispatched(self.now, batch.id, g, routable, batch.redispatched);
                let w = &mut core.workers[l];
                let n = batch.requests.len() as u64;
                w.outstanding += n;
                if !batch.redispatched {
                    if batch.strict {
                        w.window_strict += n;
                    } else {
                        w.window_be += n;
                    }
                }
                if !batch.strict {
                    w.last_be_model = Some(batch.model);
                }
                *w.window_batches.entry(batch.model).or_insert(0) += 1;
                core.refresh_index(l);
                self.cjournal(JournalEvent::BatchDispatched {
                    batch: batch.id,
                    worker: g,
                    redispatch: batch.redispatched,
                });
                self.acquire_container(g, batch);
            }
            None => self.backlog.push_back(batch),
        }
    }

    /// Cross-shard reduction of the per-shard dispatch indices. Every
    /// shard's index is fleet-width with keys carrying global worker
    /// indices, so [`crate::dispatch::select_across`]'s min-over-roots
    /// reduction equals the sequential fleet-wide scan: first-fit picks
    /// the smallest global index any shard can seat (each shard's
    /// descent is leftmost over its own slots), and the least-loaded
    /// tiers pick the min `(outstanding, idx)` root. Decision-only —
    /// mutation (worker state + index refresh) happens strictly after,
    /// which is what makes resolving a whole arrival run's decisions in
    /// serial order between phases hazard-free.
    fn indexed_target(&self, batch: &Batch, visits: &mut u64) -> Option<usize> {
        let cap = match self.dispatch_policy {
            DispatchPolicy::Consolidate { cap_batches } => {
                Some(cap_batches * u64::from(self.catalog.profile(batch.model).batch_size))
            }
            DispatchPolicy::LoadBalance => None,
        };
        crate::dispatch::select_across((0..self.shards()).map(|s| &self.core(s).index), cap, visits)
    }

    fn acquire_container(&mut self, g: usize, batch: Batch) {
        let model = batch.model;
        let now = self.now;
        let core = self.core_mut(g % self.shards());
        let l = core.local(g);
        let w = &mut core.workers[l];
        let pool = w.pools.entry(model).or_default();
        match pool.acquire(now) {
            Acquire::Warm => {
                let mem = self.catalog.profile(model).mem_gb;
                w.sched_queue.push(batch, mem);
                self.try_place_on(g);
            }
            Acquire::ColdStarted => {
                let vm_epoch = w.vm_epoch;
                w.wait_container.entry(model).or_default().push_back(batch);
                self.cjournal(JournalEvent::ColdStart { worker: g, model });
                let k = self.serial_key(now + self.config.cold_start);
                core.queue.push(
                    k,
                    ShardEvent::BootDone {
                        worker: g,
                        model,
                        vm_epoch,
                    },
                );
            }
        }
    }

    // ---- phases -----------------------------------------------------

    /// Advances every shard with pending events to the exclusive `bound`
    /// (clamped at the cutoff), in parallel where threads exist, and
    /// returns how many events the phase handled.
    fn run_phase(&mut self, bound: EventKey) -> u64 {
        let cutoff_bound = EventKey::new(self.cutoff, u64::MAX, u64::MAX);
        let bound = bound.min(cutoff_bound);
        let mut parts = std::mem::take(&mut self.scratch_parts);
        parts.clear();
        for s in 0..self.shards() {
            if self.core(s).queue.has_event_before(bound) {
                parts.push(s);
            }
        }
        if parts.is_empty() {
            self.scratch_parts = parts;
            return 0;
        }
        let major = self.gseq;
        self.epoch += 1;
        let epoch = self.epoch;
        for &s in &parts {
            if let Some(thread) = &self.threads[s] {
                let sync = &self.syncs[s];
                sync.bound_time
                    .store(bound.time.as_micros(), Ordering::Relaxed);
                sync.bound_major.store(bound.major, Ordering::Relaxed);
                sync.bound_minor.store(bound.minor, Ordering::Relaxed);
                sync.phase_major.store(major, Ordering::Relaxed);
                sync.epoch.store(epoch, Ordering::Release);
                thread.unpark();
            }
        }
        for &s in &parts {
            if self.threads[s].is_none() {
                self.core_mut(s)
                    .advance(self.config, self.catalog, bound, major);
            }
        }
        let mut total = 0;
        for &s in &parts {
            if self.threads[s].is_some() {
                let sync = &self.syncs[s];
                let mut spins = 0u32;
                while sync.done.load(Ordering::Acquire) != epoch {
                    spins += 1;
                    if spins > 256 {
                        // Oversubscribed (fewer cores than shards): give
                        // the shard thread the CPU instead of burning it.
                        std::thread::yield_now();
                    } else {
                        std::hint::spin_loop();
                    }
                }
            }
            total += std::mem::take(&mut self.core_mut(s).events_handled);
        }
        self.flush_hooks(&parts);
        self.scratch_parts = parts;
        total
    }

    /// Applies the phase's buffered audit hooks in merged `(ctx_key, n)`
    /// order — the order the sequential engine made the calls in.
    fn flush_hooks(&mut self, parts: &[usize]) {
        let mut hooks = std::mem::take(&mut self.scratch_hooks);
        hooks.clear();
        for &s in parts {
            hooks.append(&mut self.core_mut(s).hook_buf);
        }
        if !hooks.is_empty() {
            hooks.sort_unstable_by_key(|&(key, n, _)| (key, n));
            for (key, _, hook) in hooks.drain(..) {
                match hook {
                    Hook::Placed(id, g) => self.audit.batch_placed(key.time, id, g),
                    Hook::Finished(id, g) => self.audit.batch_finished(key.time, id, g),
                }
            }
        }
        self.scratch_hooks = hooks;
    }

    /// Counts `opportunities` audit-sweep opportunities (the sequential
    /// engine's one-per-handled-event cadence) and, if any came due,
    /// runs one collapsed fleet sweep at `at`.
    fn audit_boundary(&mut self, at: SimTime, opportunities: u64) {
        if opportunities == 0 {
            return;
        }
        let mut due = false;
        for _ in 0..opportunities {
            due |= self.audit.sweep_due();
        }
        if !due {
            return;
        }
        let mut problems: Vec<String> = Vec::new();
        for s in 0..self.shards() {
            let core = self.core(s);
            problems.extend(
                core.index
                    .verify_partition(self.total_workers(), core.workers.iter()),
            );
        }
        let fleet: Vec<&Worker> = (0..self.total_workers())
            .map(|g| {
                let core = self.core(g % self.shards());
                &core.workers[core.local(g)]
            })
            .collect();
        self.audit
            .sweep(at, fleet.into_iter(), &self.ledger, problems);
    }

    // ---- main loop --------------------------------------------------

    fn run_arrivals<I: Iterator<Item = Request>>(
        &mut self,
        arrivals: I,
        duration: protean_sim::SimDuration,
    ) {
        enum Step {
            Arrival,
            Coord,
            Done,
        }
        self.cutoff = SimTime::ZERO + duration + self.config.drain_grace;
        let mut arrivals = Lookahead::new(arrivals);
        loop {
            let next_arrival = arrivals.peek_arrival();
            let next_coord = self.coord_queue.peek_key();
            let (bound, step) = match (next_arrival, next_coord) {
                (Some(ta), Some(ck)) if ta <= ck.time => (EventKey::new(ta, 0, 0), Step::Arrival),
                (Some(ta), None) => (EventKey::new(ta, 0, 0), Step::Arrival),
                (_, Some(ck)) => (ck, Step::Coord),
                (None, None) => (EventKey::new(SimTime::MAX, u64::MAX, u64::MAX), Step::Done),
            };
            let events = self.run_phase(bound);
            let sweep_at = bound.time.min(self.cutoff);
            self.audit_boundary(sweep_at, events);
            match step {
                Step::Arrival => {
                    let ta = next_arrival.expect("peeked");
                    if ta > self.cutoff {
                        break;
                    }
                    self.dispatch_run(&mut arrivals);
                }
                Step::Coord => {
                    let ck = next_coord.expect("peeked");
                    if ck.time > self.cutoff {
                        break;
                    }
                    if matches!(
                        self.coord_queue.peek(),
                        Some((_, CoordEvent::WindowExpire { .. }))
                    ) {
                        // A window expiry is dispatch-shaped, so it
                        // *opens* a run instead of standing alone: the
                        // phase bounded at its key just completed, which
                        // is exactly the admission proof `dispatch_run`
                        // requires of its first member. With
                        // `coalesce_window_expiries` off the run is cut
                        // immediately after this member — the PR-8
                        // singleton-epoch discipline under the same
                        // accounting.
                        self.dispatch_run(&mut arrivals);
                    } else {
                        self.now = ck.time;
                        let (k, ev) = self.coord_queue.pop().expect("peeked");
                        self.begin_ctx(k);
                        self.handle_coord(ev);
                        self.audit_boundary(k.time, 1);
                    }
                }
                Step::Done => break,
            }
        }
        self.now = self.cutoff;
        self.audit.epoch_conservation(self.now, &self.stats);
        self.censor_remaining();
    }

    /// Peels and dispatches one maximal *dispatch run* — the epoch
    /// coarsening at the heart of this engine's scalability on
    /// dispatch-dense traces. A run is a maximal sequence of
    /// consecutive dispatch-shaped events: gateway arrivals and (with
    /// [`ClusterConfig::coalesce_window_expiries`]) `WindowExpire`
    /// batch-window dispatches, which route the pending window batch
    /// through the same `DispatchIndex` path an arrival uses. The phase
    /// bounded at the run's first member has just completed, so every
    /// shard's next pending event (if any) sits at or after that
    /// member's bound. Each run member is handled exactly as in
    /// per-arrival mode (serial context, live index resolution, full
    /// mutation, per-member audit opportunity); the run then *extends*
    /// to the next dispatch event only when the phase the per-arrival
    /// discipline would insert before it is provably empty:
    ///
    /// * the member wins its key-order tie against every other pending
    ///   serial coordinator event — an arrival's bound `(ta, 0, 0)`
    ///   orders before every real key at `ta` (real keys have
    ///   `major >= 1`), so `ta <= te` is the arrival's tie win; a
    ///   window expiry qualifies only as the coordinator-queue *head*,
    ///   which (keys being unique) is an automatic strict win — both
    ///   re-checked each step, since dispatching a run member can
    ///   schedule a new window expiry, and
    /// * no shard holds a pending event below the member's key
    ///   (re-checked each step — a cold start deposits a serially-keyed
    ///   `BootDone` into a shard heap mid-run). Events pushed *by* run
    ///   members carry fresh serial majors greater than any admitted
    ///   member's, so they can never retroactively invalidate an
    ///   elision already proven.
    ///
    /// The run cuts the moment a non-dispatch coordinator event
    /// (`MonitorTick`, `RevocationCheck`, `EvictionFinal`, `VmReady`,
    /// `ProcurementRetry`) wins the tie, or a shard conflict
    /// intervenes. A skipped phase with no participants has *no* effect
    /// in per-arrival mode (`run_phase` returns 0 before touching the
    /// epoch counter or the barrier, and a 0-event `audit_boundary` is
    /// a no-op), so eliding it is exact — bit-identical by
    /// construction, for any workload, shard count, cap and knob
    /// setting. Runs additionally cut at
    /// [`ClusterConfig::max_epoch_arrivals`] members, under
    /// journal-capacity pressure, and at the trace end / cutoff; every
    /// cut is attributed to exactly one cause so the counter triad
    /// reconciles (see [`Auditor::epoch_conservation`]).
    fn dispatch_run<I: Iterator<Item = Request>>(&mut self, arrivals: &mut Lookahead<I>) {
        let cap = self.config.max_epoch_arrivals.max(1);
        let coalesce = self.config.coalesce_window_expiries;
        self.stats.epochs += 1;
        let mut members = 0u64;
        let mut expiry_members = 0u64;
        let mut first_is_expiry = false;
        loop {
            // Select the next member by key order over the unfiltered
            // peeks. Admission was proven by the caller (first member:
            // its bounding phase just ran) or by the extension check at
            // the bottom of the previous iteration.
            let take_arrival = match (arrivals.peek_arrival(), self.coord_queue.peek_key()) {
                (Some(ta), Some(ck)) => ta <= ck.time,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => unreachable!("admission-checked"),
            };
            if take_arrival {
                let r = arrivals.next().expect("peeked");
                self.now = r.arrival;
                self.dseq += 1;
                self.begin_ctx(EventKey::new(r.arrival, 0, self.dseq));
                self.dispatch(r);
            } else {
                let (k, ev) = self.coord_queue.pop().expect("peeked");
                debug_assert!(
                    matches!(ev, CoordEvent::WindowExpire { .. }),
                    "only window expiries are admitted into dispatch runs"
                );
                if members == 0 {
                    first_is_expiry = true;
                }
                expiry_members += 1;
                self.now = k.time;
                self.begin_ctx(k);
                self.handle_coord(ev);
            }
            members += 1;
            self.audit_boundary(self.now, 1);

            // With coalescing off, an expiry-opened run is a singleton
            // epoch by fiat (the PR-8 discipline) — and arrival-opened
            // runs never admit expiries (below), so `first_is_expiry`
            // here means this very member was the expiry.
            if !coalesce && first_is_expiry {
                self.stats.run_cutoffs.coalescing_off += 1;
                break;
            }
            let ta = arrivals.peek_arrival().filter(|&ta| ta <= self.cutoff);
            let next_expiry_key = match self.coord_queue.peek() {
                Some((ck, CoordEvent::WindowExpire { .. }))
                    if coalesce && ck.time <= self.cutoff =>
                {
                    Some(ck)
                }
                _ => None,
            };
            if ta.is_none() && next_expiry_key.is_none() {
                self.stats.run_cutoffs.trace_end += 1;
                break;
            }
            if members >= cap {
                self.stats.run_cutoffs.max_arrivals += 1;
                break;
            }
            if self.config.journal_capacity > 0
                && self.journal_buf.len() >= self.config.journal_capacity
            {
                self.stats.run_cutoffs.journal_pressure += 1;
                break;
            }
            let ck = self.coord_queue.peek_key();
            let arrival_next = ta.is_some_and(|ta| ck.is_none_or(|ck| ta <= ck.time));
            if arrival_next {
                let bound = EventKey::new(ta.expect("checked"), 0, 0);
                if (0..self.shards()).any(|s| self.core(s).queue.has_event_before(bound)) {
                    self.stats.run_cutoffs.shard_conflict += 1;
                    break;
                }
            } else if let Some(bound) = next_expiry_key {
                if (0..self.shards()).any(|s| self.core(s).queue.has_event_before(bound)) {
                    self.stats.run_cutoffs.expiry_shard_conflict += 1;
                    break;
                }
            } else {
                // A non-dispatch coordinator event (or, with the knob
                // off, a window expiry) beat the next arrival.
                self.stats.run_cutoffs.serial_event += 1;
                break;
            }
        }
        let arrival_members = members - expiry_members;
        if first_is_expiry {
            self.stats.coalesced_arrivals += arrival_members;
            self.stats.coalesced_expiries += expiry_members - 1;
        } else {
            self.stats.coalesced_arrivals += arrival_members - 1;
            self.stats.coalesced_expiries += expiry_members;
        }
    }

    fn handle_coord(&mut self, ev: CoordEvent) {
        match ev {
            CoordEvent::WindowExpire { model, strict, seq } => {
                self.stats.expiries += 1;
                let stale = self
                    .accumulators
                    .get(&(model, strict))
                    .is_none_or(|acc| acc.seal_seq != seq || acc.is_empty());
                if !stale {
                    self.seal_batch((model, strict));
                }
            }
            CoordEvent::MonitorTick => self.on_monitor_tick(),
            CoordEvent::RevocationCheck { worker } => self.on_revocation_check(worker),
            CoordEvent::EvictionFinal { worker } => self.on_eviction_final(worker),
            CoordEvent::VmReady { worker, tier } => self.on_vm_ready(worker, tier),
            CoordEvent::ProcurementRetry { worker } => self.on_procurement_retry(worker),
        }
    }

    // ---- monitor ----------------------------------------------------

    /// EWMA smoothing factor for the per-(worker, model) batch-arrival
    /// predictor (must match the sequential engine's).
    const PREWARM_EWMA_ALPHA: f64 = 0.3;

    fn on_monitor_tick(&mut self) {
        let now = self.now;
        for g in 0..self.total_workers() {
            let keep_alive = self.config.keep_alive;
            let core = self.core_mut(g % self.shards());
            let l = core.local(g);
            for pool in core.workers[l].pools.values_mut() {
                pool.expire_idle(now, keep_alive);
            }
            self.predictive_prewarm_tick(g);
            let core = self.core_mut(g % self.shards());
            if !matches!(core.workers[l].status, WorkerStatus::Up) {
                continue;
            }
            let desired = {
                let w = &mut core.workers[l];
                let ctx = ReconfigCtx {
                    now,
                    gpu: &w.gpu,
                    window_be_requests: w.window_be,
                    window_strict_requests: w.window_strict,
                    be_model: w.last_be_model,
                    catalog: self.catalog,
                };
                let desired = w.scheme.reconfigure(&ctx);
                w.window_be = 0;
                w.window_strict = 0;
                desired
            };
            if let Some(geometry) = desired {
                if geometry != *core.workers[l].gpu.geometry() && self.reconfig_slots_free() {
                    let _ = core.workers[l].gpu.request_reconfigure(geometry);
                    core.refresh_index(l);
                    self.maybe_begin_reconfigure_on(g);
                }
            }
        }
        self.drain_backlog();
        if now + self.config.monitor_interval <= self.cutoff {
            self.push_coord(now + self.config.monitor_interval, CoordEvent::MonitorTick);
        }
    }

    fn predictive_prewarm_tick(&mut self, g: usize) {
        let now = self.now;
        let core = self.core_mut(g % self.shards());
        let l = core.local(g);
        let w = &mut core.workers[l];
        // Retained map, counts zeroed in place — see the sequential
        // engine's prewarm tick for the allocation-saving rationale and
        // the observe-sequence equivalence argument.
        for (&model, count) in w.window_batches.iter_mut() {
            if *count > 0 {
                w.predicted_batches
                    .entry(model)
                    .or_insert_with(|| protean_sim::Ewma::new(Self::PREWARM_EWMA_ALPHA))
                    .observe(*count as f64);
                *count = 0;
            }
        }
        if !self.config.predictive_prewarm || !matches!(w.status, WorkerStatus::Up) {
            return;
        }
        let vm_epoch = w.vm_epoch;
        let predictions: Vec<(ModelId, f64)> = w
            .predicted_batches
            .iter()
            .map(|(m, e)| (*m, e.predict()))
            .collect();
        // Pool mutations happen in the sequential order; the event
        // pushes are deferred past the worker borrow but consume `gseq`
        // in the identical sequence.
        let mut boots: Vec<(ModelId, u32)> = Vec::new();
        for (model, predicted) in predictions {
            let pool = w.pools.entry(model).or_default();
            let desired = predicted.ceil() as u32;
            let have = pool.total_containers();
            for _ in have..desired {
                pool.boot_proactive();
            }
            if desired > have {
                boots.push((model, desired - have));
            }
        }
        for (model, count) in boots {
            for _ in 0..count {
                let k = self.serial_key(now + self.config.cold_start);
                core.queue.push(
                    k,
                    ShardEvent::BootDone {
                        worker: g,
                        model,
                        vm_epoch,
                    },
                );
            }
        }
    }

    fn reconfig_slots_free(&self) -> bool {
        let busy: usize = (0..self.shards())
            .map(|s| {
                let index = &self.core(s).index;
                index.routable_len() - index.accepting_len()
            })
            .sum();
        let cap = ((self.config.max_reconfig_fraction * self.total_workers() as f64).ceil()
            as usize)
            .max(1);
        busy < cap
    }

    // ---- spot lifecycle ---------------------------------------------

    fn on_revocation_check(&mut self, g: usize) {
        let core = self.core_mut(g % self.shards());
        let l = core.local(g);
        let w = &core.workers[l];
        if !matches!(w.status, WorkerStatus::Up) || !matches!(w.vm, Some((_, VmTier::Spot))) {
            return;
        }
        if let Some(lead) = self.market.roll_revocation(self.now, g) {
            let evict_at = self.now + lead;
            core.workers[l].status = WorkerStatus::Evicting { evict_at };
            core.refresh_index(l);
            self.cjournal(JournalEvent::EvictionNotice {
                worker: g,
                evict_at,
            });
            self.evictions += 1;
            self.push_coord(evict_at, CoordEvent::EvictionFinal { worker: g });
            self.procure_replacement(g);
        } else {
            self.push_coord(
                self.now + self.config.revocation_check,
                CoordEvent::RevocationCheck { worker: g },
            );
        }
    }

    fn procure_replacement(&mut self, g: usize) {
        let granted = self.market.try_acquire_spot(self.now, g);
        match self.config.procurement.replacement_tier(granted) {
            Some(tier) => {
                self.push_coord(
                    self.now + self.config.vm_startup,
                    CoordEvent::VmReady { worker: g, tier },
                );
            }
            None => {
                self.push_coord(
                    self.now + self.config.procurement_retry,
                    CoordEvent::ProcurementRetry { worker: g },
                );
            }
        }
    }

    fn on_eviction_final(&mut self, g: usize) {
        let core = self.core_mut(g % self.shards());
        let l = core.local(g);
        if !matches!(core.workers[l].status, WorkerStatus::Evicting { .. }) {
            return;
        }
        if let Some((vm, _)) = core.workers[l].vm.take() {
            self.ledger.close(vm, self.now);
        }
        self.cjournal(JournalEvent::Evicted { worker: g });
        let orphans = core.workers[l].drain_all_batches();
        core.workers[l].epoch += 1;
        match core.workers[l].pending_vm.take() {
            Some((vm, tier)) => self.install_vm(g, vm, tier),
            None => {
                core.workers[l].status = WorkerStatus::Down;
                core.refresh_index(l);
            }
        }
        for mut b in orphans {
            b.redispatched = true;
            self.dispatch_batch(b);
        }
    }

    fn on_vm_ready(&mut self, g: usize, tier: VmTier) {
        let core = self.core_mut(g % self.shards());
        let l = core.local(g);
        match core.workers[l].status {
            WorkerStatus::Evicting { .. } => {
                let vm = self.ledger.allocate_id();
                self.ledger.open(vm, tier, self.now);
                core.workers[l].pending_vm = Some((vm, tier));
            }
            WorkerStatus::Down => {
                let vm = self.ledger.allocate_id();
                self.ledger.open(vm, tier, self.now);
                self.install_vm(g, vm, tier);
            }
            WorkerStatus::Up => {
                // Defensive: double procurement should not happen (see
                // the sequential engine's matching arm).
            }
        }
    }

    fn install_vm(&mut self, g: usize, vm: VmId, tier: VmTier) {
        let core = self.core_mut(g % self.shards());
        let l = core.local(g);
        let w = &mut core.workers[l];
        w.running.clear();
        w.reset_runtime(self.now);
        w.gpu.set_reconfig_delay(self.config.reconfig_delay);
        w.vm = Some((vm, tier));
        w.status = WorkerStatus::Up;
        core.refresh_index(l);
        self.cjournal(JournalEvent::VmInstalled { worker: g });
        if tier == VmTier::Spot {
            self.push_coord(
                self.now + self.config.revocation_check,
                CoordEvent::RevocationCheck { worker: g },
            );
        }
        self.drain_backlog();
    }

    fn on_procurement_retry(&mut self, g: usize) {
        let core = self.core(g % self.shards());
        if matches!(core.workers[core.local(g)].status, WorkerStatus::Down) {
            self.procure_replacement(g);
        }
    }

    fn drain_backlog(&mut self) {
        if self.backlog.is_empty() {
            return;
        }
        let routable = (0..self.shards()).any(|s| self.core(s).index.any_routable());
        if !routable {
            return;
        }
        let pending: Vec<Batch> = self.backlog.drain(..).collect();
        for b in pending {
            self.dispatch_batch(b);
        }
        self.stats.backlog_requeued += self.backlog.len() as u64;
    }

    // ---- teardown ---------------------------------------------------

    fn censor_remaining(&mut self) {
        let now = self.now;
        let mut leftovers: Vec<(ModelId, bool, Request)> = Vec::new();
        for g in 0..self.total_workers() {
            let core = self.core_mut(g % self.shards());
            let l = core.local(g);
            for b in core.workers[l].drain_all_batches() {
                for r in b.requests {
                    leftovers.push((b.model, b.strict, r));
                }
            }
        }
        for b in std::mem::take(&mut self.backlog) {
            for r in b.requests {
                leftovers.push((b.model, b.strict, r));
            }
        }
        for acc in self.accumulators.values_mut() {
            for r in acc.drain() {
                leftovers.push((r.model, r.strict, r));
            }
        }
        let measure_from = SimTime::ZERO + self.config.warmup;
        for (model, strict, r) in leftovers {
            if r.arrival < measure_from {
                continue;
            }
            self.censored += 1;
            let total_ms = now.saturating_since(r.arrival).as_millis_f64();
            self.censor_metrics.push(RequestRecord {
                model,
                strict,
                arrival: r.arrival,
                completion: now,
                breakdown: LatencyBreakdown {
                    queueing_ms: total_ms,
                    ..LatencyBreakdown::default()
                },
            });
        }
    }

    /// Signals every spawned shard thread to exit. Must run before the
    /// thread scope closes.
    fn shutdown(&mut self) {
        for s in 0..self.shards() {
            if let Some(thread) = &self.threads[s] {
                self.syncs[s].epoch.store(SHUTDOWN, Ordering::Release);
                thread.unpark();
            }
        }
    }

    fn drive(&mut self, src: Source) {
        self.provision_initial_vms();
        match src {
            Source::Materialised(requests, duration) => {
                let per_core = requests.len() / self.shards() + 1;
                for s in 0..self.shards() {
                    self.core_mut(s).metrics.reserve(per_core);
                }
                self.prewarm_pools(&requests);
                self.run_arrivals(requests.into_iter(), duration);
            }
            Source::Streaming(arrivals, prewarm_scan) => {
                let duration = arrivals.duration();
                self.prewarm_pools_streaming(*prewarm_scan);
                self.run_arrivals(arrivals, duration);
            }
        }
    }

    fn finish(self) -> CoordOutputs {
        CoordOutputs {
            coord_pushed: self.coord_queue.pushed(),
            coord_popped: self.coord_queue.popped(),
            coord_peak: self.coord_queue.peak_len(),
            ledger: self.ledger,
            censor_metrics: self.censor_metrics,
            journal_buf: self.journal_buf,
            stats: self.stats,
            audit: self.audit,
            evictions: self.evictions,
            censored: self.censored,
            cutoff: self.cutoff,
        }
    }
}

/// What survives the coordinator after a run — everything the merge
/// needs that is not shard-local.
struct CoordOutputs {
    ledger: VmLedger,
    censor_metrics: MetricsSet,
    journal_buf: Vec<(EventKey, u64, JournalEvent)>,
    stats: EngineStats,
    audit: Auditor,
    evictions: u64,
    censored: u64,
    cutoff: SimTime,
    coord_pushed: u64,
    coord_popped: u64,
    coord_peak: usize,
}

// ---- entry points ---------------------------------------------------

/// [`crate::engine::run_trace_with_oracle`], sharded.
pub(crate) fn run_trace_sharded(
    config: &ClusterConfig,
    scheme: &dyn SchemeBuilder,
    trace: Trace,
    oracle: &mut dyn SpotOracle,
) -> SimulationResult {
    let duration = trace.duration();
    run_sharded(
        config,
        scheme,
        Source::Materialised(trace.into_requests(), duration),
        oracle,
    )
}

/// [`crate::engine::run_stream_with_oracle`], sharded. Labeled RNG
/// streams are derived statelessly from `(seed, label)`, so the stream
/// instances built here consume exactly the arrival draws the
/// sequential engine's instances would.
pub(crate) fn run_stream_sharded(
    config: &ClusterConfig,
    scheme: &dyn SchemeBuilder,
    trace_config: &TraceConfig,
    oracle: &mut dyn SpotOracle,
) -> SimulationResult {
    let factory = RngFactory::new(config.seed);
    run_sharded(
        config,
        scheme,
        Source::Streaming(
            Box::new(trace_config.stream(&factory)),
            Box::new(trace_config.stream(&factory)),
        ),
        oracle,
    )
}

fn run_sharded(
    config: &ClusterConfig,
    scheme: &dyn SchemeBuilder,
    src: Source,
    oracle: &mut dyn SpotOracle,
) -> SimulationResult {
    let factory = RngFactory::new(config.seed);
    let catalog = Catalog::new();
    let shards = config.effective_shards();
    let cells: Vec<ShardCell> = (0..shards)
        .map(|s| {
            ShardCell(UnsafeCell::new(ShardCore::new(
                s, shards, config, scheme, &factory,
            )))
        })
        .collect();
    let syncs: Vec<ShardSync> = (0..shards).map(|_| ShardSync::new()).collect();
    let budget = if config.shard_threads > 0 {
        config.shard_threads
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    };
    // Shard 0 always runs inline on the coordinator; extra shards get
    // threads while the budget lasts, the rest run inline too.
    let spawnable = shards.min(budget).saturating_sub(1);
    let mut outputs = None;
    {
        let cells = &cells;
        let syncs = &syncs;
        let catalog = &catalog;
        std::thread::scope(|scope| {
            let mut co = Coordinator::new(
                config,
                catalog,
                cells,
                syncs,
                scheme.dispatch_policy(),
                oracle,
            );
            for s in 1..=spawnable {
                let cell = &cells[s];
                let sync = &syncs[s];
                let handle = scope.spawn(move || shard_worker_loop(cell, sync, config, catalog));
                co.threads[s] = Some(handle.thread().clone());
            }
            co.drive(src);
            co.shutdown();
            outputs = Some(co.finish());
        });
    }
    let cores: Vec<ShardCore> = cells.into_iter().map(|c| c.0.into_inner()).collect();
    merge_result(
        config,
        scheme.name().to_string(),
        outputs.expect("coordinator ran"),
        cores,
    )
}

// ---- merge ----------------------------------------------------------

fn merge_result(
    config: &ClusterConfig,
    scheme: String,
    out: CoordOutputs,
    mut cores: Vec<ShardCore>,
) -> SimulationResult {
    let shards = cores.len();
    let w_total = config.workers;
    let now = out.cutoff;
    let mut ledger = out.ledger;
    // Close any still-open VMs in global worker order for final billing.
    for g in 0..w_total {
        if let Some((id, _)) = cores[g % shards].workers[g / shards].vm.take() {
            ledger.close(id, now);
        }
    }
    let cost = CostReport {
        total_usd: ledger.total_cost(now),
        spot_usd: ledger.cost_by_tier(VmTier::Spot, now),
        on_demand_usd: ledger.cost_by_tier(VmTier::OnDemand, now),
        evictions: out.evictions,
    };
    let n = w_total as f64;
    let per_gpu_compute_utilization: Vec<f64> = (0..w_total)
        .map(|g| {
            cores[g % shards].workers[g / shards]
                .gpu
                .compute_utilization(now)
        })
        .collect();
    let per_gpu_memory_utilization: Vec<f64> = (0..w_total)
        .map(|g| {
            cores[g % shards].workers[g / shards]
                .gpu
                .memory_utilization(now)
        })
        .collect();
    // Identical float op order to the sequential mean: sum the per-GPU
    // values in global worker order, then divide once.
    let compute_utilization = per_gpu_compute_utilization.iter().sum::<f64>() / n;
    let memory_utilization = per_gpu_memory_utilization.iter().sum::<f64>() / n;
    let cold_starts: u64 = (0..w_total)
        .map(|g| cores[g % shards].workers[g / shards].cold_starts())
        .sum();
    let proactive_boots: u64 = (0..w_total)
        .map(|g| cores[g % shards].workers[g / shards].proactive_boots())
        .sum();
    let reconfigs: u64 = cores.iter().map(|c| c.reconfigs).sum();

    let mut stats = out.stats;
    stats.events_pushed = out.coord_pushed;
    stats.events_popped = out.coord_popped;
    let mut peak = out.coord_peak;
    for c in &cores {
        stats.events_pushed += c.queue.pushed();
        stats.events_popped += c.queue.popped();
        // Documented deviation: the sum of per-queue peaks, an upper
        // bound on the sequential single-heap peak.
        peak += c.queue.peak_len();
        stats.index_updates += c.index.updates();
        stats.finish_events_pushed += c.stats.finish_events_pushed;
        stats.finish_events_all_jobs += c.stats.finish_events_all_jobs;
        stats.stale_finish_events += c.stats.stale_finish_events;
        stats.stale_boot_events += c.stats.stale_boot_events;
    }
    stats.peak_heap_len = peak;

    let mut cores_iter = cores.iter_mut();
    let first = cores_iter.next().expect("at least one shard");
    let mut metrics = std::mem::replace(
        &mut first.metrics,
        if config.aggregate_metrics {
            MetricsSet::aggregate()
        } else {
            MetricsSet::new()
        },
    );
    for c in cores_iter {
        metrics.absorb(std::mem::replace(
            &mut c.metrics,
            if config.aggregate_metrics {
                MetricsSet::aggregate()
            } else {
                MetricsSet::new()
            },
        ));
    }
    metrics.absorb(out.censor_metrics);

    let mut strict_points: Vec<(EventKey, u64, f64)> = Vec::new();
    let mut geom_points: Vec<(EventKey, u64, GeometryChange)> = Vec::new();
    for c in &mut cores {
        strict_points.append(&mut c.strict_lat_buf);
        geom_points.append(&mut c.geom_buf);
    }
    strict_points.sort_unstable_by_key(|&(k, n, _)| (k, n));
    geom_points.sort_unstable_by_key(|g| (g.0, g.1));
    let mut strict_latency_timeline = TimeSeries::new();
    for (k, _, v) in strict_points {
        strict_latency_timeline.push(k.time, v);
    }
    let geometry_timeline: Vec<GeometryChange> =
        geom_points.into_iter().map(|(_, _, g)| g).collect();

    let mut journal = Journal::new(config.journal_capacity);
    if config.journal_capacity > 0 {
        let mut entries = out.journal_buf;
        for c in &mut cores {
            entries.append(&mut c.journal_buf);
        }
        entries.sort_unstable_by_key(|e| (e.0, e.1));
        for (k, _, ev) in entries {
            journal.record(k.time, ev);
        }
    }

    SimulationResult {
        scheme,
        metrics,
        cost,
        compute_utilization,
        memory_utilization,
        per_gpu_compute_utilization,
        per_gpu_memory_utilization,
        cold_starts,
        reconfigs,
        censored: out.censored,
        geometry_timeline,
        strict_latency_timeline,
        journal,
        stats,
        audit: out.audit.into_report(),
        proactive_boots,
        duration: out.cutoff.saturating_since(SimTime::ZERO) - config.drain_grace,
        workers: w_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_simulation, run_simulation_streaming, run_simulation_with_oracle};
    use crate::schemes_for_test::AlwaysLargest;
    use protean_metrics::record::Class;
    use protean_sim::SimDuration;
    use protean_spot::SpotAvailability;
    use protean_trace::TraceShape;

    fn trace(rps: f64, secs: f64, strict_fraction: f64) -> TraceConfig {
        TraceConfig {
            shape: TraceShape::constant(rps),
            duration: SimDuration::from_secs(secs),
            strict_model: ModelId::ResNet50,
            strict_fraction,
            be_pool: vec![ModelId::MobileNet],
            be_rotation_period: SimDuration::from_secs(20.0),
            batch_arrivals: false,
        }
    }

    /// Asserts every digest-visible field matches bit for bit, the
    /// strict-latency timeline matches as a (time, value) multiset, and
    /// the journals record the same event population. (The journal's
    /// exact sequence may legally differ: two same-instant events on
    /// different shards merge in shard-tag order, while the sequential
    /// engine orders them by push sequence — their effects commute.)
    fn assert_equivalent(a: &SimulationResult, b: &SimulationResult) {
        assert_eq!(a.metrics.count(Class::All), b.metrics.count(Class::All));
        assert_eq!(
            a.metrics.count(Class::Strict),
            b.metrics.count(Class::Strict)
        );
        for class in [Class::All, Class::Strict, Class::BestEffort] {
            for q in [0.5, 0.99] {
                let la = a.metrics.latency_percentile_ms(class, q).map(f64::to_bits);
                let lb = b.metrics.latency_percentile_ms(class, q).map(f64::to_bits);
                assert_eq!(la, lb, "latency {class:?} p{q}");
            }
        }
        assert_eq!(a.cost.total_usd.to_bits(), b.cost.total_usd.to_bits());
        assert_eq!(a.cost.spot_usd.to_bits(), b.cost.spot_usd.to_bits());
        assert_eq!(
            a.compute_utilization.to_bits(),
            b.compute_utilization.to_bits()
        );
        assert_eq!(
            a.memory_utilization.to_bits(),
            b.memory_utilization.to_bits()
        );
        assert_eq!(a.cold_starts, b.cold_starts);
        assert_eq!(a.reconfigs, b.reconfigs);
        assert_eq!(a.censored, b.censored);
        assert_eq!(a.cost.evictions, b.cost.evictions);
        assert_eq!(a.proactive_boots, b.proactive_boots);
        assert_eq!(a.stats.finish_events_pushed, b.stats.finish_events_pushed);
        assert_eq!(a.stats.stale_finish_events, b.stats.stale_finish_events);
        assert_eq!(a.stats.stale_boot_events, b.stats.stale_boot_events);
        assert_eq!(a.stats.dispatch_batches, b.stats.dispatch_batches);
        assert_eq!(a.stats.events_popped, b.stats.events_popped);

        let sorted = |r: &SimulationResult| {
            let mut v: Vec<(u64, u64)> = r
                .strict_latency_timeline
                .points()
                .iter()
                .map(|&(t, x)| (t.as_micros(), x.to_bits()))
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(sorted(a), sorted(b));
        assert_eq!(a.geometry_timeline.len(), b.geometry_timeline.len());
        assert_eq!(a.journal.entries().len(), b.journal.entries().len());
        let journal_counts = |r: &SimulationResult| {
            let mut v: Vec<u8> = r
                .journal
                .entries()
                .iter()
                .map(|(_, e)| match e {
                    JournalEvent::BatchSealed { .. } => 0u8,
                    JournalEvent::BatchDispatched { .. } => 1,
                    JournalEvent::ColdStart { .. } => 2,
                    JournalEvent::BatchPlaced { .. } => 3,
                    JournalEvent::BatchFinished { .. } => 4,
                    JournalEvent::Reconfigured { .. } => 5,
                    JournalEvent::EvictionNotice { .. } => 6,
                    JournalEvent::Evicted { .. } => 7,
                    JournalEvent::VmInstalled { .. } => 8,
                })
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(journal_counts(a), journal_counts(b));
    }

    fn run_pair(
        config: &ClusterConfig,
        shards: usize,
        threads: usize,
        t: &TraceConfig,
    ) -> (SimulationResult, SimulationResult) {
        let seq = run_simulation(config, &AlwaysLargest, t);
        let mut sharded = config.clone();
        sharded.shards = shards;
        sharded.shard_threads = threads;
        let par = run_simulation(&sharded, &AlwaysLargest, t);
        (seq, par)
    }

    #[test]
    fn sharded_inline_matches_sequential() {
        let mut config = ClusterConfig::small_test();
        config.journal_capacity = 4096;
        let t = trace(400.0, 30.0, 0.5);
        let (seq, par) = run_pair(&config, 2, 1, &t);
        assert_equivalent(&seq, &par);
    }

    #[test]
    fn sharded_threaded_matches_inline_sharded() {
        let config = ClusterConfig::small_test();
        let t = trace(400.0, 30.0, 0.5);
        let (seq, par) = run_pair(&config, 4, 4, &t);
        assert_equivalent(&seq, &par);
    }

    #[test]
    fn sharded_streaming_matches_sequential_materialised() {
        let mut config = ClusterConfig::small_test();
        config.aggregate_metrics = true;
        let t = trace(300.0, 20.0, 0.5);
        let seq = run_simulation(&config, &AlwaysLargest, &t);
        let mut sharded = config.clone();
        sharded.shards = 2;
        sharded.shard_threads = 2;
        let par = run_simulation_streaming(&sharded, &AlwaysLargest, &t);
        assert_equivalent(&seq, &par);
    }

    #[test]
    fn sharded_scripted_eviction_matches_with_audit() {
        let mut config = ClusterConfig::small_test();
        config.workers = 3;
        config.procurement = ProcurementPolicy::Hybrid;
        config.availability = SpotAvailability::Low;
        config.revocation_check = SimDuration::from_secs(5.0);
        config.vm_startup = SimDuration::from_secs(5.0);
        config.procurement_retry = SimDuration::from_secs(5.0);
        config.audit = true;
        let t = trace(200.0, 60.0, 0.5);
        let script = || {
            crate::fault::ScriptedMarket::new().evict(
                0,
                SimTime::from_secs(10.0),
                SimDuration::from_secs(20.0),
            )
        };
        let mut market = script();
        let seq = run_simulation_with_oracle(&config, &AlwaysLargest, &t, &mut market);
        let mut sharded = config.clone();
        sharded.shards = 3;
        sharded.shard_threads = 2;
        let mut market = script();
        let par = run_simulation_with_oracle(&sharded, &AlwaysLargest, &t, &mut market);
        assert_eq!(par.cost.evictions, 1);
        assert!(par.audit.is_clean(), "{:?}", par.audit.violations);
        assert!(par.audit.checks > 0);
        assert_eq!(seq.audit.checks, par.audit.checks);
        assert_equivalent(&seq, &par);
    }

    #[test]
    fn sharded_slo_compliance_matches() {
        let mut config = ClusterConfig::small_test();
        config.cold_start = SimDuration::from_secs(2.0);
        let t = trace(100.0, 40.0, 0.5);
        let (seq, par) = run_pair(&config, 4, 1, &t);
        let catalog = Catalog::new();
        let slo = |m: ModelId| catalog.profile(m).slo();
        let a = seq.metrics.slo_compliance(&slo);
        let b = par.metrics.slo_compliance(&slo);
        assert_eq!(a.to_bits(), b.to_bits());
        assert!(b > 0.9, "compliance {b}");
    }

    #[test]
    fn coarsened_runs_match_per_arrival_epochs_and_reconcile() {
        let mut config = ClusterConfig::small_test();
        config.audit = true;
        config.shards = 4;
        config.shard_threads = 1;
        let t = trace(400.0, 30.0, 0.5);
        let mut per_arrival = config.clone();
        per_arrival.max_epoch_arrivals = 1;
        let base = run_simulation(&per_arrival, &AlwaysLargest, &t);
        config.max_epoch_arrivals = 64;
        let coarse = run_simulation(&config, &AlwaysLargest, &t);
        assert_equivalent(&base, &coarse);
        assert!(base.audit.is_clean(), "{:?}", base.audit.violations);
        assert!(coarse.audit.is_clean(), "{:?}", coarse.audit.violations);
        // Per-arrival epochs: every run is a singleton (arrivals and
        // window expiries alike — cap 1 cuts after the first member).
        assert_eq!(base.stats.epochs, base.stats.arrivals + base.stats.expiries);
        assert_eq!(base.stats.coalesced_arrivals, 0);
        assert_eq!(base.stats.coalesced_expiries, 0);
        // Coarsening actually coalesces on a dispatch-dense trace —
        // arrivals and window expiries both — and the extended counter
        // triad reconciles.
        assert!(coarse.stats.epochs < coarse.stats.arrivals);
        assert!(coarse.stats.coalesced_arrivals > 0);
        assert!(coarse.stats.coalesced_expiries > 0);
        assert_eq!(coarse.stats.expiries, base.stats.expiries);
        assert_eq!(
            coarse.stats.epochs + coarse.stats.coalesced_arrivals + coarse.stats.coalesced_expiries,
            coarse.stats.arrivals + coarse.stats.expiries
        );
        assert_eq!(coarse.stats.run_cutoffs.total(), coarse.stats.epochs);
        assert_eq!(base.stats.run_cutoffs.total(), base.stats.epochs);
    }

    #[test]
    fn run_is_cut_exactly_at_a_reconfig_trigger_arrival() {
        // Ten strict arrivals 1 ms apart straddling the t = 2 s monitor
        // tick (the reconfiguration trigger). The sixth arrival lands
        // exactly on the tick and must win its `ta <= te` tie — then
        // the run must cut *there*, because the seventh arrival would
        // need a phase after the serially-ordered tick.
        let requests: Vec<Request> = (0..10)
            .map(|i| Request {
                id: protean_trace::RequestId(i),
                arrival: SimTime::from_millis(1995.0 + i as f64),
                model: ModelId::ResNet50,
                strict: true,
            })
            .collect();
        let t = Trace::from_parts(requests.clone(), SimDuration::from_secs(3.0));
        let mut config = ClusterConfig::small_test();
        config.audit = true;
        config.shards = 2;
        config.shard_threads = 1;
        let par = crate::engine::run_simulation_on(&config, &AlwaysLargest, t);
        assert!(par.audit.is_clean(), "{:?}", par.audit.violations);
        assert_eq!(par.stats.arrivals, 10);
        // Run 1: arrivals at 1.995..=2.000 s (six, the tick-tied one
        // included), cut by the serial monitor tick. Run 2: the four
        // remaining arrivals, cut by the trace end.
        assert_eq!(par.stats.epochs, 2);
        assert_eq!(par.stats.coalesced_arrivals, 8);
        assert_eq!(par.stats.run_cutoffs.serial_event, 1);
        assert_eq!(par.stats.run_cutoffs.trace_end, 1);
        assert_eq!(par.stats.run_cutoffs.total(), par.stats.epochs);
        // Still bit-identical to the sequential engine on the same trace.
        let seq = crate::engine::run_simulation_on(
            &ClusterConfig {
                audit: true,
                ..ClusterConfig::small_test()
            },
            &AlwaysLargest,
            Trace::from_parts(requests, SimDuration::from_secs(3.0)),
        );
        assert_equivalent(&seq, &par);
    }

    #[test]
    fn expiry_run_is_cut_exactly_at_the_first_non_dispatch_coord_event() {
        // Two strict arrivals for *different* models at 1.900 s and
        // 1.920 s open two batch accumulators, whose 50 ms window
        // expiries fire at 1.950 s and 1.970 s — both before the t = 2 s
        // monitor tick — and a third arrival lands beyond the tick at
        // 2.100 s. With expiry coalescing on, one run covers the first
        // four dispatch events (arrival, arrival, expiry, expiry): each
        // expiry is the coordinator-queue head when admitted and no
        // shard holds anything below its key (cold-start `BootDone`s
        // land ~8 s out). The run must then cut *exactly* at the tick —
        // the first non-dispatch coordinator event, which beats the
        // 2.100 s arrival — and the tick itself is handled as a plain
        // serial event, not an epoch. The second run is the last
        // arrival plus its own window expiry, ending with the trace.
        let requests = vec![
            Request {
                id: protean_trace::RequestId(0),
                arrival: SimTime::from_millis(1900.0),
                model: ModelId::ResNet50,
                strict: true,
            },
            Request {
                id: protean_trace::RequestId(1),
                arrival: SimTime::from_millis(1920.0),
                model: ModelId::GoogleNet,
                strict: true,
            },
            Request {
                id: protean_trace::RequestId(2),
                arrival: SimTime::from_millis(2100.0),
                model: ModelId::ResNet50,
                strict: true,
            },
        ];
        let t = Trace::from_parts(requests.clone(), SimDuration::from_secs(3.0));
        let mut config = ClusterConfig::small_test();
        config.audit = true;
        config.shards = 2;
        config.shard_threads = 1;
        let par = crate::engine::run_simulation_on(&config, &AlwaysLargest, t);
        assert!(par.audit.is_clean(), "{:?}", par.audit.violations);
        assert_eq!(par.stats.arrivals, 3);
        assert_eq!(par.stats.expiries, 3);
        assert_eq!(par.stats.epochs, 2);
        assert_eq!(par.stats.coalesced_arrivals, 1);
        assert_eq!(par.stats.coalesced_expiries, 3);
        assert_eq!(par.stats.run_cutoffs.serial_event, 1);
        assert_eq!(par.stats.run_cutoffs.trace_end, 1);
        assert_eq!(par.stats.run_cutoffs.total(), par.stats.epochs);

        // Knob off: the PR-8 discipline. The first arrival run is cut
        // by the (now inadmissible) 1.950 s expiry as a plain serial
        // event; every expiry is then a singleton epoch cut by fiat,
        // attributed to `coalescing_off`.
        let mut off = config.clone();
        off.coalesce_window_expiries = false;
        let t = Trace::from_parts(requests.clone(), SimDuration::from_secs(3.0));
        let off_r = crate::engine::run_simulation_on(&off, &AlwaysLargest, t);
        assert!(off_r.audit.is_clean(), "{:?}", off_r.audit.violations);
        assert_eq!(off_r.stats.arrivals, 3);
        assert_eq!(off_r.stats.expiries, 3);
        assert_eq!(off_r.stats.epochs, 5);
        assert_eq!(off_r.stats.coalesced_arrivals, 1);
        assert_eq!(off_r.stats.coalesced_expiries, 0);
        assert_eq!(off_r.stats.run_cutoffs.serial_event, 1);
        assert_eq!(off_r.stats.run_cutoffs.coalescing_off, 3);
        assert_eq!(off_r.stats.run_cutoffs.trace_end, 1);
        assert_eq!(off_r.stats.run_cutoffs.total(), off_r.stats.epochs);

        // Both arms bit-identical to the sequential engine.
        let seq = crate::engine::run_simulation_on(
            &ClusterConfig {
                audit: true,
                ..ClusterConfig::small_test()
            },
            &AlwaysLargest,
            Trace::from_parts(requests, SimDuration::from_secs(3.0)),
        );
        assert_eq!(seq.stats.expiries, 3);
        assert_equivalent(&seq, &par);
        assert_equivalent(&seq, &off_r);
    }

    #[test]
    fn journal_pressure_cuts_runs_and_stays_equivalent() {
        let mut config = ClusterConfig::small_test();
        config.journal_capacity = 512;
        let t = trace(400.0, 30.0, 0.5);
        let (seq, par) = run_pair(&config, 2, 1, &t);
        assert_equivalent(&seq, &par);
        assert!(
            par.stats.run_cutoffs.journal_pressure > 0,
            "expected journal-pressure cutoffs, got {:?}",
            par.stats.run_cutoffs
        );
        assert_eq!(
            par.stats.epochs + par.stats.coalesced_arrivals + par.stats.coalesced_expiries,
            par.stats.arrivals + par.stats.expiries
        );
        assert_eq!(par.stats.run_cutoffs.total(), par.stats.epochs);
    }

    #[test]
    fn shard_count_never_exceeds_workers() {
        let mut config = ClusterConfig::small_test();
        config.workers = 2;
        config.shards = 64;
        config.shard_threads = 1;
        let t = trace(100.0, 20.0, 0.5);
        let r = run_simulation(&config, &AlwaysLargest, &t);
        assert!(r.metrics.count(Class::All) > 0);
    }
}
