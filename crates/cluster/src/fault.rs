//! Deterministic fault injection for the spot-market lifecycle.
//!
//! The engine consumes the spot market through the
//! [`SpotOracle`] trait, whose production implementation
//! ([`protean_spot::SpotMarket`]) draws revocations and grants from a
//! seeded RNG. That is the right model for experiments, but it makes
//! lifecycle *bug hunting* miserable: the interesting interleavings —
//! an eviction notice landing while a cold-start boot is in flight, a
//! replacement VM coming up before the old one drains, a procurement
//! denial burst keeping a slot down across several retries — only occur
//! when the RNG happens to produce them, which is why the test suite
//! used to scan 16 seeds hoping for an eviction.
//!
//! [`ScriptedMarket`] replaces the dice with a script: evictions fire
//! at the times (and with the notice leads) the test says, and
//! spot-acquisition rolls consume a scripted grant/deny sequence. Runs
//! stay fully deterministic, so each adversarial schedule is a regular
//! unit test, and the randomized-schedule property test composes
//! arbitrary scripts with the invariant auditor enabled.
//!
//! ```
//! use protean_cluster::fault::ScriptedMarket;
//! use protean_sim::{SimDuration, SimTime};
//!
//! // Worker 1 gets an eviction notice at its first revocation check at
//! // or after t=10 s, with the VM reclaimed 40 s later; the first two
//! // spot requests after that are denied.
//! let market = ScriptedMarket::new()
//!     .evict(1, SimTime::from_secs(10.0), SimDuration::from_secs(40.0))
//!     .deny_next(2);
//! ```

use std::collections::VecDeque;

use protean_sim::{SimDuration, SimTime};
pub use protean_spot::SpotOracle;

/// One scripted eviction notice, armed until consumed.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ScriptedEviction {
    worker: usize,
    /// The notice fires at the worker's first revocation check at or
    /// after this instant.
    at: SimTime,
    /// Notice lead: the VM is reclaimed `lead` after the notice.
    lead: SimDuration,
}

/// A [`SpotOracle`] that follows a script instead of rolling dice.
///
/// Revocations: [`ScriptedMarket::evict`] arms one eviction notice per
/// call; a worker's revocation check consumes the matching entry
/// (`worker, now >= at`) with the **earliest `at`**, breaking ties by
/// arming order. Checks with no matching entry return no notice. The
/// selection depends only on the script and the check's `(now, worker)`,
/// never on global check interleaving, so the sequential and sharded
/// engines — which visit workers in different orders — consume
/// identical scripts identically.
///
/// Acquisitions: each spot-acquisition roll pops the front of the
/// grant/deny queue ([`ScriptedMarket::deny_next`] /
/// [`ScriptedMarket::grant_next`]); once the queue is exhausted, rolls
/// return the default (granted, unless [`ScriptedMarket::deny_rest`]).
/// Note that initial cluster provisioning under a spot-eligible
/// procurement policy rolls one acquisition per worker (in worker
/// order) at `t = 0`, consuming the head of the queue.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScriptedMarket {
    evictions: Vec<ScriptedEviction>,
    grants: VecDeque<bool>,
    deny_rest: bool,
    revocation_checks: u64,
    acquisition_rolls: u64,
}

impl ScriptedMarket {
    /// A market that never evicts and grants every spot request.
    pub fn new() -> Self {
        ScriptedMarket::default()
    }

    /// Arms an eviction notice: `worker`'s first revocation check at or
    /// after `at` fires a notice with the VM reclaimed `lead` later.
    pub fn evict(mut self, worker: usize, at: SimTime, lead: SimDuration) -> Self {
        self.evictions.push(ScriptedEviction { worker, at, lead });
        self
    }

    /// Appends `n` denials to the acquisition script.
    pub fn deny_next(mut self, n: usize) -> Self {
        self.grants.extend(std::iter::repeat_n(false, n));
        self
    }

    /// Appends `n` grants to the acquisition script.
    pub fn grant_next(mut self, n: usize) -> Self {
        self.grants.extend(std::iter::repeat_n(true, n));
        self
    }

    /// Denies every acquisition roll after the scripted queue runs out
    /// (the default is to grant them).
    pub fn deny_rest(mut self) -> Self {
        self.deny_rest = true;
        self
    }

    /// Revocation checks rolled so far.
    pub fn revocation_checks(&self) -> u64 {
        self.revocation_checks
    }

    /// Spot-acquisition requests rolled so far.
    pub fn acquisition_rolls(&self) -> u64 {
        self.acquisition_rolls
    }

    /// Scripted evictions not yet consumed.
    pub fn pending_evictions(&self) -> usize {
        self.evictions.len()
    }
}

impl SpotOracle for ScriptedMarket {
    fn roll_revocation(&mut self, now: SimTime, worker: usize) -> Option<SimDuration> {
        self.revocation_checks += 1;
        // Among armed entries for this worker that are due, consume the
        // one with the earliest `at` (arming order breaks ties). The
        // first due *position* is not enough: a late-armed entry with an
        // earlier `at` must fire before an early-armed one that is
        // merely also due by `now`.
        let hit = self
            .evictions
            .iter()
            .enumerate()
            .filter(|(_, e)| e.worker == worker && now >= e.at)
            .min_by_key(|(i, e)| (e.at, *i))
            .map(|(i, _)| i)?;
        Some(self.evictions.remove(hit).lead)
    }

    fn try_acquire_spot(&mut self, _now: SimTime, _worker: usize) -> bool {
        self.acquisition_rolls += 1;
        self.grants.pop_front().unwrap_or(!self.deny_rest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evictions_fire_once_per_matching_check() {
        let mut m = ScriptedMarket::new()
            .evict(0, SimTime::from_secs(5.0), SimDuration::from_secs(60.0))
            .evict(1, SimTime::from_secs(5.0), SimDuration::from_secs(30.0));
        // Too early, and the wrong worker, roll nothing.
        assert_eq!(m.roll_revocation(SimTime::from_secs(1.0), 0), None);
        assert_eq!(m.roll_revocation(SimTime::from_secs(9.0), 2), None);
        assert_eq!(
            m.roll_revocation(SimTime::from_secs(9.0), 0),
            Some(SimDuration::from_secs(60.0))
        );
        // Consumed: the same worker rolls clean afterwards.
        assert_eq!(m.roll_revocation(SimTime::from_secs(20.0), 0), None);
        assert_eq!(
            m.roll_revocation(SimTime::from_secs(5.0), 1),
            Some(SimDuration::from_secs(30.0))
        );
        assert_eq!(m.pending_evictions(), 0);
        assert_eq!(m.revocation_checks(), 5);
    }

    /// Regression: an entry armed later but due earlier must fire first.
    /// The pre-fix code consumed the first *armed* due entry, so a check
    /// late enough to make both due returned the wrong lead.
    #[test]
    fn earliest_at_wins_regardless_of_arming_order() {
        let mut m = ScriptedMarket::new()
            .evict(0, SimTime::from_secs(10.0), SimDuration::from_secs(60.0))
            .evict(0, SimTime::from_secs(5.0), SimDuration::from_secs(30.0));
        // At t=20 both entries are due; the at=5 one (armed second) wins.
        assert_eq!(
            m.roll_revocation(SimTime::from_secs(20.0), 0),
            Some(SimDuration::from_secs(30.0))
        );
        assert_eq!(
            m.roll_revocation(SimTime::from_secs(20.0), 0),
            Some(SimDuration::from_secs(60.0))
        );
        assert_eq!(m.pending_evictions(), 0);
    }

    /// Identical `at` on the same worker: arming order breaks the tie,
    /// and the documented order holds on a fresh clone (the scenario
    /// runner clones one script into the sequential and sharded arms).
    #[test]
    fn identical_at_resolves_in_arming_order_across_clones() {
        let script = ScriptedMarket::new()
            .evict(3, SimTime::from_secs(10.0), SimDuration::from_secs(40.0))
            .evict(3, SimTime::from_secs(10.0), SimDuration::from_secs(20.0));
        let mut a = script.clone();
        let mut b = script;
        for m in [&mut a, &mut b] {
            assert_eq!(
                m.roll_revocation(SimTime::from_secs(10.0), 3),
                Some(SimDuration::from_secs(40.0))
            );
            assert_eq!(
                m.roll_revocation(SimTime::from_secs(10.0), 3),
                Some(SimDuration::from_secs(20.0))
            );
        }
        assert_eq!(a, b);
    }

    #[test]
    fn acquisition_script_then_default() {
        let mut m = ScriptedMarket::new().deny_next(2).grant_next(1);
        let t = SimTime::ZERO;
        assert!(!m.try_acquire_spot(t, 0));
        assert!(!m.try_acquire_spot(t, 0));
        assert!(m.try_acquire_spot(t, 0));
        assert!(m.try_acquire_spot(t, 0), "exhausted script grants");
        let mut d = ScriptedMarket::new().grant_next(1).deny_rest();
        assert!(d.try_acquire_spot(t, 0));
        assert!(!d.try_acquire_spot(t, 0), "deny_rest flips the default");
        assert_eq!(d.acquisition_rolls(), 2);
    }
}
