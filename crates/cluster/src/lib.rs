//! The serverless cluster substrate: gateway, dispatcher, request
//! batching and reordering, autoscaling container pools, worker nodes,
//! and the discrete-event engine that drives them (paper Fig. 4).
//!
//! The crate is policy-free: every scheduling decision the paper varies
//! between schemes is delegated to a [`Scheme`] implementation —
//! PROTEAN itself lives in the `protean` crate and the comparison
//! schemes in `protean-baselines`. What this crate fixes is the shared
//! request path:
//!
//! 1. requests **arrive** at the gateway (from a `protean-trace` trace)
//!    and are **dispatched** to the least-loaded live worker, selected
//!    in O(log W) by the incremental [`dispatch::DispatchIndex`];
//! 2. per `(model, strictness)` they accumulate into **batches** (batch
//!    sizes from the model catalog), sealed when full or when the batch
//!    window expires;
//! 3. a sealed batch needs a **container** — warm if the autoscaler kept
//!    one, otherwise a cold start (§4.2: one container per batch,
//!    delayed termination keep-alive);
//! 4. batches wait in the worker's scheduler queue (strict-priority if
//!    the scheme reorders, §4.1) until the scheme **places** them on a
//!    MIG slice of the worker's GPU;
//! 5. completions record per-request latency breakdowns; monitor ticks
//!    drive the scheme's **reconfiguration** hook (≤30% of GPUs may
//!    reconfigure simultaneously, §4.4) and the autoscaler's delayed
//!    termination;
//! 6. the **procurement** layer runs the spot-market emulation:
//!    revocation checks, eviction notices, drain, replacement VMs, and
//!    the dollar ledger (§4.5).
//!
//! Two correctness tools ride on top of the engine: the opt-in
//! invariant [`audit`] layer sweeps cluster-wide conservation laws
//! after every event, and the [`fault`] module's scripted spot oracle
//! drives the eviction machinery through exact adversarial
//! interleavings (see [`engine::run_simulation_with_oracle`]).
//!
//! # Example
//!
//! ```
//! use protean_cluster::{ClusterConfig, run_simulation, schemes_for_test::AlwaysLargest};
//! use protean_trace::{TraceConfig, TraceShape};
//! use protean_models::ModelId;
//! use protean_sim::SimDuration;
//!
//! let trace = TraceConfig {
//!     shape: TraceShape::constant(200.0),
//!     duration: SimDuration::from_secs(5.0),
//!     strict_model: ModelId::ResNet50,
//!     strict_fraction: 0.5,
//!     be_pool: vec![ModelId::MobileNet],
//!     be_rotation_period: SimDuration::from_secs(20.0),
//!     batch_arrivals: true,
//! };
//! let mut config = ClusterConfig::small_test();
//! config.warmup = SimDuration::from_secs(0.0); // measure from t=0
//! let result = run_simulation(&config, &AlwaysLargest, &trace);
//! assert!(result.metrics.count(protean_metrics::record::Class::All) > 0);
//! ```

pub mod audit;
pub mod batch;
pub mod container;
pub mod dispatch;
pub mod engine;
pub mod fault;
pub mod journal;
pub mod scheme;
pub mod sharded;
pub mod worker;

pub use audit::AuditReport;
pub use batch::{Batch, BatchId};
pub use dispatch::{select_across, DispatchIndex};
pub use engine::{
    run_simulation, run_simulation_on, run_simulation_streaming, run_simulation_with_oracle,
    run_stream_with_oracle, run_trace_with_oracle, ClusterConfig, CostReport, EngineStats,
    RunCutoffs, SimulationResult,
};
pub use fault::{ScriptedMarket, SpotOracle};
pub use journal::{Journal, JournalEvent};
pub use scheme::{
    BatchView, DispatchPolicy, Placement, PlacementCtx, ReconfigCtx, Scheme, SchemeBuilder,
};

/// Tiny schemes used by doctests and unit tests of this crate.
pub mod schemes_for_test {
    use protean_gpu::{Geometry, SharingMode};

    use crate::scheme::{BatchView, Placement, PlacementCtx, Scheme, SchemeBuilder};

    /// Places every batch on slice 0 of the full-GPU geometry via MPS.
    #[derive(Debug, Clone, Copy)]
    pub struct AlwaysLargest;

    impl Scheme for AlwaysLargest {
        fn name(&self) -> &'static str {
            "always-largest"
        }
        fn initial_geometry(&self) -> Geometry {
            Geometry::full()
        }
        fn sharing_mode(&self) -> SharingMode {
            SharingMode::Mps
        }
        fn place(&mut self, _ctx: &PlacementCtx<'_>, _batch: &BatchView) -> Option<Placement> {
            Some(Placement::on_slice(0))
        }
    }

    impl SchemeBuilder for AlwaysLargest {
        fn build(&self, _worker: usize) -> Box<dyn Scheme> {
            Box::new(AlwaysLargest)
        }
        fn name(&self) -> &'static str {
            "always-largest"
        }
    }
}
