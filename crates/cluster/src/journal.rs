//! Observability: an optional journal of cluster-level events.
//!
//! When enabled (see [`crate::ClusterConfig`]'s `journal_capacity`
//! field), the engine records the
//! interesting state transitions — batch lifecycle, reconfigurations,
//! spot-market events — so a run can be audited or debugged after the
//! fact without re-instrumenting the engine. The journal is bounded:
//! once `capacity` entries are recorded, further events are counted but
//! dropped.

use protean_models::ModelId;
use protean_sim::SimTime;

use crate::batch::BatchId;

/// One recorded cluster event.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalEvent {
    /// A batch was sealed at the gateway.
    BatchSealed {
        /// The batch.
        batch: BatchId,
        /// Its model.
        model: ModelId,
        /// Strictness class.
        strict: bool,
        /// Number of requests.
        size: u32,
    },
    /// A batch was dispatched to a worker.
    BatchDispatched {
        /// The batch.
        batch: BatchId,
        /// Destination worker.
        worker: usize,
        /// `true` when this is an eviction orphan re-entering the
        /// dispatcher rather than a freshly sealed batch.
        redispatch: bool,
    },
    /// A batch began executing on a slice.
    BatchPlaced {
        /// The batch.
        batch: BatchId,
        /// The worker.
        worker: usize,
        /// Slice index within the worker's geometry.
        slice: usize,
    },
    /// A batch finished executing.
    BatchFinished {
        /// The batch.
        batch: BatchId,
        /// The worker.
        worker: usize,
    },
    /// A container cold start began.
    ColdStart {
        /// The worker.
        worker: usize,
        /// The model whose pool is booting a container.
        model: ModelId,
    },
    /// A GPU completed a MIG reconfiguration.
    Reconfigured {
        /// The worker.
        worker: usize,
        /// The new geometry in paper notation.
        geometry: String,
    },
    /// A spot VM received an eviction notice.
    EvictionNotice {
        /// The worker.
        worker: usize,
        /// When the VM will be reclaimed.
        evict_at: SimTime,
    },
    /// A worker's VM was reclaimed.
    Evicted {
        /// The worker.
        worker: usize,
    },
    /// A replacement VM came up on a worker slot.
    VmInstalled {
        /// The worker.
        worker: usize,
    },
}

/// A bounded, timestamped journal of [`JournalEvent`]s.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    capacity: usize,
    entries: Vec<(SimTime, JournalEvent)>,
    dropped: u64,
}

impl Journal {
    /// Creates a journal holding at most `capacity` entries
    /// (`capacity == 0` disables recording entirely).
    pub fn new(capacity: usize) -> Self {
        Journal {
            capacity,
            entries: Vec::new(),
            dropped: 0,
        }
    }

    /// `true` if the journal records events.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records `event` at `now` (drops it once full).
    pub fn record(&mut self, now: SimTime, event: JournalEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push((now, event));
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded entries, in order.
    pub fn entries(&self) -> &[(SimTime, JournalEvent)] {
        &self.entries
    }

    /// Events that arrived after the journal filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Entries matching a predicate (convenience for tests/analysis).
    pub fn filter<'a, F: Fn(&JournalEvent) -> bool + 'a>(
        &'a self,
        pred: F,
    ) -> impl Iterator<Item = &'a (SimTime, JournalEvent)> + 'a {
        self.entries.iter().filter(move |(_, e)| pred(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_journal_records_nothing() {
        let mut j = Journal::new(0);
        assert!(!j.enabled());
        j.record(SimTime::ZERO, JournalEvent::Evicted { worker: 0 });
        assert!(j.entries().is_empty());
        assert_eq!(j.dropped(), 0);
    }

    #[test]
    fn journal_caps_and_counts_drops() {
        let mut j = Journal::new(2);
        for w in 0..5 {
            j.record(
                SimTime::from_secs(w as f64),
                JournalEvent::Evicted { worker: w },
            );
        }
        assert_eq!(j.entries().len(), 2);
        assert_eq!(j.dropped(), 3);
    }

    #[test]
    fn filter_selects_matching_events() {
        let mut j = Journal::new(16);
        j.record(SimTime::ZERO, JournalEvent::Evicted { worker: 1 });
        j.record(
            SimTime::ZERO,
            JournalEvent::Reconfigured {
                worker: 2,
                geometry: "(4g, 3g)".into(),
            },
        );
        let evictions: Vec<_> = j
            .filter(|e| matches!(e, JournalEvent::Evicted { .. }))
            .collect();
        assert_eq!(evictions.len(), 1);
    }
}
