//! Opt-in cluster-state invariant auditor.
//!
//! The engine's correctness story rests on conservation laws that no
//! single unit test can see end to end: containers must not be minted
//! or leaked across cold starts, evictions and VM replacements;
//! `Worker::outstanding` must equal the requests physically held in the
//! worker's pipeline; the VM ledger must bill exactly the VMs bound (or
//! pending) on workers; batches must walk the
//! `Sealed → Dispatched → Placed → Finished` lifecycle in order, with
//! the only allowed regression being an eviction re-dispatch.
//!
//! When [`crate::ClusterConfig`]'s `audit` flag is set, the engine
//! sweeps these invariants after **every** handled event and arrival
//! (or every `audit_every_n`-th one, for fleet-scale runs where a full
//! sweep per event is unaffordable), and records each violation into
//! [`AuditReport`]. The sweep also cross-checks the incremental
//! [`crate::dispatch::DispatchIndex`] against the workers' live state —
//! the index-coherence invariant backing the O(log W) dispatcher. With
//! the flag off (the default) every hook returns immediately — the
//! auditor holds no state and the run's results are bit-identical to an
//! unaudited run. With the flag *on* results are also bit-identical:
//! the auditor only reads engine state, so it can ride along in any
//! test or experiment.
//!
//! The auditor is the complement of the deterministic fault-injection
//! harness ([`crate::fault`]): scripted adversarial schedules drive the
//! engine through the eviction × cold-start × reconfiguration corner
//! cases, and the auditor proves the lifecycle machinery conserved
//! every resource along the way.

use std::collections::HashMap;

use protean_sim::SimTime;
use protean_spot::VmLedger;

use crate::batch::BatchId;
use crate::dispatch::DispatchIndex;
use crate::worker::{Worker, WorkerStatus};

/// Cap on recorded violation messages; beyond it only the count grows.
const MAX_RECORDED: usize = 64;

/// Outcome of an audited run, surfaced in
/// [`crate::SimulationResult::audit`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditReport {
    /// Whether the auditor was enabled for the run.
    pub enabled: bool,
    /// Full-state invariant sweeps performed (one per handled event or
    /// dispatched arrival, thinned by
    /// [`crate::ClusterConfig::audit_every_n`] sampling).
    pub checks: u64,
    /// Total invariant violations detected.
    pub violation_count: u64,
    /// The first [`MAX_RECORDED`] violation messages, in detection
    /// order.
    pub violations: Vec<String>,
}

impl AuditReport {
    /// `true` if the audited run violated no invariant. A disabled
    /// auditor reports clean (it saw nothing).
    pub fn is_clean(&self) -> bool {
        self.violation_count == 0
    }
}

/// Batch lifecycle stage tracked for the causality invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Sealed,
    Dispatched,
    Placed,
}

/// The live auditor owned by the engine. Every hook is a no-op unless
/// constructed enabled.
#[derive(Debug, Default)]
pub(crate) struct Auditor {
    enabled: bool,
    /// Run the full sweep on every `every_n`-th opportunity (≥ 1). The
    /// O(1) batch-lifecycle hooks are never sampled.
    every_n: u64,
    /// Sweep opportunities seen (sampled or not).
    opportunities: u64,
    checks: u64,
    violation_count: u64,
    violations: Vec<String>,
    /// Lifecycle stage per in-flight batch (finished batches are
    /// dropped to bound memory).
    stages: HashMap<BatchId, Stage>,
    /// Ledger misuse tally at the last sweep, so each absorbed misuse
    /// event is reported once rather than on every subsequent sweep.
    last_ledger_misuse: u64,
}

impl Auditor {
    pub(crate) fn new(enabled: bool, every_n: u64) -> Self {
        Auditor {
            enabled,
            every_n: every_n.max(1),
            ..Auditor::default()
        }
    }

    fn violation(&mut self, now: SimTime, msg: String) {
        self.violation_count += 1;
        if self.violations.len() < MAX_RECORDED {
            self.violations
                .push(format!("t={:.6}s {msg}", now.as_secs_f64()));
        }
    }

    /// A batch was sealed at the gateway.
    pub(crate) fn batch_sealed(&mut self, now: SimTime, id: BatchId) {
        if !self.enabled {
            return;
        }
        if self.stages.insert(id, Stage::Sealed).is_some() {
            self.violation(now, format!("batch {id:?} sealed twice"));
        }
    }

    /// A batch was dispatched to `worker`. `routable` is the target's
    /// routability at dispatch time; `redispatch` marks an eviction
    /// orphan re-entering the dispatcher.
    pub(crate) fn batch_dispatched(
        &mut self,
        now: SimTime,
        id: BatchId,
        worker: usize,
        routable: bool,
        redispatch: bool,
    ) {
        if !self.enabled {
            return;
        }
        if !routable {
            self.violation(
                now,
                format!("batch {id:?} dispatched to non-routable worker {worker}"),
            );
        }
        let ok = match self.stages.get(&id) {
            Some(Stage::Sealed) => true,
            // Eviction orphans legitimately regress from Dispatched
            // (waiting for container/slice) or Placed (running when the
            // VM died) back to Dispatched.
            Some(Stage::Dispatched) | Some(Stage::Placed) => redispatch,
            None => false,
        };
        if !ok {
            self.violation(
                now,
                format!(
                    "batch {id:?} dispatched out of order (stage {:?}, redispatch {redispatch})",
                    self.stages.get(&id)
                ),
            );
        }
        self.stages.insert(id, Stage::Dispatched);
    }

    /// A batch began executing on a slice.
    pub(crate) fn batch_placed(&mut self, now: SimTime, id: BatchId, worker: usize) {
        if !self.enabled {
            return;
        }
        if self.stages.get(&id) != Some(&Stage::Dispatched) {
            self.violation(
                now,
                format!(
                    "batch {id:?} placed on worker {worker} out of order (stage {:?})",
                    self.stages.get(&id)
                ),
            );
        }
        self.stages.insert(id, Stage::Placed);
    }

    /// A batch finished executing.
    pub(crate) fn batch_finished(&mut self, now: SimTime, id: BatchId, worker: usize) {
        if !self.enabled {
            return;
        }
        if self.stages.remove(&id) != Some(Stage::Placed) {
            self.violation(
                now,
                format!("batch {id:?} finished on worker {worker} without being placed"),
            );
        }
    }

    /// Sweeps the cluster-wide conservation invariants plus
    /// dispatch-index coherence. Called after every handled event and
    /// every dispatched arrival; performs the sweep on every
    /// `every_n`-th call.
    pub(crate) fn check_cluster(
        &mut self,
        now: SimTime,
        workers: &[Worker],
        ledger: &VmLedger,
        index: &DispatchIndex,
    ) {
        if !self.sweep_due() {
            return;
        }
        // Index coherence: the incrementally-maintained dispatch index
        // must agree with the workers' live state at every quiescent
        // point, or the O(log W) dispatcher could diverge from the
        // linear-scan reference.
        let index_problems = index.verify(workers);
        self.sweep(now, workers.iter(), ledger, index_problems);
    }

    /// Counts a sweep opportunity and reports whether this one is
    /// sampled in (`every_n` thinning). Callers that assemble the fleet
    /// view from several shards use this to skip the assembly cost on
    /// thinned-out opportunities.
    pub(crate) fn sweep_due(&mut self) -> bool {
        if !self.enabled {
            return false;
        }
        self.opportunities += 1;
        if !(self.opportunities - 1).is_multiple_of(self.every_n) {
            return false;
        }
        self.checks += 1;
        true
    }

    /// The conservation sweep body, over any iteration of the fleet's
    /// workers. The sharded engine chains its per-shard worker slices
    /// here (after verifying each shard's partition of the dispatch
    /// index via [`DispatchIndex::verify_partition`], passing the
    /// messages as `index_problems`); the sequential engine goes through
    /// [`Auditor::check_cluster`]. Call only after [`Auditor::sweep_due`]
    /// returned `true`.
    pub(crate) fn sweep<'a>(
        &mut self,
        now: SimTime,
        workers: impl Iterator<Item = &'a Worker>,
        ledger: &VmLedger,
        index_problems: Vec<String>,
    ) {
        for msg in index_problems {
            self.violation(now, msg);
        }
        let mut bound_vms = 0usize;
        for w in workers {
            // Container conservation per (worker, model): the pool's
            // live population must equal its birth events minus its
            // reclaims — a saturating underflow or phantom container
            // breaks the equality.
            for (model, pool) in &w.pools {
                let live = u64::from(pool.busy_count())
                    + u64::from(pool.booting_count())
                    + pool.warm_count() as u64;
                let born = pool.prewarmed() + pool.cold_starts() + pool.proactive_boots();
                if live + pool.reclaimed() != born {
                    self.violation(
                        now,
                        format!(
                            "worker {} model {model:?} container conservation broken: \
                             warm {} + busy {} + booting {} + reclaimed {} != \
                             prewarmed {} + cold {} + proactive {}",
                            w.idx,
                            pool.warm_count(),
                            pool.busy_count(),
                            pool.booting_count(),
                            pool.reclaimed(),
                            pool.prewarmed(),
                            pool.cold_starts(),
                            pool.proactive_boots(),
                        ),
                    );
                }
            }
            // Request accounting: `outstanding` is the dispatcher's load
            // signal and must equal the requests physically held in the
            // worker's pipeline.
            let held: u64 = w
                .wait_container
                .values()
                .flat_map(|q| q.iter())
                .map(|b| b.requests.len() as u64)
                .sum::<u64>()
                + w.sched_queue
                    .iter_batches()
                    .map(|b| b.requests.len() as u64)
                    .sum::<u64>()
                + w.running
                    .values()
                    .map(|rb| rb.batch.requests.len() as u64)
                    .sum::<u64>();
            if held != w.outstanding {
                self.violation(
                    now,
                    format!(
                        "worker {} outstanding {} != held requests {held}",
                        w.idx, w.outstanding
                    ),
                );
            }
            // VM binding coherence with the lifecycle status.
            let vm_ok = match w.status {
                WorkerStatus::Up | WorkerStatus::Evicting { .. } => w.vm.is_some(),
                WorkerStatus::Down => w.vm.is_none(),
            };
            if !vm_ok {
                self.violation(
                    now,
                    format!(
                        "worker {} status {:?} inconsistent with VM binding {:?}",
                        w.idx, w.status, w.vm
                    ),
                );
            }
            if w.pending_vm.is_some() && !matches!(w.status, WorkerStatus::Evicting { .. }) {
                self.violation(
                    now,
                    format!(
                        "worker {} holds a pending VM while {:?} (double procurement)",
                        w.idx, w.status
                    ),
                );
            }
            bound_vms += usize::from(w.vm.is_some()) + usize::from(w.pending_vm.is_some());
        }
        // Ledger coherence: every open ledger entry is bound to (or
        // pending on) exactly one worker slot.
        if ledger.open_count() != bound_vms {
            self.violation(
                now,
                format!(
                    "ledger has {} open VMs but workers bind {bound_vms}",
                    ledger.open_count()
                ),
            );
        }
        // Ledger conservation: the engine must never hit the ledger's
        // saturating misuse edges (double open, close of a non-open VM,
        // close before open). Release builds silently absorb those, so
        // the auditor flags each increase of the misuse tally.
        if ledger.misuse_events() > self.last_ledger_misuse {
            self.violation(
                now,
                format!(
                    "ledger absorbed {} misuse event(s) (double open / bad close)",
                    ledger.misuse_events() - self.last_ledger_misuse
                ),
            );
            self.last_ledger_misuse = ledger.misuse_events();
        }
    }

    /// End-of-run reconciliation of the epoch-coarsening counter triad
    /// (sharded engine only; the sequential engine peels no runs). Every
    /// dispatch-shaped event — a gateway arrival or a `WindowExpire`
    /// batch-window dispatch — is either the head of a run (one epoch)
    /// or coalesced into one, and every run ends for exactly one
    /// recorded cause, so:
    ///
    /// * `epochs + coalesced_arrivals + coalesced_expiries ==
    ///   arrivals + expiries`, and
    /// * `run_cutoffs.total() == epochs`.
    ///
    /// A broken triad means a run was cut without attribution (or
    /// double-attributed) — the accounting bug this check exists to
    /// catch, since the digests it rides next to are insensitive to
    /// stats. Records violations only; it is not a sweep and does not
    /// touch `checks`, which stays comparable between the sequential
    /// and sharded engines.
    pub(crate) fn epoch_conservation(&mut self, now: SimTime, stats: &crate::engine::EngineStats) {
        if !self.enabled {
            return;
        }
        if stats.epochs + stats.coalesced_arrivals + stats.coalesced_expiries
            != stats.arrivals + stats.expiries
        {
            self.violation(
                now,
                format!(
                    "epoch conservation broken: epochs {} + coalesced arrivals {} \
                     + coalesced expiries {} != arrivals {} + expiries {}",
                    stats.epochs,
                    stats.coalesced_arrivals,
                    stats.coalesced_expiries,
                    stats.arrivals,
                    stats.expiries
                ),
            );
        }
        if stats.run_cutoffs.total() != stats.epochs {
            self.violation(
                now,
                format!(
                    "run cutoff attribution broken: cutoffs {:?} total {} != epochs {}",
                    stats.run_cutoffs,
                    stats.run_cutoffs.total(),
                    stats.epochs
                ),
            );
        }
    }

    pub(crate) fn into_report(self) -> AuditReport {
        AuditReport {
            enabled: self.enabled,
            checks: self.checks,
            violation_count: self.violation_count,
            violations: self.violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_auditor_is_inert_and_clean() {
        let mut a = Auditor::new(false, 1);
        a.batch_sealed(SimTime::ZERO, BatchId(0));
        a.batch_finished(SimTime::ZERO, BatchId(0), 0); // would violate if on
        a.check_cluster(SimTime::ZERO, &[], &dummy_ledger(), &DispatchIndex::new(0));
        let r = a.into_report();
        assert!(!r.enabled);
        assert!(r.is_clean());
        assert_eq!(r.checks, 0);
    }

    #[test]
    fn sampling_thins_sweeps_but_first_opportunity_is_checked() {
        let mut a = Auditor::new(true, 3);
        let index = DispatchIndex::new(0);
        for _ in 0..7 {
            a.check_cluster(SimTime::ZERO, &[], &dummy_ledger(), &index);
        }
        // Opportunities 1, 4 and 7 are swept.
        let r = a.into_report();
        assert_eq!(r.checks, 3);
        assert!(r.is_clean());
    }

    #[test]
    fn every_n_zero_is_treated_as_one() {
        let mut a = Auditor::new(true, 0);
        let index = DispatchIndex::new(0);
        for _ in 0..5 {
            a.check_cluster(SimTime::ZERO, &[], &dummy_ledger(), &index);
        }
        assert_eq!(a.into_report().checks, 5);
    }

    #[test]
    fn incoherent_dispatch_index_is_a_violation() {
        let mut a = Auditor::new(true, 1);
        // An index sized for a worker the cluster does not have.
        let index = DispatchIndex::new(1);
        a.check_cluster(SimTime::ZERO, &[], &dummy_ledger(), &index);
        let r = a.into_report();
        assert_eq!(r.violation_count, 1);
        assert!(r.violations[0].contains("dispatch index"));
    }

    #[test]
    fn lifecycle_ordering_is_enforced() {
        let mut a = Auditor::new(true, 1);
        let id = BatchId(7);
        a.batch_sealed(SimTime::ZERO, id);
        a.batch_dispatched(SimTime::ZERO, id, 0, true, false);
        a.batch_placed(SimTime::ZERO, id, 0);
        a.batch_finished(SimTime::ZERO, id, 0);
        assert_eq!(a.violation_count, 0);
        // Finishing again (never re-sealed) violates.
        a.batch_finished(SimTime::ZERO, id, 0);
        assert_eq!(a.violation_count, 1);
    }

    #[test]
    fn redispatch_regression_is_allowed_only_when_flagged() {
        let mut a = Auditor::new(true, 1);
        let id = BatchId(3);
        a.batch_sealed(SimTime::ZERO, id);
        a.batch_dispatched(SimTime::ZERO, id, 0, true, false);
        a.batch_placed(SimTime::ZERO, id, 0);
        // Eviction orphan: allowed with the flag...
        a.batch_dispatched(SimTime::ZERO, id, 1, true, true);
        assert_eq!(a.violation_count, 0);
        a.batch_placed(SimTime::ZERO, id, 1);
        // ...but a plain double dispatch is a violation.
        a.batch_dispatched(SimTime::ZERO, id, 1, true, false);
        assert_eq!(a.violation_count, 1);
    }

    #[test]
    fn non_routable_dispatch_is_a_violation() {
        let mut a = Auditor::new(true, 1);
        let id = BatchId(1);
        a.batch_sealed(SimTime::ZERO, id);
        a.batch_dispatched(SimTime::ZERO, id, 2, false, false);
        assert_eq!(a.violation_count, 1);
        assert!(a.violations[0].contains("non-routable"));
    }

    #[test]
    fn violation_messages_are_capped_but_counted() {
        let mut a = Auditor::new(true, 1);
        for i in 0..(MAX_RECORDED as u64 + 40) {
            // Finished without ever being sealed: one violation each.
            a.batch_finished(SimTime::ZERO, BatchId(i), 0);
        }
        let r = a.into_report();
        assert_eq!(r.violation_count, MAX_RECORDED as u64 + 40);
        assert_eq!(r.violations.len(), MAX_RECORDED);
        assert!(!r.is_clean());
    }

    #[test]
    fn epoch_conservation_accepts_a_reconciled_triad_without_a_sweep() {
        let mut a = Auditor::new(true, 1);
        let stats = crate::engine::EngineStats {
            arrivals: 10,
            expiries: 4,
            epochs: 4,
            coalesced_arrivals: 7,
            coalesced_expiries: 3,
            run_cutoffs: crate::engine::RunCutoffs {
                serial_event: 1,
                expiry_shard_conflict: 1,
                max_arrivals: 1,
                trace_end: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        a.epoch_conservation(SimTime::ZERO, &stats);
        let r = a.into_report();
        assert!(r.is_clean());
        // Not a sweep: `checks` stays comparable to the sequential engine.
        assert_eq!(r.checks, 0);
    }

    #[test]
    fn epoch_conservation_flags_both_broken_identities() {
        let mut a = Auditor::new(true, 1);
        let stats = crate::engine::EngineStats {
            arrivals: 10,
            expiries: 2,
            epochs: 3,
            coalesced_arrivals: 5,
            coalesced_expiries: 1, // 3 + 5 + 1 != 10 + 2
            run_cutoffs: crate::engine::RunCutoffs {
                trace_end: 1, // total 1 != 3 epochs
                ..Default::default()
            },
            ..Default::default()
        };
        a.epoch_conservation(SimTime::ZERO, &stats);
        let r = a.into_report();
        assert_eq!(r.violation_count, 2);
        assert!(r.violations[0].contains("epoch conservation"));
        assert!(r.violations[1].contains("cutoff attribution"));
    }

    fn dummy_ledger() -> VmLedger {
        VmLedger::new(
            protean_spot::PricingTable::paper_table3(),
            protean_spot::Provider::Aws,
        )
    }

    /// A ledger that absorbed a misuse edge (here: close of a VM that was
    /// never opened) is a violation — reported once, not on every sweep.
    #[test]
    fn ledger_misuse_is_flagged_once() {
        let mut ledger = dummy_ledger();
        // Debug builds panic on the misuse edge; catch it so the test
        // exercises the same post-misuse state release builds reach.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ledger.close(protean_spot::VmId(99), SimTime::ZERO);
        }));
        assert_eq!(ledger.misuse_events(), 1);
        let mut a = Auditor::new(true, 1);
        let index = DispatchIndex::new(0);
        a.check_cluster(SimTime::ZERO, &[], &ledger, &index);
        assert_eq!(a.violation_count, 1);
        assert!(a.violations[0].contains("misuse"));
        // Same tally on the next sweep: no new violation.
        a.check_cluster(SimTime::ZERO, &[], &ledger, &index);
        assert_eq!(a.violation_count, 1);
    }
}
