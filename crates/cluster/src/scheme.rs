//! The scheduling-policy abstraction every evaluated scheme implements.

use protean_gpu::{Geometry, Gpu, SharingMode};
use protean_models::{Catalog, ModelId};
use protean_sim::SimTime;

/// What a scheme sees of a batch when placing it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchView {
    /// The model the batch serves.
    pub model: ModelId,
    /// Whether the batch carries strict-SLO requests.
    pub strict: bool,
    /// Number of requests in the batch.
    pub size: u32,
}

/// A scheme's placement decision for one batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// Index of the chosen slice in the worker GPU's current geometry
    /// (largest slice first).
    pub slice: usize,
    /// Multiplier applied to the job's FBR before admission. Used by
    /// the `GPUlet` baseline: an SM cap stretches execution, spreading
    /// the same memory traffic over a longer run, so the bandwidth
    /// *rate* drops by the stretch; 1.0 for everyone else.
    pub fbr_scale: f64,
    /// Multiplier applied to the job's solo time before admission.
    /// `GPUlet` uses this for the compute loss of the SM cap; 1.0
    /// elsewhere.
    pub solo_scale: f64,
}

impl Placement {
    /// A plain placement on `slice` with no scaling.
    pub fn on_slice(slice: usize) -> Self {
        Placement {
            slice,
            fbr_scale: 1.0,
            solo_scale: 1.0,
        }
    }
}

/// Context handed to [`Scheme::place`].
#[derive(Debug)]
pub struct PlacementCtx<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// The worker's GPU (slices largest-first, live occupancy visible).
    pub gpu: &'a Gpu,
    /// Total memory (GB) of best-effort batches currently waiting in
    /// this worker's scheduler queue — the `BE_mem` input of
    /// Algorithm 1.
    pub queued_be_mem_gb: f64,
    /// The workload catalog.
    pub catalog: &'a Catalog,
}

/// Context handed to [`Scheme::reconfigure`] every monitor interval.
#[derive(Debug)]
pub struct ReconfigCtx<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// The worker's GPU.
    pub gpu: &'a Gpu,
    /// Best-effort requests that arrived at this worker during the last
    /// monitor window.
    pub window_be_requests: u64,
    /// Strict requests that arrived during the last monitor window.
    pub window_strict_requests: u64,
    /// The most recent best-effort model seen at this worker.
    pub be_model: Option<ModelId>,
    /// The workload catalog.
    pub catalog: &'a Catalog,
}

/// A request-serving policy under evaluation (PROTEAN or a baseline).
///
/// One `Scheme` instance exists per worker node (policies keep per-GPU
/// state such as EWMA predictors and reconfiguration wait counters), all
/// built by a [`SchemeBuilder`].
pub trait Scheme {
    /// Human-readable scheme name, as used in the figures.
    fn name(&self) -> &'static str;

    /// The MIG geometry each GPU starts with.
    fn initial_geometry(&self) -> Geometry;

    /// How slices share between co-located jobs (MPS spatial sharing or
    /// FIFO time sharing).
    fn sharing_mode(&self) -> SharingMode;

    /// Whether the worker should serve strict batches before best-effort
    /// ones (§4.1 request reordering). Defaults to `false` (FIFO).
    fn reorders(&self) -> bool {
        false
    }

    /// Chooses a slice for `batch`, or `None` to leave it queued until
    /// conditions change (a job finishes or the GPU reconfigures).
    ///
    /// Returning a slice whose admission then fails (e.g. out of memory
    /// due to a race with another placement) is handled by the engine:
    /// the batch simply stays queued.
    fn place(&mut self, ctx: &PlacementCtx<'_>, batch: &BatchView) -> Option<Placement>;

    /// Invoked every monitor interval; return `Some(geometry)` to
    /// request an on-the-fly MIG reconfiguration of this worker's GPU
    /// (§4.4). The engine enforces the cluster-wide cap on simultaneous
    /// reconfigurations. Defaults to never reconfiguring.
    fn reconfigure(&mut self, _ctx: &ReconfigCtx<'_>) -> Option<Geometry> {
        None
    }
}

/// Builds one [`Scheme`] instance per worker node.
///
/// Builders are shared across the parallel experiment harness's worker
/// threads (`protean-experiments`), so they must be `Send + Sync`; in
/// practice every builder is plain configuration data.
pub trait SchemeBuilder: Send + Sync {
    /// Builds the scheme instance for worker `worker`.
    fn build(&self, worker: usize) -> Box<dyn Scheme>;

    /// The scheme's display name.
    fn name(&self) -> &'static str;

    /// How the dispatcher routes batches to workers under this scheme.
    fn dispatch_policy(&self) -> DispatchPolicy {
        DispatchPolicy::LoadBalance
    }
}

/// How the dispatcher spreads sealed batches across worker nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchPolicy {
    /// Route each batch to the least-loaded live worker (PROTEAN and
    /// most baselines).
    #[default]
    LoadBalance,
    /// Pack batches onto as few GPUs as possible — utilization-
    /// maximising routing ("consolidate excessive workload batches on
    /// individual GPUs", §1): the lowest-indexed live worker whose
    /// backlog is below `cap_batches` batches of the dispatched model,
    /// falling back to least-loaded when all are at the cap. INFless/
    /// Llama pack deep (SLO-agnostic); GPUlet packs shallow (its
    /// gpu-lets are sized from profiled latency).
    Consolidate {
        /// Outstanding-batch cap per worker before spilling over.
        cap_batches: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_on_slice_defaults_scales() {
        let p = Placement::on_slice(2);
        assert_eq!(p.slice, 2);
        assert_eq!(p.fbr_scale, 1.0);
        assert_eq!(p.solo_scale, 1.0);
    }

    #[test]
    fn scheme_default_hooks() {
        struct S;
        impl Scheme for S {
            fn name(&self) -> &'static str {
                "s"
            }
            fn initial_geometry(&self) -> Geometry {
                Geometry::full()
            }
            fn sharing_mode(&self) -> SharingMode {
                SharingMode::Mps
            }
            fn place(&mut self, _: &PlacementCtx<'_>, _: &BatchView) -> Option<Placement> {
                None
            }
        }
        let mut s = S;
        assert!(!s.reorders());
        let gpu = Gpu::new(
            protean_gpu::GpuId(0),
            Geometry::full(),
            SharingMode::Mps,
            SimTime::ZERO,
        );
        let catalog = Catalog::new();
        let ctx = ReconfigCtx {
            now: SimTime::ZERO,
            gpu: &gpu,
            window_be_requests: 0,
            window_strict_requests: 0,
            be_model: None,
            catalog: &catalog,
        };
        assert!(s.reconfigure(&ctx).is_none());
    }
}
