//! Incrementally-maintained dispatcher index: O(log W) target selection.
//!
//! The gateway dispatcher routes every sealed batch to either the
//! least-loaded worker (`DispatchPolicy::LoadBalance`) or the
//! lowest-indexed worker with headroom (`DispatchPolicy::Consolidate`).
//! Scanning all `W` workers per batch is fine at the paper's 8-GPU
//! testbed but quadratic in fleet size once arrival rate scales with
//! `W`; at 512 workers the scan dominates the run. [`DispatchIndex`]
//! replaces the scans with incrementally-maintained structures:
//!
//! * two tournament-tree tiers keyed by `(outstanding, idx)` — workers
//!   that are routable **and** whose GPU is accepting, and all routable
//!   workers — so least-loaded selection reads the tree root, whose
//!   `(outstanding, idx)` ordering reproduces the linear scan's
//!   `min_by_key` tie-break *exactly*, while updates re-fold one
//!   O(log W) root path in a flat array (no per-node allocations to
//!   miss cache on at fleet scale);
//! * `Consolidate` first-fit reuses the accepting tier's tree as a
//!   max-headroom oracle: an internal node's key is the minimum
//!   `(outstanding, idx)` of its subtree, so "does this subtree hold a
//!   worker with headroom under `cap`?" is a single comparison, and a
//!   root descent that prefers the left child whenever it qualifies
//!   lands on the *leftmost* accepting worker with `outstanding < cap`
//!   in O(log W) — the identical slot the linear front scan finds —
//!   while a fully saturated fleet is rejected in O(1) at the root.
//!
//! The engine refreshes a worker's entry at every point its dispatch
//! state can change: `outstanding` increments (dispatch) and decrements
//! (completion), worker status changes (eviction notice, final
//! eviction, VM install), and GPU accepting/draining flips
//! (reconfiguration request and completion). Because every query is
//! answered from the same `(outstanding, idx)` key the scans used, the
//! index picks the *identical* worker — pinned by the golden-seed
//! digests and cross-checked against a retained linear reference by
//! the audit layer ([`DispatchIndex::verify`]) and the property tests
//! in `tests/dispatch_index.rs`.

use crate::worker::Worker;

/// Cached dispatch-relevant state of one worker slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    outstanding: u64,
    accepting: bool,
}

/// Sentinel key for an ineligible slot: compares above every real
/// `(outstanding, idx)` key, so `min` ignores it.
const ABSENT: (u64, usize) = (u64::MAX, usize::MAX);

/// A flat tournament (min-segment) tree over per-slot
/// `(outstanding, idx)` keys. `set` is O(log W) along a contiguous
/// array — no per-node allocation, so maintenance stays cache-resident
/// at thousands of workers where pointer-based ordered sets thrash —
/// and the root holds the exact `min_by_key((outstanding, idx))` the
/// linear scan computes, ties broken toward the lower index by the
/// tuple order.
#[derive(Debug, Clone)]
struct MinTree {
    /// Leaf count padded to a power of two; leaves live at
    /// `cap..cap + n`, internal node `i` covers `2i` and `2i + 1`.
    cap: usize,
    tree: Vec<(u64, usize)>,
}

impl MinTree {
    fn new(n: usize) -> Self {
        let cap = n.next_power_of_two().max(1);
        MinTree {
            cap,
            tree: vec![ABSENT; 2 * cap],
        }
    }

    /// Sets slot `idx`'s key (`None` = ineligible) and re-folds the
    /// path to the root.
    fn set(&mut self, idx: usize, key: Option<(u64, usize)>) {
        let mut i = self.cap + idx;
        self.tree[i] = key.unwrap_or(ABSENT);
        while i > 1 {
            i /= 2;
            self.tree[i] = self.tree[2 * i].min(self.tree[2 * i + 1]);
        }
    }

    /// The slot holding the minimum key, if any slot is eligible.
    fn min_idx(&self) -> Option<usize> {
        let root = self.tree[1];
        (root != ABSENT).then_some(root.1)
    }
}

/// Incrementally-maintained index over worker dispatch state. See the
/// [module docs](self) for the tier structure and maintenance contract.
#[derive(Debug)]
pub struct DispatchIndex {
    /// Routable workers whose GPU is accepting, keyed `(outstanding, idx)`.
    accepting: MinTree,
    /// All routable workers, keyed `(outstanding, idx)`.
    routable: MinTree,
    /// Tier sizes, maintained alongside the trees.
    accepting_count: usize,
    routable_count: usize,
    /// Dense snapshot per worker slot; `None` = not routable.
    entries: Vec<Option<Entry>>,
    /// Maintenance operations applied (surfaced in `EngineStats`).
    updates: u64,
}

impl DispatchIndex {
    /// An index over `n` worker slots, all initially non-routable.
    pub fn new(n: usize) -> Self {
        DispatchIndex {
            accepting: MinTree::new(n),
            routable: MinTree::new(n),
            accepting_count: 0,
            routable_count: 0,
            entries: vec![None; n],
            updates: 0,
        }
    }

    /// Re-caches one worker's dispatch state. Call after *any* mutation
    /// of the worker's status, GPU accepting state, or `outstanding`.
    pub fn refresh(&mut self, idx: usize, routable: bool, accepting: bool, outstanding: u64) {
        self.updates += 1;
        let old = self.entries[idx];
        let new = routable.then_some(Entry {
            outstanding,
            accepting,
        });
        if old == new {
            return;
        }
        self.routable.set(idx, new.map(|e| (e.outstanding, idx)));
        self.accepting.set(
            idx,
            new.and_then(|e| e.accepting.then_some((e.outstanding, idx))),
        );
        self.routable_count =
            self.routable_count + usize::from(new.is_some()) - usize::from(old.is_some());
        self.accepting_count = self.accepting_count + usize::from(new.is_some_and(|e| e.accepting))
            - usize::from(old.is_some_and(|e| e.accepting));
        self.entries[idx] = new;
    }

    /// [`DispatchIndex::refresh`] from the worker's live state.
    pub fn refresh_worker(&mut self, w: &Worker) {
        let (routable, accepting, outstanding) = w.dispatch_state();
        self.refresh(w.idx, routable, accepting, outstanding);
    }

    /// The least-loaded routable worker with an accepting GPU — the
    /// same `(outstanding, idx)` minimum the linear scan's `min_by_key`
    /// returns.
    pub fn least_loaded_accepting(&self) -> Option<usize> {
        self.accepting.min_idx()
    }

    /// The least-loaded routable worker regardless of GPU state.
    pub fn least_loaded_routable(&self) -> Option<usize> {
        self.routable.min_idx()
    }

    /// The accepting tier's root key `(outstanding, idx)`, if any slot
    /// is eligible. The sharded engine reduces one global least-loaded
    /// answer from per-shard trees by taking the minimum of the shard
    /// roots — the tuple order reproduces the global `min_by_key`
    /// tie-break exactly because every key embeds the global worker
    /// index.
    pub fn least_loaded_accepting_key(&self) -> Option<(u64, usize)> {
        let root = self.accepting.tree[1];
        (root != ABSENT).then_some(root)
    }

    /// The routable tier's root key `(outstanding, idx)`, if any slot
    /// is eligible.
    pub fn least_loaded_routable_key(&self) -> Option<(u64, usize)> {
        let root = self.routable.tree[1];
        (root != ABSENT).then_some(root)
    }

    /// `true` if any worker is routable.
    pub fn any_routable(&self) -> bool {
        self.routable_count > 0
    }

    /// Routable workers.
    pub fn routable_len(&self) -> usize {
        self.routable_count
    }

    /// Routable workers whose GPU is accepting.
    pub fn accepting_len(&self) -> usize {
        self.accepting_count
    }

    /// Maintenance operations applied so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// `Consolidate` first-fit: the lowest-indexed routable, accepting
    /// worker with `outstanding < cap`, answered by root descent over
    /// the accepting tournament tree. An internal node's key is the
    /// minimum `(outstanding, idx)` of its subtree, so `key.0 < cap`
    /// holds exactly when the subtree contains a worker with headroom;
    /// preferring the left child whenever it qualifies reaches the
    /// leftmost eligible leaf — the identical slot the linear front
    /// scan returns — in O(log W), and a saturated fleet is rejected
    /// in O(1) at the root. Each *query* adds one to `visits` (the
    /// indexed dispatcher's unit of work, surfaced in
    /// `EngineStats::dispatch_scan_visits`), matching the least-loaded
    /// tiers' one-visit-per-query accounting.
    pub fn first_fit(&self, cap: u64, visits: &mut u64) -> Option<usize> {
        *visits += 1;
        let tree = &self.accepting.tree;
        if tree[1].0 >= cap {
            return None;
        }
        let mut i = 1;
        while i < self.accepting.cap {
            i = if tree[2 * i].0 < cap {
                2 * i
            } else {
                2 * i + 1
            };
        }
        Some(tree[i].1)
    }

    /// Cross-checks the index against the workers' live state: the
    /// audited index-coherence invariant. Returns one message per
    /// discrepancy (tier membership, tree contents, or dense snapshot
    /// — the first-fit descent reads only the accepting tree, so tree
    /// equality covers it).
    pub fn verify(&self, workers: &[Worker]) -> Vec<String> {
        if self.entries.len() != workers.len() {
            return vec![format!(
                "dispatch index covers {} slots but cluster has {}",
                self.entries.len(),
                workers.len()
            )];
        }
        self.verify_against(workers.iter())
    }

    /// [`DispatchIndex::verify`] for a *partition* of the fleet: the
    /// index spans all `total_slots` worker slots but only the `owned`
    /// workers may populate it — every other slot must be absent from
    /// both tiers. This is the coherence invariant of the sharded
    /// engine's per-shard trees (each shard's index is fleet-width so
    /// its keys carry global worker indices, but holds entries only for
    /// the workers the shard owns); a stray entry in a foreign slot
    /// shows up as a tree or tier-count mismatch against the live
    /// rebuild.
    pub fn verify_partition<'a>(
        &self,
        total_slots: usize,
        owned: impl Iterator<Item = &'a Worker>,
    ) -> Vec<String> {
        if self.entries.len() != total_slots {
            return vec![format!(
                "dispatch index covers {} slots but cluster has {total_slots}",
                self.entries.len(),
            )];
        }
        self.verify_against(owned)
    }

    fn verify_against<'a>(&self, workers: impl Iterator<Item = &'a Worker>) -> Vec<String> {
        let mut out = Vec::new();
        let mut live_accepting = MinTree::new(self.entries.len());
        let mut live_routable = MinTree::new(self.entries.len());
        let mut live_accepting_count = 0;
        let mut live_routable_count = 0;
        for w in workers {
            let (routable, accepting, outstanding) = w.dispatch_state();
            let expect = routable.then_some(Entry {
                outstanding,
                accepting,
            });
            if self.entries[w.idx] != expect {
                out.push(format!(
                    "dispatch index entry for worker {} is {:?}, live state is {:?}",
                    w.idx, self.entries[w.idx], expect
                ));
            }
            live_routable.set(w.idx, expect.map(|e| (e.outstanding, w.idx)));
            live_accepting.set(
                w.idx,
                expect.and_then(|e| e.accepting.then_some((e.outstanding, w.idx))),
            );
            live_routable_count += usize::from(expect.is_some());
            live_accepting_count += usize::from(expect.is_some_and(|e| e.accepting));
        }
        if live_accepting.tree != self.accepting.tree
            || live_accepting_count != self.accepting_count
        {
            out.push(format!(
                "dispatch index accepting tier (count {}) != live (count {})",
                self.accepting_count, live_accepting_count
            ));
        }
        if live_routable.tree != self.routable.tree || live_routable_count != self.routable_count {
            out.push(format!(
                "dispatch index routable tier (count {}) != live (count {})",
                self.routable_count, live_routable_count
            ));
        }
        out
    }
}

/// Decision-only dispatch resolution over one or more index partitions:
/// `Consolidate` first-fit (when `cap` is set) over every partition,
/// then the least-loaded accepting tier, then the least-loaded routable
/// tier, each reduced by `min` over the partition answers. Every key a
/// partition exposes embeds the *global* worker index, so the reduction
/// reproduces the sequential fleet-wide scan's `(outstanding, idx)`
/// tie-break (and first-fit's leftmost-slot rule) exactly, no matter
/// how the fleet is partitioned.
///
/// The function only *reads* the indices — it never mutates a worker or
/// a tree — which is what lets the sharded coordinator resolve a whole
/// run of arrival dispatch decisions in serial order between phases
/// without ordering hazards: each decision is applied (worker mutated,
/// index refreshed) before the next one is resolved, and nothing here
/// caches state across calls. A later tier is only consulted when every
/// earlier tier is empty across *all* partitions, mirroring the
/// sequential cascade's short-circuit (and its per-tier `visits`
/// accounting).
pub fn select_across<'a, I>(partitions: I, cap: Option<u64>, visits: &mut u64) -> Option<usize>
where
    I: Iterator<Item = &'a DispatchIndex> + Clone,
{
    let consolidated = cap.and_then(|cap| {
        let mut best: Option<usize> = None;
        for index in partitions.clone() {
            if let Some(i) = index.first_fit(cap, visits) {
                best = Some(best.map_or(i, |b| b.min(i)));
            }
        }
        best
    });
    consolidated
        .or_else(|| {
            let mut best: Option<(u64, usize)> = None;
            for index in partitions.clone() {
                *visits += 1;
                if let Some(k) = index.least_loaded_accepting_key() {
                    best = Some(best.map_or(k, |b| b.min(k)));
                }
            }
            best.map(|(_, idx)| idx)
        })
        .or_else(|| {
            let mut best: Option<(u64, usize)> = None;
            for index in partitions {
                *visits += 1;
                if let Some(k) = index.least_loaded_routable_key() {
                    best = Some(best.map_or(k, |b| b.min(k)));
                }
            }
            best.map(|(_, idx)| idx)
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(states: &[(bool, bool, u64)]) -> DispatchIndex {
        let mut index = DispatchIndex::new(states.len());
        for (idx, &(routable, accepting, outstanding)) in states.iter().enumerate() {
            index.refresh(idx, routable, accepting, outstanding);
        }
        index
    }

    #[test]
    fn select_across_partitions_matches_the_whole_fleet_index() {
        let states = [
            (true, true, 5),
            (true, false, 1),
            (true, true, 3),
            (false, false, 0),
            (true, true, 3),
            (true, true, 9),
        ];
        let whole = filled(&states);
        // Round-robin the same fleet across two fleet-width partitions.
        let mut even = DispatchIndex::new(states.len());
        let mut odd = DispatchIndex::new(states.len());
        for (idx, &(routable, accepting, outstanding)) in states.iter().enumerate() {
            let part = if idx % 2 == 0 { &mut even } else { &mut odd };
            part.refresh(idx, routable, accepting, outstanding);
        }
        for cap in [None, Some(4), Some(2), Some(100)] {
            let mut v_single = 0u64;
            let mut v_parts = 0u64;
            let single = select_across(std::iter::once(&whole), cap, &mut v_single);
            let parts = select_across([&even, &odd].into_iter(), cap, &mut v_parts);
            assert_eq!(single, parts, "cap {cap:?}");
        }
    }

    #[test]
    fn least_loaded_matches_min_by_key_tie_break() {
        let index = filled(&[
            (true, true, 5),
            (true, true, 3),
            (true, false, 1),
            (true, true, 3),
        ]);
        // Ties on outstanding break toward the lower index, exactly as
        // `min_by_key(|w| (w.outstanding, w.idx))` does.
        assert_eq!(index.least_loaded_accepting(), Some(1));
        // The routable tier sees the draining worker 2 as well.
        assert_eq!(index.least_loaded_routable(), Some(2));
        assert_eq!(index.routable_len(), 4);
        assert_eq!(index.accepting_len(), 3);
    }

    #[test]
    fn non_routable_workers_vanish_from_both_tiers() {
        let mut index = filled(&[(true, true, 0), (true, true, 0)]);
        index.refresh(0, false, false, 0);
        assert_eq!(index.least_loaded_accepting(), Some(1));
        index.refresh(1, false, true, 0);
        assert!(index.least_loaded_accepting().is_none());
        assert!(index.least_loaded_routable().is_none());
        assert!(!index.any_routable());
    }

    #[test]
    fn first_fit_descends_to_the_leftmost_slot_with_headroom() {
        let index = filled(&[(true, true, 4), (true, true, 4), (true, true, 0)]);
        let mut visits = 0;
        assert_eq!(index.first_fit(4, &mut visits), Some(2));
        // A query is one unit of work regardless of fleet shape.
        assert_eq!(visits, 1);
        // First-fit, not best-fit: the leftmost slot with headroom wins
        // even when a later slot is emptier.
        let index = filled(&[(true, true, 3), (true, true, 0)]);
        let mut visits = 0;
        assert_eq!(index.first_fit(4, &mut visits), Some(0));
    }

    #[test]
    fn saturated_fleet_is_rejected_at_the_root() {
        let mut index = filled(&[(true, true, 8), (true, true, 8)]);
        let mut visits = 0;
        assert_eq!(index.first_fit(8, &mut visits), None);
        assert_eq!(visits, 1);
        index.refresh(1, true, true, 7);
        let mut visits = 0;
        assert_eq!(index.first_fit(8, &mut visits), Some(1));
    }

    #[test]
    fn refreshed_headroom_is_visible_to_the_next_descent() {
        let mut index = filled(&[(true, true, 4), (true, true, 0)]);
        let mut visits = 0;
        assert_eq!(index.first_fit(4, &mut visits), Some(1));
        // Worker 0 completes a request: the next descent finds it.
        index.refresh(0, true, true, 3);
        let mut visits = 0;
        assert_eq!(index.first_fit(4, &mut visits), Some(0));
    }

    #[test]
    fn draining_slots_are_invisible_to_first_fit() {
        let mut index = filled(&[(true, false, 0), (true, true, 0)]);
        let mut visits = 0;
        assert_eq!(index.first_fit(2, &mut visits), Some(1));
        // Reconfiguration completes; worker 0 accepts again.
        index.refresh(0, true, true, 0);
        let mut visits = 0;
        assert_eq!(index.first_fit(2, &mut visits), Some(0));
    }

    #[test]
    fn distinct_caps_share_the_same_tree() {
        let index = filled(&[(true, true, 6), (true, true, 2)]);
        let mut visits = 0;
        // Cap 4: worker 0 saturated, descent bears right to worker 1.
        assert_eq!(index.first_fit(4, &mut visits), Some(1));
        // Cap 8: worker 0 has headroom again — no per-cap state to go stale.
        assert_eq!(index.first_fit(8, &mut visits), Some(0));
        // Cap 1: nobody idle.
        assert_eq!(index.first_fit(1, &mut visits), None);
        assert_eq!(visits, 3);
    }

    #[test]
    fn descent_ignores_padding_leaves_in_non_power_of_two_fleets() {
        // Three slots pad to four leaves; the spare leaf holds the
        // ABSENT sentinel and must never attract the descent.
        let index = filled(&[(true, true, 9), (true, true, 9), (true, true, 1)]);
        let mut visits = 0;
        assert_eq!(index.first_fit(9, &mut visits), Some(2));
        assert_eq!(index.first_fit(1, &mut visits), None);
    }
}
