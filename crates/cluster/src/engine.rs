//! The discrete-event engine driving a full cluster simulation.

use std::collections::{HashMap, HashSet, VecDeque};

use protean_gpu::{JobId, JobSpec};
use protean_metrics::{LatencyBreakdown, MetricsSet, RequestRecord};
use protean_models::{Catalog, ModelId};
use protean_sim::{EventQueue, RngFactory, SimDuration, SimTime, TimeSeries};
use protean_spot::{
    PricingTable, ProcurementPolicy, Provider, SpotAvailability, SpotMarket, SpotOracle, VmId,
    VmLedger, VmTier,
};
use protean_trace::{Request, Trace, TraceConfig, TraceStream};

use crate::audit::{AuditReport, Auditor};
use crate::batch::{Accumulator, Batch, BatchId};
use crate::container::{Acquire, Pool};
use crate::dispatch::DispatchIndex;
use crate::journal::{Journal, JournalEvent};
use crate::scheme::{BatchView, DispatchPolicy, PlacementCtx, ReconfigCtx, SchemeBuilder};
use crate::worker::{RunningBatch, Worker, WorkerStatus};

/// Everything configurable about a simulation run. Scheduling policy is
/// *not* here — that is the [`crate::SchemeBuilder`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Worker nodes (one GPU each). Paper: 8.
    pub workers: usize,
    /// Root seed for every random stream in the run.
    pub seed: u64,
    /// Monitor interval `W` driving autoscaling and reconfiguration.
    pub monitor_interval: SimDuration,
    /// Maximum time a partial batch waits before sealing.
    pub batch_window: SimDuration,
    /// Container cold-start latency (§2.1: up to tens of seconds).
    pub cold_start: SimDuration,
    /// Keep-alive before surplus warm containers are reclaimed (§4.2:
    /// ~10 minutes).
    pub keep_alive: SimDuration,
    /// Strict SLO = `slo_multiplier ×` solo 7g latency (paper: 3×).
    pub slo_multiplier: f64,
    /// MIG reconfiguration latency (§4.4: ~2 s).
    pub reconfig_delay: SimDuration,
    /// Max fraction of GPUs allowed to reconfigure simultaneously
    /// (§4.4: ~30%).
    pub max_reconfig_fraction: f64,
    /// VM procurement policy (Fig. 9 schemes).
    pub procurement: ProcurementPolicy,
    /// Spot-market availability regime.
    pub availability: SpotAvailability,
    /// Interval between revocation checks per spot VM.
    pub revocation_check: SimDuration,
    /// Delay from VM grant to serving traffic.
    pub vm_startup: SimDuration,
    /// Retry interval after a failed (spot-only) procurement.
    pub procurement_retry: SimDuration,
    /// Grace period after the trace ends to drain in-flight work before
    /// censoring.
    pub drain_grace: SimDuration,
    /// How many queued batches each placement pass may inspect.
    pub scan_depth: usize,
    /// IaaS provider used for pricing.
    pub provider: Provider,
    /// Measurement warmup: requests arriving before this instant are
    /// served normally but excluded from metrics, so the initial
    /// cold-start ramp (absent from a long-running deployment) does not
    /// skew short simulations.
    pub warmup: SimDuration,
    /// Warm containers pre-provisioned per (worker, model in trace) at
    /// t=0, modelling the steady state of a long-running deployment
    /// whose keep-alive retains containers across BE-model rotations.
    /// Cold starts still occur when a surge needs more than this many
    /// concurrent batches per model per worker.
    pub prewarm_containers: usize,
    /// Per-batch overhead of serving on a *time-shared* GPU/slice, in
    /// milliseconds per GB of the model's working set: handing the GPU
    /// to a different container (CUDA context activation, weights
    /// touch) costs time proportional to the model's footprint. This is
    /// the §2.2 cost that makes `Molecule (beta)`-style time sharing
    /// queue-prone despite ~50% utilization (Fig. 10b).
    pub time_share_overhead_ms_per_gb: f64,
    /// Fixed part of the same context switch (CUDA context activation),
    /// milliseconds, paid per time-shared batch regardless of model
    /// size.
    pub time_share_overhead_base_ms: f64,
    /// Log-normal execution-time jitter (sigma of ln-space). Real batch
    /// latencies vary run to run; jitter creates the queueing variance a
    /// deterministic model would hide.
    pub exec_jitter_sigma: f64,
    /// Predictive container pre-provisioning: when `true`, each monitor
    /// tick EWMA-forecasts the next window's batch arrivals per
    /// (worker, model) and boots any missing containers *ahead* of
    /// demand, taking the cold start off the critical path. An
    /// extension beyond the paper's reactive scale-up (§4.2); off by
    /// default.
    pub predictive_prewarm: bool,
    /// Journal capacity: when non-zero, the engine records up to this
    /// many cluster events (batch lifecycle, reconfigurations, spot
    /// events) into [`SimulationResult::journal`] for post-hoc
    /// debugging. Zero (the default) disables recording.
    pub journal_capacity: usize,
    /// Invariant auditing: when `true`, the engine cross-checks the
    /// cluster-state conservation laws (container accounting, request
    /// accounting, ledger/VM-binding coherence, batch-lifecycle
    /// causality) after every handled event, reporting violations in
    /// [`SimulationResult::audit`]. The auditor only reads state, so
    /// results are bit-identical with it on or off; it is off by
    /// default because the sweep is O(cluster state) per event.
    pub audit: bool,
    /// Invariant-sweep sampling: run the full cluster-state audit on
    /// every `audit_every_n`-th opportunity (1 = every event, the
    /// default; 0 is treated as 1). The auditor is a pure observer, so
    /// sampling is digest-neutral; it exists so fleet-scale benchmark
    /// runs can keep auditing on without paying an O(cluster state)
    /// sweep per event. The O(1) batch-lifecycle checks stay unsampled.
    pub audit_every_n: u64,
    /// Selects the retained O(W) linear-scan dispatcher instead of the
    /// incremental [`crate::dispatch::DispatchIndex`]. Both paths pick
    /// the identical worker (same `(outstanding, idx)` tie-break); the
    /// reference exists as the baseline for fleet-scale benchmarks and
    /// for the differential tests that prove the equivalence.
    pub reference_dispatch: bool,
    /// O(1)-memory metrics: store per-class latency histograms instead
    /// of per-request records, and skip the per-strict-batch latency
    /// timeline. Dispatch decisions, event ordering and RNG consumption
    /// are untouched — only what gets *recorded* changes — so the run
    /// itself is bit-identical; exact per-record outputs (golden
    /// digests, CDFs, tail breakdowns) need the default full mode.
    /// Required for ≥10⁹-request endurance runs, whose record store
    /// would otherwise grow without bound.
    pub aggregate_metrics: bool,
    /// Fleet shards for intra-run parallelism. `1` (the default) runs
    /// the sequential engine unchanged; `> 1` partitions the workers
    /// across [`crate::sharded`]'s shard cores, which advance their own
    /// event heaps in parallel between synchronization epochs and merge
    /// to a digest **bit-identical** to the sequential engine (the same
    /// differential contract `reference_dispatch` pins for the dispatch
    /// index). Clamped to the worker count. Ignored (sequential path)
    /// when `reference_dispatch` is set — the linear-scan reference is
    /// inherently a whole-fleet scan.
    pub shards: usize,
    /// OS threads the sharded engine may occupy, *including* the
    /// coordinator thread (0 = auto: `available_parallelism`, which the
    /// experiment harness further divides against grid-cell
    /// parallelism). Shard phases with more participants than the
    /// budget run inline on the coordinator instead — same digests, no
    /// oversubscription. Setting `1` forces the sharded logic fully
    /// inline (useful on single-core hosts and in deterministic tests
    /// of the partitioned state machine).
    pub shard_threads: usize,
    /// Upper bound on how many consecutive arrivals the sharded
    /// coordinator may coalesce into one synchronization epoch
    /// (arrival-run coarsening). The coordinator only extends a run
    /// while doing so is *provably* exact — the next arrival must win
    /// its tie against every pending serial event and no shard may hold
    /// an event below the arrival's bound — so any value here yields
    /// bit-identical results; the cap merely bounds how long the
    /// coordinator defers its conflict re-checks. Values `<= 1` disable
    /// coarsening (one epoch per arrival, the PR-7 discipline), which
    /// is the differential arm the coarsening tests compare against.
    /// Ignored by the sequential engine (`effective_shards() == 1`),
    /// which has no epochs.
    pub max_epoch_arrivals: u64,
    /// Admit `WindowExpire` coordinator events into coarsened runs
    /// alongside arrivals (the PR-10 extension of the run-peeling
    /// contract). A window expiry is dispatch-shaped — it routes the
    /// pending window batch through the same `DispatchIndex` path an
    /// arrival uses — so it may join a run under the same two conflict
    /// checks (key-order tie win against every other pending
    /// coordinator event; no shard heap below its `EventKey`), with the
    /// run cut at the first non-dispatch coordinator event or shard
    /// conflict. Exactness is proven per member, so both settings are
    /// bit-identical; `false` restores the PR-8 discipline where every
    /// expiry is a singleton epoch (the differential arm). Ignored by
    /// the sequential engine.
    pub coalesce_window_expiries: bool,
}

impl ClusterConfig {
    /// The paper's default setup: 8 workers, 2 s monitor interval, 3×
    /// SLO, on-demand procurement.
    pub fn paper_default() -> Self {
        ClusterConfig {
            workers: 8,
            seed: 42,
            monitor_interval: SimDuration::from_secs(2.0),
            batch_window: SimDuration::from_millis(50.0),
            cold_start: SimDuration::from_secs(8.0),
            keep_alive: SimDuration::from_secs(600.0),
            slo_multiplier: 3.0,
            reconfig_delay: SimDuration::from_secs(2.0),
            max_reconfig_fraction: 0.3,
            procurement: ProcurementPolicy::OnDemandOnly,
            availability: SpotAvailability::High,
            revocation_check: SimDuration::from_secs(60.0),
            vm_startup: SimDuration::from_secs(30.0),
            procurement_retry: SimDuration::from_secs(60.0),
            drain_grace: SimDuration::from_secs(5.0),
            scan_depth: 32,
            provider: Provider::Aws,
            warmup: SimDuration::from_secs(15.0),
            prewarm_containers: 4,
            time_share_overhead_ms_per_gb: 8.0,
            time_share_overhead_base_ms: 18.0,
            exec_jitter_sigma: 0.15,
            predictive_prewarm: false,
            journal_capacity: 0,
            audit: false,
            audit_every_n: 1,
            reference_dispatch: false,
            aggregate_metrics: false,
            shards: 1,
            shard_threads: 0,
            max_epoch_arrivals: 64,
            coalesce_window_expiries: true,
        }
    }

    /// The shard count this configuration actually runs with: clamped
    /// to the fleet size, and forced to 1 (sequential) under
    /// `reference_dispatch`.
    pub fn effective_shards(&self) -> usize {
        if self.reference_dispatch {
            return 1;
        }
        self.shards.clamp(1, self.workers.max(1))
    }

    /// A 2-worker configuration for fast unit tests.
    pub fn small_test() -> Self {
        ClusterConfig {
            workers: 2,
            ..ClusterConfig::paper_default()
        }
    }
}

/// Dollar cost of a run (Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostReport {
    /// Total, USD.
    pub total_usd: f64,
    /// Spot share, USD.
    pub spot_usd: f64,
    /// On-demand share, USD.
    pub on_demand_usd: f64,
    /// Evictions suffered.
    pub evictions: u64,
}

/// Event-loop health counters for one run, surfaced in
/// [`SimulationResult::stats`] so scheduling-discipline optimisations
/// are observable rather than asserted.
///
/// `finish_events_all_jobs` counts what the all-jobs re-projection
/// discipline *would* push: one `JobFinish` per resident job on every
/// slice-membership change. The next-completion-only engine pushes at
/// most one (`finish_events_pushed`), so the ratio between the two is
/// the heap-traffic reduction, measured per run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Total events pushed onto the event queue (all types).
    pub events_pushed: u64,
    /// Total events popped from the event queue.
    pub events_popped: u64,
    /// Largest heap size reached during the run.
    pub peak_heap_len: usize,
    /// `JobFinish` events actually pushed.
    pub finish_events_pushed: u64,
    /// `JobFinish` events the all-jobs re-projection discipline would
    /// have pushed (the pre-optimisation baseline, counted live).
    pub finish_events_all_jobs: u64,
    /// `JobFinish` events discarded as stale at pop time.
    pub stale_finish_events: u64,
    /// `BootDone` events discarded because the worker's VM was replaced
    /// while the container boot was in flight.
    pub stale_boot_events: u64,
    /// Dispatch target selections performed (sealed batches plus
    /// eviction re-dispatches and backlog re-drains).
    pub dispatch_batches: u64,
    /// Worker slots examined across all dispatch target selections. The
    /// linear scan pays ~W per batch; the index pays O(log W) — so
    /// visits per batch is the direct measure of dispatch cost.
    pub dispatch_scan_visits: u64,
    /// Incremental maintenance operations applied to the dispatch
    /// index.
    pub index_updates: u64,
    /// Batches that bounced straight back to the gateway backlog during
    /// the drain pass that re-dispatched them (re-dispatch churn).
    pub backlog_requeued: u64,
    /// Requests dispatched at the gateway (arrivals at or before the
    /// cutoff; half of the dispatch-event denominator of
    /// epochs-per-dispatch-event).
    pub arrivals: u64,
    /// `WindowExpire` batch-window dispatches handled at or before the
    /// cutoff (live and stale alike — staleness is a property of the
    /// accumulator, not of the event having fired). The other half of
    /// the dispatch-event denominator; counted identically by the
    /// sequential and sharded engines.
    pub expiries: u64,
    /// Dispatch-run epochs the sharded coordinator started: each run
    /// covers one or more consecutive dispatch-shaped events (arrivals
    /// and, with [`ClusterConfig::coalesce_window_expiries`], window
    /// expiries) whose intermediate phases were proven empty.
    /// Per-arrival mode (`max_epoch_arrivals <= 1`) records one epoch
    /// per dispatch event; the sequential engine records zero (it has
    /// no epochs).
    pub epochs: u64,
    /// Arrivals absorbed into a running epoch beyond each run's first
    /// member (the barrier launches coarsening avoided). Conservation:
    /// `epochs + coalesced_arrivals + coalesced_expiries ==
    /// arrivals + expiries`, audited at end of run when
    /// [`ClusterConfig::audit`] is set.
    pub coalesced_arrivals: u64,
    /// Window expiries absorbed into a running epoch beyond each run's
    /// first member — the serial synchronizations the PR-10 expiry
    /// admission eliminated. Zero when
    /// [`ClusterConfig::coalesce_window_expiries`] is off (every expiry
    /// is then a singleton epoch). Part of the conservation identity
    /// above.
    pub coalesced_expiries: u64,
    /// Why each dispatch run ended, by cause. Every run is cut exactly
    /// once, so `run_cutoffs.total() == epochs` (also audited).
    pub run_cutoffs: RunCutoffs,
}

/// Per-cause accounting of dispatch-run terminations in the sharded
/// coordinator (see [`EngineStats::run_cutoffs`]). The causes are
/// mutually exclusive: the first one that fires ends the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunCutoffs {
    /// A pending non-dispatch serial coordinator event (monitor tick —
    /// the reconfiguration trigger —, revocation check, eviction
    /// finalisation, VM arrival, procurement retry) won the tie against
    /// the next dispatch-shaped event, so the run must yield to it.
    pub serial_event: u64,
    /// Some shard held a pending worker-local event below the next
    /// arrival's bound: the intermediate phase would not be empty, so
    /// coalescing past it is not provably exact.
    pub shard_conflict: u64,
    /// Some shard held a pending worker-local event below the next
    /// window expiry's `EventKey`: admitting the expiry would elide a
    /// non-empty phase. Tracked apart from `shard_conflict` so the
    /// cut-cause table attributes arrival-bound and expiry-bound
    /// conflicts separately.
    pub expiry_shard_conflict: u64,
    /// [`ClusterConfig::coalesce_window_expiries`] is off and the run's
    /// opening member was a window expiry: the PR-8 discipline makes it
    /// a singleton epoch by fiat, not by any conflict.
    pub coalescing_off: u64,
    /// The run reached [`ClusterConfig::max_epoch_arrivals`] members
    /// (arrivals and admitted expiries both count toward the cap).
    pub max_arrivals: u64,
    /// The coordinator's journal buffer reached
    /// [`ClusterConfig::journal_capacity`]: the journal can accept no
    /// further records, so deferring conflict re-checks buys nothing
    /// and the run is cut to keep the cutoff triad reconcilable.
    pub journal_pressure: u64,
    /// The trace ran out of arrivals (or the next arrival lies beyond
    /// the cutoff).
    pub trace_end: u64,
}

impl RunCutoffs {
    /// Total runs cut, across all causes.
    pub fn total(&self) -> u64 {
        self.serial_event
            + self.shard_conflict
            + self.expiry_shard_conflict
            + self.coalescing_off
            + self.max_arrivals
            + self.journal_pressure
            + self.trace_end
    }
}

/// A completed MIG geometry change (Fig. 7 timeline).
#[derive(Debug, Clone, PartialEq)]
pub struct GeometryChange {
    /// When the new geometry came up.
    pub at: SimTime,
    /// Which worker.
    pub worker: usize,
    /// The new geometry, printed in paper notation.
    pub geometry: String,
}

/// Everything a run produces.
#[derive(Debug, Clone)]
pub struct SimulationResult {
    /// Scheme name.
    pub scheme: String,
    /// Per-request records.
    pub metrics: MetricsSet,
    /// Dollar cost.
    pub cost: CostReport,
    /// Mean GPU compute utilization across workers (busy × compute
    /// share).
    pub compute_utilization: f64,
    /// Mean GPU memory utilization across workers.
    pub memory_utilization: f64,
    /// Per-worker GPU compute utilization (consolidating schemes
    /// concentrate load, so the busiest GPU tells a different story
    /// than the cluster mean).
    pub per_gpu_compute_utilization: Vec<f64>,
    /// Per-worker GPU memory utilization.
    pub per_gpu_memory_utilization: Vec<f64>,
    /// Cold starts triggered.
    pub cold_starts: u64,
    /// Completed MIG reconfigurations.
    pub reconfigs: u64,
    /// Requests censored at the end of the run (still incomplete; they
    /// are recorded with the cutoff as completion time so overload shows
    /// up as SLO violations rather than vanishing).
    pub censored: u64,
    /// Geometry-change timeline.
    pub geometry_timeline: Vec<GeometryChange>,
    /// Per-strict-batch latency samples `(completion, latency_ms)`.
    pub strict_latency_timeline: TimeSeries,
    /// The recorded event journal (empty unless
    /// [`ClusterConfig::journal_capacity`] was set).
    pub journal: Journal,
    /// Event-loop health counters (heap traffic, stale events).
    pub stats: EngineStats,
    /// Invariant-audit outcome (inert unless [`ClusterConfig::audit`]
    /// was set).
    pub audit: AuditReport,
    /// Containers booted ahead of demand by predictive pre-provisioning
    /// (zero unless [`ClusterConfig::predictive_prewarm`] was set).
    pub proactive_boots: u64,
    /// Trace duration (excluding drain grace).
    pub duration: SimDuration,
    /// Worker count.
    pub workers: usize,
}

impl SimulationResult {
    /// The per-model SLO deadline function for this run's multiplier.
    pub fn slo_fn(catalog: &Catalog, multiplier: f64) -> impl Fn(ModelId) -> SimDuration + '_ {
        move |m| catalog.profile(m).slo_with_multiplier(multiplier)
    }
}

#[derive(Debug)]
enum Event {
    WindowExpire {
        model: ModelId,
        strict: bool,
        seq: u64,
    },
    BootDone {
        worker: usize,
        model: ModelId,
        /// The worker's VM incarnation when the boot was armed; a boot
        /// from a VM that has since been replaced is stale.
        vm_epoch: u64,
    },
    JobFinish {
        worker: usize,
        slice: usize,
        job: JobId,
        generation: u64,
        epoch: u64,
    },
    MonitorTick,
    ReconfigDone {
        worker: usize,
        epoch: u64,
    },
    RevocationCheck {
        worker: usize,
    },
    EvictionFinal {
        worker: usize,
    },
    VmReady {
        worker: usize,
        tier: VmTier,
    },
    ProcurementRetry {
        worker: usize,
    },
}

/// Runs one full simulation: generates the trace from `trace_config`
/// (seeded by `config.seed`), drives it through the cluster under
/// `scheme`, and returns metrics, cost and timelines.
pub fn run_simulation(
    config: &ClusterConfig,
    scheme: &dyn SchemeBuilder,
    trace_config: &TraceConfig,
) -> SimulationResult {
    let factory = RngFactory::new(config.seed);
    let trace = trace_config.generate(&factory);
    run_simulation_on(config, scheme, trace)
}

/// Runs a simulation over an already-materialised [`Trace`] — e.g. one
/// imported from a CSV file (`protean_trace::io`) or produced by an
/// external tool. Everything except the arrivals is still seeded by
/// `config.seed`.
pub fn run_simulation_on(
    config: &ClusterConfig,
    scheme: &dyn SchemeBuilder,
    trace: Trace,
) -> SimulationResult {
    let factory = RngFactory::new(config.seed);
    let mut market = SpotMarket::new(config.availability, factory.stream("spot.market"));
    run_trace_with_oracle(config, scheme, trace, &mut market)
}

/// Runs a simulation with the spot market replaced by an arbitrary
/// [`SpotOracle`] — in practice a
/// [`crate::fault::ScriptedMarket`], so tests can drive the eviction
/// and procurement machinery through exact adversarial interleavings
/// instead of scanning seeds for them. The oracle is borrowed, not
/// consumed, so its counters remain inspectable after the run.
pub fn run_simulation_with_oracle(
    config: &ClusterConfig,
    scheme: &dyn SchemeBuilder,
    trace_config: &TraceConfig,
    oracle: &mut dyn SpotOracle,
) -> SimulationResult {
    let factory = RngFactory::new(config.seed);
    let trace = trace_config.generate(&factory);
    run_trace_with_oracle(config, scheme, trace, oracle)
}

/// [`run_simulation_with_oracle`] over an already-materialised trace.
pub fn run_trace_with_oracle(
    config: &ClusterConfig,
    scheme: &dyn SchemeBuilder,
    trace: Trace,
    oracle: &mut dyn SpotOracle,
) -> SimulationResult {
    if config.effective_shards() > 1 {
        return crate::sharded::run_trace_sharded(config, scheme, trace, oracle);
    }
    let factory = RngFactory::new(config.seed);
    let catalog = Catalog::new();
    let mut engine = Engine::new(config, scheme, &catalog, &factory, oracle);
    let duration = trace.duration();
    engine.run(trace.into_requests(), duration);
    engine.into_result(scheme.name().to_string())
}

/// [`run_simulation`] with arrivals pulled lazily from
/// [`TraceConfig::stream`] instead of a materialised request vector:
/// bit-identical results (same seeded RNG streams, same event
/// interleaving), O(1) arrival memory. Combine with
/// [`ClusterConfig::aggregate_metrics`] for runs whose *output* must
/// also stay O(1) — that is the flat-RSS contract the billion-request
/// soak benchmarks pin.
pub fn run_simulation_streaming(
    config: &ClusterConfig,
    scheme: &dyn SchemeBuilder,
    trace_config: &TraceConfig,
) -> SimulationResult {
    let factory = RngFactory::new(config.seed);
    let mut market = SpotMarket::new(config.availability, factory.stream("spot.market"));
    run_stream_with_oracle(config, scheme, trace_config, &mut market)
}

/// [`run_simulation_streaming`] with the spot market replaced by an
/// arbitrary [`SpotOracle`] (see [`run_simulation_with_oracle`]).
pub fn run_stream_with_oracle(
    config: &ClusterConfig,
    scheme: &dyn SchemeBuilder,
    trace_config: &TraceConfig,
    oracle: &mut dyn SpotOracle,
) -> SimulationResult {
    if config.effective_shards() > 1 {
        return crate::sharded::run_stream_sharded(config, scheme, trace_config, oracle);
    }
    let factory = RngFactory::new(config.seed);
    let catalog = Catalog::new();
    let mut engine = Engine::new(config, scheme, &catalog, &factory, oracle);
    engine.run_streaming(trace_config.stream(&factory), trace_config.stream(&factory));
    engine.into_result(scheme.name().to_string())
}

struct Engine<'a> {
    config: &'a ClusterConfig,
    catalog: &'a Catalog,
    workers: Vec<Worker>,
    queue: EventQueue<Event>,
    now: SimTime,
    market: &'a mut dyn SpotOracle,
    ledger: VmLedger,
    accumulators: HashMap<(ModelId, bool), Accumulator>,
    backlog: VecDeque<Batch>,
    metrics: MetricsSet,
    strict_latency_timeline: TimeSeries,
    geometry_timeline: Vec<GeometryChange>,
    next_batch_id: u64,
    journal: Journal,
    /// One execution-jitter stream per worker
    /// (`indexed_stream("engine.exec_jitter", idx)`), so a worker's
    /// jitter sequence depends only on its own placement history — the
    /// property that lets the sharded engine draw jitter shard-locally
    /// and still match this engine bit for bit.
    jitter_rngs: Vec<protean_sim::SimRng>,
    dispatch_policy: DispatchPolicy,
    /// Reusable candidate buffer for `try_place` — the placement loop
    /// runs on every dispatch/boot/finish event, so it must not allocate
    /// a fresh `Vec` per pass.
    scratch_views: Vec<(BatchId, BatchView)>,
    /// Incremental index over worker dispatch state (status, GPU
    /// accepting, `outstanding`). Kept coherent even under
    /// `reference_dispatch` so the audit layer can cross-check it.
    index: DispatchIndex,
    /// Reusable distinct-model buffer for `prewarm_pools`.
    scratch_models: Vec<ModelId>,
    stats: EngineStats,
    audit: Auditor,
    reconfigs: u64,
    evictions: u64,
    censored: u64,
    cutoff: SimTime,
}

impl<'a> Engine<'a> {
    fn new(
        config: &'a ClusterConfig,
        scheme: &dyn SchemeBuilder,
        catalog: &'a Catalog,
        factory: &RngFactory,
        market: &'a mut dyn SpotOracle,
    ) -> Self {
        assert!(config.workers > 0, "cluster needs at least one worker");
        let ledger = VmLedger::new(PricingTable::paper_table3(), config.provider);
        let workers = (0..config.workers)
            .map(|i| Worker::new(i, scheme.build(i), SimTime::ZERO))
            .collect();
        let mut engine = Engine {
            config,
            catalog,
            workers,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            market,
            ledger,
            accumulators: HashMap::new(),
            backlog: VecDeque::new(),
            metrics: if config.aggregate_metrics {
                MetricsSet::aggregate()
            } else {
                MetricsSet::new()
            },
            strict_latency_timeline: TimeSeries::new(),
            geometry_timeline: Vec::new(),
            next_batch_id: 0,
            journal: Journal::new(config.journal_capacity),
            jitter_rngs: (0..config.workers)
                .map(|i| factory.indexed_stream("engine.exec_jitter", i as u64))
                .collect(),
            dispatch_policy: scheme.dispatch_policy(),
            scratch_views: Vec::new(),
            index: DispatchIndex::new(config.workers),
            scratch_models: Vec::new(),
            stats: EngineStats::default(),
            audit: Auditor::new(config.audit, config.audit_every_n),
            reconfigs: 0,
            evictions: 0,
            censored: 0,
            cutoff: SimTime::MAX,
        };
        engine.provision_initial_vms();
        engine
    }

    fn provision_initial_vms(&mut self) {
        for idx in 0..self.workers.len() {
            let policy = self.config.procurement;
            let tier = match policy {
                ProcurementPolicy::OnDemandOnly => Some(VmTier::OnDemand),
                _ => policy.replacement_tier(self.market.try_acquire_spot(self.now, idx)),
            };
            match tier {
                Some(tier) => {
                    let id = self.ledger.allocate_id();
                    self.ledger.open(id, tier, SimTime::ZERO);
                    let w = &mut self.workers[idx];
                    w.vm = Some((id, tier));
                    w.status = WorkerStatus::Up;
                    w.gpu.set_reconfig_delay(self.config.reconfig_delay);
                    if tier == VmTier::Spot {
                        self.queue.push(
                            SimTime::ZERO + self.config.revocation_check,
                            Event::RevocationCheck { worker: idx },
                        );
                    }
                }
                None => {
                    // Spot-only under scarcity: the slot starts empty.
                    self.workers[idx].status = WorkerStatus::Down;
                    self.queue.push(
                        SimTime::ZERO + self.config.procurement_retry,
                        Event::ProcurementRetry { worker: idx },
                    );
                }
            }
        }
        for idx in 0..self.workers.len() {
            self.refresh_index(idx);
        }
        self.queue.push(
            SimTime::ZERO + self.config.monitor_interval,
            Event::MonitorTick,
        );
    }

    /// Re-caches `idx`'s dispatch state in the index. Must follow any
    /// mutation of the worker's status, GPU accepting state, or
    /// `outstanding`. Reference-dispatch runs skip maintenance so the
    /// benchmark baseline pays exactly what the pre-index engine paid —
    /// unless the auditor is on, which keeps the index coherent so the
    /// cross-check against the linear scans stays active.
    fn refresh_index(&mut self, idx: usize) {
        if self.config.reference_dispatch && !self.config.audit {
            return;
        }
        self.index.refresh_worker(&self.workers[idx]);
    }

    fn run(&mut self, requests: Vec<Request>, duration: SimDuration) {
        // Every arrived request produces exactly one record (completed
        // or censored); reserving up front keeps million-request fleet
        // runs from re-growing the record store mid-measurement.
        self.metrics.reserve(requests.len());
        self.prewarm_pools(&requests);
        self.run_arrivals(requests.into_iter(), duration);
    }

    /// [`Engine::run`] pulling arrivals from a [`TraceStream`] instead
    /// of a materialised vector: identical event interleaving and RNG
    /// consumption (arrivals ride their own labeled streams), so the
    /// results are bit-identical to the materialised run, while the
    /// arrival store stays O(1) no matter how many requests the trace
    /// carries. A second stream instance feeds the prewarm pre-pass.
    fn run_streaming(&mut self, arrivals: TraceStream, prewarm_scan: TraceStream) {
        let duration = arrivals.duration();
        self.prewarm_pools_streaming(prewarm_scan);
        self.run_arrivals(arrivals, duration);
    }

    fn run_arrivals<I: Iterator<Item = Request>>(&mut self, arrivals: I, duration: SimDuration) {
        self.cutoff = SimTime::ZERO + duration + self.config.drain_grace;
        let mut arrivals = arrivals.peekable();
        loop {
            let next_arrival = arrivals.peek().map(|r| r.arrival);
            let next_event = self.queue.peek_time();
            match (next_arrival, next_event) {
                (Some(ta), Some(te)) if ta <= te => {
                    if ta > self.cutoff {
                        break;
                    }
                    self.now = ta;
                    let r = arrivals.next().expect("peeked");
                    self.dispatch(r);
                    self.audit
                        .check_cluster(self.now, &self.workers, &self.ledger, &self.index);
                }
                (Some(ta), None) => {
                    if ta > self.cutoff {
                        break;
                    }
                    self.now = ta;
                    let r = arrivals.next().expect("peeked");
                    self.dispatch(r);
                    self.audit
                        .check_cluster(self.now, &self.workers, &self.ledger, &self.index);
                }
                (_, Some(te)) => {
                    if te > self.cutoff {
                        break;
                    }
                    self.now = te;
                    let (_, ev) = self.queue.pop().expect("peeked");
                    self.handle(ev);
                    self.audit
                        .check_cluster(self.now, &self.workers, &self.ledger, &self.index);
                }
                (None, None) => break,
            }
        }
        self.now = self.cutoff;
        self.censor_remaining();
    }

    // ---- request path -------------------------------------------------

    /// Gateway: requests accumulate into per-(model, strictness)
    /// batches *before* dispatch (Fig. 4 order: reorder/batch, then
    /// serve), so batches fill at the cluster-wide arrival rate.
    fn dispatch(&mut self, request: Request) {
        self.stats.arrivals += 1;
        let batch_size = self.catalog.profile(request.model).batch_size;
        let key = (request.model, request.strict);
        let acc = self.accumulators.entry(key).or_default();
        let first = acc.push(request);
        if acc.len() as u32 >= batch_size {
            self.seal_batch(key);
        } else if first {
            let seq = self.accumulators[&key].seal_seq;
            self.queue.push(
                self.now + self.config.batch_window,
                Event::WindowExpire {
                    model: key.0,
                    strict: key.1,
                    seq,
                },
            );
        }
    }

    fn seal_batch(&mut self, key: (ModelId, bool)) {
        let requests = match self.accumulators.get_mut(&key) {
            Some(acc) if !acc.is_empty() => acc.seal(),
            _ => return,
        };
        let id = BatchId(self.next_batch_id);
        self.next_batch_id += 1;
        let batch = Batch {
            id,
            model: key.0,
            strict: key.1,
            requests,
            sealed_at: self.now,
            cold_wait_ms: 0.0,
            redispatched: false,
        };
        self.audit.batch_sealed(self.now, batch.id);
        self.journal.record(
            self.now,
            JournalEvent::BatchSealed {
                batch: batch.id,
                model: batch.model,
                strict: batch.strict,
                size: batch.size(),
            },
        );
        self.dispatch_batch(batch);
    }

    /// Pre-provisions warm containers for every model appearing in the
    /// trace (steady state of a long-running deployment).
    fn prewarm_pools(&mut self, requests: &[Request]) {
        if self.config.prewarm_containers == 0 {
            return;
        }
        let mut models = std::mem::take(&mut self.scratch_models);
        models.clear();
        let mut seen: HashSet<ModelId> = HashSet::new();
        let mut last: Option<ModelId> = None;
        for r in requests {
            // Traces run a model for long stretches; skipping repeats of
            // the previous model avoids hashing every request.
            if last == Some(r.model) {
                continue;
            }
            last = Some(r.model);
            if seen.insert(r.model) {
                models.push(r.model);
            }
        }
        self.prewarm_models(&models);
        self.scratch_models = models;
    }

    /// [`Engine::prewarm_pools`] for a streamed trace: walks a fresh
    /// stream instance collecting distinct models in the same
    /// first-appearance order the materialised scan sees, stopping as
    /// soon as every model the stream *can* produce
    /// ([`TraceStream::model_universe`]) has appeared — a few rotation
    /// periods in practice, never the full request count.
    fn prewarm_pools_streaming(&mut self, stream: TraceStream) {
        if self.config.prewarm_containers == 0 {
            return;
        }
        let universe = stream.model_universe().len();
        let mut models = std::mem::take(&mut self.scratch_models);
        models.clear();
        let mut seen: HashSet<ModelId> = HashSet::new();
        let mut last: Option<ModelId> = None;
        for r in stream {
            if last == Some(r.model) {
                continue;
            }
            last = Some(r.model);
            if seen.insert(r.model) {
                models.push(r.model);
                if models.len() >= universe {
                    break;
                }
            }
        }
        self.prewarm_models(&models);
        self.scratch_models = models;
    }

    fn prewarm_models(&mut self, models: &[ModelId]) {
        let now = self.now;
        let count = self.config.prewarm_containers;
        for w in &mut self.workers {
            // A worker already holding the prewarm quota for every trace
            // model needs no inserts — the dominant case on re-entry.
            let satisfied = models.iter().all(|m| {
                w.pools
                    .get(m)
                    .is_some_and(|p| p.total_containers() as usize >= count)
            });
            if satisfied {
                continue;
            }
            for &m in models {
                w.pools
                    .entry(m)
                    .or_insert_with(Pool::new)
                    .prewarm(now, count);
            }
        }
    }

    /// Dispatcher: routes a sealed batch per the scheme's policy —
    /// least-loaded live worker, or (INFless/Llama-style) consolidated
    /// onto the fewest GPUs with memory headroom. Target selection goes
    /// through the incremental [`DispatchIndex`] (O(log W) per batch)
    /// unless [`ClusterConfig::reference_dispatch`] re-selects the
    /// retained O(W) scans; both paths pick the identical worker.
    fn dispatch_batch(&mut self, batch: Batch) {
        self.stats.dispatch_batches += 1;
        let mut visits = 0u64;
        let target = if self.config.reference_dispatch {
            self.reference_target(&batch, &mut visits)
        } else {
            self.indexed_target(&batch, &mut visits)
        };
        self.stats.dispatch_scan_visits += visits;
        match target {
            Some(idx) => {
                self.audit.batch_dispatched(
                    self.now,
                    batch.id,
                    idx,
                    self.workers[idx].routable(),
                    batch.redispatched,
                );
                let w = &mut self.workers[idx];
                let n = batch.requests.len() as u64;
                w.outstanding += n;
                // Per-window load counters feed the reconfiguration
                // predictor; an eviction orphan's requests were already
                // counted at first dispatch, so re-counting them here
                // would double the apparent window load.
                if !batch.redispatched {
                    if batch.strict {
                        w.window_strict += n;
                    } else {
                        w.window_be += n;
                    }
                }
                if !batch.strict {
                    w.last_be_model = Some(batch.model);
                }
                // Per-model dispatch counts drive predictive container
                // pre-provisioning; the target worker needs a container
                // whether or not the batch is an orphan.
                *w.window_batches.entry(batch.model).or_insert(0) += 1;
                self.refresh_index(idx);
                self.journal.record(
                    self.now,
                    JournalEvent::BatchDispatched {
                        batch: batch.id,
                        worker: idx,
                        redispatch: batch.redispatched,
                    },
                );
                self.acquire_container(idx, batch);
            }
            None => self.backlog.push_back(batch),
        }
    }

    /// Indexed target selection. Preference order matches the linear
    /// path exactly: consolidate first-fit when the policy asks, then
    /// the least-loaded worker with an accepting GPU — a GPU draining
    /// for reconfiguration gets no new traffic (§4.4 keeps downtime
    /// local) — then any live worker if every GPU is mid-change.
    fn indexed_target(&mut self, batch: &Batch, visits: &mut u64) -> Option<usize> {
        let cap = match self.dispatch_policy {
            DispatchPolicy::Consolidate { cap_batches } => {
                Some(cap_batches * u64::from(self.catalog.profile(batch.model).batch_size))
            }
            DispatchPolicy::LoadBalance => None,
        };
        crate::dispatch::select_across(std::iter::once(&self.index), cap, visits)
    }

    /// The original O(W) scans, retained as the differential reference
    /// and the fleet-scale benchmark baseline
    /// ([`ClusterConfig::reference_dispatch`]).
    fn reference_target(&self, batch: &Batch, visits: &mut u64) -> Option<usize> {
        let consolidated = match self.dispatch_policy {
            DispatchPolicy::Consolidate { cap_batches } => {
                let cap = cap_batches * u64::from(self.catalog.profile(batch.model).batch_size);
                self.workers
                    .iter()
                    .find(|w| {
                        *visits += 1;
                        w.routable() && w.gpu.accepting() && w.outstanding < cap
                    })
                    .map(|w| w.idx)
            }
            DispatchPolicy::LoadBalance => None,
        };
        if consolidated.is_some() {
            return consolidated;
        }
        // Prefer workers whose GPU is accepting jobs; a GPU draining for
        // reconfiguration gets no new traffic (§4.4 keeps downtime
        // local). Fall back to any live worker if every GPU is mid-change.
        *visits += self.workers.len() as u64;
        let accepting = self
            .workers
            .iter()
            .filter(|w| w.routable() && w.gpu.accepting())
            .min_by_key(|w| (w.outstanding, w.idx))
            .map(|w| w.idx);
        if accepting.is_some() {
            return accepting;
        }
        *visits += self.workers.len() as u64;
        self.workers
            .iter()
            .filter(|w| w.routable())
            .min_by_key(|w| (w.outstanding, w.idx))
            .map(|w| w.idx)
    }

    fn acquire_container(&mut self, idx: usize, batch: Batch) {
        let model = batch.model;
        let now = self.now;
        let w = &mut self.workers[idx];
        let pool = w.pools.entry(model).or_default();
        match pool.acquire(now) {
            Acquire::Warm => {
                let mem = self.catalog.profile(model).mem_gb;
                w.sched_queue.push(batch, mem);
                self.try_place(idx);
            }
            Acquire::ColdStarted => {
                let vm_epoch = w.vm_epoch;
                w.wait_container.entry(model).or_default().push_back(batch);
                self.journal
                    .record(now, JournalEvent::ColdStart { worker: idx, model });
                self.queue.push(
                    now + self.config.cold_start,
                    Event::BootDone {
                        worker: idx,
                        model,
                        vm_epoch,
                    },
                );
            }
        }
    }

    fn try_place(&mut self, idx: usize) {
        // Take the scratch buffer so the loop body can borrow `self`
        // mutably; restored before returning.
        let mut views = std::mem::take(&mut self.scratch_views);
        loop {
            if !self.workers[idx].gpu.accepting() {
                break;
            }
            views.clear();
            self.workers[idx]
                .sched_queue
                .for_each_candidate(self.config.scan_depth, |b| {
                    views.push((
                        b.id,
                        BatchView {
                            model: b.model,
                            strict: b.strict,
                            size: b.size(),
                        },
                    ));
                });
            if views.is_empty() {
                break;
            }
            let mut placed_any = false;
            for &(batch_id, view) in &views {
                let w = &mut self.workers[idx];
                let placement = {
                    let ctx = PlacementCtx {
                        now: self.now,
                        gpu: &w.gpu,
                        queued_be_mem_gb: w.sched_queue.be_mem_gb(),
                        catalog: self.catalog,
                    };
                    w.scheme.place(&ctx, &view)
                };
                let Some(p) = placement else { continue };
                if p.slice >= w.gpu.slices().len() {
                    continue;
                }
                let profile = self.catalog.profile(view.model);
                let slice_profile = w.gpu.slice(p.slice).profile();
                // Inference batch latency is affine in batch size (see
                // ModelProfile::fill_factor), so partial (window-sealed)
                // batches run proportionally faster.
                let fill = f64::from(view.size) / f64::from(profile.batch_size);
                let fill_factor = profile.fill_factor(fill);
                let jitter = if self.config.exec_jitter_sigma > 0.0 {
                    (self.jitter_rngs[idx].standard_normal() * self.config.exec_jitter_sigma)
                        .exp()
                        .clamp(0.6, 1.7)
                } else {
                    1.0
                };
                let mut solo = profile
                    .solo_on(slice_profile)
                    .mul_f64(p.solo_scale.max(0.0) * fill_factor * jitter);
                if w.gpu.slice(p.slice).mode() == protean_gpu::SharingMode::TimeShared {
                    // Context switch between containers on a time-shared
                    // GPU (weights/context re-activation), scaling with
                    // the model's working set.
                    solo += SimDuration::from_millis(
                        self.config.time_share_overhead_base_ms
                            + self.config.time_share_overhead_ms_per_gb * profile.mem_gb,
                    );
                }
                let spec = JobSpec {
                    id: JobId(batch_id.0),
                    solo,
                    fbr: profile.fbr * p.fbr_scale.max(0.0),
                    mem_gb: profile.mem_gb,
                };
                let admitted = w.gpu.slice_mut(p.slice).admit(self.now, spec);
                match admitted {
                    Ok(next) => {
                        let batch = w
                            .sched_queue
                            .remove(batch_id, profile.mem_gb)
                            .expect("placed batch was queued");
                        w.running.insert(
                            batch_id,
                            RunningBatch {
                                batch,
                                slice: p.slice,
                                exec_start: self.now,
                                solo_on_slice_ms: solo.as_millis_f64(),
                                solo_7g_ms: profile.solo_7g.as_millis_f64() * fill_factor * jitter,
                            },
                        );
                        // One live finish event per slice: the admit
                        // bumped the generation, so whatever event was
                        // armed before is now stale. The all-jobs
                        // discipline would have re-pushed every
                        // resident here.
                        let epoch = w.epoch;
                        self.stats.finish_events_all_jobs +=
                            w.gpu.slice(p.slice).job_count() as u64;
                        self.stats.finish_events_pushed += 1;
                        self.queue.push(
                            next.at,
                            Event::JobFinish {
                                worker: idx,
                                slice: p.slice,
                                job: next.job,
                                generation: next.generation,
                                epoch,
                            },
                        );
                        self.audit.batch_placed(self.now, batch_id, idx);
                        self.journal.record(
                            self.now,
                            JournalEvent::BatchPlaced {
                                batch: batch_id,
                                worker: idx,
                                slice: p.slice,
                            },
                        );
                        placed_any = true;
                    }
                    Err(_) => {
                        // No room right now; the batch stays queued.
                    }
                }
            }
            if !placed_any {
                break;
            }
        }
        self.scratch_views = views;
    }

    // ---- event handlers ------------------------------------------------

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::WindowExpire { model, strict, seq } => {
                self.stats.expiries += 1;
                let stale = self
                    .accumulators
                    .get(&(model, strict))
                    .is_none_or(|acc| acc.seal_seq != seq || acc.is_empty());
                if !stale {
                    self.seal_batch((model, strict));
                }
            }
            Event::BootDone {
                worker,
                model,
                vm_epoch,
            } => self.on_boot_done(worker, model, vm_epoch),
            Event::JobFinish {
                worker,
                slice,
                job,
                generation,
                epoch,
            } => self.on_job_finish(worker, slice, job, generation, epoch),
            Event::MonitorTick => self.on_monitor_tick(),
            Event::ReconfigDone { worker, epoch } => self.on_reconfig_done(worker, epoch),
            Event::RevocationCheck { worker } => self.on_revocation_check(worker),
            Event::EvictionFinal { worker } => self.on_eviction_final(worker),
            Event::VmReady { worker, tier } => self.on_vm_ready(worker, tier),
            Event::ProcurementRetry { worker } => self.on_procurement_retry(worker),
        }
    }

    fn on_boot_done(&mut self, idx: usize, model: ModelId, vm_epoch: u64) {
        let now = self.now;
        let w = &mut self.workers[idx];
        if w.vm_epoch != vm_epoch {
            // The VM this container was booting on has been replaced;
            // the boot died with it (the replacement VM's pools started
            // empty). Crediting it would mint a phantom container — or
            // underflow the fresh pool's booting count.
            self.stats.stale_boot_events += 1;
            return;
        }
        let waiting = w.wait_container.get_mut(&model).and_then(|q| q.pop_front());
        let pool = w.pools.entry(model).or_default();
        match waiting {
            Some(mut batch) => {
                pool.boot_done(now, true);
                batch.cold_wait_ms = now.saturating_since(batch.sealed_at).as_millis_f64();
                let mem = self.catalog.profile(model).mem_gb;
                w.sched_queue.push(batch, mem);
                self.try_place(idx);
            }
            None => pool.boot_done(now, false),
        }
    }

    fn on_job_finish(&mut self, idx: usize, slice: usize, job: JobId, generation: u64, epoch: u64) {
        let w = &mut self.workers[idx];
        if !w.finish_event_live(slice, generation, epoch) {
            self.stats.stale_finish_events += 1;
            return; // stale completion
        }
        let now = self.now;
        let (finished, next) = match w.gpu.slice_mut(slice).finish(now, job) {
            Ok(ok) => ok,
            Err(_) => {
                // Stale in a way the generation missed. The slice's
                // membership (and generation) did not change, so the
                // event just consumed was its only live one — re-arm it
                // or the residents would never finish.
                self.stats.stale_finish_events += 1;
                let epoch = w.epoch;
                if let Some(c) = w.gpu.slice(slice).next_completion(now) {
                    self.stats.finish_events_pushed += 1;
                    self.queue.push(
                        c.at,
                        Event::JobFinish {
                            worker: idx,
                            slice,
                            job: c.job,
                            generation: c.generation,
                            epoch,
                        },
                    );
                }
                return;
            }
        };
        let batch_id = BatchId(finished.spec.id.0);
        let Some(running) = w.running.remove(&batch_id) else {
            return;
        };
        // Re-arm the slice's single live finish event for the jobs still
        // resident (the all-jobs discipline would have re-pushed each).
        let new_epoch = w.epoch;
        self.stats.finish_events_all_jobs += w.gpu.slice(slice).job_count() as u64;
        if let Some(c) = next {
            self.stats.finish_events_pushed += 1;
            self.queue.push(
                c.at,
                Event::JobFinish {
                    worker: idx,
                    slice,
                    job: c.job,
                    generation: c.generation,
                    epoch: new_epoch,
                },
            );
        }
        self.audit.batch_finished(now, batch_id, idx);
        self.journal.record(
            now,
            JournalEvent::BatchFinished {
                batch: batch_id,
                worker: idx,
            },
        );
        self.record_batch_completion(idx, &running, now);
        // The container frees: reuse for a batch waiting on a container,
        // otherwise park warm.
        let model = running.batch.model;
        let w = &mut self.workers[idx];
        let next = w.wait_container.get_mut(&model).and_then(|q| q.pop_front());
        let pool = w.pools.entry(model).or_default();
        match next {
            Some(batch) => {
                pool.release(now, true);
                let mem = self.catalog.profile(model).mem_gb;
                w.sched_queue.push(batch, mem);
            }
            None => pool.release(now, false),
        }
        self.maybe_begin_reconfigure(idx);
        self.try_place(idx);
    }

    fn record_batch_completion(&mut self, idx: usize, running: &RunningBatch, now: SimTime) {
        let exec_ms = now.saturating_since(running.exec_start).as_millis_f64();
        let interference_ms = (exec_ms - running.solo_on_slice_ms).max(0.0);
        let deficiency_ms = (running.solo_on_slice_ms - running.solo_7g_ms).max(0.0);
        let cold_ms = running.batch.cold_wait_ms;
        let measure_from = SimTime::ZERO + self.config.warmup;
        let w = &mut self.workers[idx];
        for req in &running.batch.requests {
            if req.arrival < measure_from {
                w.outstanding = w.outstanding.saturating_sub(1);
                continue;
            }
            let total_ms = now.saturating_since(req.arrival).as_millis_f64();
            let queueing_ms =
                (total_ms - cold_ms - interference_ms - deficiency_ms - running.solo_7g_ms)
                    .max(0.0);
            self.metrics.push(RequestRecord {
                model: running.batch.model,
                strict: running.batch.strict,
                arrival: req.arrival,
                completion: now,
                breakdown: LatencyBreakdown {
                    min_exec_ms: running.solo_7g_ms,
                    deficiency_ms,
                    interference_ms,
                    queueing_ms,
                    cold_start_ms: cold_ms,
                },
            });
            w.outstanding = w.outstanding.saturating_sub(1);
        }
        // The timeline grows O(#strict batches); aggregate-metrics
        // runs trade it away for the flat-RSS guarantee.
        if running.batch.strict && !self.config.aggregate_metrics {
            let mean_lat_ms = running
                .batch
                .requests
                .iter()
                .map(|r| now.saturating_since(r.arrival).as_millis_f64())
                .sum::<f64>()
                / running.batch.requests.len().max(1) as f64;
            self.strict_latency_timeline.push(now, mean_lat_ms);
        }
        self.refresh_index(idx);
    }

    fn on_monitor_tick(&mut self) {
        let now = self.now;
        for idx in 0..self.workers.len() {
            // Delayed termination of surplus warm containers.
            let keep_alive = self.config.keep_alive;
            for pool in self.workers[idx].pools.values_mut() {
                pool.expire_idle(now, keep_alive);
            }
            self.predictive_prewarm_tick(idx);
            if !matches!(self.workers[idx].status, WorkerStatus::Up) {
                continue;
            }
            // Scheme reconfiguration hook.
            let desired = {
                let w = &mut self.workers[idx];
                let ctx = ReconfigCtx {
                    now,
                    gpu: &w.gpu,
                    window_be_requests: w.window_be,
                    window_strict_requests: w.window_strict,
                    be_model: w.last_be_model,
                    catalog: self.catalog,
                };
                let desired = w.scheme.reconfigure(&ctx);
                w.window_be = 0;
                w.window_strict = 0;
                desired
            };
            if let Some(geometry) = desired {
                if geometry != *self.workers[idx].gpu.geometry() && self.reconfig_slots_free() {
                    let _ = self.workers[idx].gpu.request_reconfigure(geometry);
                    self.refresh_index(idx);
                    self.maybe_begin_reconfigure(idx);
                }
            }
        }
        // Safety: drain the gateway backlog if any worker is routable.
        self.drain_backlog();
        if now + self.config.monitor_interval <= self.cutoff {
            self.queue
                .push(now + self.config.monitor_interval, Event::MonitorTick);
        }
    }

    /// EWMA smoothing factor for the per-(worker, model) batch-arrival
    /// predictor behind predictive container pre-provisioning.
    const PREWARM_EWMA_ALPHA: f64 = 0.3;

    /// Extension: EWMA-forecast next-window batch arrivals per model and
    /// boot missing containers ahead of demand. Predictions are only
    /// *updated* for models that saw traffic this window — they persist
    /// (rather than decaying to zero) while a model rotates out, so its
    /// keep-alive-expired containers are re-booted before it returns.
    fn predictive_prewarm_tick(&mut self, idx: usize) {
        let now = self.now;
        let w = &mut self.workers[idx];
        // The window map is retained (counts zeroed in place) rather
        // than `mem::take`n: taking it reallocated the BTreeMap nodes
        // every monitor interval. Zero-count entries are models from
        // earlier windows; skipping them reproduces the taken map's
        // observe sequence exactly (same models, same BTreeMap order).
        for (&model, count) in w.window_batches.iter_mut() {
            if *count > 0 {
                w.predicted_batches
                    .entry(model)
                    .or_insert_with(|| protean_sim::Ewma::new(Self::PREWARM_EWMA_ALPHA))
                    .observe(*count as f64);
                *count = 0;
            }
        }
        if !self.config.predictive_prewarm || !matches!(w.status, WorkerStatus::Up) {
            return;
        }
        let vm_epoch = w.vm_epoch;
        let predictions: Vec<(ModelId, f64)> = w
            .predicted_batches
            .iter()
            .map(|(m, e)| (*m, e.predict()))
            .collect();
        for (model, predicted) in predictions {
            let pool = w.pools.entry(model).or_default();
            let desired = predicted.ceil() as u32;
            let have = pool.total_containers();
            for _ in have..desired {
                pool.boot_proactive();
                self.queue.push(
                    now + self.config.cold_start,
                    Event::BootDone {
                        worker: idx,
                        model,
                        vm_epoch,
                    },
                );
            }
        }
    }

    fn reconfig_slots_free(&self) -> bool {
        // Up workers with a non-accepting GPU are exactly the index's
        // routable tier minus its accepting tier — O(1) instead of a
        // per-worker-per-tick fleet walk.
        let busy = if self.config.reference_dispatch {
            self.workers
                .iter()
                .filter(|w| !w.gpu.accepting() && matches!(w.status, WorkerStatus::Up))
                .count()
        } else {
            self.index.routable_len() - self.index.accepting_len()
        };
        let cap = ((self.config.max_reconfig_fraction * self.workers.len() as f64).ceil() as usize)
            .max(1);
        busy < cap
    }

    fn maybe_begin_reconfigure(&mut self, idx: usize) {
        let w = &mut self.workers[idx];
        if matches!(w.gpu.state(), protean_gpu::GpuState::Draining { .. }) && w.gpu.is_idle() {
            if let Ok(until) = w.gpu.try_begin_reconfigure(self.now) {
                let epoch = w.epoch;
                self.queue
                    .push(until, Event::ReconfigDone { worker: idx, epoch });
            }
        }
    }

    fn on_reconfig_done(&mut self, idx: usize, epoch: u64) {
        let w = &mut self.workers[idx];
        if w.epoch != epoch {
            return; // VM replaced while reconfiguring
        }
        if w.gpu.complete_reconfigure(self.now).is_ok() {
            w.epoch += 1;
            self.reconfigs += 1;
            let geometry = w.gpu.geometry().to_string();
            self.journal.record(
                self.now,
                JournalEvent::Reconfigured {
                    worker: idx,
                    geometry: geometry.clone(),
                },
            );
            self.geometry_timeline.push(GeometryChange {
                at: self.now,
                worker: idx,
                geometry,
            });
            self.refresh_index(idx);
            self.try_place(idx);
        }
    }

    // ---- spot market ----------------------------------------------------

    fn on_revocation_check(&mut self, idx: usize) {
        let w = &self.workers[idx];
        if !matches!(w.status, WorkerStatus::Up) || !matches!(w.vm, Some((_, VmTier::Spot))) {
            return;
        }
        if let Some(lead) = self.market.roll_revocation(self.now, idx) {
            let evict_at = self.now + lead;
            self.workers[idx].status = WorkerStatus::Evicting { evict_at };
            self.refresh_index(idx);
            self.journal.record(
                self.now,
                JournalEvent::EvictionNotice {
                    worker: idx,
                    evict_at,
                },
            );
            self.evictions += 1;
            self.queue
                .push(evict_at, Event::EvictionFinal { worker: idx });
            // Immediately procure a replacement (§4.5).
            self.procure_replacement(idx);
        } else {
            self.queue.push(
                self.now + self.config.revocation_check,
                Event::RevocationCheck { worker: idx },
            );
        }
    }

    fn procure_replacement(&mut self, idx: usize) {
        let granted = self.market.try_acquire_spot(self.now, idx);
        match self.config.procurement.replacement_tier(granted) {
            Some(tier) => {
                self.queue.push(
                    self.now + self.config.vm_startup,
                    Event::VmReady { worker: idx, tier },
                );
            }
            None => {
                self.queue.push(
                    self.now + self.config.procurement_retry,
                    Event::ProcurementRetry { worker: idx },
                );
            }
        }
    }

    fn on_eviction_final(&mut self, idx: usize) {
        if !matches!(self.workers[idx].status, WorkerStatus::Evicting { .. }) {
            return;
        }
        if let Some((vm, _)) = self.workers[idx].vm.take() {
            self.ledger.close(vm, self.now);
        }
        self.journal
            .record(self.now, JournalEvent::Evicted { worker: idx });
        // Everything still on this worker is re-dispatched elsewhere.
        let orphans = self.workers[idx].drain_all_batches();
        self.workers[idx].epoch += 1;
        match self.workers[idx].pending_vm.take() {
            Some((vm, tier)) => self.install_vm(idx, vm, tier),
            None => {
                self.workers[idx].status = WorkerStatus::Down;
                self.refresh_index(idx);
            }
        }
        for mut b in orphans {
            b.redispatched = true;
            self.dispatch_batch(b);
        }
    }

    fn on_vm_ready(&mut self, idx: usize, tier: VmTier) {
        match self.workers[idx].status {
            WorkerStatus::Evicting { .. } => {
                // Old VM still draining: stand by until it is reclaimed.
                let vm = self.ledger.allocate_id();
                self.ledger.open(vm, tier, self.now);
                self.workers[idx].pending_vm = Some((vm, tier));
            }
            WorkerStatus::Down => {
                let vm = self.ledger.allocate_id();
                self.ledger.open(vm, tier, self.now);
                self.install_vm(idx, vm, tier);
            }
            WorkerStatus::Up => {
                // Defensive: double procurement should not happen. The
                // grant is declined before any ledger entry is opened —
                // an open-then-close at the same instant would bill
                // nothing but pollute the ledger's closed-VM count.
            }
        }
    }

    fn install_vm(&mut self, idx: usize, vm: VmId, tier: VmTier) {
        // Any running work was already drained.
        self.workers[idx].running.clear();
        self.workers[idx].reset_runtime(self.now);
        self.workers[idx]
            .gpu
            .set_reconfig_delay(self.config.reconfig_delay);
        self.workers[idx].vm = Some((vm, tier));
        self.workers[idx].status = WorkerStatus::Up;
        self.refresh_index(idx);
        self.journal
            .record(self.now, JournalEvent::VmInstalled { worker: idx });
        if tier == VmTier::Spot {
            self.queue.push(
                self.now + self.config.revocation_check,
                Event::RevocationCheck { worker: idx },
            );
        }
        self.drain_backlog();
    }

    fn on_procurement_retry(&mut self, idx: usize) {
        if matches!(self.workers[idx].status, WorkerStatus::Down) {
            self.procure_replacement(idx);
        }
    }

    /// Safety valve: re-dispatches gateway-backlogged batches once a
    /// routable worker exists. One pass over the original pending set —
    /// a batch that lands back in the backlog during the pass stays
    /// there for the next drain (counted as churn) instead of being
    /// re-drained in a loop within the same call.
    fn drain_backlog(&mut self) {
        if self.backlog.is_empty() {
            return;
        }
        let routable = if self.config.reference_dispatch {
            self.workers.iter().any(Worker::routable)
        } else {
            self.index.any_routable()
        };
        if !routable {
            return;
        }
        let pending: Vec<Batch> = self.backlog.drain(..).collect();
        for b in pending {
            self.dispatch_batch(b);
        }
        self.stats.backlog_requeued += self.backlog.len() as u64;
    }

    // ---- teardown --------------------------------------------------------

    fn censor_remaining(&mut self) {
        let now = self.now;
        let mut leftovers: Vec<(ModelId, bool, Request)> = Vec::new();
        for w in &mut self.workers {
            for b in w.drain_all_batches() {
                for r in b.requests {
                    leftovers.push((b.model, b.strict, r));
                }
            }
        }
        for b in std::mem::take(&mut self.backlog) {
            for r in b.requests {
                leftovers.push((b.model, b.strict, r));
            }
        }
        for acc in self.accumulators.values_mut() {
            for r in acc.drain() {
                leftovers.push((r.model, r.strict, r));
            }
        }
        let measure_from = SimTime::ZERO + self.config.warmup;
        for (model, strict, r) in leftovers {
            if r.arrival < measure_from {
                continue;
            }
            self.censored += 1;
            let total_ms = now.saturating_since(r.arrival).as_millis_f64();
            self.metrics.push(RequestRecord {
                model,
                strict,
                arrival: r.arrival,
                completion: now,
                breakdown: LatencyBreakdown {
                    queueing_ms: total_ms,
                    ..LatencyBreakdown::default()
                },
            });
        }
    }

    fn into_result(mut self, scheme: String) -> SimulationResult {
        let now = self.now;
        // Close any still-open VMs for final billing.
        let open: Vec<VmId> = self
            .workers
            .iter_mut()
            .filter_map(|w| w.vm.take().map(|(id, _)| id))
            .collect();
        for vm in open {
            self.ledger.close(vm, now);
        }
        let cost = CostReport {
            total_usd: self.ledger.total_cost(now),
            spot_usd: self.ledger.cost_by_tier(VmTier::Spot, now),
            on_demand_usd: self.ledger.cost_by_tier(VmTier::OnDemand, now),
            evictions: self.evictions,
        };
        let n = self.workers.len() as f64;
        let per_gpu_compute_utilization: Vec<f64> = self
            .workers
            .iter()
            .map(|w| w.gpu.compute_utilization(now))
            .collect();
        let per_gpu_memory_utilization: Vec<f64> = self
            .workers
            .iter()
            .map(|w| w.gpu.memory_utilization(now))
            .collect();
        let compute_utilization = per_gpu_compute_utilization.iter().sum::<f64>() / n;
        let memory_utilization = per_gpu_memory_utilization.iter().sum::<f64>() / n;
        let cold_starts = self.workers.iter().map(Worker::cold_starts).sum();
        let proactive_boots = self.workers.iter().map(Worker::proactive_boots).sum();
        let stats = EngineStats {
            events_pushed: self.queue.pushed(),
            events_popped: self.queue.popped(),
            peak_heap_len: self.queue.peak_len(),
            index_updates: self.index.updates(),
            ..self.stats
        };
        SimulationResult {
            scheme,
            metrics: self.metrics,
            cost,
            compute_utilization,
            memory_utilization,
            per_gpu_compute_utilization,
            per_gpu_memory_utilization,
            cold_starts,
            reconfigs: self.reconfigs,
            censored: self.censored,
            geometry_timeline: self.geometry_timeline,
            strict_latency_timeline: self.strict_latency_timeline,
            journal: self.journal,
            stats,
            audit: self.audit.into_report(),
            proactive_boots,
            duration: self.cutoff.saturating_since(SimTime::ZERO) - self.config.drain_grace,
            workers: self.workers.len(),
        }
    }
}

impl SchemeBuilder for &dyn SchemeBuilder {
    fn build(&self, worker: usize) -> Box<dyn crate::scheme::Scheme> {
        (**self).build(worker)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn dispatch_policy(&self) -> DispatchPolicy {
        (**self).dispatch_policy()
    }
}

/// Convenience: run a scheme by reference.
impl dyn SchemeBuilder + '_ {
    /// The scheme's name as an owned string.
    pub fn name_string(&self) -> String {
        self.name().to_string()
    }
}

fn _assert_object_safe(_: &dyn SchemeBuilder) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes_for_test::AlwaysLargest;
    use protean_metrics::record::Class;
    use protean_trace::TraceShape;

    fn trace(rps: f64, secs: f64, strict_fraction: f64) -> TraceConfig {
        TraceConfig {
            shape: TraceShape::constant(rps),
            duration: SimDuration::from_secs(secs),
            strict_model: ModelId::ResNet50,
            strict_fraction,
            be_pool: vec![ModelId::MobileNet],
            be_rotation_period: SimDuration::from_secs(20.0),
            batch_arrivals: false,
        }
    }

    #[test]
    fn all_measured_requests_accounted_for() {
        let config = ClusterConfig::small_test();
        let t = trace(400.0, 30.0, 0.5);
        let result = run_simulation(&config, &AlwaysLargest, &t);
        // Completed + censored must equal the post-warmup trace total.
        let factory = RngFactory::new(config.seed);
        let measured = t
            .generate(&factory)
            .requests()
            .iter()
            .filter(|r| r.arrival >= SimTime::ZERO + config.warmup)
            .count();
        assert_eq!(result.metrics.count(Class::All), measured);
        assert!(result.metrics.count(Class::All) > 1000);
    }

    #[test]
    fn light_load_is_slo_compliant() {
        let mut config = ClusterConfig::small_test();
        // Short cold starts so the initial ramp clears well before the
        // measurement window opens.
        config.cold_start = SimDuration::from_secs(2.0);
        let t = trace(100.0, 40.0, 0.5);
        let result = run_simulation(&config, &AlwaysLargest, &t);
        let catalog = Catalog::new();
        let slo = |m: ModelId| catalog.profile(m).slo();
        let compliance = result.metrics.slo_compliance(&slo);
        assert!(compliance > 0.9, "compliance {compliance}");
        assert_eq!(result.cost.evictions, 0);
        assert!(result.cost.total_usd > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let config = ClusterConfig::small_test();
        let t = trace(300.0, 5.0, 0.5);
        let a = run_simulation(&config, &AlwaysLargest, &t);
        let b = run_simulation(&config, &AlwaysLargest, &t);
        assert_eq!(a.metrics.count(Class::All), b.metrics.count(Class::All));
        let la = a.metrics.latency_percentile_ms(Class::All, 0.99);
        let lb = b.metrics.latency_percentile_ms(Class::All, 0.99);
        assert_eq!(la, lb);
        assert_eq!(a.cost.total_usd, b.cost.total_usd);
    }

    #[test]
    fn cold_starts_happen_then_warm_containers_reused() {
        let mut config = ClusterConfig::small_test();
        // Disable pre-warming so the cold-start ramp is observable.
        config.prewarm_containers = 0;
        // Long run: the initial ramp cold-starts, after which the
        // delayed-termination keep-alive serves everything warm.
        let t = trace(400.0, 60.0, 0.5);
        let short = run_simulation(&config, &AlwaysLargest, &trace(400.0, 20.0, 0.5));
        let long = run_simulation(&config, &AlwaysLargest, &t);
        assert!(long.cold_starts > 0);
        // Tripling the trace length adds almost no cold starts.
        assert!(
            long.cold_starts < short.cold_starts + short.cold_starts / 4 + 10,
            "short {} long {}",
            short.cold_starts,
            long.cold_starts
        );
    }

    #[test]
    fn utilization_is_positive_under_load() {
        let config = ClusterConfig::small_test();
        let t = trace(600.0, 10.0, 0.5);
        let result = run_simulation(&config, &AlwaysLargest, &t);
        assert!(result.compute_utilization > 0.01);
        assert!(result.memory_utilization > 0.001);
    }

    /// Config for the scripted-eviction tests: a 3-worker hybrid spot
    /// cluster with tight check/startup intervals and the invariant
    /// auditor enabled.
    fn spot_config() -> ClusterConfig {
        let mut config = ClusterConfig::small_test();
        config.workers = 3;
        config.procurement = ProcurementPolicy::Hybrid;
        config.availability = SpotAvailability::Low;
        config.revocation_check = SimDuration::from_secs(5.0);
        config.vm_startup = SimDuration::from_secs(5.0);
        config.procurement_retry = SimDuration::from_secs(5.0);
        config.audit = true;
        config
    }

    #[test]
    fn scripted_eviction_drives_the_spot_path_deterministically() {
        // No seed scanning: the scripted oracle evicts worker 0 at its
        // t=10 s revocation check with a 20 s notice lead, every run.
        let config = spot_config();
        let mut market = crate::fault::ScriptedMarket::new().evict(
            0,
            SimTime::from_secs(10.0),
            SimDuration::from_secs(20.0),
        );
        let t = trace(200.0, 60.0, 0.5);
        let result = run_simulation_with_oracle(&config, &AlwaysLargest, &t, &mut market);
        assert_eq!(result.cost.evictions, 1);
        assert_eq!(
            market.pending_evictions(),
            0,
            "scripted eviction unconsumed"
        );
        assert!(result.audit.is_clean(), "{:?}", result.audit.violations);
        // Hybrid keeps serving: nearly everything completes.
        let total = result.metrics.count(Class::All);
        assert!(result.censored < total as u64 / 10);
    }

    #[test]
    fn hybrid_is_cheaper_than_on_demand_under_high_availability() {
        let t = trace(200.0, 30.0, 0.5);
        let mut od = ClusterConfig::small_test();
        od.procurement = ProcurementPolicy::OnDemandOnly;
        let od_result = run_simulation(&od, &AlwaysLargest, &t);
        let mut hybrid = ClusterConfig::small_test();
        hybrid.procurement = ProcurementPolicy::Hybrid;
        let hy_result = run_simulation(&hybrid, &AlwaysLargest, &t);
        assert!(
            hy_result.cost.total_usd < od_result.cost.total_usd * 0.5,
            "hybrid {} vs od {}",
            hy_result.cost.total_usd,
            od_result.cost.total_usd
        );
    }

    #[test]
    fn evicting_workers_receive_no_new_batches() {
        // Journal the run and check no batch is dispatched to a worker
        // between its eviction notice and its VM replacement.
        let mut config = spot_config();
        config.journal_capacity = 500_000;
        let mut market = crate::fault::ScriptedMarket::new()
            .evict(1, SimTime::from_secs(10.0), SimDuration::from_secs(15.0))
            .evict(2, SimTime::from_secs(20.0), SimDuration::from_secs(10.0));
        let t = trace(300.0, 40.0, 0.5);
        let result = run_simulation_with_oracle(&config, &AlwaysLargest, &t, &mut market);
        use crate::journal::JournalEvent as E;
        // Build per-worker "unavailable" intervals [notice, installed).
        let mut down_since: std::collections::HashMap<usize, SimTime> = Default::default();
        let mut violations = 0;
        for (t, e) in result.journal.entries() {
            match e {
                E::EvictionNotice { worker, .. } => {
                    down_since.insert(*worker, *t);
                }
                E::VmInstalled { worker } => {
                    down_since.remove(worker);
                }
                E::BatchDispatched { worker, .. } if down_since.contains_key(worker) => {
                    violations += 1;
                }
                _ => {}
            }
        }
        assert_eq!(result.cost.evictions, 2, "both scripted evictions fire");
        assert_eq!(violations, 0, "batches routed to evicting workers");
        assert!(result.audit.is_clean(), "{:?}", result.audit.violations);
    }

    #[test]
    fn predictive_prewarm_takes_cold_starts_off_the_critical_path() {
        // A best-effort model serves [0, 20) s, disappears for 20 s
        // (long enough for the 10 s keep-alive to reclaim its
        // containers), and returns at t = 40 s. Reactive scaling
        // re-pays the cold start on the critical path at the return;
        // the predictive extension's per-model EWMA persists through
        // the absence and re-boots the containers ahead of it.
        use protean_trace::RequestId;
        let mk = |predictive: bool| {
            let mut config = ClusterConfig::small_test();
            config.prewarm_containers = 0;
            config.warmup = SimDuration::from_secs(25.0);
            config.keep_alive = SimDuration::from_secs(10.0);
            config.predictive_prewarm = predictive;
            let mut requests = Vec::new();
            let step_ms = 5.0; // 200 rps per stream
            for i in 0..(60_000.0 / step_ms) as u64 {
                let at = SimTime::from_millis(i as f64 * step_ms);
                let secs = at.as_secs_f64();
                requests.push(Request {
                    id: RequestId(2 * i),
                    arrival: at,
                    model: ModelId::ResNet50,
                    strict: true,
                });
                if !(20.0..40.0).contains(&secs) {
                    requests.push(Request {
                        id: RequestId(2 * i + 1),
                        arrival: at,
                        model: ModelId::MobileNet,
                        strict: false,
                    });
                }
            }
            let trace = Trace::from_parts(requests, SimDuration::from_secs(60.0));
            run_simulation_on(&config, &AlwaysLargest, trace)
        };
        let reactive = mk(false);
        let predictive = mk(true);
        let critical_cold = |r: &SimulationResult| {
            r.metrics
                .records()
                .iter()
                .filter(|rec| rec.breakdown.cold_start_ms > 0.0)
                .count()
        };
        let reactive_cold = critical_cold(&reactive);
        let predictive_cold = critical_cold(&predictive);
        // The comparison must not be vacuous: the reactive baseline has
        // to actually pay critical-path cold starts, and the predictive
        // run has to actually boot ahead of demand.
        assert!(reactive_cold > 0, "reactive baseline paid no cold starts");
        assert_eq!(reactive.proactive_boots, 0);
        assert!(
            predictive.proactive_boots > 0,
            "predictive run never booted ahead of demand"
        );
        assert!(
            predictive_cold * 2 <= reactive_cold,
            "predictive {predictive_cold} vs reactive {reactive_cold}"
        );
    }

    #[test]
    fn journal_records_the_batch_lifecycle() {
        let mut config = ClusterConfig::small_test();
        config.journal_capacity = 200_000;
        let t = trace(300.0, 25.0, 0.5);
        let result = run_simulation(&config, &AlwaysLargest, &t);
        use crate::journal::JournalEvent as E;
        let sealed = result
            .journal
            .filter(|e| matches!(e, E::BatchSealed { .. }))
            .count();
        let dispatched = result
            .journal
            .filter(|e| matches!(e, E::BatchDispatched { .. }))
            .count();
        let placed = result
            .journal
            .filter(|e| matches!(e, E::BatchPlaced { .. }))
            .count();
        let finished = result
            .journal
            .filter(|e| matches!(e, E::BatchFinished { .. }))
            .count();
        assert!(sealed > 0);
        // Every sealed batch is dispatched exactly once (no evictions
        // in this run), placed, and finished (or censored at cutoff).
        assert_eq!(sealed, dispatched);
        assert!(placed <= dispatched);
        assert!(finished <= placed);
        assert!(placed >= sealed - 5, "placed {placed} vs sealed {sealed}");
        assert_eq!(result.journal.dropped(), 0);
        // Timestamps are monotone.
        let mut last = SimTime::ZERO;
        for (t, _) in result.journal.entries() {
            assert!(*t >= last);
            last = *t;
        }
    }

    #[test]
    fn journal_disabled_by_default() {
        let config = ClusterConfig::small_test();
        let t = trace(200.0, 10.0, 0.5);
        let result = run_simulation(&config, &AlwaysLargest, &t);
        assert!(result.journal.entries().is_empty());
    }

    #[test]
    fn evicted_work_is_redispatched_not_lost() {
        // Short notice leads evict two workers mid-run: their
        // queued/running batches must reappear elsewhere (total
        // accounting is exact).
        let config = spot_config();
        let mut market = crate::fault::ScriptedMarket::new()
            .evict(0, SimTime::from_secs(18.0), SimDuration::from_secs(6.0))
            .evict(2, SimTime::from_secs(25.0), SimDuration::from_secs(6.0));
        let t = trace(300.0, 45.0, 0.5);
        let result = run_simulation_with_oracle(&config, &AlwaysLargest, &t, &mut market);
        assert_eq!(result.cost.evictions, 2);
        let factory = RngFactory::new(config.seed);
        let expected = t
            .generate(&factory)
            .requests()
            .iter()
            .filter(|r| r.arrival >= SimTime::ZERO + config.warmup)
            .count();
        assert_eq!(result.metrics.count(Class::All), expected);
        assert!(result.audit.is_clean(), "{:?}", result.audit.violations);
    }

    #[test]
    fn spot_only_starts_degraded_under_low_availability() {
        // With P_rev = 0.708 most initial spot requests are denied:
        // fewer live workers, so on-demand-equivalent cost is far below
        // the full-cluster cost.
        let mut config = ClusterConfig::small_test();
        config.workers = 8;
        config.procurement = ProcurementPolicy::SpotOnly;
        config.availability = SpotAvailability::Low;
        let t = trace(300.0, 30.0, 0.5);
        let result = run_simulation(&config, &AlwaysLargest, &t);
        // 8 spot workers for the whole run would cost:
        let full = 8.0 * (t.duration + config.drain_grace).as_secs_f64() / 3600.0
            * protean_spot::PricingTable::paper_table3().worker_price(Provider::Aws, VmTier::Spot);
        assert!(
            result.cost.total_usd < full * 0.9,
            "cost {} vs full {}",
            result.cost.total_usd,
            full
        );
    }

    #[test]
    fn overload_censors_but_accounts_for_everything() {
        // One worker, absurd rate: the run must terminate at the cutoff
        // with the backlog censored, not spin forever or drop requests.
        let mut config = ClusterConfig::small_test();
        config.workers = 1;
        config.warmup = SimDuration::from_secs(2.0);
        let t = trace(8000.0, 15.0, 0.5);
        let result = run_simulation(&config, &AlwaysLargest, &t);
        assert!(result.censored > 0, "expected censoring under overload");
        let factory = RngFactory::new(config.seed);
        let expected = t
            .generate(&factory)
            .requests()
            .iter()
            .filter(|r| r.arrival >= SimTime::ZERO + config.warmup)
            .count();
        assert_eq!(result.metrics.count(Class::All), expected);
        // Censored requests carry the cutoff as completion: none exceeds
        // the horizon.
        let horizon = t.duration + config.drain_grace;
        for r in result.metrics.records() {
            assert!(r.latency() <= horizon);
        }
    }

    #[test]
    fn window_sealed_singletons_wait_the_batch_window() {
        // Request-level arrivals far below the batch size: every batch
        // seals by window expiry, so minimum latency includes the window.
        let mut config = ClusterConfig::small_test();
        config.warmup = SimDuration::from_secs(2.0);
        let t = trace(10.0, 20.0, 1.0); // strict-only trickle
        let mut t = t;
        t.be_pool.clear();
        let result = run_simulation(&config, &AlwaysLargest, &t);
        // At 10 rps nearly every batch is a singleton, so the typical
        // request waits out the full batch window before sealing.
        let p50 = result
            .metrics
            .latency_percentile_ms(Class::Strict, 0.5)
            .expect("some requests completed");
        assert!(
            p50 >= config.batch_window.as_millis_f64(),
            "P50 {p50} ms below the batch window"
        );
    }

    #[test]
    fn warmup_excludes_early_arrivals_only() {
        let config = ClusterConfig::small_test();
        let t = trace(200.0, 30.0, 0.5);
        let result = run_simulation(&config, &AlwaysLargest, &t);
        let measure_from = SimTime::ZERO + config.warmup;
        for r in result.metrics.records() {
            assert!(r.arrival >= measure_from, "pre-warmup request measured");
        }
    }
}
