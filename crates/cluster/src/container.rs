//! Autoscaling container pools (paper §4.2).
//!
//! One pool per `(worker, model)`. The reactive scale-up policy boots
//! one container per sealed batch when no warm container is free; the
//! delayed-termination policy keeps surplus warm containers alive for a
//! keep-alive period (~10 min) before reclaiming them, which the paper
//! reports eliminates up to 98% of cold starts versus immediate
//! scale-down.

use protean_sim::{SimDuration, SimTime};

/// The container pool for one model on one worker.
#[derive(Debug, Clone, Default)]
pub struct Pool {
    /// Idle warm containers, tagged with when they became idle.
    warm: Vec<SimTime>,
    /// Containers currently executing a batch.
    busy: u32,
    /// Containers booting (cold starts in flight).
    booting: u32,
    /// Total cold starts triggered (metric).
    cold_starts: u64,
    /// Proactive boots triggered by predictive pre-provisioning
    /// (off the critical path; not counted in `cold_starts`).
    proactive_boots: u64,
    /// Containers provisioned warm via [`Pool::prewarm`] (metric; lets
    /// the audit layer balance the container-conservation equation).
    prewarmed: u64,
    /// Containers reclaimed by delayed termination (metric).
    reclaimed: u64,
}

/// Outcome of asking the pool for a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Acquire {
    /// A warm container was allocated; the batch can be scheduled now.
    Warm,
    /// No warm container: a cold start was triggered; the caller gets a
    /// boot-done callback after the cold-start delay.
    ColdStarted,
}

impl Pool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Pool::default()
    }

    /// Provisions `count` warm containers at `now` without a cold
    /// start, modelling the steady state of a long-running deployment
    /// whose keep-alive (§4.2) retains containers across the
    /// best-effort model rotation.
    pub fn prewarm(&mut self, now: SimTime, count: usize) {
        debug_assert!(self.warm.last().is_none_or(|&t| t <= now));
        for _ in 0..count {
            self.warm.push(now);
        }
        self.prewarmed += count as u64;
    }

    /// Requests a container for a sealed batch at `now` (reactive
    /// scale-up: one container per batch).
    pub fn acquire(&mut self, _now: SimTime) -> Acquire {
        if self.warm.pop().is_some() {
            self.busy += 1;
            Acquire::Warm
        } else {
            self.booting += 1;
            self.cold_starts += 1;
            Acquire::ColdStarted
        }
    }

    /// Starts booting a container *ahead of demand* (predictive
    /// autoscaling): the boot is not on any batch's critical path. The
    /// caller schedules the same boot-done callback as for a reactive
    /// cold start.
    pub fn boot_proactive(&mut self) {
        self.booting += 1;
        self.proactive_boots += 1;
    }

    /// Containers in any state (warm + busy + booting).
    pub fn total_containers(&self) -> u32 {
        self.warm.len() as u32 + self.busy + self.booting
    }

    /// Proactive boots triggered so far.
    pub fn proactive_boots(&self) -> u64 {
        self.proactive_boots
    }

    /// A cold start finished. Returns `true` if the container should be
    /// handed to a waiting batch (caller-tracked), in which case it is
    /// accounted busy; otherwise it parks warm.
    pub fn boot_done(&mut self, now: SimTime, batch_waiting: bool) {
        debug_assert!(self.booting > 0, "boot_done without boot in flight");
        self.booting = self.booting.saturating_sub(1);
        if batch_waiting {
            self.busy += 1;
        } else {
            debug_assert!(self.warm.last().is_none_or(|&t| t <= now));
            self.warm.push(now);
        }
    }

    /// A batch finished. If another batch is waiting, the container is
    /// re-used immediately (`reuse = true`); otherwise it parks warm.
    pub fn release(&mut self, now: SimTime, reuse: bool) {
        debug_assert!(self.busy > 0, "release without busy container");
        self.busy = self.busy.saturating_sub(1);
        if reuse {
            self.busy += 1;
        } else {
            debug_assert!(self.warm.last().is_none_or(|&t| t <= now));
            self.warm.push(now);
        }
    }

    /// Delayed termination: reclaims warm containers idle longer than
    /// `keep_alive`. Returns how many were reclaimed.
    ///
    /// `warm` is pushed at nondecreasing sim times (the engine's clock
    /// only moves forward) and popped from the back, so it stays sorted
    /// by idle-since: expired entries form a prefix, and a fresh front
    /// entry means nothing can expire — the monitor tick's per-pool
    /// sweep is O(1) in the common no-op case instead of a full walk.
    pub fn expire_idle(&mut self, now: SimTime, keep_alive: SimDuration) -> usize {
        match self.warm.first() {
            Some(&oldest) if now.saturating_since(oldest) >= keep_alive => {}
            _ => return 0,
        }
        let expired = self
            .warm
            .partition_point(|&idle_since| now.saturating_since(idle_since) >= keep_alive);
        self.warm.drain(..expired);
        self.reclaimed += expired as u64;
        expired
    }

    /// Idle warm containers.
    pub fn warm_count(&self) -> usize {
        self.warm.len()
    }

    /// Containers executing batches.
    pub fn busy_count(&self) -> u32 {
        self.busy
    }

    /// Cold starts in flight.
    pub fn booting_count(&self) -> u32 {
        self.booting
    }

    /// Cold starts triggered so far.
    pub fn cold_starts(&self) -> u64 {
        self.cold_starts
    }

    /// Containers provisioned warm via [`Pool::prewarm`] so far.
    pub fn prewarmed(&self) -> u64 {
        self.prewarmed
    }

    /// Warm containers reclaimed by delayed termination so far.
    pub fn reclaimed(&self) -> u64 {
        self.reclaimed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_start_then_warm_reuse() {
        let mut p = Pool::new();
        assert_eq!(p.acquire(SimTime::ZERO), Acquire::ColdStarted);
        assert_eq!(p.cold_starts(), 1);
        p.boot_done(SimTime::from_secs(5.0), true);
        assert_eq!(p.busy_count(), 1);
        // Release with nobody waiting: container parks warm.
        p.release(SimTime::from_secs(6.0), false);
        assert_eq!(p.warm_count(), 1);
        // Next acquire is warm — no new cold start.
        assert_eq!(p.acquire(SimTime::from_secs(7.0)), Acquire::Warm);
        assert_eq!(p.cold_starts(), 1);
    }

    #[test]
    fn boot_done_without_waiter_parks_warm() {
        let mut p = Pool::new();
        p.acquire(SimTime::ZERO);
        p.boot_done(SimTime::from_secs(5.0), false);
        assert_eq!(p.warm_count(), 1);
        assert_eq!(p.busy_count(), 0);
        assert_eq!(p.booting_count(), 0);
    }

    #[test]
    fn release_with_reuse_keeps_busy() {
        let mut p = Pool::new();
        p.acquire(SimTime::ZERO);
        p.boot_done(SimTime::from_secs(1.0), true);
        p.release(SimTime::from_secs(2.0), true);
        assert_eq!(p.busy_count(), 1);
        assert_eq!(p.warm_count(), 0);
    }

    #[test]
    fn proactive_boots_do_not_count_as_cold_starts() {
        let mut p = Pool::new();
        p.boot_proactive();
        assert_eq!(p.cold_starts(), 0);
        assert_eq!(p.proactive_boots(), 1);
        assert_eq!(p.total_containers(), 1);
        p.boot_done(SimTime::from_secs(5.0), false);
        assert_eq!(p.warm_count(), 1);
        // The pre-booted container serves the next batch warm.
        assert_eq!(p.acquire(SimTime::from_secs(6.0)), Acquire::Warm);
        assert_eq!(p.cold_starts(), 0);
    }

    #[test]
    fn delayed_termination_reclaims_only_stale() {
        let mut p = Pool::new();
        p.acquire(SimTime::ZERO);
        p.acquire(SimTime::ZERO);
        p.boot_done(SimTime::from_secs(1.0), false); // warm since t=1
        p.boot_done(SimTime::from_secs(105.0), false); // warm since t=105
        let keep = SimDuration::from_secs(600.0);
        assert_eq!(p.expire_idle(SimTime::from_secs(500.0), keep), 0);
        assert_eq!(p.expire_idle(SimTime::from_secs(650.0), keep), 1);
        assert_eq!(p.warm_count(), 1);
        assert_eq!(p.reclaimed(), 1);
    }
}
