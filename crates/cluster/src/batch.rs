//! Request batches and the per-`(model, strictness)` batch accumulators.

use protean_models::ModelId;
use protean_sim::SimTime;
use protean_trace::Request;

/// Identifier of a batch; doubles as the GPU-level `JobId` payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BatchId(pub u64);

/// A sealed batch of same-model, same-strictness requests moving through
/// the worker pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// Unique id (also used as the GPU job id).
    pub id: BatchId,
    /// The model every request in the batch invokes.
    pub model: ModelId,
    /// Strictness class of the batch.
    pub strict: bool,
    /// The member requests (id and arrival time are all that is needed
    /// for metrics).
    pub requests: Vec<Request>,
    /// When the batch was sealed.
    pub sealed_at: SimTime,
    /// Cold-start wait on this batch's critical path, ms (set when the
    /// batch had to wait for a container boot).
    pub cold_wait_ms: f64,
    /// `true` once the batch has been orphaned by an eviction and sent
    /// through the dispatcher again. Re-dispatches must not re-count the
    /// batch in per-window load statistics.
    pub redispatched: bool,
}

impl Batch {
    /// Number of member requests.
    pub fn size(&self) -> u32 {
        self.requests.len() as u32
    }
}

/// Accumulates requests for one `(model, strict)` key until the batch is
/// full or its window expires.
#[derive(Debug, Clone, Default)]
pub struct Accumulator {
    pending: Vec<Request>,
    /// Bumped every time a batch is sealed; stale window-expiry events
    /// carry the old value and are ignored.
    pub seal_seq: u64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Accumulator::default()
    }

    /// Adds a request; returns `true` if this was the first pending
    /// request (so the caller should arm a window-expiry timer).
    pub fn push(&mut self, request: Request) -> bool {
        self.pending.push(request);
        self.pending.len() == 1
    }

    /// Number of pending requests.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// `true` if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Seals and returns the pending requests (empties the accumulator
    /// and bumps `seal_seq`).
    pub fn seal(&mut self) -> Vec<Request> {
        self.seal_seq += 1;
        std::mem::take(&mut self.pending)
    }

    /// Drains pending requests without sealing semantics (used when a
    /// worker is evicted and its requests are re-dispatched).
    pub fn drain(&mut self) -> Vec<Request> {
        self.seal_seq += 1;
        std::mem::take(&mut self.pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protean_trace::RequestId;

    fn req(id: u64) -> Request {
        Request {
            id: RequestId(id),
            arrival: SimTime::from_millis(id as f64),
            model: ModelId::ResNet50,
            strict: true,
        }
    }

    #[test]
    fn first_push_signals_timer() {
        let mut a = Accumulator::new();
        assert!(a.push(req(0)));
        assert!(!a.push(req(1)));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn seal_empties_and_bumps_seq() {
        let mut a = Accumulator::new();
        a.push(req(0));
        a.push(req(1));
        let s0 = a.seal_seq;
        let sealed = a.seal();
        assert_eq!(sealed.len(), 2);
        assert!(a.is_empty());
        assert_eq!(a.seal_seq, s0 + 1);
        // Second seal returns empty but still bumps.
        assert!(a.seal().is_empty());
        assert_eq!(a.seal_seq, s0 + 2);
    }

    #[test]
    fn batch_size_counts_requests() {
        let b = Batch {
            id: BatchId(1),
            model: ModelId::MobileNet,
            strict: false,
            requests: vec![req(0), req(1), req(2)],
            sealed_at: SimTime::ZERO,
            cold_wait_ms: 0.0,
            redispatched: false,
        };
        assert_eq!(b.size(), 3);
    }
}
