//! Per-worker-node state: VM binding, GPU, batch accumulators,
//! container pools and the (optionally strict-priority) scheduler queue.

use std::collections::{BTreeMap, HashMap, VecDeque};

use protean_gpu::Gpu;
use protean_models::{Catalog, ModelId};
use protean_sim::SimTime;
use protean_spot::{VmId, VmTier};

use crate::batch::{Batch, BatchId};
use crate::container::Pool;
use crate::scheme::Scheme;

/// Availability of a worker slot with respect to its backing VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerStatus {
    /// VM live, serving traffic.
    Up,
    /// Eviction notice received; finishing existing work, no new
    /// requests routed here. Reclaimed at `evict_at`.
    Evicting {
        /// When the provider reclaims the VM.
        evict_at: SimTime,
    },
    /// No backing VM (evicted and not yet replaced).
    Down,
}

/// A batch currently executing on a GPU slice, with everything needed
/// for the latency breakdown at completion.
#[derive(Debug, Clone)]
pub struct RunningBatch {
    /// The batch itself.
    pub batch: Batch,
    /// Slice index it runs on.
    pub slice: usize,
    /// When execution began (slice admission).
    pub exec_start: SimTime,
    /// Solo time on that slice (after any scheme scaling), ms.
    pub solo_on_slice_ms: f64,
    /// Solo time on the full GPU, ms ("min possible time").
    pub solo_7g_ms: f64,
}

/// Scheduler queue holding batches that have a container and await a
/// slice. When `reorders` is set, strict batches are always served
/// before best-effort ones (§4.1); within a class, order is FIFO.
#[derive(Debug, Default)]
pub struct SchedQueue {
    reorders: bool,
    strict: VecDeque<(u64, Batch)>,
    best_effort: VecDeque<(u64, Batch)>,
    seq: u64,
    /// Running total of queued best-effort batch memory, GB
    /// (Algorithm 1's `BE_mem` input).
    be_mem_gb: f64,
}

impl SchedQueue {
    /// Creates an empty queue with the given reordering policy.
    pub fn new(reorders: bool) -> Self {
        SchedQueue {
            reorders,
            ..SchedQueue::default()
        }
    }

    /// Enqueues a batch; `mem_gb` is its per-batch memory footprint.
    pub fn push(&mut self, batch: Batch, mem_gb: f64) {
        let seq = self.seq;
        self.seq += 1;
        if batch.strict {
            self.strict.push_back((seq, batch));
        } else {
            self.be_mem_gb += mem_gb;
            self.best_effort.push_back((seq, batch));
        }
    }

    /// The batches a placement pass may inspect, in service order. In
    /// reordering mode this is up to `depth` strict batches followed by
    /// up to `depth` best-effort batches — strict priority governs
    /// *service order*, but a blocked strict head must not prevent
    /// best-effort batches from using slices strict batches cannot take
    /// anyway.
    pub fn candidates(&self, depth: usize) -> Vec<&Batch> {
        let mut out: Vec<&Batch> = Vec::with_capacity(depth.min(self.len()));
        self.for_each_candidate(depth, |b| out.push(b));
        out
    }

    /// Visits the batches [`SchedQueue::candidates`] would return, in the
    /// same order, without allocating — the scheduler's placement loop
    /// calls this on every pass.
    pub fn for_each_candidate<'a>(&'a self, depth: usize, mut f: impl FnMut(&'a Batch)) {
        if self.reorders {
            for (_, b) in self.strict.iter().take(depth) {
                f(b);
            }
            for (_, b) in self.best_effort.iter().take(depth) {
                f(b);
            }
        } else {
            // FIFO across both classes: merge by sequence number.
            let mut visited = 0;
            let mut si = self.strict.iter().peekable();
            let mut bi = self.best_effort.iter().peekable();
            while visited < depth {
                match (si.peek(), bi.peek()) {
                    (Some((ss, sb)), Some((bs, bb))) => {
                        if ss < bs {
                            f(sb);
                            si.next();
                        } else {
                            f(bb);
                            bi.next();
                        }
                    }
                    (Some((_, sb)), None) => {
                        f(sb);
                        si.next();
                    }
                    (None, Some((_, bb))) => {
                        f(bb);
                        bi.next();
                    }
                    (None, None) => break,
                }
                visited += 1;
            }
        }
    }

    /// Removes the batch with `id`; `mem_gb` must match the value given
    /// at push time. Returns the batch if present.
    pub fn remove(&mut self, id: BatchId, mem_gb: f64) -> Option<Batch> {
        if let Some(pos) = self.strict.iter().position(|(_, b)| b.id == id) {
            return self.strict.remove(pos).map(|(_, b)| b);
        }
        if let Some(pos) = self.best_effort.iter().position(|(_, b)| b.id == id) {
            let removed = self.best_effort.remove(pos).map(|(_, b)| b);
            if removed.is_some() {
                self.be_mem_gb = (self.be_mem_gb - mem_gb).max(0.0);
            }
            return removed;
        }
        None
    }

    /// Total queued batches.
    pub fn len(&self) -> usize {
        self.strict.len() + self.best_effort.len()
    }

    /// `true` if no batches are queued.
    pub fn is_empty(&self) -> bool {
        self.strict.is_empty() && self.best_effort.is_empty()
    }

    /// Memory of queued best-effort batches, GB.
    pub fn be_mem_gb(&self) -> f64 {
        self.be_mem_gb
    }

    /// Drains every queued batch (eviction path).
    pub fn drain_all(&mut self) -> Vec<Batch> {
        self.be_mem_gb = 0.0;
        self.strict
            .drain(..)
            .chain(self.best_effort.drain(..))
            .map(|(_, b)| b)
            .collect()
    }

    /// Iterates every queued batch (both classes, no particular order);
    /// used by the audit layer's request-conservation sweep.
    pub fn iter_batches(&self) -> impl Iterator<Item = &Batch> {
        self.strict
            .iter()
            .chain(self.best_effort.iter())
            .map(|(_, b)| b)
    }
}

/// One worker node: a VM slot with one GPU and the serving pipeline.
pub struct Worker {
    /// Slot index in the cluster.
    pub idx: usize,
    /// The scheme instance making this worker's scheduling decisions.
    pub scheme: Box<dyn Scheme>,
    /// VM lifecycle status.
    pub status: WorkerStatus,
    /// Backing VM (id, tier) when up or evicting.
    pub vm: Option<(VmId, VmTier)>,
    /// Replacement VM that became ready while the old one drains.
    pub pending_vm: Option<(VmId, VmTier)>,
    /// The worker's GPU.
    pub gpu: Gpu,
    /// Bumped on every GPU rebuild (reconfiguration or VM replacement);
    /// stale completion events carry an older epoch.
    pub epoch: u64,
    /// Bumped only on VM replacement, never on reconfiguration.
    /// Container boots survive a MIG reconfig (containers live in host
    /// memory) but not a VM replacement, so `BootDone` events validate
    /// against this counter rather than `epoch`.
    pub vm_epoch: u64,
    /// Sealed batches waiting for a container, per model.
    pub wait_container: HashMap<ModelId, VecDeque<Batch>>,
    /// Container pools per model.
    pub pools: HashMap<ModelId, Pool>,
    /// Batches with containers awaiting slice placement.
    pub sched_queue: SchedQueue,
    /// Batches executing on the GPU.
    pub running: HashMap<BatchId, RunningBatch>,
    /// Requests assigned to this worker and not yet completed (load
    /// metric for the dispatcher).
    pub outstanding: u64,
    /// Batches dispatched here per model in the current monitor window
    /// (drives predictive container pre-provisioning). `BTreeMap` so the
    /// prewarm tick visits models in a deterministic order. The map is
    /// retained across monitor ticks with counts zeroed in place (never
    /// `mem::take`n), so its nodes are allocated once per model ever
    /// routed here rather than once per model per window; entries with
    /// a zero count are models idle since the last window.
    pub window_batches: BTreeMap<ModelId, u64>,
    /// EWMA of per-window batch arrivals per model.
    pub predicted_batches: BTreeMap<ModelId, protean_sim::Ewma>,
    /// Best-effort requests seen in the current monitor window.
    pub window_be: u64,
    /// Strict requests seen in the current monitor window.
    pub window_strict: u64,
    /// Most recent best-effort model routed here.
    pub last_be_model: Option<ModelId>,
}

impl std::fmt::Debug for Worker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Worker")
            .field("idx", &self.idx)
            .field("status", &self.status)
            .field("outstanding", &self.outstanding)
            .field("queued", &self.sched_queue.len())
            .field("running", &self.running.len())
            .finish()
    }
}

impl Worker {
    /// Creates an up worker with a fresh GPU in the scheme's initial
    /// geometry.
    pub fn new(idx: usize, scheme: Box<dyn Scheme>, now: SimTime) -> Self {
        let gpu = Gpu::new(
            protean_gpu::GpuId(idx as u32),
            scheme.initial_geometry(),
            scheme.sharing_mode(),
            now,
        );
        let reorders = scheme.reorders();
        Worker {
            idx,
            scheme,
            status: WorkerStatus::Up,
            vm: None,
            pending_vm: None,
            gpu,
            epoch: 0,
            vm_epoch: 0,
            wait_container: HashMap::new(),
            pools: HashMap::new(),
            sched_queue: SchedQueue::new(reorders),
            running: HashMap::new(),
            outstanding: 0,
            window_batches: BTreeMap::new(),
            predicted_batches: BTreeMap::new(),
            window_be: 0,
            window_strict: 0,
            last_be_model: None,
        }
    }

    /// `true` if the dispatcher may route new requests here.
    pub fn routable(&self) -> bool {
        matches!(self.status, WorkerStatus::Up)
    }

    /// The `(routable, gpu accepting, outstanding)` triple that fully
    /// determines this worker's dispatch eligibility and rank — the
    /// state cached by [`crate::dispatch::DispatchIndex`].
    pub fn dispatch_state(&self) -> (bool, bool, u64) {
        (self.routable(), self.gpu.accepting(), self.outstanding)
    }

    /// Re-validates a popped `JobFinish` event: the worker's GPU must
    /// not have been rebuilt since the event was armed (`epoch`), the
    /// slice must still exist, and its membership must be unchanged
    /// (`generation`). The engine keeps one live finish event per slice;
    /// anything failing this check is stale and gets dropped.
    pub fn finish_event_live(&self, slice: usize, generation: u64, epoch: u64) -> bool {
        self.epoch == epoch
            && slice < self.gpu.slices().len()
            && self.gpu.slice(slice).generation() == generation
    }

    /// Rebuilds the GPU (VM replacement): fresh geometry, empty pools.
    /// Bumps both epochs — in-flight `JobFinish` *and* `BootDone` events
    /// from the old VM are stale after this.
    pub fn reset_runtime(&mut self, now: SimTime) {
        self.gpu = Gpu::new(
            protean_gpu::GpuId(self.idx as u32),
            self.scheme.initial_geometry(),
            self.scheme.sharing_mode(),
            now,
        );
        self.epoch += 1;
        self.vm_epoch += 1;
        self.pools.clear();
        self.wait_container.clear();
        debug_assert!(self.running.is_empty(), "reset with running batches");
    }

    /// Pulls every batch held anywhere in this worker's pipeline
    /// (container waits, scheduler queue, running batches) for
    /// re-dispatch after an eviction.
    pub fn drain_all_batches(&mut self) -> Vec<Batch> {
        let mut out = Vec::new();
        for q in self.wait_container.values_mut() {
            out.extend(q.drain(..));
        }
        out.extend(self.sched_queue.drain_all());
        out.extend(self.running.drain().map(|(_, rb)| rb.batch));
        self.outstanding = 0;
        out
    }

    /// Total cold starts across this worker's pools.
    pub fn cold_starts(&self) -> u64 {
        self.pools.values().map(Pool::cold_starts).sum()
    }

    /// Total proactive (predictive) boots across this worker's pools.
    pub fn proactive_boots(&self) -> u64 {
        self.pools.values().map(Pool::proactive_boots).sum()
    }

    /// Sum of best-effort memory waiting in the scheduler queue, for
    /// Algorithm 1.
    pub fn queued_be_mem_gb(&self, _catalog: &Catalog) -> f64 {
        self.sched_queue.be_mem_gb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes_for_test::AlwaysLargest;
    use protean_trace::Request;
    use protean_trace::RequestId;

    fn batch(id: u64, strict: bool) -> Batch {
        Batch {
            id: BatchId(id),
            model: ModelId::ResNet50,
            strict,
            requests: vec![Request {
                id: RequestId(id),
                arrival: SimTime::ZERO,
                model: ModelId::ResNet50,
                strict,
            }],
            sealed_at: SimTime::ZERO,
            cold_wait_ms: 0.0,
            redispatched: false,
        }
    }

    #[test]
    fn reordering_queue_serves_strict_first() {
        let mut q = SchedQueue::new(true);
        q.push(batch(1, false), 4.0);
        q.push(batch(2, true), 0.0);
        q.push(batch(3, false), 4.0);
        q.push(batch(4, true), 0.0);
        let order: Vec<u64> = q.candidates(10).iter().map(|b| b.id.0).collect();
        assert_eq!(order, vec![2, 4, 1, 3]);
        assert_eq!(q.be_mem_gb(), 8.0);
    }

    #[test]
    fn fifo_queue_preserves_arrival_order() {
        let mut q = SchedQueue::new(false);
        q.push(batch(1, false), 4.0);
        q.push(batch(2, true), 0.0);
        q.push(batch(3, false), 4.0);
        let order: Vec<u64> = q.candidates(10).iter().map(|b| b.id.0).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn remove_updates_be_memory() {
        let mut q = SchedQueue::new(true);
        q.push(batch(1, false), 4.0);
        q.push(batch(2, true), 0.0);
        assert!(q.remove(BatchId(1), 4.0).is_some());
        assert_eq!(q.be_mem_gb(), 0.0);
        assert!(q.remove(BatchId(99), 4.0).is_none());
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn candidates_respects_depth_per_class() {
        let mut q = SchedQueue::new(true);
        for i in 0..10 {
            q.push(batch(i, i % 2 == 0), 1.0);
        }
        // Reordering mode inspects up to `depth` strict plus up to
        // `depth` best-effort batches, strict first.
        let c = q.candidates(3);
        assert_eq!(c.len(), 6);
        assert!(c[..3].iter().all(|b| b.strict));
        assert!(c[3..].iter().all(|b| !b.strict));
        // FIFO mode respects the depth strictly.
        let mut f = SchedQueue::new(false);
        for i in 0..10 {
            f.push(batch(i, i % 2 == 0), 1.0);
        }
        assert_eq!(f.candidates(3).len(), 3);
    }

    #[test]
    fn drain_all_batches_empties_worker() {
        let mut w = Worker::new(0, Box::new(AlwaysLargest), SimTime::ZERO);
        w.sched_queue.push(batch(1, true), 0.0);
        w.sched_queue.push(batch(2, false), 4.0);
        w.outstanding = 2;
        let reqs = w.drain_all_batches();
        assert_eq!(reqs.len(), 2);
        assert_eq!(w.outstanding, 0);
        assert!(w.sched_queue.is_empty());
    }

    proptest::proptest! {
        /// Push/remove conservation: whatever order batches enter and
        /// leave, the queue's BE-memory counter matches the live BE
        /// batches and `candidates` covers the whole queue at full depth.
        #[test]
        fn prop_queue_conserves_batches_and_memory(
            ops in proptest::collection::vec((proptest::bool::ANY, 0.5f64..8.0), 1..60),
            reorders in proptest::bool::ANY,
        ) {
            let mut q = SchedQueue::new(reorders);
            let mut live: Vec<(u64, bool, f64)> = Vec::new();
            for (next_id, (strict, mem)) in ops.into_iter().enumerate() {
                let next_id = next_id as u64;
                // Alternate pushes with occasional removals.
                if next_id % 3 == 2 && !live.is_empty() {
                    let (id, _, m) = live.remove(0);
                    proptest::prop_assert!(q.remove(BatchId(id), m).is_some());
                } else {
                    q.push(batch(next_id, strict), mem);
                    live.push((next_id, strict, mem));
                }
                let expected_be: f64 = live
                    .iter()
                    .filter(|(_, s, _)| !s)
                    .map(|(_, _, m)| m)
                    .sum();
                proptest::prop_assert!((q.be_mem_gb() - expected_be).abs() < 1e-9,
                    "be mem {} expected {}", q.be_mem_gb(), expected_be);
                proptest::prop_assert_eq!(q.len(), live.len());
                proptest::prop_assert_eq!(q.candidates(live.len().max(1)).len(), live.len());
            }
            // Drain and verify every live batch is still present.
            for (id, _, m) in live {
                proptest::prop_assert!(q.remove(BatchId(id), m).is_some());
            }
            proptest::prop_assert!(q.is_empty());
        }
    }

    #[test]
    fn reset_runtime_bumps_epoch_and_rebuilds_gpu() {
        let mut w = Worker::new(0, Box::new(AlwaysLargest), SimTime::ZERO);
        let e0 = w.epoch;
        w.reset_runtime(SimTime::from_secs(1.0));
        assert_eq!(w.epoch, e0 + 1);
        assert!(w.gpu.is_idle());
        assert!(w.routable());
    }
}
