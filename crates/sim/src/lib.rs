//! Discrete-event simulation (DES) engine for the PROTEAN reproduction.
//!
//! This crate provides the deterministic foundations every other crate in
//! the workspace builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — a microsecond-resolution simulated
//!   clock with saturating arithmetic and convenient conversions.
//! * [`EventQueue`] — a stable priority queue of timestamped events with
//!   deterministic FIFO tie-breaking for events scheduled at the same
//!   instant.
//! * [`rng`] — seeded, labelled random-number streams so that independent
//!   stochastic processes (arrivals, evictions, model rotation, …) can be
//!   re-run bit-for-bit identically and varied independently.
//! * [`Ewma`] — the exponentially weighted moving average used wherever
//!   a forecast is smoothed (GPU reconfiguration, predictive container
//!   pre-provisioning).
//! * [`TimeSeries`] / [`Accumulator`] — small utilities for integrating
//!   quantities over simulated time (GPU busy time, memory occupancy,
//!   dollar cost).
//!
//! # Example
//!
//! ```
//! use protean_sim::{EventQueue, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Tick, Tock }
//!
//! let mut q = EventQueue::new();
//! q.push(SimTime::from_secs(2.0), Ev::Tock);
//! q.push(SimTime::from_secs(1.0), Ev::Tick);
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(t, SimTime::from_secs(1.0));
//! assert_eq!(ev, Ev::Tick);
//! ```

pub mod ewma;
pub mod queue;
pub mod rng;
pub mod series;
pub mod time;

pub use ewma::Ewma;
pub use queue::{EventKey, EventQueue, KeyedEventQueue};
pub use rng::{RngFactory, SimRng};
pub use series::{Accumulator, TimeSeries};
pub use time::{SimDuration, SimTime};
