//! Seeded, labelled random-number streams.
//!
//! A simulation has many independent stochastic processes: request
//! arrivals, best-effort model rotation, spot-market evictions, … Giving
//! each process its own stream — derived deterministically from a root
//! seed and a label — means changing how many random numbers one process
//! draws does not perturb any other process, which keeps experiments
//! comparable across schemes.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Derives independent [`SimRng`] streams from a root seed.
///
/// # Example
///
/// ```
/// use protean_sim::RngFactory;
/// let factory = RngFactory::new(42);
/// let mut arrivals = factory.stream("arrivals");
/// let mut evictions = factory.stream("evictions");
/// // Independent streams: identical labels reproduce identical sequences.
/// let a1: f64 = arrivals.uniform();
/// let mut arrivals2 = factory.stream("arrivals");
/// assert_eq!(a1, arrivals2.uniform());
/// let e1: f64 = evictions.uniform();
/// assert_ne!(a1, e1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RngFactory {
    seed: u64,
}

impl RngFactory {
    /// Creates a factory rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        RngFactory { seed }
    }

    /// The root seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Creates the stream identified by `label`. The same `(seed, label)`
    /// pair always yields the same sequence.
    pub fn stream(&self, label: &str) -> SimRng {
        SimRng::from_seed_and_label(self.seed, label)
    }

    /// Creates the stream identified by `label` and an index, for families
    /// of streams such as one per worker node.
    pub fn indexed_stream(&self, label: &str, index: u64) -> SimRng {
        let combined =
            splitmix64(fnv1a(label.as_bytes()) ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        SimRng {
            inner: SmallRng::seed_from_u64(splitmix64(self.seed ^ combined)),
        }
    }
}

/// A deterministic random stream with convenience samplers used across
/// the simulation.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    fn from_seed_and_label(seed: u64, label: &str) -> Self {
        let mixed = splitmix64(seed ^ fnv1a(label.as_bytes()));
        SimRng {
            inner: SmallRng::seed_from_u64(mixed),
        }
    }

    /// A uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + (hi - lo) * self.uniform()
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample from empty range");
        self.inner.gen_range(0..n)
    }

    /// An exponentially distributed sample with the given `rate`
    /// (mean `1/rate`), used for Poisson inter-arrival times.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive, got {rate}");
        let u = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        -u.ln() / rate
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// A standard-normal sample (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn streams_are_reproducible() {
        let f = RngFactory::new(7);
        let a: Vec<f64> = {
            let mut s = f.stream("x");
            (0..16).map(|_| s.uniform()).collect()
        };
        let b: Vec<f64> = {
            let mut s = f.stream("x");
            (0..16).map(|_| s.uniform()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn streams_with_different_labels_differ() {
        let f = RngFactory::new(7);
        let a: Vec<f64> = {
            let mut s = f.stream("x");
            (0..4).map(|_| s.uniform()).collect()
        };
        let b: Vec<f64> = {
            let mut s = f.stream("y");
            (0..4).map(|_| s.uniform()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_streams_differ() {
        let f = RngFactory::new(7);
        let mut a = f.indexed_stream("worker", 0);
        let mut b = f.indexed_stream("worker", 1);
        assert_ne!(a.uniform(), b.uniform());
    }

    #[test]
    fn exponential_has_expected_mean() {
        let f = RngFactory::new(99);
        let mut s = f.stream("exp");
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| s.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn chance_extremes() {
        let f = RngFactory::new(3);
        let mut s = f.stream("c");
        assert!(!s.chance(0.0));
        assert!(s.chance(1.0));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(s.chance(2.0));
        assert!(!s.chance(-1.0));
    }

    #[test]
    fn standard_normal_moments() {
        let f = RngFactory::new(11);
        let mut s = f.stream("n");
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| s.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean was {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance was {var}");
    }

    proptest! {
        #[test]
        fn prop_uniform_range_in_bounds(lo in -100.0f64..100.0, width in 0.001f64..50.0, seed in 0u64..1000) {
            let mut s = RngFactory::new(seed).stream("ur");
            let hi = lo + width;
            for _ in 0..32 {
                let x = s.uniform_range(lo, hi);
                prop_assert!(x >= lo && x < hi);
            }
        }

        #[test]
        fn prop_index_in_bounds(n in 1usize..1000, seed in 0u64..1000) {
            let mut s = RngFactory::new(seed).stream("idx");
            for _ in 0..32 {
                prop_assert!(s.index(n) < n);
            }
        }
    }
}
