//! Simulated clock types.
//!
//! [`SimTime`] is an absolute instant and [`SimDuration`] a span, both with
//! microsecond resolution backed by `u64`. Microseconds give ~584k years of
//! range, far beyond any simulated horizon, while staying cheap to compare
//! and hash. All arithmetic saturates rather than wrapping so that clock
//! math can never silently travel back in time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulated clock, in microseconds since the
/// start of the simulation.
///
/// # Example
///
/// ```
/// use protean_sim::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_millis(1500.0);
/// assert_eq!(t.as_secs_f64(), 1.5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
///
/// # Example
///
/// ```
/// use protean_sim::SimDuration;
/// let d = SimDuration::from_secs(2.0) / 4.0;
/// assert_eq!(d, SimDuration::from_millis(500.0));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

const MICROS_PER_SEC: f64 = 1_000_000.0;

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (useful as an "never" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from a count of microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant `secs` seconds after the origin.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid time: {secs}");
        SimTime((secs * MICROS_PER_SEC).round() as u64)
    }

    /// Creates an instant `millis` milliseconds after the origin.
    ///
    /// # Panics
    ///
    /// Panics if `millis` is negative or not finite.
    pub fn from_millis(millis: f64) -> Self {
        Self::from_secs(millis / 1_000.0)
    }

    /// The raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant expressed as seconds since the origin.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of `self` and `other`.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of `self` and `other`.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from a count of microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a span of `secs` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration((secs * MICROS_PER_SEC).round() as u64)
    }

    /// Creates a span of `millis` milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `millis` is negative or not finite.
    pub fn from_millis(millis: f64) -> Self {
        Self::from_secs(millis / 1_000.0)
    }

    /// The raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This span expressed in seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC
    }

    /// This span expressed in milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// `true` if this is the empty span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by a non-negative factor, saturating at
    /// [`SimDuration::MAX`].
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid factor: {factor}"
        );
        let scaled = self.0 as f64 * factor;
        if scaled >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(scaled.round() as u64)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        self.mul_f64(rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: f64) -> SimDuration {
        assert!(rhs > 0.0, "division by non-positive factor: {rhs}");
        self.mul_f64(1.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}us", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_secs(1.25);
        assert_eq!(t.as_micros(), 1_250_000);
        assert_eq!(t.as_secs_f64(), 1.25);
        let d = SimDuration::from_millis(0.5);
        assert_eq!(d.as_micros(), 500);
    }

    #[test]
    fn arithmetic_saturates() {
        let t = SimTime::from_secs(1.0);
        let earlier = SimTime::from_secs(5.0);
        assert_eq!(t.saturating_since(earlier), SimDuration::ZERO);
        assert_eq!(t - earlier, SimDuration::ZERO);
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1.0), SimTime::MAX);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(2.0);
        assert_eq!(d.mul_f64(1.5), SimDuration::from_secs(3.0));
        assert_eq!(d / 2.0, SimDuration::from_secs(1.0));
        assert_eq!(SimDuration::MAX.mul_f64(2.0), SimDuration::MAX);
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_secs(1.0) < SimTime::from_secs(2.0));
        assert_eq!(
            SimTime::from_secs(3.0).max(SimTime::from_secs(2.0)),
            SimTime::from_secs(3.0)
        );
        assert_eq!(
            SimTime::from_secs(3.0).min(SimTime::from_secs(2.0)),
            SimTime::from_secs(2.0)
        );
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [1.0, 2.0, 3.0]
            .iter()
            .map(|&s| SimDuration::from_secs(s))
            .sum();
        assert_eq!(total, SimDuration::from_secs(6.0));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_millis(1.5).to_string(), "1.50ms");
        assert_eq!(SimDuration::from_secs(2.0).to_string(), "2.000s");
    }

    #[test]
    #[should_panic]
    fn negative_seconds_rejected() {
        let _ = SimTime::from_secs(-1.0);
    }
}
