//! Time-integrated accumulators and sampled time series.

use crate::time::{SimDuration, SimTime};

/// Integrates a piecewise-constant quantity over simulated time.
///
/// Used for metrics such as GPU busy fraction, memory occupancy and
/// dollar cost, where the value of interest is `∫ level(t) dt` divided by
/// the observation window.
///
/// # Example
///
/// ```
/// use protean_sim::{Accumulator, SimTime};
/// let mut acc = Accumulator::new(SimTime::ZERO);
/// acc.set_level(SimTime::from_secs(0.0), 1.0);
/// acc.set_level(SimTime::from_secs(2.0), 0.0); // busy for 2s
/// assert_eq!(acc.integral(SimTime::from_secs(4.0)), 2.0);
/// assert_eq!(acc.mean(SimTime::from_secs(4.0)), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Accumulator {
    start: SimTime,
    last_update: SimTime,
    level: f64,
    integral: f64,
}

impl Accumulator {
    /// Creates an accumulator observing from `start` with level 0.
    pub fn new(start: SimTime) -> Self {
        Accumulator {
            start,
            last_update: start,
            level: 0.0,
            integral: 0.0,
        }
    }

    /// Sets the current level at time `now`, accruing the previous level
    /// over the elapsed span first.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous update (time never reverses).
    pub fn set_level(&mut self, now: SimTime, level: f64) {
        assert!(
            now >= self.last_update,
            "accumulator updated backwards in time: {now:?} < {:?}",
            self.last_update
        );
        self.integral += self.level * (now - self.last_update).as_secs_f64();
        self.last_update = now;
        self.level = level;
    }

    /// Adjusts the current level by `delta` at time `now`.
    pub fn add_level(&mut self, now: SimTime, delta: f64) {
        let level = self.level + delta;
        self.set_level(now, level);
    }

    /// The current level.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// The integral `∫ level dt` (in level-seconds) up to `now`.
    pub fn integral(&self, now: SimTime) -> f64 {
        self.integral + self.level * now.saturating_since(self.last_update).as_secs_f64()
    }

    /// The time-average of the level over `[start, now]`. Returns 0 for an
    /// empty window.
    pub fn mean(&self, now: SimTime) -> f64 {
        let window = now.saturating_since(self.start).as_secs_f64();
        if window <= 0.0 {
            0.0
        } else {
            self.integral(now) / window
        }
    }
}

/// A sampled time series of `(time, value)` points, used for the
/// timeline-style figures (e.g. the Fig. 7 reconfiguration snapshot).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a sample. Samples should be pushed in chronological order.
    pub fn push(&mut self, time: SimTime, value: f64) {
        self.points.push((time, value));
    }

    /// The recorded samples, in insertion order.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Aggregates samples into fixed-width buckets, returning one
    /// `(bucket_start, aggregate)` per non-empty bucket, where the
    /// aggregate is chosen by `agg`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn bucketed(&self, width: SimDuration, agg: BucketAgg) -> Vec<(SimTime, f64)> {
        assert!(!width.is_zero(), "bucket width must be positive");
        let mut out: Vec<(SimTime, f64)> = Vec::new();
        let mut cur_bucket: Option<(u64, Vec<f64>)> = None;
        let flush = |bucket: (u64, Vec<f64>), out: &mut Vec<(SimTime, f64)>| {
            let (idx, vals) = bucket;
            let value = match agg {
                BucketAgg::Mean => vals.iter().sum::<f64>() / vals.len() as f64,
                BucketAgg::Max => vals.iter().cloned().fold(f64::MIN, f64::max),
                BucketAgg::Sum => vals.iter().sum(),
                BucketAgg::P99 => percentile_of(&vals, 0.99),
            };
            out.push((SimTime::from_micros(idx * width.as_micros()), value));
        };
        for &(t, v) in &self.points {
            let idx = t.as_micros() / width.as_micros();
            match &mut cur_bucket {
                Some((cur, vals)) if *cur == idx => vals.push(v),
                Some(_) => {
                    flush(cur_bucket.take().expect("bucket present"), &mut out);
                    cur_bucket = Some((idx, vec![v]));
                }
                None => cur_bucket = Some((idx, vec![v])),
            }
        }
        if let Some(b) = cur_bucket {
            flush(b, &mut out);
        }
        out
    }
}

/// Aggregation used by [`TimeSeries::bucketed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BucketAgg {
    /// Arithmetic mean of samples in the bucket.
    Mean,
    /// Maximum sample in the bucket.
    Max,
    /// Sum of samples in the bucket.
    Sum,
    /// 99th percentile of samples in the bucket.
    P99,
}

fn percentile_of(vals: &[f64], q: f64) -> f64 {
    let mut sorted = vals.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in series"));
    let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[rank]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_integrates_levels() {
        let mut acc = Accumulator::new(SimTime::ZERO);
        acc.set_level(SimTime::from_secs(1.0), 2.0);
        acc.set_level(SimTime::from_secs(3.0), 0.5);
        // [0,1): 0, [1,3): 2 -> 4, [3,5): 0.5 -> 1. Total 5 over 5s.
        assert!((acc.integral(SimTime::from_secs(5.0)) - 5.0).abs() < 1e-9);
        assert!((acc.mean(SimTime::from_secs(5.0)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn accumulator_add_level() {
        let mut acc = Accumulator::new(SimTime::ZERO);
        acc.add_level(SimTime::ZERO, 1.0);
        acc.add_level(SimTime::from_secs(1.0), 1.0);
        acc.add_level(SimTime::from_secs(2.0), -2.0);
        assert_eq!(acc.level(), 0.0);
        assert!((acc.integral(SimTime::from_secs(10.0)) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn accumulator_empty_window_mean_is_zero() {
        let acc = Accumulator::new(SimTime::from_secs(5.0));
        assert_eq!(acc.mean(SimTime::from_secs(5.0)), 0.0);
    }

    #[test]
    #[should_panic]
    fn accumulator_rejects_backward_time() {
        let mut acc = Accumulator::new(SimTime::from_secs(2.0));
        acc.set_level(SimTime::from_secs(1.0), 1.0);
    }

    #[test]
    fn series_buckets_mean() {
        let mut s = TimeSeries::new();
        s.push(SimTime::from_secs(0.1), 1.0);
        s.push(SimTime::from_secs(0.2), 3.0);
        s.push(SimTime::from_secs(1.5), 10.0);
        let buckets = s.bucketed(protean_duration_secs(1.0), BucketAgg::Mean);
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].1, 2.0);
        assert_eq!(buckets[1].1, 10.0);
    }

    #[test]
    fn series_buckets_max_sum_p99() {
        let mut s = TimeSeries::new();
        for i in 0..100 {
            s.push(SimTime::from_millis(i as f64), i as f64);
        }
        let max = s.bucketed(protean_duration_secs(1.0), BucketAgg::Max);
        assert_eq!(max[0].1, 99.0);
        let sum = s.bucketed(protean_duration_secs(1.0), BucketAgg::Sum);
        assert_eq!(sum[0].1, 4950.0);
        let p99 = s.bucketed(protean_duration_secs(1.0), BucketAgg::P99);
        assert_eq!(p99[0].1, 98.0);
    }

    fn protean_duration_secs(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }
}
