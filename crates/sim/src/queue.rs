//! Deterministic timestamped event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A priority queue of `(SimTime, E)` pairs that pops events in
/// chronological order, breaking ties by insertion order (FIFO).
///
/// Determinism is essential for the simulation: two events scheduled for
/// the same instant must always be delivered in the order they were
/// scheduled, independent of heap internals.
///
/// # Example
///
/// ```
/// use protean_sim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// let t = SimTime::from_secs(1.0);
/// q.push(t, "first");
/// q.push(t, "second");
/// assert_eq!(q.pop(), Some((t, "first")));
/// assert_eq!(q.pop(), Some((t, "second")));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    popped: u64,
    peak_len: usize,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time (and, for
        // ties, the lowest sequence number) is popped first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            popped: 0,
            peak_len: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
        self.peak_len = self.peak_len.max(self.heap.len());
    }

    /// Removes and returns the chronologically next event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.heap.pop().map(|e| (e.time, e.event));
        if e.is_some() {
            self.popped += 1;
        }
        e
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// The next event (time and payload) without removing it.
    pub fn peek(&self) -> Option<(SimTime, &E)> {
        self.heap.peek().map(|e| (e.time, &e.event))
    }

    /// Events pushed over the queue's lifetime.
    pub fn pushed(&self) -> u64 {
        self.seq
    }

    /// Events popped over the queue's lifetime.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// The largest heap size ever reached — how much event traffic the
    /// producer forced the queue to buffer.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// Explicit ordering key for [`KeyedEventQueue`]: chronological by
/// `time`, then lexicographic on `(major, minor)`.
///
/// [`EventQueue`] assigns the tie-break internally (one FIFO counter per
/// queue), which is exactly right when a single loop owns all pushes.
/// The sharded cluster engine instead has *several* producers pushing
/// into *several* queues between synchronization points, and needs the
/// merged pop order across all of them to reproduce the sequential
/// engine's single-counter FIFO order bit for bit. That only works if
/// the tie-break is part of the event itself: the coordinator allocates
/// `major` from the serial push counter and shards derive `minor` from
/// their phase-local counters, so any two events — regardless of which
/// queue they sit in — compare the same way the sequential engine's
/// insertion order would have compared them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventKey {
    /// Fire time.
    pub time: SimTime,
    /// Primary tie-break at equal times (serial push counter).
    pub major: u64,
    /// Secondary tie-break (producer-local counter).
    pub minor: u64,
}

impl EventKey {
    /// The key `(time, major, minor)`.
    pub fn new(time: SimTime, major: u64, minor: u64) -> Self {
        EventKey { time, major, minor }
    }
}

/// A priority queue of [`EventKey`]-stamped events that pops in key
/// order. Unlike [`EventQueue`], ties are broken by the caller-supplied
/// key, not an internal counter — see the [`EventKey`] docs for why the
/// sharded engine needs that.
#[derive(Debug)]
pub struct KeyedEventQueue<E> {
    heap: BinaryHeap<KeyedEntry<E>>,
    pushed: u64,
    popped: u64,
    peak_len: usize,
}

#[derive(Debug)]
struct KeyedEntry<E> {
    key: EventKey,
    event: E,
}

impl<E> PartialEq for KeyedEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl<E> Eq for KeyedEntry<E> {}

impl<E> PartialOrd for KeyedEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for KeyedEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap; invert so the smallest key pops first.
        other.key.cmp(&self.key)
    }
}

impl<E> KeyedEventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        KeyedEventQueue {
            heap: BinaryHeap::new(),
            pushed: 0,
            popped: 0,
            peak_len: 0,
        }
    }

    /// Schedules `event` under `key`.
    pub fn push(&mut self, key: EventKey, event: E) {
        self.pushed += 1;
        self.heap.push(KeyedEntry { key, event });
        self.peak_len = self.peak_len.max(self.heap.len());
    }

    /// Removes and returns the event with the smallest key.
    pub fn pop(&mut self) -> Option<(EventKey, E)> {
        let e = self.heap.pop().map(|e| (e.key, e.event));
        if e.is_some() {
            self.popped += 1;
        }
        e
    }

    /// The smallest pending key without removing its event.
    pub fn peek_key(&self) -> Option<EventKey> {
        self.heap.peek().map(|e| e.key)
    }

    /// The smallest pending key and a borrow of its event, without
    /// removing either. The sharded engine's run peeler uses this to
    /// decide whether the next coordinator event is dispatch-shaped (a
    /// window expiry it may admit into the run) before committing to a
    /// pop.
    pub fn peek(&self) -> Option<(EventKey, &E)> {
        self.heap.peek().map(|e| (e.key, &e.event))
    }

    /// `true` if some pending event orders strictly before `bound` —
    /// the phase-participation / run-conflict test of the sharded
    /// cluster engine, which must decide in O(1) per shard whether a
    /// phase bounded at `bound` would have anything to do.
    pub fn has_event_before(&self, bound: EventKey) -> bool {
        self.peek_key().is_some_and(|k| k < bound)
    }

    /// Events pushed over the queue's lifetime.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Events popped over the queue's lifetime.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// The largest heap size ever reached.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for KeyedEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3.0), 3);
        q.push(SimTime::from_secs(1.0), 1);
        q.push(SimTime::from_secs(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1.0);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn keyed_queue_pops_in_key_order() {
        let mut q = KeyedEventQueue::new();
        let t = SimTime::from_secs(1.0);
        q.push(EventKey::new(t, 2, 0), "serial-2");
        q.push(EventKey::new(t, 1, 1 << 48), "phase-1-shard");
        q.push(EventKey::new(t, 1, 0), "serial-1");
        q.push(EventKey::new(SimTime::ZERO, 9, 9), "earlier-time");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(
            order,
            vec!["earlier-time", "serial-1", "phase-1-shard", "serial-2"]
        );
        assert_eq!(q.pushed(), 4);
        assert_eq!(q.popped(), 4);
        assert_eq!(q.peak_len(), 4);
    }

    #[test]
    fn has_event_before_is_a_strict_bound() {
        let mut q = KeyedEventQueue::new();
        let t = SimTime::from_secs(1.0);
        assert!(!q.has_event_before(EventKey::new(SimTime::MAX, u64::MAX, u64::MAX)));
        q.push(EventKey::new(t, 3, 5), ());
        assert!(q.has_event_before(EventKey::new(t, 3, 6)));
        // The bound is exclusive: an event exactly at the bound does
        // not participate.
        assert!(!q.has_event_before(EventKey::new(t, 3, 5)));
        assert!(!q.has_event_before(EventKey::new(t, 0, 0)));
        assert!(q.has_event_before(EventKey::new(SimTime::from_secs(2.0), 0, 0)));
    }

    proptest! {
        /// Keyed pops are a total order on (time, major, minor).
        #[test]
        fn prop_keyed_total_order(keys in proptest::collection::vec((0u64..50, 0u64..8, 0u64..8), 1..200)) {
            let mut q = KeyedEventQueue::new();
            for &(t, a, b) in &keys {
                q.push(EventKey::new(SimTime::from_micros(t), a, b), ());
            }
            let mut last: Option<EventKey> = None;
            while let Some((k, ())) = q.pop() {
                if let Some(lk) = last {
                    prop_assert!(k >= lk);
                }
                last = Some(k);
            }
        }
    }

    proptest! {
        /// Events always come out in non-decreasing time order, and events
        /// at equal times come out in insertion order.
        #[test]
        fn prop_chronological_fifo(times in proptest::collection::vec(0u64..100, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_micros(t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((t, i)) = q.pop() {
                if let Some((lt, li)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        prop_assert!(i > li, "FIFO violated at equal times");
                    }
                }
                last = Some((t, i));
            }
        }
    }
}
