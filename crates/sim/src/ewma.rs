//! The lightweight EWMA predictor shared by the GPU Reconfigurator
//! (§4.4, borrowed from Atoll) and the cluster engine's predictive
//! container pre-provisioning. It lives in `protean-sim` so both the
//! policy crate (`protean`) and the substrate (`protean-cluster`) use
//! the same smoothing semantics; `protean` re-exports it.

/// Exponentially weighted moving average: `v ← α·x + (1−α)·v`.
///
/// # Example
///
/// ```
/// use protean_sim::Ewma;
/// let mut e = Ewma::new(0.5);
/// e.observe(10.0);
/// e.observe(20.0);
/// assert_eq!(e.predict(), 15.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates a predictor with smoothing factor `alpha ∈ (0, 1]`.
    /// `alpha = 1` degenerates to last-value prediction (the Oracle
    /// variant's "perfect" short-horizon predictor).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha {alpha} out of range");
        Ewma { alpha, value: None }
    }

    /// Feeds one observation.
    pub fn observe(&mut self, x: f64) {
        self.value = Some(match self.value {
            None => x,
            Some(v) => self.alpha * x + (1.0 - self.alpha) * v,
        });
    }

    /// The current prediction (0 before any observation).
    pub fn predict(&self) -> f64 {
        self.value.unwrap_or(0.0)
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn first_observation_is_taken_verbatim() {
        let mut e = Ewma::new(0.1);
        assert_eq!(e.predict(), 0.0);
        e.observe(42.0);
        assert_eq!(e.predict(), 42.0);
    }

    #[test]
    fn alpha_one_tracks_last_value() {
        let mut e = Ewma::new(1.0);
        e.observe(5.0);
        e.observe(100.0);
        assert_eq!(e.predict(), 100.0);
    }

    #[test]
    fn converges_to_constant_signal() {
        let mut e = Ewma::new(0.3);
        e.observe(0.0);
        for _ in 0..100 {
            e.observe(7.0);
        }
        assert!((e.predict() - 7.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn zero_alpha_rejected() {
        let _ = Ewma::new(0.0);
    }

    proptest! {
        /// The prediction always stays within the observed range.
        #[test]
        fn prop_prediction_bounded(
            alpha in 0.01f64..1.0,
            xs in proptest::collection::vec(-1e6f64..1e6, 1..100),
        ) {
            let mut e = Ewma::new(alpha);
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &x in &xs {
                e.observe(x);
                lo = lo.min(x);
                hi = hi.max(x);
            }
            prop_assert!(e.predict() >= lo - 1e-9 && e.predict() <= hi + 1e-9);
        }
    }
}
