//! PROTEAN: the paper's SLO-compliant, cost-effective GPU serverless
//! scheduler.
//!
//! This crate is the primary contribution of the reproduced paper. It
//! implements, on top of the `protean-cluster` substrate:
//!
//! * the **slowdown model** (§3) — Eq. 2's slowdown factor
//!   `η = RDF × max(Σ FBR, 1)` that trades off *resource deficiency*
//!   (running on a smaller MIG slice) against *job interference* (MPS
//!   co-location), see [`slowdown::eta`];
//! * **Job Distribution** (§4.3, Algorithm 1) — best-effort batches are
//!   packed onto the fewest, smallest slices by first-fit bin packing
//!   (Guideline 1) while strict batches go to the not-fully-BE-tagged
//!   slice with minimum η (Guideline 2), see [`distribution`];
//! * the **GPU Reconfigurator** (§4.4, Algorithm 2) — predicts the
//!   best-effort memory footprint with a lightweight EWMA, picks the
//!   small-slice set that holds it (`[1g, 2g]` or `[3g]`, giving
//!   geometries `(4g, 2g, 1g)` or `(4g, 3g)`), guards against corner
//!   cases with occupancy thresholds `T_low`/`T_high`, and only
//!   reconfigures after the desired geometry has mismatched the current
//!   one `wait_limit` (3) consecutive times, see [`reconfigurator`];
//! * **request reordering** (§4.1) — strict batches are served before
//!   best-effort batches (the substrate's strict-priority queue).
//!
//! The [`Protean`] type packages all of this as a
//! [`protean_cluster::Scheme`]; [`ProteanBuilder`] instantiates one per
//! worker. The `Oracle` variant (§6.2, Fig. 17) is PROTEAN with perfect
//! prediction and no reconfiguration hesitation, built via
//! [`ProteanConfig::oracle`] (the experiment additionally zeroes the
//! reconfiguration delay in the cluster config).
//!
//! # Example
//!
//! ```
//! use protean::ProteanBuilder;
//! use protean_cluster::{ClusterConfig, run_simulation};
//! use protean_trace::{TraceConfig, TraceShape};
//! use protean_models::ModelId;
//! use protean_sim::SimDuration;
//!
//! let trace = TraceConfig {
//!     shape: TraceShape::constant(300.0),
//!     duration: SimDuration::from_secs(20.0),
//!     strict_model: ModelId::ResNet50,
//!     strict_fraction: 0.5,
//!     be_pool: vec![ModelId::MobileNet],
//!     be_rotation_period: SimDuration::from_secs(20.0),
//!     batch_arrivals: true,
//! };
//! let mut config = ClusterConfig::small_test();
//! config.warmup = SimDuration::from_secs(10.0);
//! let result = run_simulation(&config, &ProteanBuilder::paper(), &trace);
//! assert_eq!(result.scheme, "PROTEAN");
//! ```

pub mod distribution;
pub mod reconfigurator;
pub mod scheme;
pub mod slowdown;

pub use distribution::{choose_best_effort_slice, choose_strict_slice, tag_slices};
pub use protean_sim::Ewma;
pub use reconfigurator::{Reconfigurator, ReconfiguratorConfig};
pub use scheme::{Protean, ProteanBuilder, ProteanConfig};
pub use slowdown::eta;
