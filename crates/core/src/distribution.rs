//! Algorithm 1: the Job Distribution logic (§4.3).
//!
//! Best-effort batches are *packed* onto the fewest, smallest slices
//! via first-fit bin packing (Guideline 1); strict batches go to the
//! slice with minimum Eq. 2 slowdown `η` among slices not fully
//! earmarked for best-effort work (Guideline 2). The earmarking is the
//! paper's `tag_value`: walking the slices in ascending order of
//! resources, each slice is tagged with the fraction of its memory the
//! queued best-effort work will occupy.

use protean_gpu::Slice;
use protean_models::ModelProfile;

use crate::slowdown::eta;

/// Indices of `slices` in ascending order of resources (compute share,
/// then memory). `slices` normally comes from
/// [`protean_gpu::Gpu::slices`], which is descending, but the order is
/// recomputed here so callers need not care.
fn ascending_order(slices: &[Slice]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..slices.len()).collect();
    idx.sort_by_key(|&i| {
        let p = slices[i].profile();
        (
            p.compute_sevenths(),
            p.mem_gb() as u64,
            std::cmp::Reverse(i),
        )
    });
    idx
}

/// Guideline 1 leaves the larger slices *for* strict requests, so the
/// largest slice's tag is capped below 1: however much best-effort work
/// is backed up, strict batches must never be locked out of the whole
/// GPU (they are the priority class).
const LARGEST_SLICE_TAG_CAP: f64 = 0.95;

/// Lines 1–8 of Algorithm 1: assigns each slice a `tag_value` — the
/// fraction of its available memory that queued best-effort work
/// (`be_mem_gb` in total) will occupy — walking slices smallest-first.
/// Returns one tag per input slice, aligned with the input order. The
/// largest slice's tag is capped just below 1 (`LARGEST_SLICE_TAG_CAP`).
///
/// # Example
///
/// ```
/// use protean::tag_slices;
/// use protean_gpu::{Slice, SliceProfile, SharingMode};
/// use protean_sim::SimTime;
///
/// let slices = vec![
///     Slice::new(SliceProfile::G4, SharingMode::Mps, SimTime::ZERO),
///     Slice::new(SliceProfile::G2, SharingMode::Mps, SimTime::ZERO),
///     Slice::new(SliceProfile::G1, SharingMode::Mps, SimTime::ZERO),
/// ];
/// // 8 GB of BE work: fills the 1g (5 GB), spills 3 GB onto the 2g.
/// let tags = tag_slices(&slices, 8.0);
/// assert_eq!(tags, vec![0.0, 0.3, 1.0]);
/// ```
pub fn tag_slices(slices: &[Slice], be_mem_gb: f64) -> Vec<f64> {
    let mut tags = vec![0.0; slices.len()];
    let mut remaining = be_mem_gb.max(0.0);
    let order = ascending_order(slices);
    let largest = order.last().copied();
    for i in order {
        if remaining <= 0.0 {
            break;
        }
        let cap = if Some(i) == largest {
            LARGEST_SLICE_TAG_CAP
        } else {
            1.0
        };
        let available = slices[i].mem_available_gb();
        if available <= 0.0 {
            tags[i] = cap;
            continue;
        }
        tags[i] = (remaining / available).min(cap);
        remaining = (remaining - available).max(0.0);
    }
    tags
}

/// `choose_best_effort_slice` (Algorithm 1 line 14): first-fit bin
/// packing — the smallest slice whose free memory holds one batch of
/// `profile`. `None` if nothing fits right now.
pub fn choose_best_effort_slice(slices: &[Slice], profile: &ModelProfile) -> Option<usize> {
    ascending_order(slices)
        .into_iter()
        .find(|&i| slices[i].mem_available_gb() + 1e-9 >= profile.mem_gb)
}

/// `choose_strict_slice` (Algorithm 1 line 12): among slices not fully
/// earmarked for best-effort work (`tag_value < 1`) whose free memory
/// holds the batch, the one with minimum Eq. 2 slowdown `η`; ties go to
/// the larger slice. `None` if no slice qualifies right now.
///
/// `be_fbr_hint` is the expected FBR of the best-effort model, used to
/// cost the earmarked-but-unplaced BE load (see [`eta`]).
pub fn choose_strict_slice(
    slices: &[Slice],
    tags: &[f64],
    profile: &ModelProfile,
    be_fbr_hint: f64,
) -> Option<usize> {
    debug_assert_eq!(slices.len(), tags.len());
    let mut best: Option<(f64, u32, usize)> = None;
    for (i, slice) in slices.iter().enumerate() {
        if tags[i] >= 1.0 {
            continue;
        }
        if slice.mem_available_gb() + 1e-9 < profile.mem_gb {
            continue;
        }
        let e = eta(profile, slice, tags[i], be_fbr_hint);
        let compute = slice.profile().compute_sevenths();
        let better = match best {
            None => true,
            Some((be, bc, _)) => e < be - 1e-12 || ((e - be).abs() <= 1e-12 && compute > bc),
        };
        if better {
            best = Some((e, compute, i));
        }
    }
    best.map(|(_, _, i)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use protean_gpu::{JobId, JobSpec, SharingMode, SliceProfile};
    use protean_models::{catalog, ModelId};
    use protean_sim::{SimDuration, SimTime};

    fn slices(profiles: &[SliceProfile]) -> Vec<Slice> {
        profiles
            .iter()
            .map(|&p| Slice::new(p, SharingMode::Mps, SimTime::ZERO))
            .collect()
    }

    fn occupy(slice: &mut Slice, id: u64, fbr: f64, mem: f64) {
        slice
            .admit(
                SimTime::ZERO,
                JobSpec {
                    id: JobId(id),
                    solo: SimDuration::from_millis(100.0),
                    fbr,
                    mem_gb: mem,
                },
            )
            .unwrap();
    }

    #[test]
    fn tags_fill_smallest_first() {
        let s = slices(&[SliceProfile::G4, SliceProfile::G3, SliceProfile::G1]);
        // 5 GB exactly fills the 1g; larger slices untouched.
        assert_eq!(tag_slices(&s, 5.0), vec![0.0, 0.0, 1.0]);
        // 15 GB: 1g full, 10/20 of the 3g.
        assert_eq!(tag_slices(&s, 15.0), vec![0.0, 0.5, 1.0]);
        // Zero BE memory tags nothing.
        assert_eq!(tag_slices(&s, 0.0), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn tags_account_for_occupied_memory() {
        let mut s = slices(&[SliceProfile::G2, SliceProfile::G1]);
        occupy(&mut s[1], 1, 0.1, 4.0); // 1 GB free on the 1g
        let tags = tag_slices(&s, 1.0);
        assert_eq!(tags, vec![0.0, 1.0]);
    }

    #[test]
    fn be_packing_is_first_fit_ascending() {
        let s = slices(&[SliceProfile::G4, SliceProfile::G2, SliceProfile::G1]);
        let cat = catalog();
        // MobileNet (2 GB) goes to the 1g.
        assert_eq!(
            choose_best_effort_slice(&s, cat.profile(ModelId::MobileNet)),
            Some(2)
        );
        // DPN 92 (13.7 GB) only fits the 4g.
        assert_eq!(
            choose_best_effort_slice(&s, cat.profile(ModelId::Dpn92)),
            Some(0)
        );
    }

    #[test]
    fn be_packing_spills_when_small_slice_full() {
        let mut s = slices(&[SliceProfile::G4, SliceProfile::G1]);
        occupy(&mut s[1], 1, 0.1, 4.0);
        let cat = catalog();
        assert_eq!(
            choose_best_effort_slice(&s, cat.profile(ModelId::MobileNet)),
            Some(0)
        );
        occupy(&mut s[0], 2, 0.1, 19.0);
        assert_eq!(
            choose_best_effort_slice(&s, cat.profile(ModelId::MobileNet)),
            None
        );
    }

    #[test]
    fn strict_avoids_fully_tagged_slices() {
        let s = slices(&[SliceProfile::G4, SliceProfile::G3]);
        let cat = catalog();
        let resnet = cat.profile(ModelId::ResNet50);
        // 3g fully earmarked for BE: strict must take the 4g even if the
        // 3g looks idle.
        let picked = choose_strict_slice(&s, &[0.0, 1.0], resnet, 0.3).unwrap();
        assert_eq!(picked, 0);
        // Everything tagged: nowhere to go.
        assert_eq!(choose_strict_slice(&s, &[1.0, 1.0], resnet, 0.3), None);
    }

    #[test]
    fn strict_prefers_largest_when_idle() {
        let s = slices(&[SliceProfile::G4, SliceProfile::G3, SliceProfile::G2]);
        let cat = catalog();
        let shuffle = cat.profile(ModelId::ShuffleNetV2);
        // All idle and far below saturation: η ties at RDF; the largest
        // slice (lowest RDF) wins.
        let picked = choose_strict_slice(&s, &[0.0, 0.0, 0.0], shuffle, 0.0).unwrap();
        assert_eq!(picked, 0);
    }

    #[test]
    fn strict_load_balances_away_from_saturated_large_slice() {
        let mut s = slices(&[SliceProfile::G4, SliceProfile::G3]);
        // Saturate the 4g with heavy jobs.
        for i in 0..3 {
            occupy(&mut s[0], i, 0.5, 4.0);
        }
        let cat = catalog();
        let resnet = cat.profile(ModelId::ResNet50);
        let picked = choose_strict_slice(&s, &[0.0, 0.0], resnet, 0.0).unwrap();
        assert_eq!(picked, 1, "interference on the 4g should push to the 3g");
    }

    proptest::proptest! {
        /// Tagging never exceeds each slice's cap, the largest slice is
        /// never fully tagged, and the tagged memory accounts for the
        /// whole BE backlog up to the non-largest slices' capacity.
        #[test]
        fn prop_tags_are_bounded_and_ordered(
            be_mem in 0.0f64..80.0,
            geometry_idx in 0usize..4,
        ) {
            use protean_gpu::Geometry;
            let geometry = [
                Geometry::full(),
                Geometry::g4_g3(),
                Geometry::g4_g2_g1(),
                Geometry::g3_g3(),
            ][geometry_idx].clone();
            let slices: Vec<Slice> = geometry
                .slices()
                .iter()
                .map(|&p| Slice::new(p, SharingMode::Mps, SimTime::ZERO))
                .collect();
            let tags = tag_slices(&slices, be_mem);
            proptest::prop_assert_eq!(tags.len(), slices.len());
            for (i, &t) in tags.iter().enumerate() {
                proptest::prop_assert!((0.0..=1.0).contains(&t), "tag {t}");
                // Index 0 is the largest slice (descending order).
                if i == 0 && slices.len() > 1 {
                    proptest::prop_assert!(t < 1.0, "largest slice fully tagged");
                }
            }
            // Smaller slices fill before larger ones get any tag.
            for w in (0..slices.len().saturating_sub(1)).rev() {
                // slices[w] is larger than slices[w+1].
                if tags[w] > 0.0 && w + 1 < slices.len() {
                    proptest::prop_assert!(
                        tags[w + 1] >= 1.0 - 1e-9,
                        "larger slice tagged before smaller one filled"
                    );
                }
            }
        }

        /// choose_strict_slice never returns a slice the batch cannot
        /// occupy; choose_best_effort_slice always returns the smallest
        /// fitting slice.
        #[test]
        fn prop_choices_are_feasible(
            be_mem in 0.0f64..40.0,
            model_idx in 0usize..12,
        ) {
            let cat = catalog();
            let profile = cat.vision().nth(model_idx).expect("12 vision models");
            let slices: Vec<Slice> = protean_gpu::Geometry::g4_g2_g1()
                .slices()
                .iter()
                .map(|&p| Slice::new(p, SharingMode::Mps, SimTime::ZERO))
                .collect();
            let tags = tag_slices(&slices, be_mem);
            if let Some(i) = choose_strict_slice(&slices, &tags, profile, 0.3) {
                proptest::prop_assert!(tags[i] < 1.0);
                proptest::prop_assert!(slices[i].mem_available_gb() + 1e-9 >= profile.mem_gb);
            }
            if let Some(i) = choose_best_effort_slice(&slices, profile) {
                proptest::prop_assert!(slices[i].mem_available_gb() + 1e-9 >= profile.mem_gb);
                // No smaller slice fits.
                for (j, s) in slices.iter().enumerate() {
                    if s.profile().compute_sevenths() < slices[i].profile().compute_sevenths() {
                        proptest::prop_assert!(
                            s.mem_available_gb() + 1e-9 < profile.mem_gb,
                            "slice {j} was a smaller fit"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn strict_respects_memory() {
        let s = slices(&[SliceProfile::G2, SliceProfile::G1]);
        let cat = catalog();
        // DPN 92 (13.7 GB) fits neither slice.
        assert_eq!(
            choose_strict_slice(&s, &[0.0, 0.0], cat.profile(ModelId::Dpn92), 0.0),
            None
        );
    }
}
