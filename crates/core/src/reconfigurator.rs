//! Algorithm 2: the GPU Reconfigurator (§4.4).
//!
//! Every monitor interval `W` the reconfigurator predicts the upcoming
//! best-effort load (EWMA over per-window BE request counts), converts
//! it to a resident memory footprint (Little's law: arrival rate ×
//! expected batch residency time), picks the small-slice set that can
//! hold it (`[1g, 2g]`, else `[3g]`), and — guarded by the occupancy
//! thresholds `T_low`/`T_high` — proposes either `(4g, 2g, 1g)` or the
//! robust `(4g, 3g)` geometry. A change is only issued after the same
//! mismatch has been observed `wait_limit` consecutive times, so
//! transient blips do not pay the ~2 s reconfiguration downtime.

use protean_gpu::{Geometry, SliceProfile};
use protean_models::ModelProfile;

use protean_sim::Ewma;

/// Tunables of Algorithm 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconfiguratorConfig {
    /// EWMA smoothing factor for the BE request predictor.
    pub ewma_alpha: f64,
    /// Consecutive mismatches required before reconfiguring (paper: 3).
    pub wait_limit: u32,
    /// BE occupancy of the small-slice set below which consolidating on
    /// `(4g, 3g)` is preferred (line 19's `T_low` check).
    pub t_low: f64,
    /// BE occupancy above which `(2g, 1g)` would be overwhelmed and
    /// `(4g, 3g)` is preferred (line 19's `T_high` check).
    pub t_high: f64,
    /// Interference margin on the expected BE batch residency time used
    /// in the Little's-law footprint estimate.
    pub residency_margin: f64,
}

impl Default for ReconfiguratorConfig {
    fn default() -> Self {
        ReconfiguratorConfig {
            ewma_alpha: 0.3,
            wait_limit: 3,
            t_low: 0.25,
            t_high: 0.85,
            residency_margin: 2.0,
        }
    }
}

/// Maximum fraction of a candidate slice-set's memory *bandwidth* the
/// predicted best-effort stream may demand before the set is rejected
/// (part of the "threshold values identified using profiling
/// information" of §4.4): small slices that can *hold* the BE batches
/// but cannot *feed* them would become a tarpit.
const BANDWIDTH_FEASIBILITY_CAP: f64 = 0.85;

/// The per-GPU reconfiguration state machine.
#[derive(Debug, Clone)]
pub struct Reconfigurator {
    config: ReconfiguratorConfig,
    predictor: Ewma,
    wait_ctr: u32,
}

impl Reconfigurator {
    /// Creates a reconfigurator with the given tunables.
    pub fn new(config: ReconfiguratorConfig) -> Self {
        Reconfigurator {
            predictor: Ewma::new(config.ewma_alpha),
            config,
            wait_ctr: 0,
        }
    }

    /// The current BE-request prediction (per monitor window).
    pub fn predicted_be_requests(&self) -> f64 {
        self.predictor.predict()
    }

    /// Lines 8–23 of Algorithm 2: the geometry the predictor currently
    /// favours, before the wait-counter hysteresis.
    pub fn desired_geometry(
        &mut self,
        window_be_requests: u64,
        window_secs: f64,
        be_model: Option<&ModelProfile>,
    ) -> Geometry {
        self.predictor.observe(window_be_requests as f64);
        let pred_be_num = self.predictor.predict();
        let Some(be) = be_model else {
            // No BE workload information: keep the big slices.
            return Geometry::g4_g3();
        };
        let pred_be_mem = self.predicted_be_mem_gb(pred_be_num, window_secs, be);
        // small_slice_set = [[1g, 2g], [3g]]
        let candidates: [&[SliceProfile]; 2] =
            [&[SliceProfile::G1, SliceProfile::G2], &[SliceProfile::G3]];
        let be_batches_per_sec = pred_be_num / window_secs.max(1e-9) / f64::from(be.batch_size);
        let mut chosen: Option<&[SliceProfile]> = None;
        for set in candidates {
            let capacity: f64 = set.iter().map(|p| p.mem_gb()).sum();
            let largest_slice = *set
                .iter()
                .max_by_key(|p| p.compute_sevenths())
                .expect("candidate sets are non-empty");
            // The set must hold the predicted footprint, fit at least
            // one batch of the BE model in a single slice, and have the
            // bandwidth to actually serve the BE stream.
            let fits_mem = capacity >= pred_be_mem && largest_slice.mem_gb() + 1e-9 >= be.mem_gb;
            let set_bandwidth: f64 = set.iter().map(|p| p.bandwidth_fraction()).sum();
            let bw_demand = be_batches_per_sec * be.solo_on(largest_slice).as_secs_f64() * be.fbr;
            let feasible_bw = bw_demand <= BANDWIDTH_FEASIBILITY_CAP * set_bandwidth;
            if fits_mem && feasible_bw {
                chosen = Some(set);
                break;
            }
        }
        match chosen {
            Some(set) if set.len() == 2 => {
                let capacity: f64 = set.iter().map(|p| p.mem_gb()).sum();
                let occupancy = pred_be_mem / capacity;
                if occupancy < self.config.t_low || occupancy > self.config.t_high {
                    Geometry::g4_g3()
                } else {
                    Geometry::g4_g2_g1()
                }
            }
            // Either the `[3g]` set (geometry (4g, 3g)) or nothing fits
            // (line 20's fallback): both resolve to (4g, 3g).
            _ => Geometry::g4_g3(),
        }
    }

    /// Little's-law resident footprint: BE batch arrival rate × expected
    /// residency time × per-batch memory.
    fn predicted_be_mem_gb(&self, pred_be_num: f64, window_secs: f64, be: &ModelProfile) -> f64 {
        if pred_be_num <= 0.0 || window_secs <= 0.0 {
            return 0.0;
        }
        let batches_per_sec = pred_be_num / window_secs / f64::from(be.batch_size);
        let residency_secs =
            be.solo_on(be.smallest_fitting_slice()).as_secs_f64() * self.config.residency_margin;
        let resident_batches = (batches_per_sec * residency_secs).max(1.0);
        resident_batches.ceil() * be.mem_gb
    }

    /// Lines 24–30: one monitor-interval step. Returns `Some(geometry)`
    /// when the desired geometry has mismatched `current` for
    /// `wait_limit` consecutive calls (and resets the counter).
    pub fn step(
        &mut self,
        current: &Geometry,
        window_be_requests: u64,
        window_secs: f64,
        be_model: Option<&ModelProfile>,
    ) -> Option<Geometry> {
        let desired = self.desired_geometry(window_be_requests, window_secs, be_model);
        if desired == *current {
            self.wait_ctr = 0;
            return None;
        }
        self.wait_ctr += 1;
        if self.wait_ctr >= self.config.wait_limit {
            self.wait_ctr = 0;
            Some(desired)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protean_models::{catalog, ModelId};

    fn recon() -> Reconfigurator {
        Reconfigurator::new(ReconfiguratorConfig::default())
    }

    #[test]
    fn small_be_footprint_keeps_small_slices() {
        let cat = catalog();
        let mobilenet = cat.profile(ModelId::MobileNet);
        let mut r = recon();
        // A steady moderate BE stream that fits (2g, 1g).
        let mut g = Geometry::g4_g3();
        for _ in 0..20 {
            g = r.desired_geometry(8000, 2.0, Some(mobilenet));
        }
        assert_eq!(g, Geometry::g4_g2_g1());
    }

    #[test]
    fn huge_be_model_forces_4g_3g() {
        let cat = catalog();
        let dpn = cat.profile(ModelId::Dpn92);
        let mut r = recon();
        // DPN 92 batches (13.7 GB) cannot fit 1g or 2g at all.
        let g = r.desired_geometry(8000, 2.0, Some(dpn));
        assert_eq!(g, Geometry::g4_g3());
    }

    #[test]
    fn tiny_be_load_consolidates_on_4g_3g() {
        let cat = catalog();
        let mobilenet = cat.profile(ModelId::MobileNet);
        let mut r = recon();
        let g = r.desired_geometry(0, 2.0, Some(mobilenet));
        assert_eq!(g, Geometry::g4_g3());
    }

    #[test]
    fn no_be_model_defaults_to_4g_3g() {
        let mut r = recon();
        assert_eq!(r.desired_geometry(100, 2.0, None), Geometry::g4_g3());
    }

    #[test]
    fn wait_counter_delays_reconfiguration() {
        let cat = catalog();
        let mobilenet = cat.profile(ModelId::MobileNet);
        let mut r = recon();
        let current = Geometry::g4_g3();
        // Sustained load that wants (4g, 2g, 1g): the first two steps
        // must hold back, the third fires.
        assert_eq!(r.step(&current, 8000, 2.0, Some(mobilenet)), None);
        assert_eq!(r.step(&current, 8000, 2.0, Some(mobilenet)), None);
        assert_eq!(
            r.step(&current, 8000, 2.0, Some(mobilenet)),
            Some(Geometry::g4_g2_g1())
        );
        // Counter reset: the next mismatch waits again.
        assert_eq!(r.step(&current, 8000, 2.0, Some(mobilenet)), None);
    }

    #[test]
    fn matching_geometry_resets_counter() {
        let cat = catalog();
        let mobilenet = cat.profile(ModelId::MobileNet);
        let mut r = recon();
        let mismatch = Geometry::g4_g3();
        let matching = Geometry::g4_g2_g1();
        for _ in 0..10 {
            // Warm the EWMA so desired is stably (4g, 2g, 1g).
            r.desired_geometry(8000, 2.0, Some(mobilenet));
        }
        assert_eq!(r.step(&mismatch, 8000, 2.0, Some(mobilenet)), None);
        assert_eq!(r.step(&mismatch, 8000, 2.0, Some(mobilenet)), None);
        // A tick where current matches desired clears the counter...
        assert_eq!(r.step(&matching, 8000, 2.0, Some(mobilenet)), None);
        // ...so the mismatch must accumulate from scratch.
        assert_eq!(r.step(&mismatch, 8000, 2.0, Some(mobilenet)), None);
        assert_eq!(r.step(&mismatch, 8000, 2.0, Some(mobilenet)), None);
        assert!(r.step(&mismatch, 8000, 2.0, Some(mobilenet)).is_some());
    }

    #[test]
    fn wait_limit_zero_fires_immediately() {
        let cat = catalog();
        let mobilenet = cat.profile(ModelId::MobileNet);
        let mut r = Reconfigurator::new(ReconfiguratorConfig {
            wait_limit: 0,
            ewma_alpha: 1.0,
            ..ReconfiguratorConfig::default()
        });
        assert_eq!(
            r.step(&Geometry::g4_g3(), 8000, 2.0, Some(mobilenet)),
            Some(Geometry::g4_g2_g1())
        );
    }

    #[test]
    fn ewma_smooths_bursts() {
        let cat = catalog();
        let mobilenet = cat.profile(ModelId::MobileNet);
        let mut r = recon();
        // Long quiet phase.
        for _ in 0..20 {
            r.desired_geometry(0, 2.0, Some(mobilenet));
        }
        // One burst window is damped by the EWMA: prediction stays low.
        r.desired_geometry(10_000, 2.0, Some(mobilenet));
        assert!(r.predicted_be_requests() < 10_000.0 * 0.5);
    }
}
