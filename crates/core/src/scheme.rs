//! PROTEAN as a pluggable [`Scheme`] for the cluster substrate.

use protean_cluster::{BatchView, Placement, PlacementCtx, ReconfigCtx, Scheme, SchemeBuilder};
use protean_gpu::{Geometry, SharingMode};

use crate::distribution::{choose_best_effort_slice, choose_strict_slice, tag_slices};
use crate::reconfigurator::{Reconfigurator, ReconfiguratorConfig};

/// Configuration of the PROTEAN scheme, including the switches the
/// ablation benches flip.
#[derive(Debug, Clone, PartialEq)]
pub struct ProteanConfig {
    /// Display name ("PROTEAN", "Oracle", ablation labels).
    pub name: &'static str,
    /// Algorithm 2 tunables.
    pub reconfigurator: ReconfiguratorConfig,
    /// Serve strict batches before best-effort ones (§4.1). Ablation:
    /// set `false` for FIFO.
    pub reorder: bool,
    /// Run Algorithm 2 at all. Ablation: set `false` to pin the initial
    /// geometry.
    pub dynamic_reconfig: bool,
    /// Use the Eq. 2 η to pick strict slices. Ablation: set `false` to
    /// always take the largest slice with room.
    pub eta_placement: bool,
    /// Initial MIG geometry (paper: `(4g, 2g, 1g)`, Fig. 7).
    pub initial_geometry: Geometry,
    /// §6.2 future-work extension: when the workload is (almost)
    /// entirely best-effort, stop packing BE batches onto the smallest
    /// slices (whose point is to protect strict requests that are not
    /// there) and place them by minimum η instead, trading a little
    /// median latency for a much better tail. Off by default — the
    /// paper's PROTEAN always packs.
    pub be_tail_aware: bool,
}

impl ProteanConfig {
    /// The paper's PROTEAN configuration.
    pub fn paper() -> Self {
        ProteanConfig {
            name: "PROTEAN",
            reconfigurator: ReconfiguratorConfig::default(),
            reorder: true,
            dynamic_reconfig: true,
            eta_placement: true,
            initial_geometry: Geometry::g4_g2_g1(),
            be_tail_aware: false,
        }
    }

    /// The `Oracle` comparison scheme (§6.2, Fig. 17): PROTEAN with
    /// perfect short-horizon prediction (`α = 1`) and no reconfiguration
    /// hesitation (`wait_limit = 0`). The Fig. 17 experiment pairs this
    /// with a zero reconfiguration delay in the cluster config.
    pub fn oracle() -> Self {
        ProteanConfig {
            name: "Oracle",
            reconfigurator: ReconfiguratorConfig {
                ewma_alpha: 1.0,
                wait_limit: 0,
                ..ReconfiguratorConfig::default()
            },
            ..ProteanConfig::paper()
        }
    }
}

/// One worker's PROTEAN scheduler instance.
#[derive(Debug, Clone)]
pub struct Protean {
    config: ProteanConfig,
    reconfigurator: Reconfigurator,
    monitor_window_secs: f64,
    /// FBR of the most recent best-effort model, used to cost
    /// tagged-but-unplaced BE load in η.
    be_fbr_hint: f64,
    /// Strict share of the last monitor window's arrivals (drives the
    /// `be_tail_aware` extension).
    window_strict_share: f64,
}

impl Protean {
    /// Creates an instance from `config`. `monitor_window_secs` must
    /// match the cluster's monitor interval (it converts per-window
    /// request counts to rates).
    pub fn new(config: ProteanConfig, monitor_window_secs: f64) -> Self {
        Protean {
            reconfigurator: Reconfigurator::new(config.reconfigurator),
            config,
            monitor_window_secs,
            be_fbr_hint: 0.0,
            // Assume a strict-bearing mix until told otherwise.
            window_strict_share: 1.0,
        }
    }
}

impl Scheme for Protean {
    fn name(&self) -> &'static str {
        self.config.name
    }

    fn initial_geometry(&self) -> Geometry {
        self.config.initial_geometry.clone()
    }

    fn sharing_mode(&self) -> SharingMode {
        SharingMode::Mps
    }

    fn reorders(&self) -> bool {
        self.config.reorder
    }

    fn place(&mut self, ctx: &PlacementCtx<'_>, batch: &BatchView) -> Option<Placement> {
        let slices = ctx.gpu.slices();
        let profile = ctx.catalog.profile(batch.model);
        if batch.strict {
            let tags = tag_slices(slices, ctx.queued_be_mem_gb);
            let slice = if self.config.eta_placement {
                choose_strict_slice(slices, &tags, profile, self.be_fbr_hint)?
            } else {
                // Ablation: largest slice with room, ignoring η.
                slices
                    .iter()
                    .position(|s| s.mem_available_gb() + 1e-9 >= profile.mem_gb)?
            };
            Some(Placement::on_slice(slice))
        } else if self.config.be_tail_aware && self.window_strict_share < 0.05 {
            // Future-work mode: no strict traffic to protect, so place
            // BE by minimum η instead of packing it into a corner.
            let tags = vec![0.0; slices.len()];
            choose_strict_slice(slices, &tags, profile, 0.0)
                .or_else(|| choose_best_effort_slice(slices, profile))
                .map(Placement::on_slice)
        } else {
            choose_best_effort_slice(slices, profile).map(Placement::on_slice)
        }
    }

    fn reconfigure(&mut self, ctx: &ReconfigCtx<'_>) -> Option<Geometry> {
        let be_profile = ctx.be_model.map(|m| *ctx.catalog.profile(m));
        if let Some(p) = &be_profile {
            self.be_fbr_hint = p.fbr;
        }
        let total = ctx.window_strict_requests + ctx.window_be_requests;
        if total > 0 {
            self.window_strict_share = ctx.window_strict_requests as f64 / total as f64;
        }
        if !self.config.dynamic_reconfig {
            return None;
        }
        self.reconfigurator.step(
            ctx.gpu.geometry(),
            ctx.window_be_requests,
            self.monitor_window_secs,
            be_profile.as_ref(),
        )
    }
}

/// Builds one [`Protean`] per worker.
#[derive(Debug, Clone)]
pub struct ProteanBuilder {
    config: ProteanConfig,
    monitor_window_secs: f64,
}

impl ProteanBuilder {
    /// The paper configuration with the paper's 2 s monitor interval.
    pub fn paper() -> Self {
        ProteanBuilder {
            config: ProteanConfig::paper(),
            monitor_window_secs: 2.0,
        }
    }

    /// The Oracle comparison configuration.
    pub fn oracle() -> Self {
        ProteanBuilder {
            config: ProteanConfig::oracle(),
            monitor_window_secs: 2.0,
        }
    }

    /// PROTEAN plus the §6.2 future-work extension (tail-aware
    /// best-effort placement when no strict traffic is present).
    pub fn tail_aware() -> Self {
        let mut config = ProteanConfig::paper();
        config.name = "PROTEAN+BE-tail";
        config.be_tail_aware = true;
        ProteanBuilder {
            config,
            monitor_window_secs: 2.0,
        }
    }

    /// A builder from a custom configuration.
    pub fn with_config(config: ProteanConfig, monitor_window_secs: f64) -> Self {
        ProteanBuilder {
            config,
            monitor_window_secs,
        }
    }
}

impl SchemeBuilder for ProteanBuilder {
    fn build(&self, _worker: usize) -> Box<dyn Scheme> {
        Box::new(Protean::new(self.config.clone(), self.monitor_window_secs))
    }

    fn name(&self) -> &'static str {
        self.config.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protean_cluster::{run_simulation, ClusterConfig};
    use protean_metrics::record::Class;
    use protean_models::{Catalog, ModelId};
    use protean_sim::SimDuration;
    use protean_trace::{TraceConfig, TraceShape};

    fn trace(rps: f64, secs: f64) -> TraceConfig {
        TraceConfig {
            shape: TraceShape::constant(rps),
            duration: SimDuration::from_secs(secs),
            strict_model: ModelId::ResNet50,
            strict_fraction: 0.5,
            be_pool: vec![ModelId::MobileNet, ModelId::ShuffleNetV2],
            be_rotation_period: SimDuration::from_secs(20.0),
            batch_arrivals: false,
        }
    }

    #[test]
    fn protean_serves_mixed_load_compliantly() {
        let config = ClusterConfig::small_test();
        let result = run_simulation(&config, &ProteanBuilder::paper(), &trace(600.0, 45.0));
        let catalog = Catalog::new();
        let slo = |m: ModelId| catalog.profile(m).slo();
        let compliance = result.metrics.slo_compliance(&slo);
        assert!(compliance > 0.95, "compliance {compliance}");
        assert_eq!(result.scheme, "PROTEAN");
        assert!(result.metrics.count(Class::BestEffort) > 0);
    }

    #[test]
    fn strict_batches_avoid_the_smallest_slice_under_be_load() {
        // Direct unit check on place(): with BE memory queued, a strict
        // ResNet 50 batch must not land on the 1g (it does not even fit),
        // and with the 4g free it should pick the 4g.
        use protean_gpu::{Gpu, GpuId, SharingMode};
        use protean_sim::SimTime;
        let catalog = Catalog::new();
        let gpu = Gpu::new(
            GpuId(0),
            Geometry::g4_g2_g1(),
            SharingMode::Mps,
            SimTime::ZERO,
        );
        let mut scheme = Protean::new(ProteanConfig::paper(), 2.0);
        let ctx = PlacementCtx {
            now: SimTime::ZERO,
            gpu: &gpu,
            queued_be_mem_gb: 4.0,
            catalog: &catalog,
        };
        let placement = scheme
            .place(
                &ctx,
                &BatchView {
                    model: ModelId::ResNet50,
                    strict: true,
                    size: 128,
                },
            )
            .unwrap();
        assert_eq!(placement.slice, 0, "strict should take the 4g");
        // A BE MobileNet batch packs onto the smallest slice.
        let be = scheme
            .place(
                &ctx,
                &BatchView {
                    model: ModelId::MobileNet,
                    strict: false,
                    size: 128,
                },
            )
            .unwrap();
        assert_eq!(be.slice, 2, "BE should pack onto the 1g");
    }

    #[test]
    fn dynamic_reconfiguration_happens_under_shifting_be_load() {
        let mut config = ClusterConfig::small_test();
        config.seed = 7;
        // DPN 92 as BE (13.7 GB) forces (4g, 3g); MobileNet allows
        // (4g, 2g, 1g). Rotating between them triggers Algorithm 2.
        let t = TraceConfig {
            shape: TraceShape::constant(800.0),
            duration: SimDuration::from_secs(60.0),
            strict_model: ModelId::ShuffleNetV2,
            strict_fraction: 0.5,
            be_pool: vec![ModelId::Dpn92, ModelId::MobileNet],
            be_rotation_period: SimDuration::from_secs(10.0),
            batch_arrivals: true,
        };
        let result = run_simulation(&config, &ProteanBuilder::paper(), &t);
        assert!(
            result.reconfigs > 0,
            "expected at least one reconfiguration"
        );
        assert!(!result.geometry_timeline.is_empty());
    }

    #[test]
    fn oracle_config_fires_immediately() {
        let c = ProteanConfig::oracle();
        assert_eq!(c.reconfigurator.wait_limit, 0);
        assert_eq!(c.reconfigurator.ewma_alpha, 1.0);
        assert_eq!(c.name, "Oracle");
    }
}
