//! Eq. 2: the slowdown factor `η` used to choose strict-request slices.

use protean_gpu::Slice;
use protean_models::ModelProfile;

/// The Eq. 2 slowdown factor of placing one batch of `profile` on
/// `slice`:
///
/// ```text
/// η = RDF × max( bw_k·sm_k + Σ_i bw_i·sm_i , 1 )
/// ```
///
/// The bandwidth sum covers the incoming job itself, the jobs already
/// resident on the slice, and — via `tag_value` — the best-effort load
/// Algorithm 1 has earmarked for this slice but not yet placed
/// (`tag_value` is the fraction of the slice's memory BE requests will
/// occupy; `be_fbr_hint` is the expected per-batch FBR of that BE
/// model). All FBRs are scaled to the slice's bandwidth share.
///
/// # Example
///
/// ```
/// use protean::eta;
/// use protean_gpu::{Slice, SliceProfile, SharingMode};
/// use protean_models::{catalog, ModelId};
/// use protean_sim::SimTime;
///
/// let cat = catalog();
/// let resnet = cat.profile(ModelId::ResNet50);
/// let empty_4g = Slice::new(SliceProfile::G4, SharingMode::Mps, SimTime::ZERO);
/// let empty_1g = Slice::new(SliceProfile::G1, SharingMode::Mps, SimTime::ZERO);
/// // The 1g slice is worse for ResNet 50: heavy resource deficiency
/// // (its RDF there exceeds the 4g's).
/// assert!(eta(resnet, &empty_1g, 0.0, 0.0) > 1.3 * eta(resnet, &empty_4g, 0.0, 0.0));
/// ```
pub fn eta(profile: &ModelProfile, slice: &Slice, tag_value: f64, be_fbr_hint: f64) -> f64 {
    let sp = slice.profile();
    let rdf = profile.rdf(sp);
    let own_share = profile.fbr / sp.bandwidth_fraction();
    let be_share = tag_value.clamp(0.0, 1.0) * be_fbr_hint / sp.bandwidth_fraction();
    let total = slice.fbr_load() + own_share + be_share;
    // Contention-only Eq. 1 (the job's solo starvation on a small slice
    // is already in its RDF), normalised by the job's own demand, plus
    // the super-additive MPS cache term per co-runner.
    let contention = (total / own_share.max(1.0)).max(1.0);
    let cache = protean_gpu::slice::MPS_CACHE_PENALTY * slice.job_count() as f64;
    rdf * (contention + cache)
}

#[cfg(test)]
mod tests {
    use super::*;
    use protean_gpu::{JobId, JobSpec, SharingMode, SliceProfile};
    use protean_models::{catalog, ModelId};
    use protean_sim::{SimDuration, SimTime};

    fn mps(profile: SliceProfile) -> Slice {
        Slice::new(profile, SharingMode::Mps, SimTime::ZERO)
    }

    #[test]
    fn empty_large_slice_has_eta_one_for_li_model() {
        let cat = catalog();
        let shuffle = cat.profile(ModelId::ShuffleNetV2);
        let s = mps(SliceProfile::G7);
        let e = eta(shuffle, &s, 0.0, 0.0);
        assert!((e - 1.0).abs() < 1e-9, "eta {e}");
    }

    #[test]
    fn resident_jobs_raise_eta() {
        let cat = catalog();
        let resnet = cat.profile(ModelId::ResNet50);
        let mut s = mps(SliceProfile::G4);
        let base = eta(resnet, &s, 0.0, 0.0);
        s.admit(
            SimTime::ZERO,
            JobSpec {
                id: JobId(1),
                solo: SimDuration::from_millis(100.0),
                fbr: 0.5,
                mem_gb: 4.0,
            },
        )
        .unwrap();
        let loaded = eta(resnet, &s, 0.0, 0.0);
        assert!(loaded > base, "loaded {loaded} <= base {base}");
    }

    #[test]
    fn tag_value_penalises_be_destined_slices() {
        let cat = catalog();
        let resnet = cat.profile(ModelId::ResNet50);
        let s = mps(SliceProfile::G3);
        let untagged = eta(resnet, &s, 0.0, 0.5);
        let tagged = eta(resnet, &s, 1.0, 0.5);
        assert!(tagged > untagged);
        // Hint without tag contributes nothing.
        assert_eq!(eta(resnet, &s, 0.0, 0.9), untagged);
    }

    #[test]
    fn eta_trades_deficiency_against_interference() {
        // A busy 4g vs an empty 3g: once the 4g is loaded enough, the
        // empty 3g (higher RDF, no interference) should win — the
        // essence of Guideline 2.
        let cat = catalog();
        let resnet = cat.profile(ModelId::ResNet50);
        let mut busy_4g = mps(SliceProfile::G4);
        for i in 0..3 {
            busy_4g
                .admit(
                    SimTime::ZERO,
                    JobSpec {
                        id: JobId(i),
                        solo: SimDuration::from_millis(100.0),
                        fbr: 0.45,
                        mem_gb: 4.0,
                    },
                )
                .unwrap();
        }
        let idle_3g = mps(SliceProfile::G3);
        assert!(
            eta(resnet, &idle_3g, 0.0, 0.0) < eta(resnet, &busy_4g, 0.0, 0.0),
            "idle 3g should beat a saturated 4g"
        );
    }
}
