//! Request-trace generation matching the paper's workload setup (§5).
//!
//! The paper drives its cluster with two real traces, scaled:
//!
//! * the **Wikipedia** trace — diurnal and very flat (peak:mean ≈
//!   316:303 ≈ 1.04) — scaled so the *mean* rate is ~5000 rps for the
//!   vision models (128 rps for language models);
//! * the **Twitter** trace — erratic, with a large peak-to-mean ratio
//!   (4561:2969 ≈ 1.54) — scaled so the *peak* is ~5000 rps.
//!
//! Neither archived dataset is available here, so this crate generates
//! synthetic traces with the same published statistics: a smooth
//! sinusoidal "diurnal" profile for Wiki, and a bursty piecewise profile
//! for Twitter, both realised as non-homogeneous Poisson arrivals.
//! Requests are annotated strict/best-effort at a configurable ratio
//! (default 50/50); strict requests target a fixed model while the BE
//! model is re-rolled from a pool every ~20 s (§5).
//!
//! # Example
//!
//! ```
//! use protean_trace::{TraceConfig, TraceShape};
//! use protean_models::ModelId;
//! use protean_sim::{RngFactory, SimDuration};
//!
//! let cfg = TraceConfig {
//!     shape: TraceShape::constant(100.0),
//!     duration: SimDuration::from_secs(10.0),
//!     strict_model: ModelId::ResNet50,
//!     strict_fraction: 0.5,
//!     be_pool: vec![ModelId::MobileNet],
//!     be_rotation_period: SimDuration::from_secs(20.0),
//!     batch_arrivals: false,
//! };
//! let trace = cfg.generate(&RngFactory::new(1));
//! assert!(!trace.requests().is_empty());
//! let stats = trace.stats();
//! assert!((stats.mean_rps - 100.0).abs() < 15.0);
//! ```

pub mod io;

use protean_models::{catalog, ModelId};
use protean_sim::{RngFactory, SimDuration, SimRng, SimTime};

/// Identifier of a single user request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

/// One user request as it arrives at the gateway.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Unique id, increasing with arrival order.
    pub id: RequestId,
    /// Arrival instant at the gateway.
    pub arrival: SimTime,
    /// The inference model this request invokes.
    pub model: ModelId,
    /// `true` for strict-SLO requests; `false` for best-effort (§5:
    /// strictness is user-annotated).
    pub strict: bool,
}

/// The arrival-rate profile of a trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceShape {
    /// Constant rate (used in the §2.2 motivational experiment).
    Constant {
        /// Requests per second.
        rps: f64,
    },
    /// Wiki-like diurnal profile: a gentle sinusoid around the mean.
    WikiDiurnal {
        /// Mean requests per second (the paper scales this to ~5000).
        mean_rps: f64,
        /// Peak-to-mean ratio (paper: 316/303 ≈ 1.043).
        peak_to_mean: f64,
        /// Length of one "day" in simulated time. Compressed so a short
        /// simulation sees the diurnal swing.
        period: SimDuration,
    },
    /// Twitter-like erratic profile: piecewise-constant random bursts.
    TwitterBursty {
        /// Peak requests per second (the paper scales this to ~5000).
        peak_rps: f64,
        /// Peak-to-mean ratio (paper: 4561/2969 ≈ 1.536).
        peak_to_mean: f64,
        /// Duration of each burst segment.
        segment: SimDuration,
    },
    /// Square-wave pulse: `high_rps` for the ON fraction of each
    /// period, `low_rps` for the rest. An ON level above fleet capacity
    /// builds a backlog whose OFF-phase drain is pure event processing
    /// with no interleaved arrivals — the admission-control stress
    /// regime, and (because batch arrivals pin engine epochs to arrival
    /// instants) the regime where drain-side work dominates.
    Pulse {
        /// Requests per second during the ON fraction.
        high_rps: f64,
        /// Requests per second during the OFF fraction (may be 0).
        low_rps: f64,
        /// Length of one ON+OFF cycle.
        period: SimDuration,
        /// ON fraction of each period, in `(0, 1]`.
        duty: f64,
    },
    /// A base profile with flash-crowd bursts superimposed: λ(t) is the
    /// base shape's rate plus the sum of every burst window covering
    /// `t`. This is the diurnal-plus-flash-crowd composition the
    /// adversarial scenario catalog drives (wiki base, pulse-like burst
    /// windows), realised as one non-homogeneous Poisson process so the
    /// burst arrivals interleave with — rather than replace — the base
    /// traffic.
    Overlay {
        /// The underlying profile the bursts ride on.
        base: Box<TraceShape>,
        /// Burst windows, additive and allowed to overlap.
        bursts: Vec<BurstWindow>,
    },
}

/// One additive flash-crowd burst window of [`TraceShape::Overlay`].
#[derive(Debug, Clone, PartialEq)]
pub struct BurstWindow {
    /// Burst onset.
    pub start: SimTime,
    /// Burst length.
    pub duration: SimDuration,
    /// Extra arrival rate, added to the base profile while the window
    /// is active (requests per second, must be positive).
    pub add_rps: f64,
}

impl TraceShape {
    /// A constant-rate profile.
    pub fn constant(rps: f64) -> Self {
        TraceShape::Constant { rps }
    }

    /// The Wiki profile at the paper's published peak-to-mean ratio,
    /// with a 300 s compressed "day".
    pub fn wiki(mean_rps: f64) -> Self {
        TraceShape::WikiDiurnal {
            mean_rps,
            peak_to_mean: 316.0 / 303.0,
            period: SimDuration::from_secs(300.0),
        }
    }

    /// The Twitter profile at the paper's published peak-to-mean ratio,
    /// with 5 s burst segments.
    pub fn twitter(peak_rps: f64) -> Self {
        TraceShape::TwitterBursty {
            peak_rps,
            peak_to_mean: 4561.0 / 2969.0,
            segment: SimDuration::from_secs(5.0),
        }
    }

    /// A half-duty square wave: `high_rps` for the first half of each
    /// `period`, silent for the second half.
    pub fn pulse(high_rps: f64, period: SimDuration) -> Self {
        TraceShape::Pulse {
            high_rps,
            low_rps: 0.0,
            period,
            duty: 0.5,
        }
    }

    /// `base` with `bursts` superimposed (see [`TraceShape::Overlay`]).
    pub fn overlay(base: TraceShape, bursts: Vec<BurstWindow>) -> Self {
        TraceShape::Overlay {
            base: Box::new(base),
            bursts,
        }
    }
}

/// Full description of a trace to generate.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// The arrival-rate profile (in requests per second).
    pub shape: TraceShape,
    /// Trace length.
    pub duration: SimDuration,
    /// The model strict requests invoke.
    pub strict_model: ModelId,
    /// Fraction of requests that are strict (paper default 0.5; the
    /// sensitivity study uses 0.75, 0.25, 1.0 and 0.0).
    pub strict_fraction: f64,
    /// Models the BE requests rotate through (ignored when
    /// `strict_fraction == 1.0`). May be empty only in that case.
    pub be_pool: Vec<ModelId>,
    /// How often the BE model is re-rolled (§5: every ~20 s).
    pub be_rotation_period: SimDuration,
    /// When `true` (the paper's setup), requests arrive as pre-formed
    /// workload *batches*: the arrival process runs at
    /// `rate / batch_size` and each arrival carries a full batch of
    /// same-class, same-model requests. The paper's rates and batch
    /// sizes (e.g. 500 rps at batch 128) only admit its SLOs under this
    /// reading — assembling 128 singles online would exceed the SLO
    /// before execution even starts.
    pub batch_arrivals: bool,
}

impl TraceConfig {
    /// Generates the trace deterministically from `factory`.
    ///
    /// # Panics
    ///
    /// Panics if `strict_fraction` is outside `[0, 1]`, or if the BE pool
    /// is empty while BE requests can occur.
    pub fn generate(&self, factory: &RngFactory) -> Trace {
        assert!(
            (0.0..=1.0).contains(&self.strict_fraction),
            "strict fraction {} out of range",
            self.strict_fraction
        );
        assert!(
            self.strict_fraction >= 1.0 || !self.be_pool.is_empty(),
            "BE pool may not be empty when BE requests can occur"
        );
        let mut arrivals_rng = factory.stream("trace.arrivals");
        let mut class_rng = factory.stream("trace.class");
        let mut rotation_rng = factory.stream("trace.rotation");
        let mut shape_rng = factory.stream("trace.shape");

        let batch_size = if self.batch_arrivals {
            catalog().profile(self.strict_model).batch_size.max(1)
        } else {
            1
        };
        let rate = RateProfile::new(&self.shape, self.duration, &mut shape_rng);
        let arrival_times = poisson_arrivals(
            &rate,
            self.duration,
            f64::from(batch_size),
            &mut arrivals_rng,
        );

        // Pre-roll the BE model schedule so it is independent of the
        // arrival count.
        let rotation_period = self.be_rotation_period;
        let rotations = (self.duration.as_micros() / rotation_period.as_micros().max(1)) + 1;
        let be_schedule: Vec<ModelId> = (0..rotations)
            .map(|_| {
                if self.be_pool.is_empty() {
                    self.strict_model
                } else {
                    *rotation_rng.choose(&self.be_pool)
                }
            })
            .collect();

        let mut requests = Vec::with_capacity(arrival_times.len() * batch_size as usize);
        let mut next_id = 0u64;
        for arrival in arrival_times {
            let strict = class_rng.chance(self.strict_fraction);
            let model = if strict {
                self.strict_model
            } else {
                let slot = (arrival.as_micros() / rotation_period.as_micros().max(1)) as usize;
                be_schedule[slot.min(be_schedule.len() - 1)]
            };
            for _ in 0..batch_size {
                requests.push(Request {
                    id: RequestId(next_id),
                    arrival,
                    model,
                    strict,
                });
                next_id += 1;
            }
        }
        Trace {
            requests,
            duration: self.duration,
        }
    }

    /// A lazily-generated view of the same trace: [`TraceStream`]
    /// yields exactly the `Request` sequence [`TraceConfig::generate`]
    /// materializes — bit-identical ids, arrivals, models and classes —
    /// while holding O(duration / rotation_period) state instead of
    /// O(requests). See the [`TraceStream`] docs for why the sequences
    /// cannot drift.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`TraceConfig::generate`].
    pub fn stream(&self, factory: &RngFactory) -> TraceStream {
        assert!(
            (0.0..=1.0).contains(&self.strict_fraction),
            "strict fraction {} out of range",
            self.strict_fraction
        );
        assert!(
            self.strict_fraction >= 1.0 || !self.be_pool.is_empty(),
            "BE pool may not be empty when BE requests can occur"
        );
        let arrivals_rng = factory.stream("trace.arrivals");
        let class_rng = factory.stream("trace.class");
        let mut rotation_rng = factory.stream("trace.rotation");
        let mut shape_rng = factory.stream("trace.shape");

        let batch_size = if self.batch_arrivals {
            catalog().profile(self.strict_model).batch_size.max(1)
        } else {
            1
        };
        let rate = RateProfile::new(&self.shape, self.duration, &mut shape_rng);
        let rotation_period_us = self.be_rotation_period.as_micros().max(1);
        let rotations = (self.duration.as_micros() / rotation_period_us) + 1;
        let be_schedule: Vec<ModelId> = (0..rotations)
            .map(|_| {
                if self.be_pool.is_empty() {
                    self.strict_model
                } else {
                    *rotation_rng.choose(&self.be_pool)
                }
            })
            .collect();
        let per_arrival = f64::from(batch_size);
        let lambda_max = rate.max_rate / per_arrival;
        TraceStream {
            arrivals_rng,
            class_rng,
            rate,
            be_schedule,
            strict_model: self.strict_model,
            strict_fraction: self.strict_fraction,
            rotation_period_us,
            batch_size,
            per_arrival,
            lambda_max,
            horizon_secs: self.duration.as_secs_f64(),
            duration: self.duration,
            t: 0.0,
            next_id: 0,
            pending: None,
            emitted_in_batch: 0,
        }
    }
}

/// A generator-backed request stream: the streaming twin of
/// [`TraceConfig::generate`].
///
/// The equivalence argument rests on the RNG architecture: generation
/// draws from four *independent* labeled streams ("trace.arrivals",
/// "trace.class", "trace.rotation", "trace.shape"), so interleaving
/// class draws between arrival draws — which the lazy path does and
/// the materialized path does not — cannot change any stream's
/// per-draw sequence. The shape profile and the BE rotation schedule
/// are still built eagerly (they are O(duration / segment) and
/// O(duration / rotation_period), independent of the request count);
/// only the Poisson thinning loop, which dominates memory at fleet
/// scale, runs lazily. The `trace_stream_*` proptests pin
/// element-for-element equality with `generate`, and the engine-level
/// golden tests pin digest equality of full simulations.
#[derive(Debug, Clone)]
pub struct TraceStream {
    arrivals_rng: SimRng,
    class_rng: SimRng,
    rate: RateProfile,
    be_schedule: Vec<ModelId>,
    strict_model: ModelId,
    strict_fraction: f64,
    rotation_period_us: u64,
    batch_size: u32,
    per_arrival: f64,
    lambda_max: f64,
    horizon_secs: f64,
    duration: SimDuration,
    /// Thinning-loop clock, in seconds.
    t: f64,
    next_id: u64,
    /// The accepted arrival currently being expanded into a batch.
    pending: Option<(SimTime, ModelId, bool)>,
    emitted_in_batch: u32,
}

impl TraceStream {
    /// The configured trace length.
    pub fn duration(&self) -> SimDuration {
        self.duration
    }

    /// Every model that can appear in this stream: the strict model
    /// (when strict requests can occur) plus every model the BE
    /// rotation schedule actually rolled (when BE requests can occur),
    /// deduplicated. Lets callers that need the distinct-model set —
    /// e.g. the engine's prewarm pass — bound their scan without
    /// walking the whole stream.
    pub fn model_universe(&self) -> Vec<ModelId> {
        let mut out = Vec::new();
        if self.strict_fraction > 0.0 {
            out.push(self.strict_model);
        }
        if self.strict_fraction < 1.0 {
            for &m in &self.be_schedule {
                if !out.contains(&m) {
                    out.push(m);
                }
            }
        }
        out
    }
}

impl Iterator for TraceStream {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        loop {
            // Drain the batch the last accepted arrival carries.
            if let Some((arrival, model, strict)) = self.pending {
                if self.emitted_in_batch < self.batch_size {
                    self.emitted_in_batch += 1;
                    let id = RequestId(self.next_id);
                    self.next_id += 1;
                    return Some(Request {
                        id,
                        arrival,
                        model,
                        strict,
                    });
                }
                self.pending = None;
            }
            // Thin the homogeneous λ_max process down to λ(t) — the
            // identical draw sequence `poisson_arrivals` consumes.
            loop {
                self.t += self.arrivals_rng.exponential(self.lambda_max);
                if self.t >= self.horizon_secs {
                    return None;
                }
                if self.arrivals_rng.uniform() * self.lambda_max
                    < self.rate.rate_at(self.t) / self.per_arrival
                {
                    break;
                }
            }
            let arrival = SimTime::from_secs(self.t);
            let strict = self.class_rng.chance(self.strict_fraction);
            let model = if strict {
                self.strict_model
            } else {
                let slot = (arrival.as_micros() / self.rotation_period_us) as usize;
                self.be_schedule[slot.min(self.be_schedule.len() - 1)]
            };
            self.pending = Some((arrival, model, strict));
            self.emitted_in_batch = 0;
        }
    }
}

/// One-request lookahead over an arrival source, materialised or
/// streamed.
///
/// The sharded cluster engine's coordinator peels *runs* of consecutive
/// arrivals and must see the next arrival instant before committing to
/// admit it into the current epoch — without materialising a streamed
/// trace (a [`TraceStream`] generates arrivals lazily precisely so
/// fleet-scale runs never hold the request vector). `Lookahead` buffers
/// exactly one pending request: `peek_arrival` advances the underlying
/// source at most one element ahead of `next`, so iteration order, RNG
/// consumption and memory footprint are identical to driving the source
/// directly.
#[derive(Debug)]
pub struct Lookahead<I: Iterator<Item = Request>> {
    inner: I,
    buffered: Option<Request>,
}

impl<I: Iterator<Item = Request>> Lookahead<I> {
    /// Wraps an arrival source.
    pub fn new(inner: I) -> Self {
        Lookahead {
            inner,
            buffered: None,
        }
    }

    /// The next request without consuming it.
    pub fn peek(&mut self) -> Option<&Request> {
        if self.buffered.is_none() {
            self.buffered = self.inner.next();
        }
        self.buffered.as_ref()
    }

    /// The next request's arrival instant without consuming it.
    pub fn peek_arrival(&mut self) -> Option<SimTime> {
        self.peek().map(|r| r.arrival)
    }
}

impl<I: Iterator<Item = Request>> Iterator for Lookahead<I> {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        self.buffered.take().or_else(|| self.inner.next())
    }
}

/// A generated trace: requests sorted by arrival time.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    requests: Vec<Request>,
    duration: SimDuration,
}

impl Trace {
    /// Builds a trace directly from parts (used by replay/import paths;
    /// requests must be sorted by arrival).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the requests are not sorted.
    pub fn from_parts(requests: Vec<Request>, duration: SimDuration) -> Trace {
        debug_assert!(
            requests.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "requests must be sorted by arrival"
        );
        Trace { requests, duration }
    }

    /// The requests in arrival order.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Consumes the trace, returning the request vector.
    pub fn into_requests(self) -> Vec<Request> {
        self.requests
    }

    /// The configured trace length.
    pub fn duration(&self) -> SimDuration {
        self.duration
    }

    /// Arrival-rate statistics over 1 s buckets.
    pub fn stats(&self) -> TraceStats {
        let secs = self.duration.as_secs_f64().ceil().max(1.0) as usize;
        let mut buckets = vec![0u64; secs];
        for r in &self.requests {
            let idx = (r.arrival.as_secs_f64().floor() as usize).min(secs - 1);
            buckets[idx] += 1;
        }
        let total = self.requests.len() as u64;
        let mean_rps = total as f64 / self.duration.as_secs_f64().max(1e-9);
        let peak_rps = buckets.iter().copied().max().unwrap_or(0) as f64;
        let strict = self.requests.iter().filter(|r| r.strict).count() as u64;
        TraceStats {
            total,
            strict,
            mean_rps,
            peak_rps,
        }
    }
}

/// Summary statistics of a generated trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStats {
    /// Total requests.
    pub total: u64,
    /// Strict requests.
    pub strict: u64,
    /// Mean arrival rate over the trace.
    pub mean_rps: f64,
    /// Maximum 1 s-bucket arrival rate.
    pub peak_rps: f64,
}

impl TraceStats {
    /// Peak-to-mean ratio of the realised trace.
    pub fn peak_to_mean(&self) -> f64 {
        if self.mean_rps <= 0.0 {
            0.0
        } else {
            self.peak_rps / self.mean_rps
        }
    }
}

/// A piecewise view of λ(t) with a global maximum, suitable for Poisson
/// thinning.
#[derive(Debug, Clone)]
struct RateProfile {
    kind: RateKind,
    max_rate: f64,
}

#[derive(Debug, Clone)]
enum RateKind {
    Constant(f64),
    Sinusoid {
        mean: f64,
        amplitude: f64,
        period_secs: f64,
    },
    Segments {
        rates: Vec<f64>,
        segment_secs: f64,
    },
    Pulse {
        high: f64,
        low: f64,
        period_secs: f64,
        on_secs: f64,
    },
    Overlay {
        base: Box<RateProfile>,
        /// `(start_secs, end_secs, add_rps)` per burst window.
        bursts: Vec<(f64, f64, f64)>,
    },
}

impl RateProfile {
    fn new(shape: &TraceShape, duration: SimDuration, rng: &mut SimRng) -> Self {
        match shape {
            TraceShape::Constant { rps } => {
                assert!(*rps > 0.0, "rate must be positive");
                RateProfile {
                    kind: RateKind::Constant(*rps),
                    max_rate: *rps,
                }
            }
            TraceShape::WikiDiurnal {
                mean_rps,
                peak_to_mean,
                period,
            } => {
                assert!(*mean_rps > 0.0 && *peak_to_mean >= 1.0);
                let amplitude = peak_to_mean - 1.0;
                RateProfile {
                    kind: RateKind::Sinusoid {
                        mean: *mean_rps,
                        amplitude,
                        period_secs: period.as_secs_f64(),
                    },
                    max_rate: mean_rps * peak_to_mean,
                }
            }
            TraceShape::TwitterBursty {
                peak_rps,
                peak_to_mean,
                segment,
            } => {
                assert!(*peak_rps > 0.0 && *peak_to_mean >= 1.0);
                let n = (duration.as_secs_f64() / segment.as_secs_f64())
                    .ceil()
                    .max(1.0) as usize;
                // Draw raw burst multipliers, then normalise so the
                // realised max/mean matches the published ratio and the
                // max equals `peak_rps`.
                let raw: Vec<f64> = (0..n)
                    .map(|_| {
                        // Heavy-ish tail: occasional spikes over a calm base.
                        let base = rng.uniform_range(0.55, 0.95);
                        if rng.chance(0.12) {
                            base + rng.uniform_range(0.5, 1.2)
                        } else {
                            base
                        }
                    })
                    .collect();
                let raw_mean = raw.iter().sum::<f64>() / n as f64;
                let raw_max = raw.iter().cloned().fold(f64::MIN, f64::max);
                // Affine-map multipliers so max/mean == peak_to_mean.
                let target_ratio = *peak_to_mean;
                let ratio = raw_max / raw_mean;
                let rates: Vec<f64> = if n == 1 || ratio <= 1.0 {
                    vec![*peak_rps; n]
                } else {
                    // Solve (raw + c) scaled: (max+c)/(mean+c) = target.
                    let c = (raw_max - target_ratio * raw_mean) / (target_ratio - 1.0);
                    let shifted_max = raw_max + c;
                    raw.iter()
                        .map(|&x| ((x + c) / shifted_max * peak_rps).max(0.0))
                        .collect()
                };
                let max_rate = rates.iter().cloned().fold(0.0, f64::max);
                RateProfile {
                    kind: RateKind::Segments {
                        rates,
                        segment_secs: segment.as_secs_f64(),
                    },
                    max_rate,
                }
            }
            TraceShape::Pulse {
                high_rps,
                low_rps,
                period,
                duty,
            } => {
                assert!(*high_rps > 0.0, "pulse high rate must be positive");
                assert!(*low_rps >= 0.0, "pulse low rate may not be negative");
                assert!(
                    *duty > 0.0 && *duty <= 1.0,
                    "pulse duty {duty} outside (0, 1]"
                );
                let period_secs = period.as_secs_f64();
                assert!(period_secs > 0.0, "pulse period must be positive");
                RateProfile {
                    kind: RateKind::Pulse {
                        high: *high_rps,
                        low: *low_rps,
                        period_secs,
                        on_secs: period_secs * duty,
                    },
                    max_rate: high_rps.max(*low_rps),
                }
            }
            TraceShape::Overlay { base, bursts } => {
                let base = RateProfile::new(base, duration, rng);
                let windows: Vec<(f64, f64, f64)> = bursts
                    .iter()
                    .map(|b| {
                        assert!(b.add_rps > 0.0, "burst add_rps must be positive");
                        let start = b.start.as_secs_f64();
                        let len = b.duration.as_secs_f64();
                        assert!(len > 0.0, "burst duration must be positive");
                        (start, start + len, b.add_rps)
                    })
                    .collect();
                // λ_max = base max + the largest sum of simultaneously
                // active bursts (boundary sweep over window edges; the
                // thinning bound must dominate λ(t) everywhere).
                let mut edges: Vec<(f64, f64)> = Vec::with_capacity(windows.len() * 2);
                for &(s, e, add) in &windows {
                    edges.push((s, add));
                    edges.push((e, -add));
                }
                edges.sort_by(|a, b| a.partial_cmp(b).expect("finite burst edges"));
                let (mut active, mut peak_extra) = (0.0f64, 0.0f64);
                for (_, delta) in edges {
                    active += delta;
                    peak_extra = peak_extra.max(active);
                }
                let max_rate = base.max_rate + peak_extra;
                RateProfile {
                    kind: RateKind::Overlay {
                        base: Box::new(base),
                        bursts: windows,
                    },
                    max_rate,
                }
            }
        }
    }

    fn rate_at(&self, t_secs: f64) -> f64 {
        match &self.kind {
            RateKind::Constant(r) => *r,
            RateKind::Sinusoid {
                mean,
                amplitude,
                period_secs,
            } => {
                mean * (1.0 + amplitude * (2.0 * std::f64::consts::PI * t_secs / period_secs).sin())
            }
            RateKind::Segments {
                rates,
                segment_secs,
            } => {
                let idx = ((t_secs / segment_secs) as usize).min(rates.len() - 1);
                rates[idx]
            }
            RateKind::Pulse {
                high,
                low,
                period_secs,
                on_secs,
            } => {
                if t_secs.rem_euclid(*period_secs) < *on_secs {
                    *high
                } else {
                    *low
                }
            }
            RateKind::Overlay { base, bursts } => {
                let extra: f64 = bursts
                    .iter()
                    .filter(|(s, e, _)| (*s..*e).contains(&t_secs))
                    .map(|(_, _, add)| add)
                    .sum();
                base.rate_at(t_secs) + extra
            }
        }
    }
}

/// Non-homogeneous Poisson arrivals over `[0, duration)` by thinning.
/// `per_arrival` scales the rate down (batch arrivals carry
/// `batch_size` requests each).
fn poisson_arrivals(
    rate: &RateProfile,
    duration: SimDuration,
    per_arrival: f64,
    rng: &mut SimRng,
) -> Vec<SimTime> {
    let mut out = Vec::new();
    let horizon = duration.as_secs_f64();
    let lambda_max = rate.max_rate / per_arrival;
    let mut t = 0.0f64;
    loop {
        t += rng.exponential(lambda_max);
        if t >= horizon {
            break;
        }
        if rng.uniform() * lambda_max < rate.rate_at(t) / per_arrival {
            out.push(SimTime::from_secs(t));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn base_config(shape: TraceShape, secs: f64) -> TraceConfig {
        TraceConfig {
            shape,
            duration: SimDuration::from_secs(secs),
            strict_model: ModelId::ResNet50,
            strict_fraction: 0.5,
            be_pool: vec![ModelId::MobileNet, ModelId::ShuffleNetV2],
            be_rotation_period: SimDuration::from_secs(20.0),
            batch_arrivals: false,
        }
    }

    #[test]
    fn constant_trace_hits_target_rate() {
        let trace = base_config(TraceShape::constant(500.0), 60.0).generate(&RngFactory::new(7));
        let stats = trace.stats();
        assert!(
            (stats.mean_rps - 500.0).abs() < 25.0,
            "mean {}",
            stats.mean_rps
        );
    }

    #[test]
    fn arrivals_sorted_and_in_horizon() {
        let trace = base_config(TraceShape::constant(200.0), 30.0).generate(&RngFactory::new(3));
        let mut last = SimTime::ZERO;
        for r in trace.requests() {
            assert!(r.arrival >= last);
            assert!(r.arrival < SimTime::from_secs(30.0));
            last = r.arrival;
        }
    }

    #[test]
    fn lookahead_peek_is_transparent_over_a_stream() {
        let cfg = base_config(TraceShape::wiki(300.0), 10.0);
        let materialised = cfg.generate(&RngFactory::new(9)).into_requests();
        let mut ahead = Lookahead::new(cfg.stream(&RngFactory::new(9)));
        let mut seen = Vec::new();
        // Interleave peeks with consumption: peeking must never skip,
        // duplicate or reorder an element.
        while let Some(ta) = ahead.peek_arrival() {
            let r = ahead.next().expect("peeked");
            assert_eq!(r.arrival, ta);
            assert_eq!(ahead.peek().copied(), ahead.peek().copied());
            seen.push(r);
        }
        assert!(ahead.next().is_none());
        assert_eq!(seen, materialised);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = base_config(TraceShape::wiki(1000.0), 20.0);
        let a = cfg.generate(&RngFactory::new(11));
        let b = cfg.generate(&RngFactory::new(11));
        assert_eq!(a, b);
        let c = cfg.generate(&RngFactory::new(12));
        assert_ne!(a, c);
    }

    #[test]
    fn wiki_is_flat() {
        let trace = base_config(TraceShape::wiki(2000.0), 120.0).generate(&RngFactory::new(5));
        let stats = trace.stats();
        assert!(
            (stats.mean_rps - 2000.0).abs() < 100.0,
            "mean {}",
            stats.mean_rps
        );
        // Published ratio 1.043 plus Poisson noise.
        assert!(
            stats.peak_to_mean() < 1.15,
            "ratio {}",
            stats.peak_to_mean()
        );
    }

    #[test]
    fn twitter_is_bursty_with_published_ratio() {
        let trace = base_config(TraceShape::twitter(5000.0), 120.0).generate(&RngFactory::new(5));
        let stats = trace.stats();
        let ratio = stats.peak_to_mean();
        assert!(
            (1.3..=1.8).contains(&ratio),
            "peak-to-mean {ratio} outside Twitter band"
        );
        // Peak should be near the 5000 rps target.
        assert!(
            (stats.peak_rps - 5000.0).abs() < 800.0,
            "peak {}",
            stats.peak_rps
        );
        // Resulting mean ≈ 3000 rps (§6.2).
        assert!(
            (stats.mean_rps - 3250.0).abs() < 600.0,
            "mean {}",
            stats.mean_rps
        );
    }

    #[test]
    fn pulse_alternates_between_levels() {
        let trace = base_config(
            TraceShape::pulse(1000.0, SimDuration::from_secs(10.0)),
            60.0,
        )
        .generate(&RngFactory::new(13));
        let stats = trace.stats();
        // Half duty: mean ≈ high / 2, peak ≈ high.
        assert!(
            (stats.mean_rps - 500.0).abs() < 50.0,
            "mean {}",
            stats.mean_rps
        );
        assert!(
            (stats.peak_rps - 1000.0).abs() < 150.0,
            "peak {}",
            stats.peak_rps
        );
        // The OFF half of each period is silent.
        for r in trace.requests() {
            assert!(
                r.arrival.as_secs_f64().rem_euclid(10.0) < 5.0,
                "arrival {} fell in an OFF window",
                r.arrival.as_secs_f64()
            );
        }
    }

    #[test]
    fn overlay_bursts_raise_the_rate_only_inside_their_windows() {
        // Flat 200 rps base with a 1000 rps burst over [20, 40): the
        // burst window must run ~6x hotter than the rest of the trace.
        let shape = TraceShape::overlay(
            TraceShape::constant(200.0),
            vec![BurstWindow {
                start: SimTime::from_secs(20.0),
                duration: SimDuration::from_secs(20.0),
                add_rps: 1000.0,
            }],
        );
        let trace = base_config(shape, 60.0).generate(&RngFactory::new(17));
        let in_burst = |r: &Request| (20.0..40.0).contains(&r.arrival.as_secs_f64());
        let burst = trace.requests().iter().filter(|r| in_burst(r)).count() as f64;
        let outside = trace.requests().iter().filter(|r| !in_burst(r)).count() as f64;
        let burst_rps = burst / 20.0;
        let outside_rps = outside / 40.0;
        assert!(
            (burst_rps - 1200.0).abs() < 120.0,
            "burst window rate {burst_rps}"
        );
        assert!(
            (outside_rps - 200.0).abs() < 40.0,
            "outside-window rate {outside_rps}"
        );
    }

    #[test]
    fn overlapping_bursts_stack_additively() {
        // Two 300 rps bursts overlapping on [10, 15): the overlap runs
        // at base + 600.
        let shape = TraceShape::overlay(
            TraceShape::constant(100.0),
            vec![
                BurstWindow {
                    start: SimTime::from_secs(5.0),
                    duration: SimDuration::from_secs(10.0),
                    add_rps: 300.0,
                },
                BurstWindow {
                    start: SimTime::from_secs(10.0),
                    duration: SimDuration::from_secs(10.0),
                    add_rps: 300.0,
                },
            ],
        );
        let trace = base_config(shape, 30.0).generate(&RngFactory::new(23));
        let overlap = trace
            .requests()
            .iter()
            .filter(|r| (10.0..15.0).contains(&r.arrival.as_secs_f64()))
            .count() as f64
            / 5.0;
        assert!((overlap - 700.0).abs() < 120.0, "overlap rate {overlap}");
    }

    #[test]
    #[should_panic]
    fn overlay_rejects_non_positive_burst_rate() {
        let shape = TraceShape::overlay(
            TraceShape::constant(100.0),
            vec![BurstWindow {
                start: SimTime::ZERO,
                duration: SimDuration::from_secs(1.0),
                add_rps: 0.0,
            }],
        );
        let _ = base_config(shape, 10.0).generate(&RngFactory::new(1));
    }

    #[test]
    fn strict_fraction_respected() {
        let mut cfg = base_config(TraceShape::constant(1000.0), 30.0);
        cfg.strict_fraction = 0.75;
        let trace = cfg.generate(&RngFactory::new(9));
        let stats = trace.stats();
        let frac = stats.strict as f64 / stats.total as f64;
        assert!((frac - 0.75).abs() < 0.02, "strict fraction {frac}");
        for r in trace.requests() {
            if r.strict {
                assert_eq!(r.model, ModelId::ResNet50);
            } else {
                assert_ne!(r.model, ModelId::ResNet50);
            }
        }
    }

    #[test]
    fn all_strict_needs_no_pool() {
        let mut cfg = base_config(TraceShape::constant(100.0), 10.0);
        cfg.strict_fraction = 1.0;
        cfg.be_pool.clear();
        let trace = cfg.generate(&RngFactory::new(2));
        assert!(trace.requests().iter().all(|r| r.strict));
    }

    #[test]
    #[should_panic]
    fn be_without_pool_panics() {
        let mut cfg = base_config(TraceShape::constant(100.0), 10.0);
        cfg.be_pool.clear();
        let _ = cfg.generate(&RngFactory::new(2));
    }

    #[test]
    fn be_model_rotates_over_time() {
        let mut cfg = base_config(TraceShape::constant(500.0), 120.0);
        cfg.strict_fraction = 0.0;
        cfg.be_pool = vec![
            ModelId::MobileNet,
            ModelId::ShuffleNetV2,
            ModelId::ResNet18,
            ModelId::SeNet18,
        ];
        let trace = cfg.generate(&RngFactory::new(21));
        let models: std::collections::HashSet<ModelId> =
            trace.requests().iter().map(|r| r.model).collect();
        assert!(models.len() > 1, "BE model never rotated");
        // Within one rotation slot the BE model is constant; checking
        // the first slot is sufficient and cheap.
        if let Some(r) = trace.requests().first() {
            let slot = r.arrival.as_secs_f64() as u64 / 20;
            let slot_models: std::collections::HashSet<ModelId> = trace
                .requests()
                .iter()
                .filter(|q| q.arrival.as_secs_f64() as u64 / 20 == slot)
                .map(|q| q.model)
                .collect();
            assert_eq!(slot_models.len(), 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// Request ids are dense and arrival-ordered for any shape/seed.
        #[test]
        fn prop_ids_dense_and_ordered(seed in 0u64..500, rps in 50.0f64..400.0) {
            let trace = base_config(TraceShape::constant(rps), 5.0)
                .generate(&RngFactory::new(seed));
            for (i, r) in trace.requests().iter().enumerate() {
                prop_assert_eq!(r.id, RequestId(i as u64));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// The streamed request sequence equals `generate`'s output
        /// element for element — every id, arrival, model and class —
        /// across shapes, seeds, class mixes and both arrival modes.
        #[test]
        fn prop_trace_stream_matches_generate_element_for_element(
            seed in 0u64..1000,
            shape_kind in 0usize..5,
            strict_pct in 0usize..5,
            batch_arrivals in proptest::bool::ANY,
        ) {
            let shape = match shape_kind {
                0 => TraceShape::constant(300.0),
                1 => TraceShape::wiki(400.0),
                2 => TraceShape::twitter(600.0),
                3 => TraceShape::pulse(800.0, SimDuration::from_secs(4.0)),
                _ => TraceShape::overlay(
                    TraceShape::wiki(300.0),
                    vec![
                        BurstWindow {
                            start: SimTime::from_secs(3.0),
                            duration: SimDuration::from_secs(4.0),
                            add_rps: 700.0,
                        },
                        BurstWindow {
                            start: SimTime::from_secs(5.0),
                            duration: SimDuration::from_secs(6.0),
                            add_rps: 400.0,
                        },
                    ],
                ),
            };
            let mut cfg = base_config(shape, 15.0);
            cfg.strict_fraction = [0.0, 0.25, 0.5, 0.75, 1.0][strict_pct];
            cfg.batch_arrivals = batch_arrivals;
            let factory = RngFactory::new(seed);
            let materialized = cfg.generate(&factory).into_requests();
            let streamed: Vec<Request> = cfg.stream(&factory).collect();
            prop_assert_eq!(streamed.len(), materialized.len());
            for (i, (s, m)) in streamed.iter().zip(&materialized).enumerate() {
                prop_assert_eq!(s, m, "request {} diverged", i);
            }
        }
    }

    #[test]
    fn stream_model_universe_covers_every_generated_model() {
        let mut cfg = base_config(TraceShape::wiki(800.0), 60.0);
        cfg.be_pool = vec![
            ModelId::MobileNet,
            ModelId::ShuffleNetV2,
            ModelId::ResNet18,
            ModelId::SeNet18,
        ];
        for seed in [1, 5, 21] {
            let factory = RngFactory::new(seed);
            let universe = cfg.stream(&factory).model_universe();
            for r in cfg.generate(&factory).requests() {
                assert!(
                    universe.contains(&r.model),
                    "model {:?} not in universe {universe:?}",
                    r.model
                );
            }
        }
    }

    #[test]
    fn stream_is_restartable_from_a_fresh_handle() {
        // Two streams from the same factory are independent generators
        // over the identical sequence — the engine relies on this for
        // its prewarm pre-pass.
        let cfg = base_config(TraceShape::twitter(500.0), 20.0);
        let factory = RngFactory::new(77);
        let a: Vec<Request> = cfg.stream(&factory).collect();
        let b: Vec<Request> = cfg.stream(&factory).collect();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }
}
