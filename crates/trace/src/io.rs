//! Trace serialization: CSV export/import so real request traces (or
//! traces produced by other tools) can be replayed through the
//! simulator, and generated traces can be inspected offline.
//!
//! Format: a header line `arrival_us,model,strict` followed by one row
//! per request. Request ids are assigned by row order on import.

use std::fmt;
use std::io::{BufRead, Write};

use protean_models::ModelId;
use protean_sim::{SimDuration, SimTime};

use crate::{Request, RequestId, Trace};

/// Error produced while reading a trace file.
#[derive(Debug)]
pub enum ReadTraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line (1-based line number and reason).
    Parse {
        /// Line number, counting the header as line 1.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// An error with the originating file path attached
    /// ([`Trace::read_csv_file`] wraps every failure this way, so
    /// user-facing messages name the file, not just the line).
    InFile {
        /// The path that was being read.
        path: String,
        /// The underlying failure.
        source: Box<ReadTraceError>,
    },
}

impl ReadTraceError {
    /// Wraps the error with the file path it occurred in. Already
    /// path-annotated errors are left untouched (the innermost path is
    /// the one that was actually being read).
    pub fn in_file(self, path: &std::path::Path) -> ReadTraceError {
        match self {
            e @ ReadTraceError::InFile { .. } => e,
            e => ReadTraceError::InFile {
                path: path.display().to_string(),
                source: Box::new(e),
            },
        }
    }

    /// The 1-based line the error points at, if it is a parse error.
    pub fn line(&self) -> Option<usize> {
        match self {
            ReadTraceError::Parse { line, .. } => Some(*line),
            ReadTraceError::InFile { source, .. } => source.line(),
            ReadTraceError::Io(_) => None,
        }
    }
}

impl fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadTraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            ReadTraceError::Parse { line, reason } => {
                write!(f, "trace line {line}: {reason}")
            }
            ReadTraceError::InFile { path, source } => {
                write!(f, "{path}: {source}")
            }
        }
    }
}

impl std::error::Error for ReadTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadTraceError::Io(e) => Some(e),
            ReadTraceError::Parse { .. } => None,
            ReadTraceError::InFile { source, .. } => Some(source.as_ref()),
        }
    }
}

impl From<std::io::Error> for ReadTraceError {
    fn from(e: std::io::Error) -> Self {
        ReadTraceError::Io(e)
    }
}

/// The CSV header written and expected by this module.
pub const CSV_HEADER: &str = "arrival_us,model,strict";

impl Trace {
    /// Writes the trace as CSV. The writer may be passed by `&mut`
    /// reference.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_csv<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "{CSV_HEADER}")?;
        for r in self.requests() {
            writeln!(
                w,
                "{},{},{}",
                r.arrival.as_micros(),
                r.model.slug(),
                u8::from(r.strict)
            )?;
        }
        Ok(())
    }

    /// Reads a trace from CSV produced by [`Trace::write_csv`] (or any
    /// file in the same format). Rows must be sorted by arrival time.
    /// `duration` is inferred as the last arrival rounded up to the
    /// next second (or may be overridden afterwards by the caller's
    /// simulation config).
    ///
    /// # Errors
    ///
    /// Returns [`ReadTraceError`] on I/O failure, a bad header, an
    /// unknown model slug, a malformed field, or out-of-order arrivals.
    pub fn read_csv<R: BufRead>(r: R) -> Result<Trace, ReadTraceError> {
        let mut lines = r.lines();
        let header = lines.next().ok_or_else(|| ReadTraceError::Parse {
            line: 1,
            reason: "empty file".into(),
        })??;
        if header.trim() != CSV_HEADER {
            return Err(ReadTraceError::Parse {
                line: 1,
                reason: format!("expected header '{CSV_HEADER}', got '{header}'"),
            });
        }
        let mut requests = Vec::new();
        let mut last = SimTime::ZERO;
        for (i, line) in lines.enumerate() {
            let line_no = i + 2;
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let parse = |reason: String| ReadTraceError::Parse {
                line: line_no,
                reason,
            };
            let mut fields = line.split(',');
            let arrival_us: u64 = fields
                .next()
                .ok_or_else(|| parse("missing arrival_us".into()))?
                .trim()
                .parse()
                .map_err(|_| parse("arrival_us is not an integer".into()))?;
            let slug = fields
                .next()
                .ok_or_else(|| parse("missing model".into()))?
                .trim();
            let model = ModelId::from_slug(slug)
                .ok_or_else(|| parse(format!("unknown model slug '{slug}'")))?;
            let strict = match fields
                .next()
                .ok_or_else(|| parse("missing strict".into()))?
                .trim()
            {
                "0" => false,
                "1" => true,
                other => return Err(parse(format!("strict must be 0 or 1, got '{other}'"))),
            };
            if fields.next().is_some() {
                return Err(parse("too many fields".into()));
            }
            let arrival = SimTime::from_micros(arrival_us);
            if arrival < last {
                return Err(parse("arrivals are not sorted by time".into()));
            }
            last = arrival;
            requests.push(Request {
                id: RequestId(requests.len() as u64),
                arrival,
                model,
                strict,
            });
        }
        let duration = SimDuration::from_secs(last.as_secs_f64().ceil().max(1.0));
        Ok(Trace::from_parts(requests, duration))
    }

    /// Opens `path` and reads it with [`Trace::read_csv`], annotating
    /// every failure — including the open itself — with the file path,
    /// so a malformed row in a user-authored trace reports
    /// `<path>: trace line N: <reason>` instead of a bare line number.
    ///
    /// # Errors
    ///
    /// Returns [`ReadTraceError::InFile`] wrapping the underlying I/O
    /// or parse error.
    pub fn read_csv_file<P: AsRef<std::path::Path>>(path: P) -> Result<Trace, ReadTraceError> {
        let path = path.as_ref();
        let file = std::fs::File::open(path).map_err(|e| ReadTraceError::Io(e).in_file(path))?;
        Trace::read_csv(std::io::BufReader::new(file)).map_err(|e| e.in_file(path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceConfig, TraceShape};
    use proptest::prelude::*;
    use protean_sim::RngFactory;

    fn sample_trace() -> Trace {
        TraceConfig {
            shape: TraceShape::constant(200.0),
            duration: SimDuration::from_secs(5.0),
            strict_model: ModelId::ResNet50,
            strict_fraction: 0.5,
            be_pool: vec![ModelId::MobileNet, ModelId::ShuffleNetV2],
            be_rotation_period: SimDuration::from_secs(2.0),
            batch_arrivals: true,
        }
        .generate(&RngFactory::new(5))
    }

    #[test]
    fn csv_round_trips() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        trace.write_csv(&mut buf).unwrap();
        let back = Trace::read_csv(buf.as_slice()).unwrap();
        assert_eq!(back.requests(), trace.requests());
    }

    #[test]
    fn header_is_validated() {
        let err = Trace::read_csv("bogus,header\n1,resnet50,1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ReadTraceError::Parse { line: 1, .. }));
    }

    #[test]
    fn bad_rows_are_located() {
        let csv = format!("{CSV_HEADER}\n100,resnet50,1\nxxx,resnet50,0\n");
        let err = Trace::read_csv(csv.as_bytes()).unwrap_err();
        match err {
            ReadTraceError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected {other:?}"),
        }
        let csv = format!("{CSV_HEADER}\n100,notamodel,1\n");
        assert!(Trace::read_csv(csv.as_bytes()).is_err());
        let csv = format!("{CSV_HEADER}\n100,resnet50,2\n");
        assert!(Trace::read_csv(csv.as_bytes()).is_err());
        let csv = format!("{CSV_HEADER}\n100,resnet50,1,extra\n");
        assert!(Trace::read_csv(csv.as_bytes()).is_err());
    }

    #[test]
    fn unsorted_arrivals_rejected() {
        let csv = format!("{CSV_HEADER}\n200,resnet50,1\n100,resnet50,0\n");
        let err = Trace::read_csv(csv.as_bytes()).unwrap_err();
        assert!(matches!(err, ReadTraceError::Parse { line: 3, .. }));
    }

    #[test]
    fn file_errors_carry_the_path_and_line() {
        let dir = std::env::temp_dir().join("protean_trace_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("truncated.csv");
        // A truncated row: the strict field is missing entirely.
        std::fs::write(
            &path,
            format!("{CSV_HEADER}\n100,resnet50,1\n200,resnet50\n"),
        )
        .unwrap();
        let err = Trace::read_csv_file(&path).unwrap_err();
        assert_eq!(err.line(), Some(3));
        let msg = err.to_string();
        assert!(msg.contains("truncated.csv"), "no path in '{msg}'");
        assert!(msg.contains("line 3"), "no line in '{msg}'");
        assert!(msg.contains("missing strict"), "no reason in '{msg}'");
        // A missing file reports the path too.
        let gone = dir.join("nonexistent.csv");
        let err = Trace::read_csv_file(&gone).unwrap_err();
        assert!(err.line().is_none());
        assert!(err.to_string().contains("nonexistent.csv"));
        // A well-formed file round-trips through the path API.
        let ok = dir.join("ok.csv");
        let trace = sample_trace();
        let mut buf = Vec::new();
        trace.write_csv(&mut buf).unwrap();
        std::fs::write(&ok, &buf).unwrap();
        let back = Trace::read_csv_file(&ok).unwrap();
        assert_eq!(back.requests(), trace.requests());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn in_file_wrapping_is_idempotent() {
        let err = ReadTraceError::Parse {
            line: 4,
            reason: "boom".into(),
        }
        .in_file(std::path::Path::new("a.csv"))
        .in_file(std::path::Path::new("b.csv"));
        // The innermost path — the file actually read — wins.
        assert_eq!(err.to_string(), "a.csv: trace line 4: boom");
    }

    #[test]
    fn blank_lines_are_skipped_and_duration_inferred() {
        let csv = format!("{CSV_HEADER}\n100,resnet50,1\n\n2500000,mobilenet,0\n");
        let t = Trace::read_csv(csv.as_bytes()).unwrap();
        assert_eq!(t.requests().len(), 2);
        assert_eq!(t.duration(), SimDuration::from_secs(3.0));
        assert_eq!(t.requests()[1].model, ModelId::MobileNet);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// Any generated trace survives a CSV round trip exactly.
        #[test]
        fn prop_round_trip(seed in 0u64..500) {
            let trace = TraceConfig {
                shape: TraceShape::constant(150.0),
                duration: SimDuration::from_secs(3.0),
                strict_model: ModelId::Bert,
                strict_fraction: 0.3,
                be_pool: vec![ModelId::Albert, ModelId::RoBerta],
                be_rotation_period: SimDuration::from_secs(1.0),
                batch_arrivals: false,
            }
            .generate(&RngFactory::new(seed));
            let mut buf = Vec::new();
            trace.write_csv(&mut buf).unwrap();
            let back = Trace::read_csv(buf.as_slice()).unwrap();
            prop_assert_eq!(back.requests(), trace.requests());
        }
    }
}
