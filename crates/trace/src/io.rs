//! Trace serialization: CSV export/import so real request traces (or
//! traces produced by other tools) can be replayed through the
//! simulator, and generated traces can be inspected offline.
//!
//! Format: a header line `arrival_us,model,strict` followed by one row
//! per request. Request ids are assigned by row order on import.

use std::fmt;
use std::io::{BufRead, Write};

use protean_models::ModelId;
use protean_sim::{SimDuration, SimTime};

use crate::{Request, RequestId, Trace};

/// Error produced while reading a trace file.
#[derive(Debug)]
pub enum ReadTraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line (1-based line number and reason).
    Parse {
        /// Line number, counting the header as line 1.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadTraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            ReadTraceError::Parse { line, reason } => {
                write!(f, "trace line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for ReadTraceError {}

impl From<std::io::Error> for ReadTraceError {
    fn from(e: std::io::Error) -> Self {
        ReadTraceError::Io(e)
    }
}

/// The CSV header written and expected by this module.
pub const CSV_HEADER: &str = "arrival_us,model,strict";

impl Trace {
    /// Writes the trace as CSV. The writer may be passed by `&mut`
    /// reference.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_csv<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "{CSV_HEADER}")?;
        for r in self.requests() {
            writeln!(
                w,
                "{},{},{}",
                r.arrival.as_micros(),
                r.model.slug(),
                u8::from(r.strict)
            )?;
        }
        Ok(())
    }

    /// Reads a trace from CSV produced by [`Trace::write_csv`] (or any
    /// file in the same format). Rows must be sorted by arrival time.
    /// `duration` is inferred as the last arrival rounded up to the
    /// next second (or may be overridden afterwards by the caller's
    /// simulation config).
    ///
    /// # Errors
    ///
    /// Returns [`ReadTraceError`] on I/O failure, a bad header, an
    /// unknown model slug, a malformed field, or out-of-order arrivals.
    pub fn read_csv<R: BufRead>(r: R) -> Result<Trace, ReadTraceError> {
        let mut lines = r.lines();
        let header = lines.next().ok_or_else(|| ReadTraceError::Parse {
            line: 1,
            reason: "empty file".into(),
        })??;
        if header.trim() != CSV_HEADER {
            return Err(ReadTraceError::Parse {
                line: 1,
                reason: format!("expected header '{CSV_HEADER}', got '{header}'"),
            });
        }
        let mut requests = Vec::new();
        let mut last = SimTime::ZERO;
        for (i, line) in lines.enumerate() {
            let line_no = i + 2;
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let parse = |reason: String| ReadTraceError::Parse {
                line: line_no,
                reason,
            };
            let mut fields = line.split(',');
            let arrival_us: u64 = fields
                .next()
                .ok_or_else(|| parse("missing arrival_us".into()))?
                .trim()
                .parse()
                .map_err(|_| parse("arrival_us is not an integer".into()))?;
            let slug = fields
                .next()
                .ok_or_else(|| parse("missing model".into()))?
                .trim();
            let model = ModelId::from_slug(slug)
                .ok_or_else(|| parse(format!("unknown model slug '{slug}'")))?;
            let strict = match fields
                .next()
                .ok_or_else(|| parse("missing strict".into()))?
                .trim()
            {
                "0" => false,
                "1" => true,
                other => return Err(parse(format!("strict must be 0 or 1, got '{other}'"))),
            };
            if fields.next().is_some() {
                return Err(parse("too many fields".into()));
            }
            let arrival = SimTime::from_micros(arrival_us);
            if arrival < last {
                return Err(parse("arrivals are not sorted by time".into()));
            }
            last = arrival;
            requests.push(Request {
                id: RequestId(requests.len() as u64),
                arrival,
                model,
                strict,
            });
        }
        let duration = SimDuration::from_secs(last.as_secs_f64().ceil().max(1.0));
        Ok(Trace::from_parts(requests, duration))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceConfig, TraceShape};
    use proptest::prelude::*;
    use protean_sim::RngFactory;

    fn sample_trace() -> Trace {
        TraceConfig {
            shape: TraceShape::constant(200.0),
            duration: SimDuration::from_secs(5.0),
            strict_model: ModelId::ResNet50,
            strict_fraction: 0.5,
            be_pool: vec![ModelId::MobileNet, ModelId::ShuffleNetV2],
            be_rotation_period: SimDuration::from_secs(2.0),
            batch_arrivals: true,
        }
        .generate(&RngFactory::new(5))
    }

    #[test]
    fn csv_round_trips() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        trace.write_csv(&mut buf).unwrap();
        let back = Trace::read_csv(buf.as_slice()).unwrap();
        assert_eq!(back.requests(), trace.requests());
    }

    #[test]
    fn header_is_validated() {
        let err = Trace::read_csv("bogus,header\n1,resnet50,1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ReadTraceError::Parse { line: 1, .. }));
    }

    #[test]
    fn bad_rows_are_located() {
        let csv = format!("{CSV_HEADER}\n100,resnet50,1\nxxx,resnet50,0\n");
        let err = Trace::read_csv(csv.as_bytes()).unwrap_err();
        match err {
            ReadTraceError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected {other:?}"),
        }
        let csv = format!("{CSV_HEADER}\n100,notamodel,1\n");
        assert!(Trace::read_csv(csv.as_bytes()).is_err());
        let csv = format!("{CSV_HEADER}\n100,resnet50,2\n");
        assert!(Trace::read_csv(csv.as_bytes()).is_err());
        let csv = format!("{CSV_HEADER}\n100,resnet50,1,extra\n");
        assert!(Trace::read_csv(csv.as_bytes()).is_err());
    }

    #[test]
    fn unsorted_arrivals_rejected() {
        let csv = format!("{CSV_HEADER}\n200,resnet50,1\n100,resnet50,0\n");
        let err = Trace::read_csv(csv.as_bytes()).unwrap_err();
        assert!(matches!(err, ReadTraceError::Parse { line: 3, .. }));
    }

    #[test]
    fn blank_lines_are_skipped_and_duration_inferred() {
        let csv = format!("{CSV_HEADER}\n100,resnet50,1\n\n2500000,mobilenet,0\n");
        let t = Trace::read_csv(csv.as_bytes()).unwrap();
        assert_eq!(t.requests().len(), 2);
        assert_eq!(t.duration(), SimDuration::from_secs(3.0));
        assert_eq!(t.requests()[1].model, ModelId::MobileNet);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// Any generated trace survives a CSV round trip exactly.
        #[test]
        fn prop_round_trip(seed in 0u64..500) {
            let trace = TraceConfig {
                shape: TraceShape::constant(150.0),
                duration: SimDuration::from_secs(3.0),
                strict_model: ModelId::Bert,
                strict_fraction: 0.3,
                be_pool: vec![ModelId::Albert, ModelId::RoBerta],
                be_rotation_period: SimDuration::from_secs(1.0),
                batch_arrivals: false,
            }
            .generate(&RngFactory::new(seed));
            let mut buf = Vec::new();
            trace.write_csv(&mut buf).unwrap();
            let back = Trace::read_csv(buf.as_slice()).unwrap();
            prop_assert_eq!(back.requests(), trace.requests());
        }
    }
}
