//! The calibrated 22-model catalog.

use std::fmt;

use protean_gpu::SliceProfile;
use protean_sim::SimDuration;

/// SLO multiplier used throughout the paper: a strict request's deadline
/// is `3 ×` its batch execution latency on the full GPU (§5).
pub const DEFAULT_SLO_MULTIPLIER: f64 = 3.0;

/// Fraction of a batch's execution cost that does not shrink with
/// partial fill (kernel launches, weight reads); the remainder scales
/// linearly with the number of requests in the batch.
pub const BATCH_FIXED_COST_FRACTION: f64 = 0.3;

/// The application domain a model belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Image classification, batch size 128 (ImageNet-1k).
    Vision,
    /// Sequence classification, batch size 4 (Large Movie Review).
    Language,
}

/// The paper's interference classes, assigned from the Fig. 3 FBRs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterferenceClass {
    /// Low Interference (yellow bars in Fig. 3).
    Li,
    /// High Interference (orange bars in Fig. 3).
    Hi,
    /// Very High Interference — the language models of §6.2.
    Vhi,
}

/// Identifier of one of the paper's 22 workload models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ModelId {
    // -- Vision (batch 128) --
    /// ResNet 50 (HI).
    ResNet50,
    /// GoogleNet (LI).
    GoogleNet,
    /// DenseNet 121 (HI).
    DenseNet121,
    /// DPN 92 (HI, largest memory footprint).
    Dpn92,
    /// VGG 19 (HI).
    Vgg19,
    /// ResNet 18 (LI).
    ResNet18,
    /// MobileNet (LI).
    MobileNet,
    /// MobileNet V2 (LI).
    MobileNetV2,
    /// SENet 18 (LI).
    SeNet18,
    /// ShuffleNet V2 (LI, least deficiency-sensitive).
    ShuffleNetV2,
    /// EfficientNet-B0 (LI).
    EfficientNetB0,
    /// Simplified DLA (LI).
    SimplifiedDla,
    // -- Language (batch 4) --
    /// ALBERT (VHI).
    Albert,
    /// BERT (VHI).
    Bert,
    /// DeBERTa (VHI).
    DeBerta,
    /// DistilBERT (VHI).
    DistilBert,
    /// FlauBERT (VHI, longest execution).
    FlauBert,
    /// Funnel-Transformer (VHI).
    FunnelTransformer,
    /// RoBERTa (VHI).
    RoBerta,
    /// SqueezeBERT (VHI).
    SqueezeBert,
    /// OpenAI GPT-1 (VHI, generative).
    Gpt1,
    /// OpenAI GPT-2 (VHI, generative).
    Gpt2,
}

impl ModelId {
    /// All 22 models, vision first.
    pub const ALL: [ModelId; 22] = [
        ModelId::ResNet50,
        ModelId::GoogleNet,
        ModelId::DenseNet121,
        ModelId::Dpn92,
        ModelId::Vgg19,
        ModelId::ResNet18,
        ModelId::MobileNet,
        ModelId::MobileNetV2,
        ModelId::SeNet18,
        ModelId::ShuffleNetV2,
        ModelId::EfficientNetB0,
        ModelId::SimplifiedDla,
        ModelId::Albert,
        ModelId::Bert,
        ModelId::DeBerta,
        ModelId::DistilBert,
        ModelId::FlauBert,
        ModelId::FunnelTransformer,
        ModelId::RoBerta,
        ModelId::SqueezeBert,
        ModelId::Gpt1,
        ModelId::Gpt2,
    ];

    /// Stable dense index for array-backed lookup tables.
    pub fn index(self) -> usize {
        ModelId::ALL
            .iter()
            .position(|&m| m == self)
            .expect("every ModelId is in ALL")
    }

    /// A stable machine-readable slug (lowercase alphanumeric), used by
    /// trace files and the CLI.
    pub fn slug(self) -> &'static str {
        match self {
            ModelId::ResNet50 => "resnet50",
            ModelId::GoogleNet => "googlenet",
            ModelId::DenseNet121 => "densenet121",
            ModelId::Dpn92 => "dpn92",
            ModelId::Vgg19 => "vgg19",
            ModelId::ResNet18 => "resnet18",
            ModelId::MobileNet => "mobilenet",
            ModelId::MobileNetV2 => "mobilenetv2",
            ModelId::SeNet18 => "senet18",
            ModelId::ShuffleNetV2 => "shufflenetv2",
            ModelId::EfficientNetB0 => "efficientnetb0",
            ModelId::SimplifiedDla => "simplifieddla",
            ModelId::Albert => "albert",
            ModelId::Bert => "bert",
            ModelId::DeBerta => "deberta",
            ModelId::DistilBert => "distilbert",
            ModelId::FlauBert => "flaubert",
            ModelId::FunnelTransformer => "funneltransformer",
            ModelId::RoBerta => "roberta",
            ModelId::SqueezeBert => "squeezebert",
            ModelId::Gpt1 => "gpt1",
            ModelId::Gpt2 => "gpt2",
        }
    }

    /// Resolves a slug produced by [`ModelId::slug`].
    pub fn from_slug(slug: &str) -> Option<ModelId> {
        ModelId::ALL.into_iter().find(|m| m.slug() == slug)
    }

    /// The model's display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ModelId::ResNet50 => "ResNet 50",
            ModelId::GoogleNet => "GoogleNet",
            ModelId::DenseNet121 => "DenseNet 121",
            ModelId::Dpn92 => "DPN 92",
            ModelId::Vgg19 => "VGG 19",
            ModelId::ResNet18 => "ResNet 18",
            ModelId::MobileNet => "MobileNet",
            ModelId::MobileNetV2 => "MobileNet V2",
            ModelId::SeNet18 => "SENet 18",
            ModelId::ShuffleNetV2 => "ShuffleNet V2",
            ModelId::EfficientNetB0 => "EfficientNet-B0",
            ModelId::SimplifiedDla => "Simplified DLA",
            ModelId::Albert => "ALBERT",
            ModelId::Bert => "BERT",
            ModelId::DeBerta => "DeBERTa",
            ModelId::DistilBert => "DistilBERT",
            ModelId::FlauBert => "FlauBERT",
            ModelId::FunnelTransformer => "Funnel-Transformer",
            ModelId::RoBerta => "RoBERTa",
            ModelId::SqueezeBert => "SqueezeBERT",
            ModelId::Gpt1 => "GPT-1",
            ModelId::Gpt2 => "GPT-2",
        }
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The profiled quantities PROTEAN's policies consume for one model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelProfile {
    /// Which model this is.
    pub id: ModelId,
    /// Application domain (fixes the batch size and dataset).
    pub domain: Domain,
    /// `true` for the generative GPT models of Fig. 13.
    pub generative: bool,
    /// Interference class from the Fig. 3 FBR ranking.
    pub class: InterferenceClass,
    /// Requests per served batch (128 vision / 4 language, §5).
    pub batch_size: u32,
    /// GPU memory per in-flight batch, GB (weights + activations).
    pub mem_gb: f64,
    /// Solo batch execution time on the full GPU (`7g`).
    pub solo_7g: SimDuration,
    /// Fractional Bandwidth Requirement on the full GPU (Eq. 1's
    /// `bw × sm` product, Fig. 3).
    pub fbr: f64,
    /// Deficiency sensitivity `β` of the Amdahl-style RDF law.
    pub deficiency_beta: f64,
}

impl ModelProfile {
    /// The Resource Deficiency Factor on `slice`:
    /// `RDF = Solo_slice / Solo_7g ≥ 1` (§3).
    ///
    /// Modelled as `1 / (1 − β·(1 − min(c, b)))` where `c` and `b` are
    /// the slice's compute and bandwidth fractions — a model slows down
    /// according to whichever resource it loses more of.
    pub fn rdf(&self, slice: SliceProfile) -> f64 {
        let effective = slice.compute_fraction().min(slice.bandwidth_fraction());
        1.0 / (1.0 - self.deficiency_beta * (1.0 - effective))
    }

    /// Solo batch execution time on `slice` (`Solo_7g × RDF`).
    pub fn solo_on(&self, slice: SliceProfile) -> SimDuration {
        self.solo_7g.mul_f64(self.rdf(slice))
    }

    /// Fraction of a full batch's execution time a batch filled to
    /// `fill ∈ [0, 1]` takes: inference latency is affine in batch size
    /// — a fixed kernel-launch/weight-read floor
    /// ([`BATCH_FIXED_COST_FRACTION`]) plus a per-sample term.
    pub fn fill_factor(&self, fill: f64) -> f64 {
        BATCH_FIXED_COST_FRACTION + (1.0 - BATCH_FIXED_COST_FRACTION) * fill.clamp(0.0, 1.0)
    }

    /// Solo execution time on `slice` for a batch with `size` requests
    /// (possibly below the nominal batch size).
    pub fn solo_on_with_size(&self, slice: SliceProfile, size: u32) -> SimDuration {
        let fill = f64::from(size) / f64::from(self.batch_size.max(1));
        self.solo_on(slice).mul_f64(self.fill_factor(fill))
    }

    /// The strict-request SLO deadline at the default 3× multiplier.
    pub fn slo(&self) -> SimDuration {
        self.slo_with_multiplier(DEFAULT_SLO_MULTIPLIER)
    }

    /// The strict-request SLO deadline at a custom multiplier (the §6.2
    /// tight-SLO study uses 2×).
    ///
    /// # Panics
    ///
    /// Panics if `multiplier < 1`.
    pub fn slo_with_multiplier(&self, multiplier: f64) -> SimDuration {
        assert!(multiplier >= 1.0, "SLO below execution time: {multiplier}");
        self.solo_7g.mul_f64(multiplier)
    }

    /// `true` if one batch of this model fits in `slice`'s memory.
    pub fn fits_in(&self, slice: SliceProfile) -> bool {
        self.mem_gb <= slice.mem_gb() + 1e-9
    }

    /// The smallest profile that can hold one batch.
    pub fn smallest_fitting_slice(&self) -> SliceProfile {
        SliceProfile::ALL
            .into_iter()
            .find(|&s| self.fits_in(s))
            .expect("every model fits in 7g.40gb")
    }
}

/// The full 22-model catalog. Obtain via [`catalog`].
#[derive(Debug, Clone)]
pub struct Catalog {
    profiles: Vec<ModelProfile>,
}

/// Returns the calibrated catalog of all 22 paper workloads.
pub fn catalog() -> Catalog {
    Catalog::new()
}

const VISION_BATCH: u32 = 128;
const LANGUAGE_BATCH: u32 = 4;

impl Catalog {
    /// Builds the catalog (cheap; the data is `const`-like).
    pub fn new() -> Self {
        use Domain::{Language, Vision};
        use InterferenceClass::{Hi, Li, Vhi};
        let mk = |id, domain, class, generative, solo_ms: f64, mem, fbr, beta| ModelProfile {
            id,
            domain,
            generative,
            class,
            batch_size: match domain {
                Vision => VISION_BATCH,
                Language => LANGUAGE_BATCH,
            },
            mem_gb: mem,
            solo_7g: SimDuration::from_millis(solo_ms),
            fbr,
            deficiency_beta: beta,
        };
        let profiles = vec![
            mk(ModelId::ResNet50, Vision, Hi, false, 95.0, 6.0, 0.52, 0.55),
            mk(ModelId::GoogleNet, Vision, Li, false, 70.0, 4.0, 0.26, 0.30),
            mk(
                ModelId::DenseNet121,
                Vision,
                Hi,
                false,
                120.0,
                7.0,
                0.56,
                0.60,
            ),
            mk(ModelId::Dpn92, Vision, Hi, false, 160.0, 13.7, 0.66, 0.72),
            mk(ModelId::Vgg19, Vision, Hi, false, 140.0, 8.5, 0.62, 0.70),
            mk(ModelId::ResNet18, Vision, Li, false, 58.0, 3.5, 0.22, 0.25),
            mk(ModelId::MobileNet, Vision, Li, false, 52.0, 2.0, 0.14, 0.10),
            mk(
                ModelId::MobileNetV2,
                Vision,
                Li,
                false,
                55.0,
                2.2,
                0.15,
                0.12,
            ),
            mk(ModelId::SeNet18, Vision, Li, false, 65.0, 3.6, 0.24, 0.28),
            mk(
                ModelId::ShuffleNetV2,
                Vision,
                Li,
                false,
                50.0,
                2.5,
                0.12,
                0.03,
            ),
            mk(
                ModelId::EfficientNetB0,
                Vision,
                Li,
                false,
                75.0,
                3.2,
                0.20,
                0.20,
            ),
            mk(
                ModelId::SimplifiedDla,
                Vision,
                Li,
                false,
                60.0,
                3.0,
                0.16,
                0.30,
            ),
            mk(
                ModelId::Albert,
                Language,
                Vhi,
                false,
                110.0,
                3.0,
                0.50,
                0.936,
            ),
            mk(ModelId::Bert, Language, Vhi, false, 90.0, 3.4, 0.46, 0.80),
            mk(
                ModelId::DeBerta,
                Language,
                Vhi,
                false,
                150.0,
                4.5,
                0.52,
                0.85,
            ),
            mk(
                ModelId::DistilBert,
                Language,
                Vhi,
                false,
                60.0,
                2.2,
                0.40,
                0.70,
            ),
            mk(
                ModelId::FlauBert,
                Language,
                Vhi,
                false,
                185.0,
                4.0,
                0.48,
                0.82,
            ),
            mk(
                ModelId::FunnelTransformer,
                Language,
                Vhi,
                false,
                130.0,
                3.8,
                0.50,
                0.84,
            ),
            mk(
                ModelId::RoBerta,
                Language,
                Vhi,
                false,
                95.0,
                3.5,
                0.47,
                0.80,
            ),
            mk(
                ModelId::SqueezeBert,
                Language,
                Vhi,
                false,
                80.0,
                2.6,
                0.42,
                0.72,
            ),
            mk(ModelId::Gpt1, Language, Vhi, true, 120.0, 4.2, 0.62, 0.86),
            mk(ModelId::Gpt2, Language, Vhi, true, 190.0, 5.5, 0.67, 0.88),
        ];
        debug_assert_eq!(profiles.len(), ModelId::ALL.len());
        Catalog { profiles }
    }

    /// The profile for `id`.
    pub fn profile(&self, id: ModelId) -> &ModelProfile {
        &self.profiles[id.index()]
    }

    /// All profiles, in [`ModelId::ALL`] order.
    pub fn profiles(&self) -> &[ModelProfile] {
        &self.profiles
    }

    /// The 12 vision models.
    pub fn vision(&self) -> impl Iterator<Item = &ModelProfile> {
        self.profiles.iter().filter(|p| p.domain == Domain::Vision)
    }

    /// The 10 language models.
    pub fn language(&self) -> impl Iterator<Item = &ModelProfile> {
        self.profiles
            .iter()
            .filter(|p| p.domain == Domain::Language)
    }

    /// The non-generative language models (the Fig. 12 VHI set).
    pub fn vhi_non_generative(&self) -> impl Iterator<Item = &ModelProfile> {
        self.language().filter(|p| !p.generative)
    }

    /// The generative GPT models (Fig. 13).
    pub fn generative(&self) -> impl Iterator<Item = &ModelProfile> {
        self.profiles.iter().filter(|p| p.generative)
    }

    /// Models in the given interference class.
    pub fn in_class(&self, class: InterferenceClass) -> impl Iterator<Item = &ModelProfile> {
        self.profiles.iter().filter(move |p| p.class == class)
    }

    /// The pool of models whose class is "opposite" to `class` within
    /// the same domain — the paper rotates BE requests through the
    /// opposite-class pool of the strict model (§5).
    pub fn opposite_pool(&self, strict: ModelId) -> Vec<ModelId> {
        let p = *self.profile(strict);
        match p.domain {
            Domain::Vision => {
                let target = match p.class {
                    InterferenceClass::Li => InterferenceClass::Hi,
                    _ => InterferenceClass::Li,
                };
                self.vision()
                    .filter(|m| m.class == target)
                    .map(|m| m.id)
                    .collect()
            }
            // All language models are VHI; the BE pool is the other
            // non-generative LLMs (Fig. 13 rotates BE through the
            // "previously-seen LLMs").
            Domain::Language => self
                .vhi_non_generative()
                .filter(|m| m.id != strict)
                .map(|m| m.id)
                .collect(),
        }
    }
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn catalog_has_22_models_with_paper_batches() {
        let c = catalog();
        assert_eq!(c.profiles().len(), 22);
        assert_eq!(c.vision().count(), 12);
        assert_eq!(c.language().count(), 10);
        assert_eq!(c.generative().count(), 2);
        for p in c.vision() {
            assert_eq!(p.batch_size, 128);
        }
        for p in c.language() {
            assert_eq!(p.batch_size, 4);
            assert_eq!(p.class, InterferenceClass::Vhi);
        }
    }

    #[test]
    fn solo_times_in_paper_band() {
        // §5: batch sizes selected so 7g latency is ~50-200 ms.
        for p in catalog().profiles() {
            let ms = p.solo_7g.as_millis_f64();
            assert!((50.0..=200.0).contains(&ms), "{}: {ms} ms", p.id);
        }
    }

    #[test]
    fn memory_footprints_in_paper_band() {
        // §5: ~2 to 14 GB per batch.
        for p in catalog().profiles() {
            assert!(
                (2.0..=14.0).contains(&p.mem_gb),
                "{}: {} GB",
                p.id,
                p.mem_gb
            );
        }
    }

    #[test]
    fn dpn92_footprint_dominates() {
        // Fig. 7: DPN 92's footprint is up to 2.74× the other BE models'.
        let c = catalog();
        let dpn = c.profile(ModelId::Dpn92).mem_gb;
        let shuffle = c.profile(ModelId::ShuffleNetV2).mem_gb;
        assert!(dpn / shuffle > 2.7, "ratio {}", dpn / shuffle);
        for p in c.vision() {
            assert!(p.mem_gb <= dpn);
        }
    }

    #[test]
    fn llm_fbrs_exceed_vision_by_published_margin() {
        let c = catalog();
        let vis_mean: f64 = c.vision().map(|p| p.fbr).sum::<f64>() / 12.0;
        let llm_mean: f64 = c.vhi_non_generative().map(|p| p.fbr).sum::<f64>()
            / c.vhi_non_generative().count() as f64;
        let uplift = llm_mean / vis_mean - 1.0;
        // §6.2: "59% higher on average".
        assert!((0.45..=0.75).contains(&uplift), "uplift {uplift}");
        // Fig. 13: GPT FBRs up to 42% above the other LLMs.
        let gpt_max = c.generative().map(|p| p.fbr).fold(0.0, f64::max);
        assert!(
            (gpt_max / llm_mean - 1.0) > 0.3,
            "gpt uplift {}",
            gpt_max / llm_mean - 1.0
        );
    }

    #[test]
    fn albert_rdf_matches_paper() {
        // §2.2: ALBERT's batch execution grows 2.15× on a 3g slice.
        let rdf = catalog().profile(ModelId::Albert).rdf(SliceProfile::G3);
        assert!((rdf - 2.15).abs() < 0.05, "rdf {rdf}");
    }

    #[test]
    fn shufflenet_barely_deficiency_sensitive() {
        // §6.2: ShuffleNet V2 is <2% affected on the scheduling slices.
        let p = *catalog().profile(ModelId::ShuffleNetV2);
        assert!(p.rdf(SliceProfile::G3) < 1.02);
        assert!(p.rdf(SliceProfile::G4) < 1.02);
    }

    #[test]
    fn rdf_monotone_in_slice_size() {
        for p in catalog().profiles() {
            let mut last = f64::INFINITY;
            for s in SliceProfile::ALL {
                let rdf = p.rdf(s);
                assert!(rdf <= last + 1e-12, "{}: RDF not monotone at {s}", p.id);
                assert!(rdf >= 1.0 - 1e-12);
                last = rdf;
            }
            assert_eq!(p.rdf(SliceProfile::G7), 1.0);
        }
    }

    #[test]
    fn fill_factor_is_affine_and_bounded() {
        let p = *catalog().profile(ModelId::ResNet50);
        assert_eq!(p.fill_factor(1.0), 1.0);
        assert!((p.fill_factor(0.0) - BATCH_FIXED_COST_FRACTION).abs() < 1e-12);
        assert!((p.fill_factor(0.5) - 0.65).abs() < 1e-12);
        // Out-of-range fills are clamped.
        assert_eq!(p.fill_factor(2.0), 1.0);
        let full = p.solo_on_with_size(SliceProfile::G7, p.batch_size);
        assert_eq!(full, p.solo_7g);
        let half = p.solo_on_with_size(SliceProfile::G7, p.batch_size / 2);
        assert!(half < full && half > full.mul_f64(0.5));
    }

    #[test]
    fn slo_is_three_times_solo() {
        let p = *catalog().profile(ModelId::ResNet50);
        assert_eq!(p.slo(), p.solo_7g.mul_f64(3.0));
        assert_eq!(p.slo_with_multiplier(2.0), p.solo_7g.mul_f64(2.0));
    }

    #[test]
    fn smallest_fitting_slice_respects_memory() {
        let c = catalog();
        assert_eq!(
            c.profile(ModelId::Dpn92).smallest_fitting_slice(),
            SliceProfile::G3
        );
        assert_eq!(
            c.profile(ModelId::MobileNet).smallest_fitting_slice(),
            SliceProfile::G1
        );
        assert_eq!(
            c.profile(ModelId::Gpt2).smallest_fitting_slice(),
            SliceProfile::G2
        );
    }

    #[test]
    fn opposite_pool_swaps_classes() {
        let c = catalog();
        // Strict HI vision model -> BE pool is LI vision.
        for id in c.opposite_pool(ModelId::ResNet50) {
            assert_eq!(c.profile(id).class, InterferenceClass::Li);
        }
        // Strict LI vision model -> BE pool is HI vision.
        for id in c.opposite_pool(ModelId::ShuffleNetV2) {
            assert_eq!(c.profile(id).class, InterferenceClass::Hi);
        }
        // Strict GPT -> BE pool is the other non-generative LLMs.
        let pool = c.opposite_pool(ModelId::Gpt1);
        assert_eq!(pool.len(), 8);
        assert!(!pool.contains(&ModelId::Gpt1));
        assert!(!pool.contains(&ModelId::Gpt2));
    }

    #[test]
    fn slugs_round_trip() {
        for m in ModelId::ALL {
            assert_eq!(ModelId::from_slug(m.slug()), Some(m), "{m}");
            assert!(m
                .slug()
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
        assert_eq!(ModelId::from_slug("nope"), None);
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(ModelId::Dpn92.to_string(), "DPN 92");
        assert_eq!(ModelId::Gpt2.to_string(), "GPT-2");
        assert_eq!(ModelId::SimplifiedDla.to_string(), "Simplified DLA");
    }

    proptest! {
        /// RDF decreases (weakly) as effective resources grow, for any
        /// sensitivity in range.
        #[test]
        fn prop_rdf_law_monotone(beta in 0.0f64..0.95) {
            let mut p = *catalog().profile(ModelId::ResNet50);
            p.deficiency_beta = beta;
            let mut last = f64::INFINITY;
            for s in SliceProfile::ALL {
                let rdf = p.rdf(s);
                prop_assert!(rdf <= last + 1e-12);
                prop_assert!(rdf >= 1.0 - 1e-12);
                last = rdf;
            }
        }
    }
}
