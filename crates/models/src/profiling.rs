//! FBR estimation from co-location measurements.
//!
//! The paper (§3) estimates each job's Fractional Bandwidth Requirement
//! "by averaging the values obtained from solving the linear equations
//! derived from Equation 1 for multiple co-locations". This module
//! implements that profiling procedure: feed it slowdowns observed when
//! pairs of jobs were co-located under MPS, and it recovers per-job FBRs
//! by Gauss–Seidel iteration on the linear system
//! `slowdown(k, i) = fbr_k + fbr_i` (valid whenever the pair saturates
//! bandwidth, i.e. slowdown > 1).

use std::collections::HashMap;

/// One profiled co-location: two jobs ran together under MPS and the
/// first was observed to slow down by `slowdown` relative to its solo
/// time on the same slice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoLocationMeasurement<K> {
    /// The measured job.
    pub job: K,
    /// Its co-located partner.
    pub partner: K,
    /// `T_job / Solo_job` for the run, per Eq. 1 equal to
    /// `max(fbr_job + fbr_partner, 1)`.
    pub slowdown: f64,
}

/// Recovers per-job FBRs from pairwise co-location slowdowns.
///
/// Measurements with `slowdown <= 1` carry no equality information (the
/// pair did not saturate bandwidth) and are ignored. Jobs that appear
/// only in ignored measurements are absent from the result.
///
/// Returns the estimated FBR per job key. Estimates are clamped to be
/// non-negative.
///
/// # Example
///
/// ```
/// use protean_models::{estimate_fbr_from_pairs, CoLocationMeasurement};
/// let m = vec![
///     CoLocationMeasurement { job: "a", partner: "b", slowdown: 1.1 },
///     CoLocationMeasurement { job: "b", partner: "a", slowdown: 1.1 },
///     CoLocationMeasurement { job: "a", partner: "c", slowdown: 1.3 },
///     CoLocationMeasurement { job: "c", partner: "a", slowdown: 1.3 },
///     CoLocationMeasurement { job: "b", partner: "c", slowdown: 1.4 },
///     CoLocationMeasurement { job: "c", partner: "b", slowdown: 1.4 },
/// ];
/// let fbr = estimate_fbr_from_pairs(&m, 200);
/// // a+b = 1.1, a+c = 1.3, b+c = 1.4  =>  a=0.5, b=0.6, c=0.8
/// assert!((fbr["a"] - 0.5).abs() < 1e-6);
/// assert!((fbr["b"] - 0.6).abs() < 1e-6);
/// assert!((fbr["c"] - 0.8).abs() < 1e-6);
/// ```
pub fn estimate_fbr_from_pairs<K>(
    measurements: &[CoLocationMeasurement<K>],
    iterations: usize,
) -> HashMap<K, f64>
where
    K: Clone + Eq + std::hash::Hash + Ord,
{
    // Keep only saturated pairs: slowdown = fbr_a + fbr_b.
    let saturated: Vec<&CoLocationMeasurement<K>> = measurements
        .iter()
        .filter(|m| m.slowdown > 1.0 + 1e-12)
        .collect();
    let mut estimates: HashMap<K, f64> = HashMap::new();
    for m in &saturated {
        // Symmetric initial guess: split the measured total evenly.
        estimates.entry(m.job.clone()).or_insert(m.slowdown / 2.0);
        estimates
            .entry(m.partner.clone())
            .or_insert(m.slowdown / 2.0);
    }
    // Deterministic iteration order regardless of hash state.
    let mut keys: Vec<K> = estimates.keys().cloned().collect();
    keys.sort();
    for _ in 0..iterations {
        for key in &keys {
            let mut sum = 0.0;
            let mut count = 0usize;
            for m in &saturated {
                if m.job == *key {
                    sum += m.slowdown - estimates[&m.partner];
                    count += 1;
                } else if m.partner == *key {
                    sum += m.slowdown - estimates[&m.job];
                    count += 1;
                }
            }
            if count > 0 {
                let v = (sum / count as f64).max(0.0);
                estimates.insert(key.clone(), v);
            }
        }
    }
    estimates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{catalog, ModelId};
    use proptest::prelude::*;

    /// Generate synthetic pairwise measurements from ground-truth FBRs
    /// via Eq. 1, then check the profiler recovers them.
    fn measurements_from_truth(truth: &[(ModelId, f64)]) -> Vec<CoLocationMeasurement<ModelId>> {
        let mut out = Vec::new();
        for (i, &(a, fa)) in truth.iter().enumerate() {
            for &(b, fb) in truth.iter().skip(i + 1) {
                let slowdown = (fa + fb).max(1.0);
                out.push(CoLocationMeasurement {
                    job: a,
                    partner: b,
                    slowdown,
                });
                out.push(CoLocationMeasurement {
                    job: b,
                    partner: a,
                    slowdown,
                });
            }
        }
        out
    }

    #[test]
    fn recovers_catalog_hi_fbrs() {
        // The HI vision models all pairwise saturate (fbr sums > 1), so
        // their FBRs are exactly identifiable.
        let c = catalog();
        let truth: Vec<(ModelId, f64)> = [
            ModelId::ResNet50,
            ModelId::DenseNet121,
            ModelId::Vgg19,
            ModelId::Dpn92,
        ]
        .iter()
        .map(|&id| (id, c.profile(id).fbr))
        .collect();
        let est = estimate_fbr_from_pairs(&measurements_from_truth(&truth), 300);
        for (id, fbr) in truth {
            let got = est[&id];
            assert!((got - fbr).abs() < 1e-6, "{id}: {got} vs {fbr}");
        }
    }

    #[test]
    fn unsaturated_pairs_are_ignored() {
        let m = vec![CoLocationMeasurement {
            job: "a",
            partner: "b",
            slowdown: 1.0,
        }];
        let est = estimate_fbr_from_pairs(&m, 50);
        assert!(est.is_empty());
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let est = estimate_fbr_from_pairs::<&str>(&[], 50);
        assert!(est.is_empty());
    }

    proptest! {
        /// For any three saturating jobs, the profiler solves the system.
        #[test]
        fn prop_three_job_identifiability(
            fa in 0.55f64..1.0, fb in 0.55f64..1.0, fc in 0.55f64..1.0,
        ) {
            let m = vec![
                CoLocationMeasurement { job: 0u8, partner: 1, slowdown: fa + fb },
                CoLocationMeasurement { job: 1u8, partner: 0, slowdown: fa + fb },
                CoLocationMeasurement { job: 0u8, partner: 2, slowdown: fa + fc },
                CoLocationMeasurement { job: 2u8, partner: 0, slowdown: fa + fc },
                CoLocationMeasurement { job: 1u8, partner: 2, slowdown: fb + fc },
                CoLocationMeasurement { job: 2u8, partner: 1, slowdown: fb + fc },
            ];
            let est = estimate_fbr_from_pairs(&m, 400);
            prop_assert!((est[&0] - fa).abs() < 1e-4);
            prop_assert!((est[&1] - fb).abs() < 1e-4);
            prop_assert!((est[&2] - fc).abs() < 1e-4);
        }
    }
}
