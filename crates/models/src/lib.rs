//! The paper's 22 ML-inference workloads as a calibrated catalog.
//!
//! PROTEAN's policies never touch model weights — they consume four
//! profiled quantities per model: the per-batch **memory footprint**, the
//! **solo execution time** on a full GPU (`7g`), the **Fractional
//! Bandwidth Requirement** (FBR, Fig. 3), and the **Resource Deficiency
//! Factor** (RDF) on each MIG slice. This crate provides those numbers
//! for the paper's 12 vision models (batch 128, ImageNet) and 10 language
//! models (batch 4, Large Movie Review), calibrated to the published
//! characteristics:
//!
//! * vision batch latencies on `7g` fall in the paper's 50–200 ms band;
//! * per-batch memory footprints span ~2–14 GB, with *DPN 92* up to
//!   2.74× larger than the small vision models (Fig. 7 discussion);
//! * language-model FBRs are ~59% higher on average than vision FBRs
//!   (§6.2 "VHI models"), and the GPT models up to ~42% higher again
//!   (Fig. 13 discussion);
//! * *ALBERT*'s batch execution grows ~2.15× on a `3g` slice (§2.2) and
//!   *ShuffleNet V2* is barely (<2%) deficiency-sensitive (§6.2).
//!
//! RDF follows an Amdahl-style law: on a slice with compute fraction `c`
//! and bandwidth fraction `b`,
//! `RDF = 1 / (1 − β·(1 − min(c, b)))`, where `β ∈ [0, 1)` is the
//! model's *deficiency sensitivity* — 0 for models that barely notice
//! smaller slices, →1 for models that scale with the full GPU.
//!
//! # Example
//!
//! ```
//! use protean_models::{catalog, ModelId, InterferenceClass};
//! use protean_gpu::SliceProfile;
//!
//! let cat = catalog();
//! let albert = cat.profile(ModelId::Albert);
//! assert_eq!(albert.class, InterferenceClass::Vhi);
//! let rdf = albert.rdf(SliceProfile::G3);
//! assert!((rdf - 2.15).abs() < 0.1, "ALBERT on 3g should be ~2.15x");
//! ```

pub mod catalog;
pub mod profiling;

pub use catalog::{
    catalog, Catalog, Domain, InterferenceClass, ModelId, ModelProfile, BATCH_FIXED_COST_FRACTION,
    DEFAULT_SLO_MULTIPLIER,
};
pub use profiling::{estimate_fbr_from_pairs, CoLocationMeasurement};
