//! Bitwise digests of simulation results, pinning engine behaviour.
//!
//! A digest folds every numeric field the figures consume — request
//! counts, latency percentiles, cost, utilization, lifecycle counters —
//! into one printable string with the floats rendered as exact bit
//! patterns. Any change to event ordering, arithmetic association or
//! RNG consumption shows up as a string mismatch, so the digests pin
//! the engine's observable behaviour across refactors (the
//! next-completion-only event scheduler must reproduce the all-jobs
//! re-projection engine's results bit for bit).
//!
//! `tests/golden_seed.rs` compares [`golden_digests`] against recorded
//! constants; the `golden_digest` binary reprints them whenever a PR
//! *intentionally* changes behaviour and the constants need
//! regenerating.

use protean::ProteanBuilder;
use protean_baselines::Baseline;
use protean_cluster::{
    run_simulation, run_simulation_streaming, ClusterConfig, SchemeBuilder, SimulationResult,
};
use protean_metrics::record::Class;
use protean_models::ModelId;
use protean_spot::{ProcurementPolicy, SpotAvailability};
use protean_trace::TraceConfig;

use crate::setup::PaperSetup;

/// One result folded into a reproducible line. Floats are printed as
/// `to_bits()` hex so equality is exact, not approximate.
pub fn digest(result: &SimulationResult) -> String {
    let m = &result.metrics;
    let strict = m.sorted_latencies(Class::Strict);
    let be = m.sorted_latencies(Class::BestEffort);
    format!(
        "{} n={} sp50={:016x} sp99={:016x} be99={:016x} cost={:016x} util={:016x} \
         cold={} rc={} cens={} ev={}",
        result.scheme,
        m.count(Class::All),
        strict.p50().unwrap_or(0.0).to_bits(),
        strict.p99().unwrap_or(0.0).to_bits(),
        be.p99().unwrap_or(0.0).to_bits(),
        result.cost.total_usd.to_bits(),
        result.compute_utilization.to_bits(),
        result.cold_starts,
        result.reconfigs,
        result.censored,
        result.cost.evictions,
    )
}

/// Every scheme the figures exercise, without the duplicates shared by
/// the primary and motivational line-ups.
fn all_schemes() -> Vec<Box<dyn SchemeBuilder>> {
    vec![
        Box::new(Baseline::MoleculeBeta),
        Box::new(Baseline::InflessLlama),
        Box::new(Baseline::NaiveSlicing),
        Box::new(Baseline::MigOnly),
        Box::new(Baseline::MpsMigEven),
        Box::new(Baseline::SmartMpsMig),
        Box::new(Baseline::Gpulet),
        Box::new(ProteanBuilder::paper()),
    ]
}

/// The fixed golden grid: every scheme × three seeds on the paper's
/// 8-worker Wiki/ResNet-50 workload at a reduced 20 s duration, plus a
/// spot-market variant (hybrid procurement under low availability) that
/// exercises the eviction/replacement and censoring paths.
pub fn golden_digests() -> Vec<String> {
    golden_digests_with(run_simulation)
}

/// [`golden_digests`] with every run driven through the streaming
/// arrival path ([`run_simulation_streaming`]). The streaming engine's
/// contract is digest equality with the materialised one, so this must
/// return exactly the same lines.
pub fn golden_digests_streaming() -> Vec<String> {
    golden_digests_with(run_simulation_streaming)
}

/// [`golden_digests`] with every run routed through the sharded engine
/// (`shards = 4`, two shard threads). The sharded engine's contract is
/// digest equality with the sequential one, so this must return exactly
/// the same lines.
pub fn golden_digests_sharded() -> Vec<String> {
    golden_digests_with(|config, scheme, trace| {
        let mut sharded = config.clone();
        sharded.shards = 4;
        sharded.shard_threads = 2;
        run_simulation(&sharded, scheme, trace)
    })
}

/// [`golden_digests_sharded`] with epoch coarsening forced off
/// (`max_epoch_arrivals = 1`, the per-arrival PR-7 discipline). Arrival
/// runs are exact elisions of provably-empty phases, so coarsened and
/// per-arrival digests must both equal the sequential lines; this
/// function is the differential arm that pins the per-arrival side.
pub fn golden_digests_sharded_per_arrival() -> Vec<String> {
    golden_digests_with(|config, scheme, trace| {
        let mut sharded = config.clone();
        sharded.shards = 4;
        sharded.shard_threads = 2;
        sharded.max_epoch_arrivals = 1;
        run_simulation(&sharded, scheme, trace)
    })
}

/// [`golden_digests_sharded`] with window-expiry coalescing forced off
/// (`coalesce_window_expiries = false`, the PR-8 discipline where every
/// batch-window expiry is a singleton epoch). Expiry admission into
/// coarsened runs is an exact elision of provably-empty phases, so both
/// knob settings must reproduce the sequential lines; this function is
/// the differential arm that pins the expiries-as-singletons side.
pub fn golden_digests_sharded_coalesced_off() -> Vec<String> {
    golden_digests_with(|config, scheme, trace| {
        let mut sharded = config.clone();
        sharded.shards = 4;
        sharded.shard_threads = 2;
        sharded.coalesce_window_expiries = false;
        run_simulation(&sharded, scheme, trace)
    })
}

fn golden_digests_with(
    run: fn(&ClusterConfig, &dyn SchemeBuilder, &TraceConfig) -> SimulationResult,
) -> Vec<String> {
    let mut out = Vec::new();
    for &seed in &[42u64, 7, 1234] {
        let setup = PaperSetup {
            duration_secs: 20.0,
            seed,
        };
        let config = setup.cluster();
        let trace = setup.wiki_trace(ModelId::ResNet50);
        for scheme in all_schemes() {
            let result = run(&config, scheme.as_ref(), &trace);
            out.push(format!("seed={seed} {}", digest(&result)));
        }
    }
    // Spot-market coverage: evictions, VM replacement, re-dispatch.
    for &seed in &[3u64, 11] {
        let setup = PaperSetup {
            duration_secs: 30.0,
            seed,
        };
        let mut config = setup.cluster();
        config.workers = 3;
        config.procurement = ProcurementPolicy::Hybrid;
        config.availability = SpotAvailability::Low;
        config.revocation_check = protean_sim::SimDuration::from_secs(5.0);
        config.vm_startup = protean_sim::SimDuration::from_secs(5.0);
        let trace = setup.wiki_trace(ModelId::ResNet50);
        let result = run(&config, &ProteanBuilder::paper(), &trace);
        out.push(format!("spot seed={seed} {}", digest(&result)));
    }
    out
}
