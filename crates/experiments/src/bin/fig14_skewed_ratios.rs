//! Fig. 14 — SLO compliance under skewed strictness ratios for
//! ShuffleNet V2 (LI) and DPN 92 (HI): (a) strict-skewed 75/25 and
//! (b) BE-skewed 25/75.

use protean_experiments::report::{banner, table};
use protean_experiments::{run_scheme, schemes, PaperSetup};
use protean_models::ModelId;

fn main() {
    let setup = PaperSetup::from_args();
    let config = setup.cluster();
    for (caption, ratio) in [
        ("(a) strict-skewed 75/25", 0.75),
        ("(b) BE-skewed 25/75", 0.25),
    ] {
        banner("Fig. 14", caption);
        let lineup = schemes::primary();
        let mut headers: Vec<String> = vec!["model".to_string()];
        headers.extend(lineup.iter().map(|s| s.name().to_string()));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut rows = Vec::new();
        for model in [ModelId::ShuffleNetV2, ModelId::Dpn92] {
            let trace = setup.wiki_trace_with_ratio(model, ratio);
            let mut row = vec![model.to_string()];
            for s in &lineup {
                let r = run_scheme(&config, s.as_ref(), &trace);
                row.push(format!("{:.2}", r.slo_compliance_pct));
            }
            rows.push(row);
        }
        table(&header_refs, &rows);
    }
}
