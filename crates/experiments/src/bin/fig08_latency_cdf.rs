//! Fig. 8 — CDF of end-to-end strict-job latencies for all schemes on
//! the SENet 18 model. PROTEAN's curve should stay flat and inside the
//! SLO through P99; INFless/Llama and Naïve Slicing cross the SLO well
//! before the tail; Molecule (beta) rises progressively with queueing.

use protean_experiments::chart::line_plot;
use protean_experiments::report::{banner, csv_series};
use protean_experiments::{run_scheme, schemes, PaperSetup};
use protean_metrics::record::Class;
use protean_models::{catalog, ModelId};

/// One CDF curve: plot glyph, scheme name, (latency, fraction) points.
type Curve = (char, String, Vec<(f64, f64)>);

fn main() {
    let setup = PaperSetup::from_args();
    let config = setup.cluster();
    let model = ModelId::SeNet18;
    let slo_ms = catalog().profile(model).slo().as_millis_f64();
    banner(
        "Fig. 8",
        &format!("latency CDF, {model} (SLO {slo_ms:.0} ms)"),
    );
    let trace = setup.wiki_trace(model);
    let mut curves: Vec<Curve> = Vec::new();
    let glyphs = ['M', 'I', 'N', 'P'];
    for (i, s) in schemes::primary().iter().enumerate() {
        let row = run_scheme(&config, s.as_ref(), &trace);
        let cdf = row.result.metrics.latency_cdf(Class::Strict, 50);
        let points: Vec<Vec<f64>> = cdf.iter().map(|(l, f)| vec![*l, *f]).collect();
        csv_series(
            &format!("{} (SLO {:.0} ms)", row.scheme, slo_ms),
            &["latency_ms", "cumulative_fraction"],
            &points,
        );
        curves.push((glyphs[i % glyphs.len()], row.scheme.clone(), cdf));
    }
    println!();
    for (glyph, name, _) in &curves {
        println!("  [{glyph}] {name}");
    }
    let series: Vec<(char, &[(f64, f64)])> = curves
        .iter()
        .map(|(g, _, pts)| (*g, pts.as_slice()))
        .collect();
    line_plot(
        &format!("latency CDF (SLO at {slo_ms:.0} ms)"),
        "latency ms",
        "fraction",
        &series,
        16,
    );
}
