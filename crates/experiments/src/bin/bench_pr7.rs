//! PR-7 benchmark reporter: sharded-engine sweep plus a sharded
//! streaming soak with allocator accounting, written to
//! `results/bench_pr7.json` (analysis in `PERF.md`).
//!
//! Three parts:
//!
//! **Sweep** — fleets of 2048 and 8192 workers, shard counts
//! S ∈ {1, 2, 4, 8}, on two workloads:
//!
//! 1. `wiki` — the paper's diurnal language trace. Batch arrivals pin a
//!    synchronization epoch to every arrival instant, so phases are
//!    short and shard parallelism has little to chew on: this row is
//!    the honest "arrival-bound" baseline.
//! 2. `pulse` — a square wave whose ON level exceeds fleet capacity.
//!    The OFF half drains the backlog with *no* interleaved arrivals,
//!    so epochs stretch to the coordinator horizon and the per-shard
//!    event heaps run long uninterrupted phases — the regime the
//!    sharded engine targets.
//!
//! Every sharded cell is a differential against the S = 1 run of the
//! same cell: digests must match bit for bit, always, on every host.
//! Wall-clock floors (≥ 2x at S = 4 on the pulse row at fleet scale)
//! only arm on hosts with ≥ 4 cores and real cell durations — a
//! single-core container runs the full determinism sweep but cannot
//! honestly time parallelism.
//!
//! **Soak** — ≥ 10⁸ requests streamed through the *sharded* engine
//! (`shards = 4`) with `aggregate_metrics`, RSS sampled throughout. A
//! sequential-vs-sharded-vs-streamed digest preflight on a truncated
//! slice guards the long run.
//!
//! **Allocator accounting** — this binary installs a counting
//! `#[global_allocator]` (every timing row pays the same few atomic
//! adds, so rows stay comparable). PR-6 measured +69.5 MB of RSS creep
//! across a 10⁹-request soak and left a note to re-examine it; the
//! live-bytes series here separates the two candidate explanations:
//! if live bytes are flat while RSS climbs, the creep is
//! allocator-side retention (free-list/arena growth), not a
//! per-request structure leak.
//!
//! Usage: `bench_pr7 [duration_secs] [seed] [workers_csv|none] [soak_requests]`
//! (defaults: 30 s per sweep cell, seed 42, fleets `2048,8192`,
//! 1e8-request soak; `none` skips the sweep, `0` skips the soak).
//! CI smoke: `bench_pr7 3 42 2048 0` and `bench_pr7 3 42 none 2000000`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use protean::ProteanBuilder;
use protean_cluster::{run_simulation, run_simulation_streaming};
use protean_experiments::report::{banner, table};
use protean_experiments::setup::LANGUAGE_RPS;
use protean_experiments::{golden, PaperSetup};
use protean_metrics::record::Class;
use protean_models::ModelId;
use protean_sim::SimDuration;
use protean_trace::{TraceConfig, TraceShape};

// ---- counting allocator --------------------------------------------

/// Pass-through `System` allocator that counts calls, cumulative bytes
/// and the live-byte balance. Relaxed atomics: the counters are
/// statistics, not synchronization.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
            ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            LIVE_BYTES.fetch_add(layout.size() as i64, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE_BYTES.fetch_sub(layout.size() as i64, Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
            ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
            LIVE_BYTES.fetch_add(new_size as i64 - layout.size() as i64, Ordering::Relaxed);
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn live_mb() -> f64 {
    LIVE_BYTES.load(Ordering::Relaxed) as f64 / (1024.0 * 1024.0)
}

// ---- sweep ---------------------------------------------------------

const SHARD_COUNTS: [usize; 3] = [2, 4, 8];

struct CellRow {
    trace: &'static str,
    workers: usize,
    shards: usize,
    requests: usize,
    batches: u64,
    arrivals: u64,
    epochs: u64,
    sequential_secs: f64,
    sharded_secs: f64,
}

impl CellRow {
    fn speedup(&self) -> f64 {
        self.sequential_secs / self.sharded_secs.max(1e-9)
    }

    /// Synchronization epochs per dispatched arrival in the sharded
    /// run: 1.0 under the per-arrival PR-7 discipline, below it when
    /// arrival-run coarsening coalesces consecutive arrivals into one
    /// phase (PR-8).
    fn epochs_per_arrival(&self) -> f64 {
        self.epochs as f64 / self.arrivals.max(1) as f64
    }
}

/// The paper's diurnal language workload with per-worker load held
/// constant as the fleet grows (the PR-5/PR-6 sweep operating point).
fn wiki_trace(setup: &PaperSetup, workers: usize) -> TraceConfig {
    let mut trace = setup.wiki_trace(ModelId::Albert);
    trace.shape = TraceShape::wiki(LANGUAGE_RPS * workers as f64 / 8.0);
    trace
}

/// The drain-phase workload: ON at 8x the paper's per-worker operating
/// point (≈ 1.6x fleet capacity) for 5 s, silent for 5 s. Each ON
/// half builds ~3 s of backlog; each OFF half drains it with no
/// arrivals, so the engine runs long arrival-free phases.
fn pulse_trace(setup: &PaperSetup, workers: usize) -> TraceConfig {
    let mut trace = setup.wiki_trace(ModelId::Albert);
    trace.shape = TraceShape::pulse(
        8.0 * LANGUAGE_RPS * workers as f64 / 8.0,
        SimDuration::from_secs(10.0),
    );
    trace
}

/// Runs one (trace, fleet) cell: the sequential engine once, then every
/// shard count, asserting bit-identical digests throughout. Returns one
/// row per shard count.
fn run_cell(
    setup: &PaperSetup,
    trace_name: &'static str,
    trace: &TraceConfig,
    workers: usize,
    reps: usize,
) -> Vec<CellRow> {
    let scheme = ProteanBuilder::paper();
    let mut config = setup.cluster();
    config.workers = workers;

    let time_run = |shards: usize| {
        let mut c = config.clone();
        c.shards = shards;
        c.shard_threads = shards;
        let mut best = f64::INFINITY;
        let mut result = None;
        for _ in 0..reps.max(1) {
            let t0 = Instant::now();
            let run = run_simulation(&c, &scheme, trace);
            best = best.min(t0.elapsed().as_secs_f64());
            result = Some(run);
        }
        (result.expect("reps >= 1"), best)
    };

    let (sequential, sequential_secs) = time_run(1);
    let d0 = golden::digest(&sequential);
    let requests = sequential.metrics.count(Class::All);

    let mut rows = Vec::new();
    for &shards in &SHARD_COUNTS {
        let (sharded, sharded_secs) = time_run(shards);
        // The contract, enforced on every host and every cell size:
        // sharding is a wall-clock optimisation with zero observable
        // effect.
        assert_eq!(
            d0,
            golden::digest(&sharded),
            "{trace_name} @ {workers} workers, S={shards}: sharded diverged from sequential"
        );
        rows.push(CellRow {
            trace: trace_name,
            workers,
            shards,
            requests,
            batches: sharded.stats.dispatch_batches,
            arrivals: sharded.stats.arrivals,
            epochs: sharded.stats.epochs,
            sequential_secs,
            sharded_secs,
        });
    }
    rows
}

// ---- soak ----------------------------------------------------------

struct SoakReport {
    workers: usize,
    shards: usize,
    mean_rps: f64,
    sim_days: f64,
    requests_target: u64,
    requests_recorded: usize,
    censored: u64,
    batches: u64,
    wall_secs: f64,
    strict_p99_ms: f64,
    be_p99_ms: f64,
    preflight_requests: usize,
    rss_peak_mb: f64,
    rss_quarter_mb: f64,
    rss_end_mb: f64,
    live_quarter_mb: f64,
    live_end_mb: f64,
    alloc_calls: u64,
    alloc_gb: f64,
    samples: Vec<(f64, f64, f64)>,
}

impl SoakReport {
    fn mreq_per_sec(&self) -> f64 {
        (self.requests_recorded as u64 + self.censored) as f64 / self.wall_secs.max(1e-9) / 1e6
    }

    fn rss_growth_mb(&self) -> f64 {
        self.rss_end_mb - self.rss_quarter_mb
    }

    fn live_growth_mb(&self) -> f64 {
        self.live_end_mb - self.live_quarter_mb
    }
}

/// VmRSS of this process in MB (Linux; `None` elsewhere — RSS
/// assertions are skipped rather than faked).
fn rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kb: f64 = line
        .trim_start_matches("VmRSS:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb / 1024.0)
}

/// The soak workload: per-worker load as in the sweep, diurnal on a
/// real 24 h period (the PR-6 soak shape).
fn soak_trace(setup: &PaperSetup, workers: usize, sim_secs: f64) -> TraceConfig {
    let mut trace = PaperSetup {
        duration_secs: sim_secs,
        seed: setup.seed,
    }
    .wiki_trace(ModelId::Albert);
    trace.shape = TraceShape::WikiDiurnal {
        mean_rps: LANGUAGE_RPS * workers as f64 / 8.0,
        peak_to_mean: 316.0 / 303.0,
        period: SimDuration::from_secs(86_400.0),
    };
    trace
}

fn run_soak(setup: &PaperSetup, requests_target: u64) -> SoakReport {
    let workers = 256usize;
    let shards = 4usize;
    let mean_rps = LANGUAGE_RPS * workers as f64 / 8.0;
    let sim_secs = requests_target as f64 / mean_rps;

    let mut config = setup.cluster();
    config.workers = workers;
    config.shards = shards;
    // 0 = size the thread pool to the host: shard threads on multicore
    // hosts, fully inline sharding on a single core (where extra
    // threads could only add handoff latency).
    config.shard_threads = 0;
    config.aggregate_metrics = true;

    // Digest preflight on a truncated slice with full metrics:
    // sequential, sharded-materialised and sharded-streamed must agree
    // bit for bit before the long run is trusted.
    let preflight_secs = (2_000_000.0 / mean_rps).min(sim_secs);
    let preflight_trace = soak_trace(setup, workers, preflight_secs);
    let mut full_config = config.clone();
    full_config.aggregate_metrics = false;
    let mut sequential_config = full_config.clone();
    sequential_config.shards = 1;
    let scheme = ProteanBuilder::paper();
    let a = run_simulation(&sequential_config, &scheme, &preflight_trace);
    let b = run_simulation(&full_config, &scheme, &preflight_trace);
    let c = run_simulation_streaming(&full_config, &scheme, &preflight_trace);
    let preflight_requests = a.metrics.count(Class::All);
    assert_eq!(
        golden::digest(&a),
        golden::digest(&b),
        "soak preflight: sharded diverged from sequential"
    );
    assert_eq!(
        golden::digest(&b),
        golden::digest(&c),
        "soak preflight: sharded-streamed diverged from sharded-materialised"
    );
    println!(
        "  preflight clean: {preflight_requests} requests, \
         sequential == sharded == sharded-streamed"
    );

    // Sampler: VmRSS and the allocator's live-byte balance every
    // 250 ms for the duration of the streamed run.
    let stop = Arc::new(AtomicBool::new(false));
    let samples: Arc<Mutex<Vec<(f64, f64, f64)>>> = Arc::new(Mutex::new(Vec::new()));
    let sampler = {
        let stop = Arc::clone(&stop);
        let samples = Arc::clone(&samples);
        let t0 = Instant::now();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let rss = rss_mb().unwrap_or(0.0);
                samples
                    .lock()
                    .unwrap()
                    .push((t0.elapsed().as_secs_f64(), rss, live_mb()));
                std::thread::sleep(std::time::Duration::from_millis(250));
            }
        })
    };

    let calls0 = ALLOC_CALLS.load(Ordering::Relaxed);
    let bytes0 = ALLOC_BYTES.load(Ordering::Relaxed);
    let trace = soak_trace(setup, workers, sim_secs);
    let t0 = Instant::now();
    let result = run_simulation_streaming(&config, &scheme, &trace);
    let wall_secs = t0.elapsed().as_secs_f64();
    let alloc_calls = ALLOC_CALLS.load(Ordering::Relaxed) - calls0;
    let alloc_gb =
        (ALLOC_BYTES.load(Ordering::Relaxed) - bytes0) as f64 / (1024.0 * 1024.0 * 1024.0);
    stop.store(true, Ordering::Relaxed);
    sampler.join().expect("sampler");

    let samples = Arc::try_unwrap(samples)
        .expect("sampler joined")
        .into_inner()
        .unwrap();
    // Growth is measured from the quarter mark: by then pools, index
    // and histograms are at steady state, so any further climb would be
    // an O(requests) retention.
    let (rss_peak_mb, rss_quarter_mb, rss_end_mb, live_quarter_mb, live_end_mb) =
        if samples.is_empty() {
            (0.0, 0.0, 0.0, 0.0, 0.0)
        } else {
            let peak = samples.iter().map(|s| s.1).fold(0.0, f64::max);
            let quarter = &samples[samples.len() / 4];
            let end = samples.last().unwrap();
            (peak, quarter.1, end.1, quarter.2, end.2)
        };

    SoakReport {
        workers,
        shards,
        mean_rps,
        sim_days: sim_secs / 86_400.0,
        requests_target,
        requests_recorded: result.metrics.count(Class::All),
        censored: result.censored,
        batches: result.stats.dispatch_batches,
        wall_secs,
        strict_p99_ms: result
            .metrics
            .latency_percentile_ms(Class::Strict, 0.99)
            .unwrap_or(0.0),
        be_p99_ms: result
            .metrics
            .latency_percentile_ms(Class::BestEffort, 0.99)
            .unwrap_or(0.0),
        preflight_requests,
        rss_peak_mb,
        rss_quarter_mb,
        rss_end_mb,
        live_quarter_mb,
        live_end_mb,
        alloc_calls,
        alloc_gb,
        samples,
    }
}

// ---- output --------------------------------------------------------

fn pr7_json(
    setup: &PaperSetup,
    cores: usize,
    rows: &[CellRow],
    soak: Option<&SoakReport>,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"sharded_engine_sweep_and_soak\",\n");
    out.push_str("  \"baseline\": \"sequential engine (shards = 1)\",\n");
    out.push_str(&format!(
        "  \"duration_secs\": {:.1},\n  \"seed\": {},\n  \"host_cores\": {},\n",
        setup.duration_secs, setup.seed, cores
    ));
    out.push_str(&protean_experiments::report::floors_json(
        cores,
        &[
            (
                "pulse_speedup_ge_2x_at_s4",
                setup.duration_secs >= 10.0 && cores >= 4,
                "duration_secs >= 10 && host_cores >= 4",
            ),
            (
                "soak_memory_growth_le_256mb",
                true,
                "always (asserted whenever the soak runs)",
            ),
        ],
    ));
    out.push_str("  \"cells\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"trace\": \"{}\", \"workers\": {}, \"shards\": {}, \"requests\": {}, \
             \"batches\": {}, \"sequential_secs\": {:.6}, \"sharded_secs\": {:.6}, \
             \"speedup\": {:.3}, \"epochs_per_arrival\": {:.4}}}{}\n",
            r.trace,
            r.workers,
            r.shards,
            r.requests,
            r.batches,
            r.sequential_secs,
            r.sharded_secs,
            r.speedup(),
            r.epochs_per_arrival(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    match soak {
        None => out.push_str("  \"soak\": null\n"),
        Some(s) => {
            out.push_str("  \"soak\": {\n");
            out.push_str(&format!(
                "    \"workers\": {}, \"shards\": {}, \"mean_rps\": {:.1}, \"sim_days\": {:.3},\n\
                 \x20   \"requests_target\": {}, \"requests_recorded\": {}, \"censored\": {},\n\
                 \x20   \"batches\": {}, \"wall_secs\": {:.1}, \
                 \"million_requests_per_sec\": {:.3},\n\
                 \x20   \"strict_p99_ms\": {:.3}, \"be_p99_ms\": {:.3}, \
                 \"preflight_requests\": {},\n\
                 \x20   \"alloc_calls\": {}, \"alloc_gb\": {:.2},\n\
                 \x20   \"rss_peak_mb\": {:.1}, \"rss_quarter_mb\": {:.1}, \
                 \"rss_end_mb\": {:.1}, \"rss_growth_mb\": {:.1},\n\
                 \x20   \"live_quarter_mb\": {:.1}, \"live_end_mb\": {:.1}, \
                 \"live_growth_mb\": {:.1},\n",
                s.workers,
                s.shards,
                s.mean_rps,
                s.sim_days,
                s.requests_target,
                s.requests_recorded,
                s.censored,
                s.batches,
                s.wall_secs,
                s.mreq_per_sec(),
                s.strict_p99_ms,
                s.be_p99_ms,
                s.preflight_requests,
                s.alloc_calls,
                s.alloc_gb,
                s.rss_peak_mb,
                s.rss_quarter_mb,
                s.rss_end_mb,
                s.rss_growth_mb(),
                s.live_quarter_mb,
                s.live_end_mb,
                s.live_growth_mb(),
            ));
            // Downsample the (t, rss, live) series to ≤ 64 points.
            let step = (s.samples.len() / 64).max(1);
            let series: Vec<String> = s
                .samples
                .iter()
                .step_by(step)
                .map(|(t, rss, live)| format!("[{t:.1}, {rss:.1}, {live:.1}]"))
                .collect();
            out.push_str(&format!(
                "    \"rss_live_series_mb\": [{}]\n",
                series.join(", ")
            ));
            out.push_str("  }\n");
        }
    }
    out.push('}');
    out.push('\n');
    out
}

fn main() {
    let mut args = std::env::args().skip(1);
    let setup = PaperSetup {
        duration_secs: args.next().and_then(|a| a.parse().ok()).unwrap_or(30.0),
        seed: args.next().and_then(|a| a.parse().ok()).unwrap_or(42),
    };
    let fleets_arg = args.next().unwrap_or_else(|| "2048,8192".to_string());
    let fleets: Vec<usize> = if fleets_arg == "none" {
        Vec::new()
    } else {
        fleets_arg
            .split(',')
            .filter_map(|w| w.trim().parse().ok())
            .filter(|&w| w > 0)
            .collect()
    };
    let soak_requests: u64 = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(100_000_000);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    banner(
        "bench_pr7",
        &format!(
            "{} s per sweep cell, fleets {:?}, shards {:?}, soak target {} requests, \
             {} host cores",
            setup.duration_secs, fleets, SHARD_COUNTS, soak_requests, cores
        ),
    );

    let reps: usize = std::env::var("BENCH_PR7_REPS")
        .ok()
        .and_then(|r| r.parse().ok())
        .unwrap_or(2);
    let mut rows = Vec::new();
    for &workers in &fleets {
        for (name, trace) in [
            ("wiki", wiki_trace(&setup, workers)),
            ("pulse", pulse_trace(&setup, workers)),
        ] {
            let cell = run_cell(&setup, name, &trace, workers, reps);
            for r in &cell {
                println!(
                    "  {} @ {:>4} workers, S={}: {:.2}s sequential / {:.2}s sharded ({:.2}x)",
                    r.trace,
                    r.workers,
                    r.shards,
                    r.sequential_secs,
                    r.sharded_secs,
                    r.speedup(),
                );
            }
            rows.extend(cell);
        }
    }

    if !rows.is_empty() {
        let printable: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.trace.to_string(),
                    r.workers.to_string(),
                    r.shards.to_string(),
                    r.requests.to_string(),
                    r.batches.to_string(),
                    format!("{:.2}", r.sequential_secs),
                    format!("{:.2}", r.sharded_secs),
                    format!("{:.2}x", r.speedup()),
                    format!("{:.3}", r.epochs_per_arrival()),
                ]
            })
            .collect();
        table(
            &[
                "trace",
                "workers",
                "shards",
                "requests",
                "batches",
                "seq s",
                "sharded s",
                "speedup",
                "ep/arr",
            ],
            &printable,
        );
    }

    // Wall-clock floor: the pulse row's drain phases must parallelise.
    // Digest equality (asserted inside every cell) is the deterministic
    // guard that runs everywhere; timing floors only arm where timing
    // parallelism is honest — real cell durations on a multi-core host.
    if setup.duration_secs >= 10.0 && cores >= 4 {
        for r in &rows {
            if r.trace == "pulse" && r.shards == 4 && r.workers >= 2048 {
                assert!(
                    r.speedup() >= 2.0,
                    "pulse @ {} workers, S=4: speedup {:.2}x below the 2x floor",
                    r.workers,
                    r.speedup()
                );
            }
        }
    } else if !rows.is_empty() {
        println!(
            "\n(speedup floors skipped: {} s cells on {} core(s) — \
             digest equality asserted on every cell)",
            setup.duration_secs, cores
        );
    }

    let soak = if soak_requests > 0 {
        println!(
            "\nsoak: streaming {} requests through shards=4...",
            soak_requests
        );
        let s = run_soak(&setup, soak_requests);
        println!(
            "  {} recorded + {} censored over {:.2} simulated days in {:.1}s wall\n  \
             {:.2}M req/s, {} allocs ({:.2} GB cumulative)\n  \
             RSS peak {:.0} MB (growth {:+.1} MB), live bytes growth {:+.1} MB",
            s.requests_recorded,
            s.censored,
            s.sim_days,
            s.wall_secs,
            s.mreq_per_sec(),
            s.alloc_calls,
            s.alloc_gb,
            s.rss_peak_mb,
            s.rss_growth_mb(),
            s.live_growth_mb(),
        );
        // Flat-footprint contract past the quarter mark, now on both
        // ledgers: RSS (what the OS sees) and live bytes (what the
        // program actually retains). A flat live series with a climbing
        // RSS pins PR-6's creep on the allocator, not the engine.
        assert!(
            s.live_growth_mb() <= 256.0,
            "soak live bytes grew {:.1} MB — the sharded streaming path retains per-request state",
            s.live_growth_mb()
        );
        if s.rss_peak_mb > 0.0 {
            assert!(
                s.rss_growth_mb() <= 256.0,
                "soak RSS grew {:.1} MB past the quarter mark",
                s.rss_growth_mb()
            );
            if rows.is_empty() {
                // Without sweep cells in-process the allocator holds no
                // prior high-water mark, so an absolute ceiling is
                // meaningful too (CI smoke runs use this form).
                assert!(
                    s.rss_peak_mb <= 1024.0,
                    "soak peak RSS {:.1} MB exceeds the 1 GB ceiling",
                    s.rss_peak_mb
                );
            }
        } else {
            println!("  (no /proc/self/status — RSS assertions skipped)");
        }
        Some(s)
    } else {
        None
    };

    let path = std::path::Path::new("results/bench_pr7.json");
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).expect("create results/");
    }
    std::fs::write(path, pr7_json(&setup, cores, &rows, soak.as_ref()))
        .expect("write results/bench_pr7.json");
    println!("\nwrote {}", path.display());
}
