//! Fig. 6 — breakdown of strict-job P99 tail latencies for a subset of
//! the vision models (queueing / cold start / interference / resource
//! deficiency / minimum possible time).

use protean_experiments::chart::stacked_breakdown_chart;
use protean_experiments::report::{banner, breakdown_table};
use protean_experiments::{run_scheme, schemes, PaperSetup};
use protean_models::ModelId;

fn main() {
    let setup = PaperSetup::from_args();
    let config = setup.cluster();
    for model in [ModelId::ResNet50, ModelId::ShuffleNetV2, ModelId::Vgg19] {
        banner("Fig. 6", &format!("P99 tail breakdown (ms), {model}"));
        let trace = setup.wiki_trace(model);
        let rows: Vec<_> = schemes::primary()
            .iter()
            .map(|s| run_scheme(&config, s.as_ref(), &trace))
            .collect();
        breakdown_table(
            &rows
                .iter()
                .map(|r| (r.scheme.clone(), r.tail_breakdown, r.slo_compliance_pct))
                .collect::<Vec<_>>(),
        );
        stacked_breakdown_chart(
            &rows
                .iter()
                .map(|r| (r.scheme.clone(), r.tail_breakdown))
                .collect::<Vec<_>>(),
        );
    }
}
