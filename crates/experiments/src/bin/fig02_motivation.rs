//! Fig. 2 — §2.2 motivational study: tail-latency breakdown and SLO
//! compliance of the five GPU-sharing strategies on one GPU.
//!
//! Workloads, per the paper: (i) Simplified DLA at a constant 500 rps
//! (batch 128) and (ii) ALBERT at 6 rps (batch 4); in each experiment
//! half the requests are strict (3× SLO) and half best-effort of the
//! *same* model. All MIG-enabled schemes use the `(4g, 3g)` geometry.

use protean_experiments::chart::stacked_breakdown_chart;
use protean_experiments::report::{banner, breakdown_table};
use protean_experiments::schemes;
use protean_experiments::{run_scheme, PaperSetup};
use protean_models::ModelId;

fn main() {
    let setup = PaperSetup::from_args();
    let mut config = setup.cluster();
    config.workers = 1; // single A100, as in §2.2
    for (model, rps) in [(ModelId::SimplifiedDla, 500.0), (ModelId::Albert, 6.0)] {
        banner(
            "Fig. 2",
            &format!("{model} at {rps} rps on one GPU (strict SLO = 3x 7g latency)"),
        );
        let mut trace = setup.constant_trace(model, rps);
        trace.be_pool = vec![model]; // BE requests are the same model
        let rows: Vec<_> = schemes::motivational()
            .iter()
            .map(|s| run_scheme(&config, s.as_ref(), &trace))
            .collect();
        breakdown_table(
            &rows
                .iter()
                .map(|r| (r.scheme.clone(), r.tail_breakdown, r.slo_compliance_pct))
                .collect::<Vec<_>>(),
        );
        stacked_breakdown_chart(
            &rows
                .iter()
                .map(|r| (r.scheme.clone(), r.tail_breakdown))
                .collect::<Vec<_>>(),
        );
    }
}
