//! PR-8 benchmark reporter: epoch coarsening differential, written to
//! `results/bench_pr8.json` (analysis in `PERF.md`).
//!
//! Every cell runs the sharded engine twice on the same (trace, fleet,
//! shard count) point:
//!
//! * **per-arrival** — `max_epoch_arrivals = 1`, the PR-7 discipline:
//!   one synchronization epoch (phase + barrier) per dispatched
//!   arrival;
//! * **coarsened** — `max_epoch_arrivals = 64` (the default): the
//!   coordinator peels conflict-checked arrival *runs* and launches one
//!   phase per run.
//!
//! Two deterministic contracts are asserted inside every timed cell, on
//! every host, at every duration:
//!
//! 1. **Digest equality** — per-arrival, coarsened and the sequential
//!    engine produce bit-identical digests. Coarsening only elides
//!    phases that are provably empty, so it must have zero observable
//!    effect.
//! 2. **Epochs-per-arrival floor** — on the arrival-dense wiki trace at
//!    2048 workers the coarsened arm must coalesce to ≤ 0.5 epochs per
//!    arrival (the per-arrival arm is exactly 1.0), and the counter
//!    triad `epochs + coalesced = arrivals`, `cutoffs = epochs` must
//!    reconcile.
//!
//! Wall-clock floors stay core-count-gated as in `bench_pr7`: a
//! single-core container runs the full determinism sweep but cannot
//! honestly time barrier elision against thread handoff.
//!
//! Usage: `bench_pr8 [duration_secs] [seed] [workers_csv|none]`
//! (defaults: 30 s per cell, seed 42, fleet `2048`).
//! CI smoke: `bench_pr8 3 42 2048`.

use std::time::Instant;

use protean::ProteanBuilder;
use protean_cluster::{run_simulation, SimulationResult};
use protean_experiments::report::{banner, table};
use protean_experiments::setup::LANGUAGE_RPS;
use protean_experiments::{golden, PaperSetup};
use protean_metrics::record::Class;
use protean_models::ModelId;
use protean_sim::SimDuration;
use protean_trace::{TraceConfig, TraceShape};

const SHARD_COUNTS: [usize; 3] = [2, 4, 8];
const COARSE_CAP: u64 = 64;

struct CellRow {
    trace: &'static str,
    workers: usize,
    shards: usize,
    requests: usize,
    arrivals: u64,
    per_arrival_epochs: u64,
    coarse_epochs: u64,
    coalesced: u64,
    cut_serial: u64,
    cut_shard: u64,
    cut_cap: u64,
    per_arrival_secs: f64,
    coarse_secs: f64,
}

impl CellRow {
    fn speedup(&self) -> f64 {
        self.per_arrival_secs / self.coarse_secs.max(1e-9)
    }

    fn epochs_per_arrival(&self) -> f64 {
        self.coarse_epochs as f64 / self.arrivals.max(1) as f64
    }
}

/// The paper's diurnal language workload with per-worker load held
/// constant as the fleet grows (the `bench_pr7` operating point).
fn wiki_trace(setup: &PaperSetup, workers: usize) -> TraceConfig {
    let mut trace = setup.wiki_trace(ModelId::Albert);
    trace.shape = TraceShape::wiki(LANGUAGE_RPS * workers as f64 / 8.0);
    trace
}

/// The drain-phase workload from `bench_pr7`: ON at ≈ 1.6x fleet
/// capacity for 5 s, silent for 5 s. The OFF halves have no arrivals to
/// coalesce, so this row bounds how much coarsening can matter when the
/// engine is event-bound rather than arrival-bound.
fn pulse_trace(setup: &PaperSetup, workers: usize) -> TraceConfig {
    let mut trace = setup.wiki_trace(ModelId::Albert);
    trace.shape = TraceShape::pulse(
        8.0 * LANGUAGE_RPS * workers as f64 / 8.0,
        SimDuration::from_secs(10.0),
    );
    trace
}

/// Runs one (trace, fleet, shards) cell: sequential reference once,
/// then the per-arrival and coarsened sharded arms, asserting digest
/// equality and counter conservation on each.
fn run_cell(
    setup: &PaperSetup,
    trace_name: &'static str,
    trace: &TraceConfig,
    workers: usize,
    shards: usize,
    reps: usize,
) -> CellRow {
    let scheme = ProteanBuilder::paper();
    let mut config = setup.cluster();
    config.workers = workers;

    let time_arm = |shards: usize, cap: u64| -> (SimulationResult, f64) {
        let mut c = config.clone();
        c.shards = shards;
        c.shard_threads = shards.min(2);
        c.max_epoch_arrivals = cap;
        // This benchmark is the PR-8 historical record: arrival-run
        // coarsening with every window expiry a singleton epoch.
        // `bench_pr10` owns the expiry-coalescing differential.
        c.coalesce_window_expiries = false;
        let mut best = f64::INFINITY;
        let mut result = None;
        for _ in 0..reps.max(1) {
            let t0 = Instant::now();
            let run = run_simulation(&c, &scheme, trace);
            best = best.min(t0.elapsed().as_secs_f64());
            result = Some(run);
        }
        (result.expect("reps >= 1"), best)
    };

    let (sequential, _) = time_arm(1, COARSE_CAP);
    let d0 = golden::digest(&sequential);
    let (per_arrival, per_arrival_secs) = time_arm(shards, 1);
    let (coarse, coarse_secs) = time_arm(shards, COARSE_CAP);

    // Contract 1: coarsening has zero observable effect, per timed cell.
    assert_eq!(
        d0,
        golden::digest(&per_arrival),
        "{trace_name} @ {workers} workers, S={shards}: per-arrival arm diverged from sequential"
    );
    assert_eq!(
        d0,
        golden::digest(&coarse),
        "{trace_name} @ {workers} workers, S={shards}: coarsened arm diverged from sequential"
    );

    // Contract 2: the extended counter triad reconciles on both arms,
    // and the per-arrival arm really is one epoch per dispatch event
    // (with expiry coalescing pinned off here, no expiries coalesce on
    // either arm).
    for (arm, r) in [("per-arrival", &per_arrival), ("coarsened", &coarse)] {
        assert_eq!(
            r.stats.epochs + r.stats.coalesced_arrivals + r.stats.coalesced_expiries,
            r.stats.arrivals + r.stats.expiries,
            "{trace_name} S={shards} {arm}: epoch conservation broken"
        );
        assert_eq!(
            r.stats.run_cutoffs.total(),
            r.stats.epochs,
            "{trace_name} S={shards} {arm}: cutoff attribution broken"
        );
        assert_eq!(
            r.stats.coalesced_expiries, 0,
            "{trace_name} S={shards} {arm}: expiries coalesced with the knob off"
        );
    }
    assert_eq!(
        per_arrival.stats.epochs,
        per_arrival.stats.arrivals + per_arrival.stats.expiries
    );
    assert_eq!(per_arrival.stats.coalesced_arrivals, 0);

    CellRow {
        trace: trace_name,
        workers,
        shards,
        requests: coarse.metrics.count(Class::All),
        arrivals: coarse.stats.arrivals,
        per_arrival_epochs: per_arrival.stats.epochs,
        coarse_epochs: coarse.stats.epochs,
        coalesced: coarse.stats.coalesced_arrivals,
        cut_serial: coarse.stats.run_cutoffs.serial_event,
        cut_shard: coarse.stats.run_cutoffs.shard_conflict,
        cut_cap: coarse.stats.run_cutoffs.max_arrivals,
        per_arrival_secs,
        coarse_secs,
    }
}

fn pr8_json(setup: &PaperSetup, cores: usize, rows: &[CellRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"epoch_coarsening_differential\",\n");
    out.push_str("  \"baseline\": \"per-arrival epochs (max_epoch_arrivals = 1)\",\n");
    out.push_str(&format!(
        "  \"coarse_cap\": {COARSE_CAP},\n  \"duration_secs\": {:.1},\n  \"seed\": {},\n  \
         \"host_cores\": {},\n",
        setup.duration_secs, setup.seed, cores
    ));
    out.push_str(&protean_experiments::report::floors_json(
        cores,
        &[
            (
                "wiki_speedup_ge_1x",
                setup.duration_secs >= 10.0 && cores >= 4,
                "duration_secs >= 10 && host_cores >= 4",
            ),
            (
                "wiki_epochs_per_arrival_le_0.5",
                true,
                "always (deterministic, host-independent)",
            ),
        ],
    ));
    out.push_str("  \"cells\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"trace\": \"{}\", \"workers\": {}, \"shards\": {}, \"requests\": {}, \
             \"arrivals\": {}, \"per_arrival_epochs\": {}, \"coarse_epochs\": {}, \
             \"coalesced_arrivals\": {}, \"cut_serial\": {}, \"cut_shard\": {}, \
             \"cut_cap\": {}, \"per_arrival_secs\": {:.6}, \"coarse_secs\": {:.6}, \
             \"speedup\": {:.3}, \"epochs_per_arrival\": {:.4}}}{}\n",
            r.trace,
            r.workers,
            r.shards,
            r.requests,
            r.arrivals,
            r.per_arrival_epochs,
            r.coarse_epochs,
            r.coalesced,
            r.cut_serial,
            r.cut_shard,
            r.cut_cap,
            r.per_arrival_secs,
            r.coarse_secs,
            r.speedup(),
            r.epochs_per_arrival(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut args = std::env::args().skip(1);
    let setup = PaperSetup {
        duration_secs: args.next().and_then(|a| a.parse().ok()).unwrap_or(30.0),
        seed: args.next().and_then(|a| a.parse().ok()).unwrap_or(42),
    };
    let fleets_arg = args.next().unwrap_or_else(|| "2048".to_string());
    let fleets: Vec<usize> = if fleets_arg == "none" {
        Vec::new()
    } else {
        fleets_arg
            .split(',')
            .filter_map(|w| w.trim().parse().ok())
            .filter(|&w| w > 0)
            .collect()
    };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    banner(
        "bench_pr8",
        &format!(
            "{} s per cell, fleets {:?}, shards {:?}, coarse cap {}, {} host cores",
            setup.duration_secs, fleets, SHARD_COUNTS, COARSE_CAP, cores
        ),
    );

    let reps: usize = std::env::var("BENCH_PR8_REPS")
        .ok()
        .and_then(|r| r.parse().ok())
        .unwrap_or(2);
    let mut rows = Vec::new();
    for &workers in &fleets {
        for (name, trace) in [
            ("wiki", wiki_trace(&setup, workers)),
            ("pulse", pulse_trace(&setup, workers)),
        ] {
            for &shards in &SHARD_COUNTS {
                let r = run_cell(&setup, name, &trace, workers, shards, reps);
                println!(
                    "  {} @ {:>4} workers, S={}: {:.2}s per-arrival / {:.2}s coarsened \
                     ({:.2}x), {:.3} epochs/arrival",
                    r.trace,
                    r.workers,
                    r.shards,
                    r.per_arrival_secs,
                    r.coarse_secs,
                    r.speedup(),
                    r.epochs_per_arrival(),
                );
                rows.push(r);
            }
        }
    }

    if !rows.is_empty() {
        let printable: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.trace.to_string(),
                    r.workers.to_string(),
                    r.shards.to_string(),
                    r.arrivals.to_string(),
                    r.coarse_epochs.to_string(),
                    format!("{:.3}", r.epochs_per_arrival()),
                    format!("{:.2}", r.per_arrival_secs),
                    format!("{:.2}", r.coarse_secs),
                    format!("{:.2}x", r.speedup()),
                ]
            })
            .collect();
        table(
            &[
                "trace",
                "workers",
                "shards",
                "arrivals",
                "epochs",
                "ep/arr",
                "per-arr s",
                "coarse s",
                "speedup",
            ],
            &printable,
        );
    }

    // The coalescing floor is deterministic (a property of the trace and
    // the conflict structure, not of the host), so it is asserted on
    // every run, smoke cells included: the arrival-dense wiki row at
    // fleet scale must coalesce at least 2:1.
    for r in &rows {
        if r.trace == "wiki" && r.workers >= 2048 {
            assert!(
                r.epochs_per_arrival() <= 0.5,
                "wiki @ {} workers, S={}: coarsening only reached {:.3} epochs/arrival \
                 (floor 0.5)",
                r.workers,
                r.shards,
                r.epochs_per_arrival()
            );
        }
    }

    // Wall-clock floor: on real cells with real parallelism, eliding
    // barriers must not be slower than taking them.
    if setup.duration_secs >= 10.0 && cores >= 4 {
        for r in &rows {
            if r.trace == "wiki" && r.workers >= 2048 && r.shards == 4 {
                assert!(
                    r.speedup() >= 1.0,
                    "wiki @ {} workers, S=4: coarsened arm slower than per-arrival \
                     ({:.2}x)",
                    r.workers,
                    r.speedup()
                );
            }
        }
    } else if !rows.is_empty() {
        println!(
            "\n(speedup floors skipped: {} s cells on {} core(s) — digest equality and \
             the epochs-per-arrival floor asserted on every cell)",
            setup.duration_secs, cores
        );
    }

    let path = std::path::Path::new("results/bench_pr8.json");
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).expect("create results/");
    }
    std::fs::write(path, pr8_json(&setup, cores, &rows)).expect("write results/bench_pr8.json");
    println!("\nwrote {}", path.display());
}
