//! Ablation study (quality side): PROTEAN with individual design
//! choices disabled, compared on SLO compliance, tail latency and
//! reconfiguration count. The wall-clock side of the same variants is
//! `cargo bench -p protean-bench --bench ablations`.
//!
//! Covered choices (DESIGN.md):
//! * strict-first request reordering (§4.1)
//! * Eq. 2 η-based strict placement (§4.3)
//! * dynamic GPU reconfiguration (§4.4)
//! * the wait counter before reconfiguring (§4.4)
//! * the EWMA predictor vs last-value (§4.4)
//! * the delayed-termination keep-alive (§4.2), toggled via the cluster
//!   config (no pre-warm + immediate reclaim shows the cold-start cost)
//!
//! Both variant grids run on the parallel harness (`PROTEAN_THREADS`
//! overrides the worker count).

use protean::{ProteanBuilder, ProteanConfig, ReconfiguratorConfig};
use protean_cluster::SchemeBuilder;
use protean_experiments::harness::{run_grid, thread_count, GridCell};
use protean_experiments::report::{banner, table};
use protean_experiments::{PaperSetup, SchemeRow};
use protean_models::ModelId;
use protean_sim::SimDuration;

fn variant(name: &'static str, f: impl FnOnce(&mut ProteanConfig)) -> ProteanBuilder {
    let mut config = ProteanConfig::paper();
    config.name = name;
    f(&mut config);
    ProteanBuilder::with_config(config, 2.0)
}

fn ablation_row(r: &SchemeRow, label: Option<&str>) -> Vec<String> {
    vec![
        label.map_or_else(|| r.scheme.clone(), str::to_string),
        format!("{:.2}", r.slo_compliance_pct),
        format!("{:.1}", r.strict_p99_ms),
        format!("{:.1}", r.be_p99_ms),
        r.reconfigs.to_string(),
        r.result.cold_starts.to_string(),
    ]
}

fn main() {
    let setup = PaperSetup::from_args();
    let config = setup.cluster();
    let threads = thread_count();
    // A workload that exercises every mechanism: HI strict model,
    // rotating BE pool including the oversized DPN 92.
    let mut trace = setup.wiki_trace(ModelId::ResNet50);
    trace.be_pool.push(ModelId::Dpn92);
    banner(
        "ablations",
        "PROTEAN with one mechanism disabled at a time (ResNet 50)",
    );
    let variants: Vec<ProteanBuilder> = vec![
        ProteanBuilder::paper(),
        variant("no request reordering", |c| c.reorder = false),
        variant("no eta placement (largest slice)", |c| {
            c.eta_placement = false
        }),
        variant("no dynamic reconfig", |c| c.dynamic_reconfig = false),
        variant("no wait counter", |c| {
            c.reconfigurator = ReconfiguratorConfig {
                wait_limit: 0,
                ..ReconfiguratorConfig::default()
            }
        }),
        variant("last-value predictor (no EWMA)", |c| {
            c.reconfigurator = ReconfiguratorConfig {
                ewma_alpha: 1.0,
                ..ReconfiguratorConfig::default()
            }
        }),
    ];
    // Keep-alive ablation lives in the cluster config: no pre-warmed
    // containers and immediate reclaim of idle ones. It rides the same
    // grid as the scheme-config variants, just with its own config.
    let mut no_keepalive = config.clone();
    no_keepalive.prewarm_containers = 0;
    no_keepalive.keep_alive = SimDuration::from_secs(2.0);
    let paper = ProteanBuilder::paper();

    let mut cells: Vec<GridCell<'_>> = variants
        .iter()
        .map(|b| GridCell::new(config.clone(), b, trace.clone()).labeled(b.name()))
        .collect();
    cells.push(
        GridCell::new(no_keepalive, &paper, trace.clone())
            .labeled("no keep-alive (immediate scale-down)"),
    );
    let results = run_grid(&cells, threads);

    let mut rows: Vec<Vec<String>> = results[..variants.len()]
        .iter()
        .map(|r| ablation_row(r, None))
        .collect();
    rows.push(ablation_row(
        results.last().expect("keep-alive cell present"),
        Some("no keep-alive (immediate scale-down)"),
    ));
    table(
        &[
            "variant",
            "SLO%",
            "P99 ms",
            "BE P99 ms",
            "reconfigs",
            "cold starts",
        ],
        &rows,
    );

    // Request reordering only binds when strict and BE batches contend
    // for the same slices — e.g. a same-model mix of an oversized HI
    // model on a smaller cluster (the §4.1 scenario).
    banner(
        "ablations",
        "request reordering under class contention (DPN 92, same-model BE, 6 workers)",
    );
    let mut contended = setup.cluster();
    contended.workers = 6;
    let mut trace = setup.wiki_trace(ModelId::Dpn92);
    trace.be_pool = vec![ModelId::Dpn92];
    let variants = [
        ProteanBuilder::paper(),
        variant("no request reordering", |c| c.reorder = false),
    ];
    let cells: Vec<GridCell<'_>> = variants
        .iter()
        .map(|b| GridCell::new(contended.clone(), b, trace.clone()).labeled(b.name()))
        .collect();
    let rows: Vec<Vec<String>> = run_grid(&cells, threads)
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                format!("{:.2}", r.slo_compliance_pct),
                format!("{:.1}", r.strict_p99_ms),
                format!("{:.1}", r.be_p99_ms),
            ]
        })
        .collect();
    table(&["variant", "SLO%", "P99 ms", "BE P99 ms"], &rows);
}
