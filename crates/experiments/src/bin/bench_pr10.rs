//! PR-10 benchmark reporter: the window-expiry coalescing differential
//! sweep plus the first 100k-worker "planetary fleet" streamed cell,
//! written to `results/bench_pr10.json` (analysis in `PERF.md`).
//!
//! Two parts:
//!
//! **Sweep** — fleets of 2048 and 8192 workers, shard counts
//! S ∈ {2, 4, 8}, on the wiki and pulse workloads of `bench_pr7/8`.
//! Every cell runs the sequential engine once as the digest reference,
//! then two sharded arms per shard count, both at the default
//! coarsening cap:
//!
//! 1. `off` — `coalesce_window_expiries = false`, the PR-8 discipline:
//!    every batch-window expiry is a singleton epoch, and an expiry
//!    pending between two arrivals cuts the arrival run (the
//!    serial-event cut PR-8's cut-cause table blamed for most wiki
//!    epochs).
//! 2. `on` — expiries are admitted into coarsened runs as dispatch
//!    members when they win their key-order tie and no shard heap
//!    holds an event below theirs, so a run only ends at a genuinely
//!    serial coordinator event or a real shard conflict.
//!
//! The headline metric is **epochs per dispatch event** —
//! `epochs / (arrivals + expiries)`, the fraction of dispatch work
//! that still pays a full coordinator round-trip. Deterministic floors
//! (asserted on every host): wiki @ 2048 with the knob on stays at or
//! below 0.15 epochs per dispatch event (measured 0.13; the residue is
//! genuinely-nonempty phases — pending shard finish events — not
//! serial cuts), the serial-event share of its run cuts stays below
//! 40% (measured 0%), and the run partition is invariant in the shard
//! count. Digest equality against the sequential reference is asserted
//! on every arm of every cell.
//!
//! **Planetary fleet** — 100 000 workers, `shards = 8`, a streamed
//! diurnal trace with `aggregate_metrics`, RSS and live-byte ledgers
//! sampled throughout. A sequential-vs-sharded-vs-streamed digest
//! preflight on a truncated slice guards the run; both memory ledgers
//! must stay flat (≤ 256 MB growth) past the quarter mark.
//!
//! Usage: `bench_pr10 [duration_secs] [seed] [workers_csv|none]
//! [planetary_requests]` (defaults: 30 s per sweep cell, seed 42,
//! fleets `2048,8192`, 1e8-request planetary cell; `none` skips the
//! sweep, `0` skips the planetary cell).
//! CI smoke: `bench_pr10 3 42 2048 0` and `bench_pr10 3 42 none 2000000`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use protean::ProteanBuilder;
use protean_cluster::{run_simulation, run_simulation_streaming, EngineStats};
use protean_experiments::report::{banner, table};
use protean_experiments::setup::LANGUAGE_RPS;
use protean_experiments::{golden, PaperSetup};
use protean_metrics::record::Class;
use protean_models::ModelId;
use protean_sim::SimDuration;
use protean_trace::{TraceConfig, TraceShape};

// ---- counting allocator --------------------------------------------

/// Pass-through `System` allocator that counts calls, cumulative bytes
/// and the live-byte balance. Relaxed atomics: the counters are
/// statistics, not synchronization.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
            ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            LIVE_BYTES.fetch_add(layout.size() as i64, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE_BYTES.fetch_sub(layout.size() as i64, Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
            ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
            LIVE_BYTES.fetch_add(new_size as i64 - layout.size() as i64, Ordering::Relaxed);
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn live_mb() -> f64 {
    LIVE_BYTES.load(Ordering::Relaxed) as f64 / (1024.0 * 1024.0)
}

// ---- sweep ---------------------------------------------------------

const SHARD_COUNTS: [usize; 3] = [2, 4, 8];

/// One sharded arm of a sweep cell: the stats snapshot plus its
/// best-of-reps wall time.
struct Arm {
    stats: EngineStats,
    secs: f64,
}

impl Arm {
    fn epochs_per_dispatch(&self) -> f64 {
        self.stats.epochs as f64 / (self.stats.arrivals + self.stats.expiries).max(1) as f64
    }

    /// Share of run cuts attributed to a serial coordinator event —
    /// the cut cause expiry coalescing exists to retire.
    fn serial_cut_share(&self) -> f64 {
        self.stats.run_cutoffs.serial_event as f64 / self.stats.epochs.max(1) as f64
    }

    /// The extended conservation triad every arm must satisfy:
    /// `epochs + coalesced_arrivals + coalesced_expiries =
    /// arrivals + expiries` and `run_cutoffs.total() = epochs`.
    fn assert_triad(&self, label: &str) {
        let s = &self.stats;
        assert_eq!(
            s.epochs + s.coalesced_arrivals + s.coalesced_expiries,
            s.arrivals + s.expiries,
            "{label}: epoch conservation broken"
        );
        assert_eq!(
            s.run_cutoffs.total(),
            s.epochs,
            "{label}: cut taxonomy does not cover every run"
        );
    }
}

struct CellRow {
    trace: &'static str,
    workers: usize,
    shards: usize,
    requests: usize,
    off: Arm,
    on: Arm,
}

impl CellRow {
    /// Wall-clock ratio of the expiry-singleton arm to the coalesced
    /// arm (> 1.0 when coalescing is a speedup).
    fn on_speedup(&self) -> f64 {
        self.off.secs / self.on.secs.max(1e-9)
    }
}

/// The paper's diurnal language workload with per-worker load held
/// constant as the fleet grows (the PR-5..8 sweep operating point).
fn wiki_trace(setup: &PaperSetup, workers: usize) -> TraceConfig {
    let mut trace = setup.wiki_trace(ModelId::Albert);
    trace.shape = TraceShape::wiki(LANGUAGE_RPS * workers as f64 / 8.0);
    trace
}

/// The drain-phase workload: ON at 8x the paper's per-worker operating
/// point for 5 s, silent for 5 s (the `bench_pr7` pulse shape).
fn pulse_trace(setup: &PaperSetup, workers: usize) -> TraceConfig {
    let mut trace = setup.wiki_trace(ModelId::Albert);
    trace.shape = TraceShape::pulse(
        8.0 * LANGUAGE_RPS * workers as f64 / 8.0,
        SimDuration::from_secs(10.0),
    );
    trace
}

/// Runs one (trace, fleet) cell: the sequential engine once as the
/// digest reference, then the knob-off and knob-on arms at every shard
/// count, asserting bit-identical digests and reconciled counter
/// triads throughout. Returns one row per shard count.
fn run_cell(
    setup: &PaperSetup,
    trace_name: &'static str,
    trace: &TraceConfig,
    workers: usize,
    reps: usize,
) -> Vec<CellRow> {
    let scheme = ProteanBuilder::paper();
    let mut config = setup.cluster();
    config.workers = workers;

    let time_arm = |shards: usize, coalesce: bool| {
        let mut c = config.clone();
        c.shards = shards;
        c.shard_threads = shards;
        c.coalesce_window_expiries = coalesce;
        let mut best = f64::INFINITY;
        let mut result = None;
        for _ in 0..reps.max(1) {
            let t0 = Instant::now();
            let run = run_simulation(&c, &scheme, trace);
            best = best.min(t0.elapsed().as_secs_f64());
            result = Some(run);
        }
        (result.expect("reps >= 1"), best)
    };

    let sequential = run_simulation(&config, &scheme, trace);
    let d0 = golden::digest(&sequential);
    let requests = sequential.metrics.count(Class::All);

    let mut rows = Vec::new();
    for &shards in &SHARD_COUNTS {
        let mut arms = Vec::new();
        for coalesce in [false, true] {
            let label =
                format!("{trace_name} @ {workers} workers, S={shards}, coalesce={coalesce}");
            let (run, secs) = time_arm(shards, coalesce);
            // The contract, on every host and every cell size: expiry
            // coalescing is an exact elision of provably-empty phases
            // with zero observable effect.
            assert_eq!(
                d0,
                golden::digest(&run),
                "{label}: diverged from sequential"
            );
            assert_eq!(
                run.stats.expiries, sequential.stats.expiries,
                "{label}: expiry count diverged from sequential"
            );
            let arm = Arm {
                stats: run.stats,
                secs,
            };
            arm.assert_triad(&label);
            if !coalesce {
                assert_eq!(
                    arm.stats.coalesced_expiries, 0,
                    "{label}: knob off must not coalesce expiries"
                );
            }
            arms.push(arm);
        }
        let on = arms.pop().expect("two arms");
        let off = arms.pop().expect("two arms");
        rows.push(CellRow {
            trace: trace_name,
            workers,
            shards,
            requests,
            off,
            on,
        });
    }

    // Shard-count invariance: the admission checks union over every
    // shard heap, so the run partition — the epoch count, the
    // coalescing counters and the whole cut taxonomy — must not depend
    // on S. (Per-shard work counters like scan visits legitimately
    // vary with the partition and are excluded.)
    let partition = |s: EngineStats| {
        (
            s.arrivals,
            s.expiries,
            s.epochs,
            s.coalesced_arrivals,
            s.coalesced_expiries,
            s.run_cutoffs,
        )
    };
    for arm in ["off", "on"] {
        let pick = |r: &CellRow| {
            if arm == "off" {
                r.off.stats
            } else {
                r.on.stats
            }
        };
        let first = partition(pick(&rows[0]));
        for r in &rows[1..] {
            assert_eq!(
                partition(pick(r)),
                first,
                "{trace_name} @ {workers} workers, knob {arm}: run partition varies with \
                 the shard count (S={} vs S={})",
                r.shards,
                rows[0].shards
            );
        }
    }
    rows
}

// ---- planetary fleet -----------------------------------------------

struct PlanetaryReport {
    workers: usize,
    shards: usize,
    mean_rps: f64,
    sim_secs: f64,
    requests_target: u64,
    requests_recorded: usize,
    censored: u64,
    stats: EngineStats,
    wall_secs: f64,
    strict_p99_ms: f64,
    be_p99_ms: f64,
    preflight_requests: usize,
    rss_peak_mb: f64,
    rss_quarter_mb: f64,
    rss_end_mb: f64,
    live_quarter_mb: f64,
    live_end_mb: f64,
    alloc_calls: u64,
    alloc_gb: f64,
    samples: Vec<(f64, f64, f64)>,
}

impl PlanetaryReport {
    fn mreq_per_sec(&self) -> f64 {
        (self.requests_recorded as u64 + self.censored) as f64 / self.wall_secs.max(1e-9) / 1e6
    }

    fn epochs_per_dispatch(&self) -> f64 {
        self.stats.epochs as f64 / (self.stats.arrivals + self.stats.expiries).max(1) as f64
    }

    fn rss_growth_mb(&self) -> f64 {
        self.rss_end_mb - self.rss_quarter_mb
    }

    fn live_growth_mb(&self) -> f64 {
        self.live_end_mb - self.live_quarter_mb
    }
}

/// VmRSS of this process in MB (Linux; `None` elsewhere — RSS
/// assertions are skipped rather than faked).
fn rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kb: f64 = line
        .trim_start_matches("VmRSS:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb / 1024.0)
}

/// The planetary workload: per-worker load as in the sweep, diurnal on
/// a real 24 h period (the PR-6/PR-7 soak shape) across 100k workers.
fn planetary_trace(setup: &PaperSetup, workers: usize, sim_secs: f64) -> TraceConfig {
    let mut trace = PaperSetup {
        duration_secs: sim_secs,
        seed: setup.seed,
    }
    .wiki_trace(ModelId::Albert);
    trace.shape = TraceShape::WikiDiurnal {
        mean_rps: LANGUAGE_RPS * workers as f64 / 8.0,
        peak_to_mean: 316.0 / 303.0,
        period: SimDuration::from_secs(86_400.0),
    };
    trace
}

fn run_planetary(setup: &PaperSetup, requests_target: u64) -> PlanetaryReport {
    let workers = 100_000usize;
    let shards = 8usize;
    let mean_rps = LANGUAGE_RPS * workers as f64 / 8.0;
    let sim_secs = requests_target as f64 / mean_rps;

    let mut config = setup.cluster();
    config.workers = workers;
    config.shards = shards;
    // 0 = size the thread pool to the host: shard threads on multicore
    // hosts, fully inline sharding on a single core.
    config.shard_threads = 0;
    config.aggregate_metrics = true;

    // Digest preflight on a truncated slice with full metrics:
    // sequential, sharded-materialised and sharded-streamed must agree
    // bit for bit at fleet scale before the long run is trusted.
    let preflight_secs = (2_000_000.0 / mean_rps).min(sim_secs);
    let preflight_trace = planetary_trace(setup, workers, preflight_secs);
    let mut full_config = config.clone();
    full_config.aggregate_metrics = false;
    let mut sequential_config = full_config.clone();
    sequential_config.shards = 1;
    let scheme = ProteanBuilder::paper();
    let a = run_simulation(&sequential_config, &scheme, &preflight_trace);
    let b = run_simulation(&full_config, &scheme, &preflight_trace);
    let c = run_simulation_streaming(&full_config, &scheme, &preflight_trace);
    let preflight_requests = a.metrics.count(Class::All);
    assert_eq!(
        golden::digest(&a),
        golden::digest(&b),
        "planetary preflight: sharded diverged from sequential"
    );
    assert_eq!(
        golden::digest(&b),
        golden::digest(&c),
        "planetary preflight: sharded-streamed diverged from sharded-materialised"
    );
    println!(
        "  preflight clean: {preflight_requests} requests at {workers} workers, \
         sequential == sharded == sharded-streamed"
    );

    // Sampler: VmRSS and the allocator's live-byte balance every
    // 250 ms for the duration of the streamed run.
    let stop = Arc::new(AtomicBool::new(false));
    let samples: Arc<Mutex<Vec<(f64, f64, f64)>>> = Arc::new(Mutex::new(Vec::new()));
    let sampler = {
        let stop = Arc::clone(&stop);
        let samples = Arc::clone(&samples);
        let t0 = Instant::now();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let rss = rss_mb().unwrap_or(0.0);
                samples
                    .lock()
                    .unwrap()
                    .push((t0.elapsed().as_secs_f64(), rss, live_mb()));
                std::thread::sleep(std::time::Duration::from_millis(250));
            }
        })
    };

    let calls0 = ALLOC_CALLS.load(Ordering::Relaxed);
    let bytes0 = ALLOC_BYTES.load(Ordering::Relaxed);
    let trace = planetary_trace(setup, workers, sim_secs);
    let t0 = Instant::now();
    let result = run_simulation_streaming(&config, &scheme, &trace);
    let wall_secs = t0.elapsed().as_secs_f64();
    let alloc_calls = ALLOC_CALLS.load(Ordering::Relaxed) - calls0;
    let alloc_gb =
        (ALLOC_BYTES.load(Ordering::Relaxed) - bytes0) as f64 / (1024.0 * 1024.0 * 1024.0);
    stop.store(true, Ordering::Relaxed);
    sampler.join().expect("sampler");

    let samples = Arc::try_unwrap(samples)
        .expect("sampler joined")
        .into_inner()
        .unwrap();
    // Growth is measured from the quarter mark: by then the 100k-worker
    // pool/index/histogram state is steady, so any further climb would
    // be an O(requests) retention.
    let (rss_peak_mb, rss_quarter_mb, rss_end_mb, live_quarter_mb, live_end_mb) =
        if samples.is_empty() {
            (0.0, 0.0, 0.0, 0.0, 0.0)
        } else {
            let peak = samples.iter().map(|s| s.1).fold(0.0, f64::max);
            let quarter = &samples[samples.len() / 4];
            let end = samples.last().unwrap();
            (peak, quarter.1, end.1, quarter.2, end.2)
        };

    PlanetaryReport {
        workers,
        shards,
        mean_rps,
        sim_secs,
        requests_target,
        requests_recorded: result.metrics.count(Class::All),
        censored: result.censored,
        stats: result.stats,
        wall_secs,
        strict_p99_ms: result
            .metrics
            .latency_percentile_ms(Class::Strict, 0.99)
            .unwrap_or(0.0),
        be_p99_ms: result
            .metrics
            .latency_percentile_ms(Class::BestEffort, 0.99)
            .unwrap_or(0.0),
        preflight_requests,
        rss_peak_mb,
        rss_quarter_mb,
        rss_end_mb,
        live_quarter_mb,
        live_end_mb,
        alloc_calls,
        alloc_gb,
        samples,
    }
}

// ---- output --------------------------------------------------------

fn arm_json(a: &Arm) -> String {
    let c = &a.stats.run_cutoffs;
    format!(
        "{{\"secs\": {:.6}, \"epochs\": {}, \"epochs_per_dispatch_event\": {:.4}, \
         \"coalesced_arrivals\": {}, \"coalesced_expiries\": {}, \
         \"cuts\": {{\"serial_event\": {}, \"shard_conflict\": {}, \
         \"expiry_shard_conflict\": {}, \"coalescing_off\": {}, \"max_arrivals\": {}, \
         \"journal_pressure\": {}, \"trace_end\": {}}}}}",
        a.secs,
        a.stats.epochs,
        a.epochs_per_dispatch(),
        a.stats.coalesced_arrivals,
        a.stats.coalesced_expiries,
        c.serial_event,
        c.shard_conflict,
        c.expiry_shard_conflict,
        c.coalescing_off,
        c.max_arrivals,
        c.journal_pressure,
        c.trace_end,
    )
}

fn pr10_json(
    setup: &PaperSetup,
    cores: usize,
    rows: &[CellRow],
    planetary: Option<&PlanetaryReport>,
) -> String {
    let has_wiki_2048 = rows.iter().any(|r| r.trace == "wiki" && r.workers == 2048);
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"expiry_coalescing_sweep_and_planetary_fleet\",\n");
    out.push_str(
        "  \"baseline\": \"coalesce_window_expiries = false (PR-8 expiry-singleton epochs)\",\n",
    );
    out.push_str(&format!(
        "  \"duration_secs\": {:.1},\n  \"seed\": {},\n  \"host_cores\": {},\n",
        setup.duration_secs, setup.seed, cores
    ));
    out.push_str(&protean_experiments::report::floors_json(
        cores,
        &[
            (
                "wiki_2048_epochs_per_dispatch_event_le_0.15",
                has_wiki_2048,
                "wiki @ 2048 cell present (deterministic, host-independent)",
            ),
            (
                "wiki_2048_serial_cut_share_lt_40pct",
                has_wiki_2048,
                "wiki @ 2048 cell present (deterministic, host-independent)",
            ),
            (
                "wiki_2048_coalescing_not_slower",
                setup.duration_secs >= 10.0 && cores >= 4,
                "duration_secs >= 10 && host_cores >= 4",
            ),
            (
                "planetary_memory_growth_le_256mb",
                planetary.is_some(),
                "always (asserted whenever the planetary cell runs)",
            ),
        ],
    ));
    out.push_str("  \"cells\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"trace\": \"{}\", \"workers\": {}, \"shards\": {}, \"requests\": {}, \
             \"arrivals\": {}, \"expiries\": {},\n     \"off\": {},\n     \"on\": {}}}{}\n",
            r.trace,
            r.workers,
            r.shards,
            r.requests,
            r.off.stats.arrivals,
            r.off.stats.expiries,
            arm_json(&r.off),
            arm_json(&r.on),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    match planetary {
        None => out.push_str("  \"planetary\": null\n"),
        Some(p) => {
            out.push_str("  \"planetary\": {\n");
            out.push_str(&format!(
                "    \"workers\": {}, \"shards\": {}, \"mean_rps\": {:.1}, \
                 \"sim_secs\": {:.1},\n\
                 \x20   \"requests_target\": {}, \"requests_recorded\": {}, \"censored\": {},\n\
                 \x20   \"arrivals\": {}, \"expiries\": {}, \"epochs\": {}, \
                 \"coalesced_arrivals\": {}, \"coalesced_expiries\": {},\n\
                 \x20   \"epochs_per_dispatch_event\": {:.4}, \"wall_secs\": {:.1}, \
                 \"million_requests_per_sec\": {:.3},\n\
                 \x20   \"strict_p99_ms\": {:.3}, \"be_p99_ms\": {:.3}, \
                 \"preflight_requests\": {},\n\
                 \x20   \"alloc_calls\": {}, \"alloc_gb\": {:.2},\n\
                 \x20   \"rss_peak_mb\": {:.1}, \"rss_quarter_mb\": {:.1}, \
                 \"rss_end_mb\": {:.1}, \"rss_growth_mb\": {:.1},\n\
                 \x20   \"live_quarter_mb\": {:.1}, \"live_end_mb\": {:.1}, \
                 \"live_growth_mb\": {:.1},\n",
                p.workers,
                p.shards,
                p.mean_rps,
                p.sim_secs,
                p.requests_target,
                p.requests_recorded,
                p.censored,
                p.stats.arrivals,
                p.stats.expiries,
                p.stats.epochs,
                p.stats.coalesced_arrivals,
                p.stats.coalesced_expiries,
                p.epochs_per_dispatch(),
                p.wall_secs,
                p.mreq_per_sec(),
                p.strict_p99_ms,
                p.be_p99_ms,
                p.preflight_requests,
                p.alloc_calls,
                p.alloc_gb,
                p.rss_peak_mb,
                p.rss_quarter_mb,
                p.rss_end_mb,
                p.rss_growth_mb(),
                p.live_quarter_mb,
                p.live_end_mb,
                p.live_growth_mb(),
            ));
            // Downsample the (t, rss, live) series to ≤ 64 points.
            let step = (p.samples.len() / 64).max(1);
            let series: Vec<String> = p
                .samples
                .iter()
                .step_by(step)
                .map(|(t, rss, live)| format!("[{t:.1}, {rss:.1}, {live:.1}]"))
                .collect();
            out.push_str(&format!(
                "    \"rss_live_series_mb\": [{}]\n",
                series.join(", ")
            ));
            out.push_str("  }\n");
        }
    }
    out.push('}');
    out.push('\n');
    out
}

fn main() {
    let mut args = std::env::args().skip(1);
    let setup = PaperSetup {
        duration_secs: args.next().and_then(|a| a.parse().ok()).unwrap_or(30.0),
        seed: args.next().and_then(|a| a.parse().ok()).unwrap_or(42),
    };
    let fleets_arg = args.next().unwrap_or_else(|| "2048,8192".to_string());
    let fleets: Vec<usize> = if fleets_arg == "none" {
        Vec::new()
    } else {
        fleets_arg
            .split(',')
            .filter_map(|w| w.trim().parse().ok())
            .filter(|&w| w > 0)
            .collect()
    };
    let planetary_requests: u64 = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(100_000_000);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    banner(
        "bench_pr10",
        &format!(
            "{} s per sweep cell, fleets {:?}, shards {:?}, planetary target {} requests, \
             {} host cores",
            setup.duration_secs, fleets, SHARD_COUNTS, planetary_requests, cores
        ),
    );

    let reps: usize = std::env::var("BENCH_PR10_REPS")
        .ok()
        .and_then(|r| r.parse().ok())
        .unwrap_or(2);
    let mut rows = Vec::new();
    for &workers in &fleets {
        for (name, trace) in [
            ("wiki", wiki_trace(&setup, workers)),
            ("pulse", pulse_trace(&setup, workers)),
        ] {
            let cell = run_cell(&setup, name, &trace, workers, reps);
            for r in &cell {
                println!(
                    "  {} @ {:>4} workers, S={}: ep/dispatch {:.4} -> {:.4}, \
                     serial share {:.0}% -> {:.0}% ({:.2}x wall)",
                    r.trace,
                    r.workers,
                    r.shards,
                    r.off.epochs_per_dispatch(),
                    r.on.epochs_per_dispatch(),
                    100.0 * r.off.serial_cut_share(),
                    100.0 * r.on.serial_cut_share(),
                    r.on_speedup(),
                );
            }
            rows.extend(cell);
        }
    }

    if !rows.is_empty() {
        let printable: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.trace.to_string(),
                    r.workers.to_string(),
                    r.shards.to_string(),
                    r.requests.to_string(),
                    r.off.stats.arrivals.to_string(),
                    r.off.stats.expiries.to_string(),
                    format!("{:.4}", r.off.epochs_per_dispatch()),
                    format!("{:.4}", r.on.epochs_per_dispatch()),
                    format!("{:.0}%", 100.0 * r.off.serial_cut_share()),
                    format!("{:.0}%", 100.0 * r.on.serial_cut_share()),
                    format!("{:.2}x", r.on_speedup()),
                ]
            })
            .collect();
        table(
            &[
                "trace",
                "workers",
                "shards",
                "requests",
                "arrivals",
                "expiries",
                "ep/dis off",
                "ep/dis on",
                "ser% off",
                "ser% on",
                "on spd",
            ],
            &printable,
        );
    }

    let planetary = run_planetary_part(&setup, planetary_requests);

    // The artifact is written before any floor asserts so a failed
    // floor still leaves the full breakdown on disk for diagnosis.
    let path = std::path::Path::new("results/bench_pr10.json");
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).expect("create results/");
    }
    std::fs::write(path, pr10_json(&setup, cores, &rows, planetary.as_ref()))
        .expect("write results/bench_pr10.json");
    println!("\nwrote {}", path.display());

    // Deterministic floors: the coalesced wiki cell at fleet scale
    // must retire the serial-event cut regime PR-8 measured. These are
    // epoch-partition properties — identical on every host and at
    // every cell duration — so they are asserted unconditionally.
    for r in rows
        .iter()
        .filter(|r| r.trace == "wiki" && r.workers == 2048)
    {
        assert!(
            r.on.epochs_per_dispatch() <= 0.15,
            "wiki @ 2048, S={}: {:.4} epochs per dispatch event above the 0.15 floor",
            r.shards,
            r.on.epochs_per_dispatch()
        );
        assert!(
            r.on.serial_cut_share() < 0.40,
            "wiki @ 2048, S={}: serial-event cut share {:.0}% at or above 40%",
            r.shards,
            100.0 * r.on.serial_cut_share()
        );
    }
    // Wall-clock floor: coalescing must not cost wall time where
    // timing is honest (real cell durations, multi-core host).
    if setup.duration_secs >= 10.0 && cores >= 4 {
        for r in rows
            .iter()
            .filter(|r| r.trace == "wiki" && r.workers == 2048)
        {
            assert!(
                r.on_speedup() >= 1.0,
                "wiki @ 2048, S={}: coalescing slowed the cell to {:.2}x",
                r.shards,
                r.on_speedup()
            );
        }
    } else if !rows.is_empty() {
        println!(
            "\n(wall-clock floors skipped: {} s cells on {} core(s) — \
             digest equality and epoch floors asserted on every cell)",
            setup.duration_secs, cores
        );
    }

    if let Some(p) = &planetary {
        // The extended triad must reconcile at planetary scale too.
        let s = &p.stats;
        assert_eq!(
            s.epochs + s.coalesced_arrivals + s.coalesced_expiries,
            s.arrivals + s.expiries,
            "planetary: epoch conservation broken"
        );
        // Flat-footprint contract past the quarter mark on both
        // ledgers: RSS (what the OS sees) and live bytes (what the
        // program actually retains).
        assert!(
            p.live_growth_mb() <= 256.0,
            "planetary live bytes grew {:.1} MB — the streamed path retains per-request state",
            p.live_growth_mb()
        );
        if p.rss_peak_mb > 0.0 {
            assert!(
                p.rss_growth_mb() <= 256.0,
                "planetary RSS grew {:.1} MB past the quarter mark",
                p.rss_growth_mb()
            );
        } else {
            println!("  (no /proc/self/status — RSS assertions skipped)");
        }
    }
}

/// Runs the planetary cell (if requested) and prints its summary; the
/// floors on its numbers are asserted by `main` only after the JSON
/// artifact is on disk.
fn run_planetary_part(setup: &PaperSetup, planetary_requests: u64) -> Option<PlanetaryReport> {
    if planetary_requests == 0 {
        return None;
    }
    println!(
        "\nplanetary fleet: streaming {} requests through 100000 workers, shards=8...",
        planetary_requests
    );
    let p = run_planetary(setup, planetary_requests);
    println!(
        "  {} recorded + {} censored over {:.1} simulated seconds in {:.1}s wall\n  \
         {:.2}M req/s, {:.4} epochs per dispatch event, {} allocs ({:.2} GB cumulative)\n  \
         RSS peak {:.0} MB (growth {:+.1} MB), live bytes growth {:+.1} MB",
        p.requests_recorded,
        p.censored,
        p.sim_secs,
        p.wall_secs,
        p.mreq_per_sec(),
        p.epochs_per_dispatch(),
        p.alloc_calls,
        p.alloc_gb,
        p.rss_peak_mb,
        p.rss_growth_mb(),
        p.live_growth_mb(),
    );
    Some(p)
}
