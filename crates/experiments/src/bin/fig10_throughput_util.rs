//! Fig. 10 — PROTEAN's other key benefits: strict-request throughput
//! (DenseNet 121) and GPU compute/memory utilization
//! (EfficientNet-B0).
//!
//! Throughput in the paper is "determined by the batch execution
//! latency of strict requests" (all schemes see the same arrivals), so
//! alongside the served rate we report the *service rate* — batch size
//! over mean strict latency — which is where the schemes differ.
//! Utilization is reported as the cluster mean and the busiest GPU:
//! consolidating schemes (INFless/Llama) concentrate load, maximising
//! per-GPU utilization while the cluster mean stays low.

use protean_experiments::report::{banner, table};
use protean_experiments::{run_scheme, schemes, PaperSetup};
use protean_metrics::record::Class;
use protean_models::{catalog, ModelId};

fn main() {
    let setup = PaperSetup::from_args();
    let config = setup.cluster();

    banner("Fig. 10a", "throughput (DenseNet 121)");
    let trace = setup.wiki_trace(ModelId::DenseNet121);
    let batch = f64::from(catalog().profile(ModelId::DenseNet121).batch_size);
    let rows: Vec<Vec<String>> = schemes::primary()
        .iter()
        .map(|s| {
            let r = run_scheme(&config, s.as_ref(), &trace);
            let lats = r.result.metrics.latencies_ms(Class::Strict);
            let mean_ms = lats.iter().sum::<f64>() / lats.len().max(1) as f64;
            vec![
                r.scheme.clone(),
                format!("{:.1}", r.strict_throughput),
                format!("{:.1}", r.total_throughput),
                format!("{:.0}", batch / (mean_ms / 1000.0)),
            ]
        })
        .collect();
    table(
        &[
            "scheme",
            "served strict/GPU/s",
            "served total/GPU/s",
            "service rate (req/s per batch slot)",
        ],
        &rows,
    );

    banner("Fig. 10b", "GPU utilization (EfficientNet-B0), percent");
    let trace = setup.wiki_trace(ModelId::EfficientNetB0);
    let rows: Vec<Vec<String>> = schemes::primary()
        .iter()
        .map(|s| {
            let r = run_scheme(&config, s.as_ref(), &trace);
            let peak_compute = r
                .result
                .per_gpu_compute_utilization
                .iter()
                .cloned()
                .fold(0.0, f64::max);
            let peak_mem = r
                .result
                .per_gpu_memory_utilization
                .iter()
                .cloned()
                .fold(0.0, f64::max);
            vec![
                r.scheme.clone(),
                format!("{:.1}", r.gpu_util_pct),
                format!("{:.1}", peak_compute * 100.0),
                format!("{:.1}", r.mem_util_pct),
                format!("{:.1}", peak_mem * 100.0),
            ]
        })
        .collect();
    table(
        &[
            "scheme",
            "GPU util % (mean)",
            "GPU util % (busiest)",
            "mem util % (mean)",
            "mem util % (busiest)",
        ],
        &rows,
    );
}
