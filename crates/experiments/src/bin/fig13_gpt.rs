//! Fig. 13 — SLO compliance for the modern generative LLMs: strict
//! requests are GPT-1 / GPT-2, best-effort requests rotate through the
//! other language models. The especially high GPT FBRs sink every
//! MPS-consolidating scheme; PROTEAN co-locates classes judiciously.

use protean_experiments::report::{banner, table};
use protean_experiments::{run_scheme, schemes, PaperSetup};
use protean_models::ModelId;

fn main() {
    let setup = PaperSetup::from_args();
    let config = setup.cluster();
    banner("Fig. 13", "SLO compliance (%) for GPT-1 and GPT-2");
    let lineup = schemes::primary();
    let mut headers: Vec<String> = vec!["model".to_string()];
    headers.extend(lineup.iter().map(|s| s.name().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for model in [ModelId::Gpt1, ModelId::Gpt2] {
        let trace = setup.wiki_trace(model);
        let mut row = vec![model.to_string()];
        for s in &lineup {
            let r = run_scheme(&config, s.as_ref(), &trace);
            row.push(format!("{:.2}", r.slo_compliance_pct));
        }
        rows.push(row);
        eprintln!("  done: {model}");
    }
    table(&header_refs, &rows);
}
