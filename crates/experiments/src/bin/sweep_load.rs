//! Load-sensitivity sweep (beyond the paper's fixed ~5000 rps): SLO
//! compliance of every primary scheme as the offered vision load grows,
//! locating each scheme's knee. Complements Fig. 5 by showing *where*
//! the schemes break rather than how they compare at one point.
//!
//! The `load x scheme` grid runs on the parallel harness
//! (`PROTEAN_THREADS` overrides the worker count).
//!
//! Usage: `sweep_load [duration_secs] [seed]`.

use protean_experiments::chart::line_plot;
use protean_experiments::harness::{run_grid, thread_count, GridCell};
use protean_experiments::report::{banner, table};
use protean_experiments::{schemes, PaperSetup};
use protean_models::ModelId;
use protean_trace::TraceShape;

const LOADS: [f64; 6] = [2000.0, 4000.0, 6000.0, 8000.0, 10000.0, 12000.0];

fn main() {
    let mut setup = PaperSetup::from_args();
    if setup.duration_secs > 60.0 {
        setup.duration_secs = 60.0; // 6 loads x 4 schemes: keep it quick
    }
    let config = setup.cluster();
    let model = ModelId::ResNet50;
    banner(
        "load sweep",
        &format!("strict SLO compliance vs offered load ({model}, Wiki)"),
    );
    let lineup = schemes::primary();
    let mut headers: Vec<String> = vec!["offered rps".to_string()];
    headers.extend(lineup.iter().map(|s| s.name().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

    let cells: Vec<GridCell<'_>> = LOADS
        .iter()
        .flat_map(|&rps| lineup.iter().map(move |s| (rps, s)))
        .map(|(rps, s)| {
            let mut trace = setup.wiki_trace(model);
            trace.shape = TraceShape::wiki(rps);
            GridCell::new(config.clone(), s.as_ref(), trace)
                .labeled(format!("{rps:.0} rps / {}", s.name()))
        })
        .collect();
    let results = run_grid(&cells, thread_count());

    let mut rows = Vec::new();
    let mut curves: Vec<Vec<(f64, f64)>> = vec![Vec::new(); lineup.len()];
    for (l, &rps) in LOADS.iter().enumerate() {
        let mut row = vec![format!("{rps:.0}")];
        for (i, _) in lineup.iter().enumerate() {
            let r = &results[l * lineup.len() + i];
            row.push(format!("{:.2}", r.slo_compliance_pct));
            curves[i].push((rps, r.slo_compliance_pct));
        }
        rows.push(row);
    }
    table(&header_refs, &rows);
    println!();
    let glyphs = ['M', 'I', 'N', 'P'];
    for (i, s) in lineup.iter().enumerate() {
        println!("  [{}] {}", glyphs[i % glyphs.len()], s.name());
    }
    let series: Vec<(char, &[(f64, f64)])> = curves
        .iter()
        .enumerate()
        .map(|(i, c)| (glyphs[i % glyphs.len()], c.as_slice()))
        .collect();
    line_plot(
        "SLO compliance vs offered load",
        "rps",
        "SLO %",
        &series,
        14,
    );
}
