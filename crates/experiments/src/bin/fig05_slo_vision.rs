//! Fig. 5 — SLO compliance of all schemes for all 12 vision models
//! (Wiki trace, ~5000 rps mean, 8×A100, 50/50 strict/BE).

use protean_experiments::chart::bar_chart;
use protean_experiments::report::{banner, table};
use protean_experiments::{run_scheme, schemes, PaperSetup};
use protean_models::catalog;

fn main() {
    let setup = PaperSetup::from_args();
    let config = setup.cluster();
    let cat = catalog();
    banner("Fig. 5", "SLO compliance (%) per vision model and scheme");
    let lineup = schemes::primary();
    let mut headers: Vec<String> = vec!["model".to_string()];
    headers.extend(lineup.iter().map(|s| s.name().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    let mut sums = vec![0.0f64; lineup.len()];
    for model in cat.vision().map(|p| p.id).collect::<Vec<_>>() {
        let trace = setup.wiki_trace(model);
        let mut row = vec![model.to_string()];
        for (i, s) in lineup.iter().enumerate() {
            let r = run_scheme(&config, s.as_ref(), &trace);
            sums[i] += r.slo_compliance_pct;
            row.push(format!("{:.2}", r.slo_compliance_pct));
        }
        rows.push(row);
        // Print incrementally so long runs show progress.
        eprintln!("  done: {model}");
    }
    table(&header_refs, &rows);
    println!();
    bar_chart(
        "mean SLO compliance over the 12 vision models (%)",
        &lineup
            .iter()
            .zip(&sums)
            .map(|(s, sum)| (s.name().to_string(), sum / 12.0))
            .collect::<Vec<_>>(),
        100.0,
    );
}
