//! Fig. 5 — SLO compliance of all schemes for all 12 vision models
//! (Wiki trace, ~5000 rps mean, 8×A100, 50/50 strict/BE).
//!
//! The `model x scheme` grid runs on the parallel harness
//! (`PROTEAN_THREADS` overrides the worker count).

use protean_experiments::chart::bar_chart;
use protean_experiments::harness::{run_grid, thread_count, GridCell};
use protean_experiments::report::{banner, table};
use protean_experiments::{schemes, PaperSetup};
use protean_models::catalog;

fn main() {
    let setup = PaperSetup::from_args();
    let config = setup.cluster();
    let cat = catalog();
    banner("Fig. 5", "SLO compliance (%) per vision model and scheme");
    let lineup = schemes::primary();
    let mut headers: Vec<String> = vec!["model".to_string()];
    headers.extend(lineup.iter().map(|s| s.name().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

    let models: Vec<_> = cat.vision().map(|p| p.id).collect();
    let cells: Vec<GridCell<'_>> = models
        .iter()
        .flat_map(|&model| lineup.iter().map(move |s| (model, s)))
        .map(|(model, s)| {
            GridCell::new(config.clone(), s.as_ref(), setup.wiki_trace(model))
                .labeled(format!("{model} / {}", s.name()))
        })
        .collect();
    let results = run_grid(&cells, thread_count());

    let mut rows = Vec::new();
    let mut sums = vec![0.0f64; lineup.len()];
    for (m, &model) in models.iter().enumerate() {
        let mut row = vec![model.to_string()];
        for (i, _) in lineup.iter().enumerate() {
            let r = &results[m * lineup.len() + i];
            sums[i] += r.slo_compliance_pct;
            row.push(format!("{:.2}", r.slo_compliance_pct));
        }
        rows.push(row);
    }
    table(&header_refs, &rows);
    println!();
    bar_chart(
        "mean SLO compliance over the 12 vision models (%)",
        &lineup
            .iter()
            .zip(&sums)
            .map(|(s, sum)| (s.name().to_string(), sum / models.len() as f64))
            .collect::<Vec<_>>(),
        100.0,
    );
}
