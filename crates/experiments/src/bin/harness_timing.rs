//! Harness timing reporter: measures wall-clock of representative
//! experiment grids sequentially (1 thread) and in parallel
//! (`PROTEAN_THREADS` / available parallelism), verifies the results
//! are bit-identical, and writes `results/bench_pr1.json` so later PRs
//! have a perf trajectory to regress against.
//!
//! Usage: `harness_timing [duration_secs] [seed]` (defaults 20 s,
//! seed 42 — a reduced-scale grid; the point is the speedup ratio, not
//! absolute figure values).

use std::time::Instant;

use protean_experiments::harness::{
    run_grid, thread_count, write_bench_json, GridCell, TimingReport,
};
use protean_experiments::report::{banner, table};
use protean_experiments::{schemes, PaperSetup, SchemeRow};
use protean_models::{catalog, ModelId};

fn time_grid(name: &str, cells: &[GridCell<'_>], threads: usize) -> (TimingReport, bool) {
    let t0 = Instant::now();
    let sequential = run_grid(cells, 1);
    let sequential_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let parallel = run_grid(cells, threads);
    let parallel_secs = t1.elapsed().as_secs_f64();
    let identical = sequential
        .iter()
        .zip(&parallel)
        .all(|(a, b)| rows_identical(a, b));
    (
        TimingReport {
            experiment: name.to_string(),
            cells: cells.len(),
            threads,
            sequential_secs,
            parallel_secs,
        },
        identical,
    )
}

fn rows_identical(a: &SchemeRow, b: &SchemeRow) -> bool {
    a.scheme == b.scheme
        && a.slo_compliance_pct.to_bits() == b.slo_compliance_pct.to_bits()
        && a.strict_p50_ms.to_bits() == b.strict_p50_ms.to_bits()
        && a.strict_p99_ms.to_bits() == b.strict_p99_ms.to_bits()
        && a.cost_usd.to_bits() == b.cost_usd.to_bits()
        && a.evictions == b.evictions
        && a.reconfigs == b.reconfigs
}

fn main() {
    let setup = PaperSetup {
        duration_secs: 20.0,
        ..PaperSetup::default()
    };
    let mut args = std::env::args().skip(1);
    let setup = PaperSetup {
        duration_secs: args
            .next()
            .and_then(|a| a.parse().ok())
            .unwrap_or(setup.duration_secs),
        seed: args
            .next()
            .and_then(|a| a.parse().ok())
            .unwrap_or(setup.seed),
    };
    let threads = thread_count();
    banner(
        "harness timing",
        &format!(
            "{} s per cell grid, {} worker threads (PROTEAN_THREADS overrides)",
            setup.duration_secs, threads
        ),
    );

    let config = setup.cluster();
    let lineup = schemes::primary();
    let mut reports = Vec::new();
    let mut all_identical = true;

    // fig05-style grid: every vision model x every primary scheme.
    let vision: Vec<ModelId> = catalog().vision().map(|p| p.id).collect();
    let cells: Vec<GridCell<'_>> = vision
        .iter()
        .flat_map(|&model| lineup.iter().map(move |s| (model, s)))
        .map(|(model, s)| GridCell::new(config.clone(), s.as_ref(), setup.wiki_trace(model)))
        .collect();
    let (report, identical) = time_grid("fig05_slo_vision", &cells, threads);
    all_identical &= identical;
    reports.push(report);

    // stats-significance-style grid: one model x many seeds x schemes.
    let seed_cells: Vec<GridCell<'_>> = (0..8u64)
        .flat_map(|seed| {
            let per_seed = PaperSetup {
                duration_secs: setup.duration_secs,
                seed: 1000 + seed,
            };
            let config = per_seed.cluster();
            let trace = per_seed.wiki_trace(ModelId::ResNet50);
            lineup
                .iter()
                .map(move |s| GridCell::new(config.clone(), s.as_ref(), trace.clone()))
                .collect::<Vec<_>>()
        })
        .collect();
    let (report, identical) = time_grid("stats_significance", &seed_cells, threads);
    all_identical &= identical;
    reports.push(report);

    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.experiment.clone(),
                r.cells.to_string(),
                format!("{:.2}", r.sequential_secs),
                format!("{:.2}", r.parallel_secs),
                format!("{:.2}x", r.speedup()),
                format!("{:.2}", r.cells_per_sec()),
            ]
        })
        .collect();
    table(
        &[
            "experiment",
            "cells",
            "sequential s",
            "parallel s",
            "speedup",
            "cells/s",
        ],
        &rows,
    );
    println!();
    println!(
        "parallel == sequential (bit-identical rows): {}",
        if all_identical { "yes" } else { "NO" }
    );

    let path = std::path::Path::new("results/bench_pr1.json");
    write_bench_json(path, threads, &reports).expect("write results/bench_pr1.json");
    println!("wrote {}", path.display());
    assert!(all_identical, "parallel run diverged from sequential");
}
