//! Fig. 3 — normalized Fractional Bandwidth Requirements of the
//! workload catalog, with the LI (yellow) / HI (orange) classes; the
//! VHI language models of §6.2 are listed alongside.
//!
//! Also demonstrates the §3 profiling procedure: pairwise co-location
//! measurements are synthesised through Eq. 1 and the FBRs recovered by
//! solving the resulting linear systems, as the paper describes.

use protean_experiments::report::{banner, table};
use protean_models::{catalog, estimate_fbr_from_pairs, CoLocationMeasurement, InterferenceClass};

fn main() {
    let cat = catalog();
    let max_fbr = cat.profiles().iter().map(|p| p.fbr).fold(0.0, f64::max);
    banner("Fig. 3", "normalized FBRs of the 22 inference workloads");
    let rows: Vec<Vec<String>> = cat
        .profiles()
        .iter()
        .map(|p| {
            vec![
                p.id.to_string(),
                format!("{:?}", p.domain),
                match p.class {
                    InterferenceClass::Li => "LI".to_string(),
                    InterferenceClass::Hi => "HI".to_string(),
                    InterferenceClass::Vhi => "VHI".to_string(),
                },
                format!("{:.3}", p.fbr / max_fbr),
                format!("{:.2}", p.fbr),
            ]
        })
        .collect();
    table(&["model", "domain", "class", "FBR (norm.)", "FBR"], &rows);

    // §3 profiling: recover the HI vision FBRs from synthetic pairwise
    // co-location slowdowns (Eq. 1), as PROTEAN's profiler would.
    banner(
        "Fig. 3 (profiling)",
        "FBRs recovered from co-location measurements",
    );
    let hi: Vec<_> = cat.in_class(InterferenceClass::Hi).collect();
    let mut measurements = Vec::new();
    for (i, a) in hi.iter().enumerate() {
        for b in hi.iter().skip(i + 1) {
            let slowdown = (a.fbr + b.fbr).max(1.0);
            measurements.push(CoLocationMeasurement {
                job: a.id,
                partner: b.id,
                slowdown,
            });
            measurements.push(CoLocationMeasurement {
                job: b.id,
                partner: a.id,
                slowdown,
            });
        }
    }
    let recovered = estimate_fbr_from_pairs(&measurements, 300);
    let mut rows: Vec<Vec<String>> = hi
        .iter()
        .map(|p| {
            vec![
                p.id.to_string(),
                format!("{:.3}", p.fbr),
                format!("{:.3}", recovered.get(&p.id).copied().unwrap_or(f64::NAN)),
            ]
        })
        .collect();
    rows.sort();
    table(&["model", "catalog FBR", "recovered FBR"], &rows);
}
