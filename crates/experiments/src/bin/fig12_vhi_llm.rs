//! Fig. 12 — SLO compliance for the Very High Interference language
//! models (128 rps, batch 4, Wiki trace): the MPS-consolidating schemes
//! suffer from the LLMs' high FBRs; PROTEAN stays compliant through
//! isolation-aware placement.

use protean_experiments::report::{banner, table};
use protean_experiments::{run_scheme, schemes, PaperSetup};
use protean_models::catalog;

fn main() {
    let setup = PaperSetup::from_args();
    let config = setup.cluster();
    let cat = catalog();
    banner("Fig. 12", "SLO compliance (%) per VHI language model");
    let lineup = schemes::primary();
    let mut headers: Vec<String> = vec!["model".to_string()];
    headers.extend(lineup.iter().map(|s| s.name().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for model in cat.vhi_non_generative().map(|p| p.id).collect::<Vec<_>>() {
        let trace = setup.wiki_trace(model);
        let mut row = vec![model.to_string()];
        for s in &lineup {
            let r = run_scheme(&config, s.as_ref(), &trace);
            row.push(format!("{:.2}", r.slo_compliance_pct));
        }
        rows.push(row);
        eprintln!("  done: {model}");
    }
    table(&header_refs, &rows);
}
