//! Fig. 12 — SLO compliance for the Very High Interference language
//! models (128 rps, batch 4, Wiki trace): the MPS-consolidating schemes
//! suffer from the LLMs' high FBRs; PROTEAN stays compliant through
//! isolation-aware placement.
//!
//! The `model x scheme` grid runs on the parallel harness
//! (`PROTEAN_THREADS` overrides the worker count).

use protean_experiments::harness::{run_grid, thread_count, GridCell};
use protean_experiments::report::{banner, table};
use protean_experiments::{schemes, PaperSetup};
use protean_models::catalog;

fn main() {
    let setup = PaperSetup::from_args();
    let config = setup.cluster();
    let cat = catalog();
    banner("Fig. 12", "SLO compliance (%) per VHI language model");
    let lineup = schemes::primary();
    let mut headers: Vec<String> = vec!["model".to_string()];
    headers.extend(lineup.iter().map(|s| s.name().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

    let models: Vec<_> = cat.vhi_non_generative().map(|p| p.id).collect();
    let cells: Vec<GridCell<'_>> = models
        .iter()
        .flat_map(|&model| lineup.iter().map(move |s| (model, s)))
        .map(|(model, s)| {
            GridCell::new(config.clone(), s.as_ref(), setup.wiki_trace(model))
                .labeled(format!("{model} / {}", s.name()))
        })
        .collect();
    let results = run_grid(&cells, thread_count());

    let rows: Vec<Vec<String>> = models
        .iter()
        .enumerate()
        .map(|(m, &model)| {
            let mut row = vec![model.to_string()];
            row.extend(
                (0..lineup.len())
                    .map(|i| format!("{:.2}", results[m * lineup.len() + i].slo_compliance_pct)),
            );
            row
        })
        .collect();
    table(&header_refs, &rows);
}
