//! Fig. 15 — SLO compliance when the SLO target is tightened from 3× to
//! 2× the minimum execution latency. The comparison schemes degrade
//! considerably; PROTEAN degrades only a few percent.

use protean_experiments::report::{banner, table};
use protean_experiments::{run_scheme, schemes, PaperSetup};
use protean_models::ModelId;

fn main() {
    let setup = PaperSetup::from_args();
    banner(
        "Fig. 15",
        "SLO compliance (%) at 2x (tight) vs 3x (default) SLO",
    );
    let lineup = schemes::primary();
    let mut rows = Vec::new();
    for model in [ModelId::ResNet50, ModelId::ShuffleNetV2, ModelId::Vgg19] {
        let trace = setup.wiki_trace(model);
        for s in &lineup {
            let mut tight = setup.cluster();
            tight.slo_multiplier = 2.0;
            let tight_row = run_scheme(&tight, s.as_ref(), &trace);
            let default_row = run_scheme(&setup.cluster(), s.as_ref(), &trace);
            rows.push(vec![
                model.to_string(),
                tight_row.scheme.clone(),
                format!("{:.2}", tight_row.slo_compliance_pct),
                format!("{:.2}", default_row.slo_compliance_pct),
                format!(
                    "{:.2}",
                    default_row.slo_compliance_pct - tight_row.slo_compliance_pct
                ),
            ]);
        }
        eprintln!("  done: {model}");
    }
    table(
        &["model", "scheme", "SLO% @2x", "SLO% @3x", "degradation"],
        &rows,
    );
}
