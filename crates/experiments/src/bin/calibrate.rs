//! Calibration scratchpad: compares the primary schemes on a few
//! representative workloads and prints the headline numbers, so the
//! catalog/engine constants can be tuned until the paper's qualitative
//! orderings hold. Not one of the paper's figures.

use protean::ProteanBuilder;
use protean_baselines::Baseline;
use protean_cluster::SchemeBuilder;
use protean_experiments::report::{banner, breakdown_table, scheme_table};
use protean_experiments::{run_scheme, PaperSetup};
use protean_models::ModelId;

fn main() {
    let setup = PaperSetup::from_args();
    let config = setup.cluster();
    for model in [
        ModelId::Vgg19,
        ModelId::ShuffleNetV2,
        ModelId::ResNet50,
        ModelId::Albert,
    ] {
        banner("calibrate", &format!("{model} (Wiki, 50/50)"));
        let trace = setup.wiki_trace(model);
        let schemes: Vec<Box<dyn SchemeBuilder>> = vec![
            Box::new(Baseline::MoleculeBeta),
            Box::new(Baseline::InflessLlama),
            Box::new(Baseline::NaiveSlicing),
            Box::new(ProteanBuilder::paper()),
        ];
        let rows: Vec<_> = schemes
            .iter()
            .map(|s| run_scheme(&config, s.as_ref(), &trace))
            .collect();
        scheme_table(&rows);
        breakdown_table(
            &rows
                .iter()
                .map(|r| (r.scheme.clone(), r.tail_breakdown, r.slo_compliance_pct))
                .collect::<Vec<_>>(),
        );
    }
}
