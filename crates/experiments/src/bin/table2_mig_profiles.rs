//! Table 2 — the possible MIG instance profiles on an A100 GPU, plus
//! the geometry count the Oracle's exhaustive sweep enumerates.

use protean_experiments::report::{banner, table};
use protean_gpu::{Geometry, SliceProfile};

fn main() {
    banner("Table 2", "MIG instance profiles on an A100-40GB");
    let rows: Vec<Vec<String>> = SliceProfile::ALL
        .iter()
        .rev()
        .map(|p| {
            vec![
                p.full_name().to_string(),
                format!("{}/7", p.compute_sevenths()),
                format!("{} GB", p.mem_gb()),
                format!("{}/8", p.cache_eighths()),
                p.max_count().to_string(),
            ]
        })
        .collect();
    table(
        &["slice", "compute", "memory", "cache/bandwidth", "max count"],
        &rows,
    );
    let all = Geometry::enumerate_all();
    println!(
        "\n  {} valid geometries under the Table 2 rules (largest: {}, paper's fallback: {})",
        all.len(),
        Geometry::full(),
        Geometry::g4_g3()
    );
}
