//! Fig. 7 — snapshot of PROTEAN's dynamic geometry selection for the
//! ShuffleNet V2 model: as the best-effort model rotates (including the
//! 13.7 GB DPN 92, which cannot fit the small slices), latency rises
//! until Algorithm 2's wait limit elapses and the GPUs move from
//! `(4g, 2g, 1g)` to `(4g, 3g)`, bringing latency back down.

use protean::ProteanBuilder;
use protean_experiments::chart::line_plot;
use protean_experiments::report::{banner, csv_series};
use protean_experiments::{run_scheme, PaperSetup};
use protean_models::ModelId;
use protean_sim::series::BucketAgg;
use protean_sim::SimDuration;
use protean_trace::TraceConfig;

fn main() {
    let setup = PaperSetup::from_args();
    let config = setup.cluster();
    // Strict ShuffleNet V2; BE rotates through HI vision models
    // including DPN 92, every 20 s (the Fig. 7 scenario).
    let trace = TraceConfig {
        be_pool: vec![
            ModelId::MobileNet,
            ModelId::Dpn92,
            ModelId::ResNet50,
            ModelId::Dpn92,
        ],
        be_rotation_period: SimDuration::from_secs(20.0),
        ..setup.wiki_trace(ModelId::ShuffleNetV2)
    };
    banner(
        "Fig. 7",
        "PROTEAN geometry timeline under BE-model rotation",
    );
    let row = run_scheme(&config, &ProteanBuilder::paper(), &trace);
    println!(
        "  reconfigurations: {}   SLO compliance: {:.2}%   strict P99: {:.1} ms",
        row.reconfigs, row.slo_compliance_pct, row.strict_p99_ms
    );
    println!("  geometry changes (time s, worker, new geometry):");
    for gc in &row.result.geometry_timeline {
        println!(
            "    t={:>8.2}s  worker {}  -> {}",
            gc.at.as_secs_f64(),
            gc.worker,
            gc.geometry
        );
    }
    let buckets = row
        .result
        .strict_latency_timeline
        .bucketed(SimDuration::from_secs(2.0), BucketAgg::P99);
    let points: Vec<Vec<f64>> = buckets
        .iter()
        .map(|(t, v)| vec![t.as_secs_f64(), *v])
        .collect();
    csv_series(
        "strict P99 latency over time",
        &["time_s", "p99_ms"],
        &points,
    );
    let curve: Vec<(f64, f64)> = buckets.iter().map(|(t, v)| (t.as_secs_f64(), *v)).collect();
    line_plot(
        "strict P99 (2 s buckets) — spike at the DPN 92 rotation, recovery after reconfig",
        "time s",
        "P99 ms",
        &[('*', &curve)],
        12,
    );
}
