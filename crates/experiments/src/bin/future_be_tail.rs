//! §6.2 future work — "optimizing request scheduling for both P50 and
//! P99 latency for such corner cases (100% BE) is worth looking into".
//!
//! This binary evaluates the repository's implementation of that idea:
//! `ProteanBuilder::tail_aware()` detects a strict-free window and
//! switches best-effort placement from Guideline-1 packing (protects
//! strict requests that are not there) to minimum-η load balancing.
//! Compared on the Table 5 workload (100% best-effort, rotating HI
//! models).

use protean::ProteanBuilder;
use protean_experiments::report::{banner, table};
use protean_experiments::{run_scheme, PaperSetup};
use protean_models::{catalog, InterferenceClass, ModelId};

fn main() {
    let setup = PaperSetup::from_args();
    let config = setup.cluster();
    let cat = catalog();
    let mut trace = setup.wiki_trace_with_ratio(ModelId::ResNet50, 0.0);
    trace.be_pool = cat.in_class(InterferenceClass::Hi).map(|p| p.id).collect();
    banner(
        "future work",
        "100% best-effort HI models: packing vs tail-aware BE placement",
    );
    let rows: Vec<Vec<String>> = [ProteanBuilder::paper(), ProteanBuilder::tail_aware()]
        .iter()
        .map(|b| {
            let r = run_scheme(&config, b, &trace);
            vec![
                r.scheme.clone(),
                format!("{:.0}", r.be_p50_ms),
                format!("{:.0}", r.be_p99_ms),
            ]
        })
        .collect();
    table(&["variant", "BE P50 ms", "BE P99 ms"], &rows);
    println!(
        "\n  (The tail-aware variant behaves identically whenever strict traffic is present.)"
    );
}
