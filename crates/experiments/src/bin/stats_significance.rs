//! §7 "Statistical Significance" — re-runs the primary comparison over
//! multiple independent seeds and reports, per the paper:
//!
//! * 95% confidence intervals on each scheme's SLO compliance (paper:
//!   half-widths < 0.1%);
//! * two-sided Welch p-values for PROTEAN vs every baseline (paper:
//!   ~0.0, significant at the 0.05 level);
//! * Cohen's *d* effect sizes (paper: 7.80–304.37, largest vs Molecule
//!   for vision and vs INFless/Llama for the language models).
//!
//! The `seed x scheme` grid runs on the parallel harness
//! (`PROTEAN_THREADS` overrides the worker count).
//!
//! Usage: `stats_significance [duration_secs] [n_seeds]` (defaults
//! 60 s × 10 seeds; the per-seed duration is shorter than the figure
//! default since this binary runs `schemes × seeds` simulations).

use protean_experiments::harness::{run_grid, thread_count, GridCell};
use protean_experiments::report::{banner, table};
use protean_experiments::{schemes, PaperSetup};
use protean_metrics::{cohens_d, mean_ci95, welch_t_test};
use protean_models::ModelId;

fn main() {
    let mut args = std::env::args().skip(1);
    let duration: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(60.0);
    let n_seeds: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);

    for model in [ModelId::ResNet50, ModelId::Bert] {
        banner(
            "§7 significance",
            &format!("{model}: {n_seeds} seeds x {duration} s per scheme"),
        );
        let lineup = schemes::primary();
        let cells: Vec<GridCell<'_>> =
            (0..n_seeds)
                .flat_map(|seed| {
                    let setup = PaperSetup {
                        duration_secs: duration,
                        seed: 1000 + seed,
                    };
                    let config = setup.cluster();
                    let trace = setup.wiki_trace(model);
                    lineup
                        .iter()
                        .map(|s| {
                            GridCell::new(config.clone(), s.as_ref(), trace.clone())
                                .labeled(format!("seed {} / {}", 1000 + seed, s.name()))
                        })
                        .collect::<Vec<_>>()
                })
                .collect();
        let results = run_grid(&cells, thread_count());

        // compliance[i][k] = scheme i's SLO compliance (%) under seed k.
        let mut compliance: Vec<Vec<f64>> = vec![Vec::new(); lineup.len()];
        for (c, row) in results.iter().enumerate() {
            compliance[c % lineup.len()].push(row.slo_compliance_pct);
        }
        // Confidence intervals.
        let rows: Vec<Vec<String>> = lineup
            .iter()
            .zip(&compliance)
            .map(|(s, xs)| {
                let (mean, hw) = mean_ci95(xs);
                vec![
                    s.name().to_string(),
                    format!("{mean:.3}"),
                    format!("±{hw:.3}"),
                ]
            })
            .collect();
        table(&["scheme", "mean SLO%", "95% CI"], &rows);

        // Pairwise tests: PROTEAN (last in the lineup) vs each baseline.
        let protean = compliance.last().expect("lineup non-empty");
        let rows: Vec<Vec<String>> = lineup
            .iter()
            .zip(&compliance)
            .take(lineup.len() - 1)
            .map(|(s, xs)| {
                let t = welch_t_test(protean, xs);
                let d = cohens_d(protean, xs);
                vec![
                    format!("PROTEAN vs {}", s.name()),
                    format!("{:.2}", t.t),
                    format!("{:.1}", t.df),
                    format!("{:.2e}", t.p_value),
                    format!("{d:.2}"),
                ]
            })
            .collect();
        table(&["pair", "t", "df", "p-value", "Cohen's d"], &rows);
    }
}
