//! PR-3 benchmark reporter: event-scheduling heap traffic and the
//! corrected harness timings, written to `results/bench_pr3.json`.
//!
//! Two measurements on the same grids `harness_timing` uses:
//!
//! 1. **Event traffic** — per-run [`EngineStats`] aggregated across all
//!    cells: `JobFinish` events actually pushed by the
//!    next-completion-only engine vs what the all-jobs re-projection
//!    discipline would have pushed on the same transitions (counted
//!    live, so the baseline needs no second engine). Reported per
//!    simulated second, with the reduction ratio.
//! 2. **Wall-clock** — sequential vs parallel grid timings, with the
//!    thread count now capped at available parallelism (the PR-1
//!    recording requested 8 threads on a 1-core container, which is
//!    where its < 1× "speedup" came from).
//!
//! Usage: `bench_pr3 [duration_secs] [seed]` (defaults 20 s, seed 42).
//!
//! [`EngineStats`]: protean_cluster::EngineStats

use std::time::Instant;

use protean_experiments::harness::{run_grid, thread_count, GridCell, TimingReport};
use protean_experiments::report::{banner, table};
use protean_experiments::{schemes, PaperSetup, SchemeRow};
use protean_models::{catalog, ModelId};

/// Event-traffic aggregate over one grid.
#[derive(Debug, Default, Clone, Copy)]
struct EventTraffic {
    cells: usize,
    sim_secs: f64,
    events_pushed: u64,
    events_popped: u64,
    peak_heap_len: usize,
    finish_pushed: u64,
    finish_all_jobs: u64,
    stale: u64,
}

impl EventTraffic {
    fn add(&mut self, row: &SchemeRow) {
        let s = row.result.stats;
        self.cells += 1;
        self.sim_secs += row.result.duration.as_secs_f64();
        self.events_pushed += s.events_pushed;
        self.events_popped += s.events_popped;
        self.peak_heap_len = self.peak_heap_len.max(s.peak_heap_len);
        self.finish_pushed += s.finish_events_pushed;
        self.finish_all_jobs += s.finish_events_all_jobs;
        self.stale += s.stale_finish_events;
    }

    fn finish_per_sim_sec(&self) -> f64 {
        self.finish_pushed as f64 / self.sim_secs.max(1e-9)
    }

    fn all_jobs_per_sim_sec(&self) -> f64 {
        self.finish_all_jobs as f64 / self.sim_secs.max(1e-9)
    }

    /// All-jobs finish events over actually pushed ones — the heap
    /// traffic reduction of next-completion-only scheduling.
    fn reduction(&self) -> f64 {
        self.finish_all_jobs as f64 / (self.finish_pushed as f64).max(1.0)
    }
}

fn fig05_cells<'a>(
    setup: &PaperSetup,
    lineup: &'a [Box<dyn protean_cluster::SchemeBuilder>],
) -> Vec<GridCell<'a>> {
    let config = setup.cluster();
    let vision: Vec<ModelId> = catalog().vision().map(|p| p.id).collect();
    vision
        .iter()
        .flat_map(|&model| lineup.iter().map(move |s| (model, s)))
        .map(|(model, s)| GridCell::new(config.clone(), s.as_ref(), setup.wiki_trace(model)))
        .collect()
}

fn stats_cells<'a>(
    setup: &PaperSetup,
    lineup: &'a [Box<dyn protean_cluster::SchemeBuilder>],
) -> Vec<GridCell<'a>> {
    (0..8u64)
        .flat_map(|seed| {
            let per_seed = PaperSetup {
                duration_secs: setup.duration_secs,
                seed: 1000 + seed,
            };
            let config = per_seed.cluster();
            let trace = per_seed.wiki_trace(ModelId::ResNet50);
            lineup
                .iter()
                .map(move |s| GridCell::new(config.clone(), s.as_ref(), trace.clone()))
                .collect::<Vec<_>>()
        })
        .collect()
}

fn measure(name: &str, cells: &[GridCell<'_>], threads: usize) -> (TimingReport, EventTraffic) {
    let t0 = Instant::now();
    let sequential = run_grid(cells, 1);
    let sequential_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let parallel = run_grid(cells, threads);
    let parallel_secs = t1.elapsed().as_secs_f64();
    for (a, b) in sequential.iter().zip(&parallel) {
        assert_eq!(
            a.strict_p99_ms.to_bits(),
            b.strict_p99_ms.to_bits(),
            "{name}: parallel run diverged from sequential"
        );
    }
    let mut traffic = EventTraffic::default();
    for row in &sequential {
        traffic.add(row);
    }
    (
        TimingReport {
            experiment: name.to_string(),
            cells: cells.len(),
            threads,
            sequential_secs,
            parallel_secs,
        },
        traffic,
    )
}

fn pr3_json(threads: usize, rows: &[(TimingReport, EventTraffic)]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"harness\": \"run_grid\",\n");
    out.push_str("  \"scheduling\": \"next_completion_only\",\n");
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str("  \"experiments\": [\n");
    for (i, (r, t)) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"cells\": {}, \"threads\": {}, \
             \"sequential_secs\": {:.6}, \"parallel_secs\": {:.6}, \
             \"speedup\": {:.3}, \"cells_per_sec\": {:.3}, \
             \"sim_secs\": {:.3}, \
             \"finish_events_pushed\": {}, \"finish_events_all_jobs\": {}, \
             \"finish_events_per_sim_sec\": {:.3}, \
             \"all_jobs_events_per_sim_sec\": {:.3}, \
             \"event_reduction\": {:.3}, \
             \"stale_finish_events\": {}, \"events_pushed\": {}, \
             \"events_popped\": {}, \"peak_heap_len\": {}}}{}\n",
            r.experiment,
            r.cells,
            r.threads,
            r.sequential_secs,
            r.parallel_secs,
            r.speedup(),
            r.cells_per_sec(),
            t.sim_secs,
            t.finish_pushed,
            t.finish_all_jobs,
            t.finish_per_sim_sec(),
            t.all_jobs_per_sim_sec(),
            t.reduction(),
            t.stale,
            t.events_pushed,
            t.events_popped,
            t.peak_heap_len,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut args = std::env::args().skip(1);
    let setup = PaperSetup {
        duration_secs: args.next().and_then(|a| a.parse().ok()).unwrap_or(20.0),
        seed: args.next().and_then(|a| a.parse().ok()).unwrap_or(42),
    };
    let threads = thread_count();
    banner(
        "bench_pr3",
        &format!(
            "{} s per cell grid, {} worker threads (capped at available cores)",
            setup.duration_secs, threads
        ),
    );

    let lineup = schemes::primary();
    let mut rows = Vec::new();
    let cells = fig05_cells(&setup, &lineup);
    rows.push(measure("fig05_slo_vision", &cells, threads));
    let cells = stats_cells(&setup, &lineup);
    rows.push(measure("stats_significance", &cells, threads));

    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|(r, t)| {
            vec![
                r.experiment.clone(),
                r.cells.to_string(),
                format!("{:.2}", r.sequential_secs),
                format!("{:.2}x", r.speedup()),
                format!("{:.0}", t.finish_per_sim_sec()),
                format!("{:.0}", t.all_jobs_per_sim_sec()),
                format!("{:.2}x", t.reduction()),
                t.stale.to_string(),
                t.peak_heap_len.to_string(),
            ]
        })
        .collect();
    table(
        &[
            "experiment",
            "cells",
            "seq s",
            "speedup",
            "finish ev/s",
            "all-jobs ev/s",
            "reduction",
            "stale",
            "peak heap",
        ],
        &printable,
    );

    for (r, t) in &rows {
        assert!(
            t.reduction() >= 2.0,
            "{}: event reduction {:.2}x below the 2x acceptance floor",
            r.experiment,
            t.reduction()
        );
    }

    let path = std::path::Path::new("results/bench_pr3.json");
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).expect("create results/");
    }
    std::fs::write(path, pr3_json(threads, &rows)).expect("write results/bench_pr3.json");
    println!("\nwrote {}", path.display());
}
