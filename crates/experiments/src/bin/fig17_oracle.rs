//! Fig. 17 — PROTEAN versus an Oracle with offline knowledge of the
//! ideal configurations: the Oracle predicts perfectly (EWMA α = 1),
//! never hesitates (wait limit 0), and pays no reconfiguration
//! downtime. The gap should be small (paper: ≤0.42% SLO, ≤17% tail).

use protean::ProteanBuilder;
use protean_experiments::report::{banner, table};
use protean_experiments::{run_scheme, PaperSetup};
use protean_models::ModelId;
use protean_sim::SimDuration;

fn main() {
    let setup = PaperSetup::from_args();
    banner("Fig. 17", "PROTEAN vs Oracle: SLO % and strict P99 (ms)");
    let mut rows = Vec::new();
    for model in [ModelId::ResNet50, ModelId::ShuffleNetV2, ModelId::Vgg19] {
        let trace = setup.wiki_trace(model);
        let protean_row = run_scheme(&setup.cluster(), &ProteanBuilder::paper(), &trace);
        // The Oracle pays no reconfiguration downtime and no cold starts
        // (its offline sweeps pre-provision everything).
        let mut oracle_cfg = setup.cluster();
        oracle_cfg.reconfig_delay = SimDuration::ZERO;
        oracle_cfg.cold_start = SimDuration::ZERO;
        let oracle_row = run_scheme(&oracle_cfg, &ProteanBuilder::oracle(), &trace);
        rows.push(vec![
            model.to_string(),
            format!("{:.2}", protean_row.slo_compliance_pct),
            format!("{:.2}", oracle_row.slo_compliance_pct),
            format!("{:.1}", protean_row.strict_p99_ms),
            format!("{:.1}", oracle_row.strict_p99_ms),
        ]);
        eprintln!("  done: {model}");
    }
    table(
        &[
            "model",
            "PROTEAN SLO%",
            "Oracle SLO%",
            "PROTEAN P99",
            "Oracle P99",
        ],
        &rows,
    );
}
