//! Fig. 17 — PROTEAN versus an Oracle with offline knowledge of the
//! ideal configurations: the Oracle predicts perfectly (EWMA α = 1),
//! never hesitates (wait limit 0), and pays no reconfiguration
//! downtime. The gap should be small (paper: ≤0.42% SLO, ≤17% tail).
//!
//! The `model x {PROTEAN, Oracle}` grid runs on the parallel harness
//! (`PROTEAN_THREADS` overrides the worker count).

use protean::ProteanBuilder;
use protean_experiments::harness::{run_grid, thread_count, GridCell};
use protean_experiments::report::{banner, table};
use protean_experiments::PaperSetup;
use protean_models::ModelId;
use protean_sim::SimDuration;

const MODELS: [ModelId; 3] = [ModelId::ResNet50, ModelId::ShuffleNetV2, ModelId::Vgg19];

fn main() {
    let setup = PaperSetup::from_args();
    banner("Fig. 17", "PROTEAN vs Oracle: SLO % and strict P99 (ms)");
    let protean = ProteanBuilder::paper();
    let oracle = ProteanBuilder::oracle();
    // The Oracle pays no reconfiguration downtime and no cold starts
    // (its offline sweeps pre-provision everything).
    let mut oracle_cfg = setup.cluster();
    oracle_cfg.reconfig_delay = SimDuration::ZERO;
    oracle_cfg.cold_start = SimDuration::ZERO;

    let cells: Vec<GridCell<'_>> = MODELS
        .iter()
        .flat_map(|&model| {
            let trace = setup.wiki_trace(model);
            [
                GridCell::new(setup.cluster(), &protean, trace.clone())
                    .labeled(format!("{model} / PROTEAN")),
                GridCell::new(oracle_cfg.clone(), &oracle, trace)
                    .labeled(format!("{model} / Oracle")),
            ]
        })
        .collect();
    let results = run_grid(&cells, thread_count());

    let rows: Vec<Vec<String>> = MODELS
        .iter()
        .enumerate()
        .map(|(m, &model)| {
            let protean_row = &results[m * 2];
            let oracle_row = &results[m * 2 + 1];
            vec![
                model.to_string(),
                format!("{:.2}", protean_row.slo_compliance_pct),
                format!("{:.2}", oracle_row.slo_compliance_pct),
                format!("{:.1}", protean_row.strict_p99_ms),
                format!("{:.1}", oracle_row.strict_p99_ms),
            ]
        })
        .collect();
    table(
        &[
            "model",
            "PROTEAN SLO%",
            "Oracle SLO%",
            "PROTEAN P99",
            "Oracle P99",
        ],
        &rows,
    );
}
