//! Table 5 — (P50, P99) latency for the 100% best-effort case, with the
//! BE model varied at random from the HI vision pool. PROTEAN wins the
//! median by packing BE tightly but concedes the tail (it deprioritises
//! BE by design).

use protean_experiments::report::{banner, table};
use protean_experiments::{run_scheme, schemes, PaperSetup};
use protean_models::{catalog, InterferenceClass, ModelId};

fn main() {
    let setup = PaperSetup::from_args();
    let config = setup.cluster();
    let cat = catalog();
    let mut trace = setup.wiki_trace_with_ratio(ModelId::ResNet50, 0.0);
    trace.be_pool = cat.in_class(InterferenceClass::Hi).map(|p| p.id).collect();
    banner(
        "Table 5",
        "(P50, P99) latency in ms, 100% best-effort HI models",
    );
    let rows: Vec<Vec<String>> = schemes::primary()
        .iter()
        .map(|s| {
            let r = run_scheme(&config, s.as_ref(), &trace);
            vec![
                r.scheme.clone(),
                format!("{:.0}", r.be_p50_ms),
                format!("{:.0}", r.be_p99_ms),
            ]
        })
        .collect();
    table(&["scheme", "P50 ms", "P99 ms"], &rows);
}
