//! PR-6 benchmark reporter: descent-dispatch fleet sweep to 8192
//! workers plus a billion-request streaming soak, written to
//! `results/bench_pr6.json` (analysis in `PERF.md`).
//!
//! Two parts:
//!
//! **Sweep** — extends the PR-5 fleet sweep to 8192 workers and three
//! policy rows per fleet size:
//!
//! 1. `load_balance` (PROTEAN) — least-loaded selection;
//! 2. `consolidate` (INFless/Llama, cap 10 batches) — deep packing.
//!    At the paper's per-worker load this regime is *not*
//!    dispatch-bound: the linear front scan stops at the saturated
//!    prefix (~300 slots at 2048 workers), so wall-clock gains are
//!    Amdahl-capped however fast the index is — a documented negative
//!    result (see PERF.md);
//! 3. `consolidate_tight` (same placement, cap 1 batch) — shallow
//!    GPUlet-style packing where steady-state load keeps most workers
//!    at the cap, the front scan degenerates to O(W), and the
//!    tournament-tree root descent shows its full win. This row
//!    carries the ≥2x wall-clock assertion at fleet scale.
//!
//! Every cell is a *three-way* differential: the linear reference, the
//! indexed run, and the indexed run fed by the streaming trace
//! iterator must produce bit-identical digests.
//!
//! **Soak** — a multi-day diurnal wiki trace (24 h period) streamed
//! through the engine with `aggregate_metrics`: ≥10⁹ requests at O(1)
//! memory, with RSS sampled throughout and asserted flat. A
//! materialised-vs-streamed digest preflight on a truncated slice of
//! the same configuration ties the soak path to the differential
//! discipline before the long run starts.
//!
//! Usage: `bench_pr6 [duration_secs] [seed] [workers_csv|none] [soak_requests]`
//! (defaults: 30 s per sweep cell, seed 42, fleets
//! `8,32,128,512,2048,8192`, 1e9-request soak; `none` skips the sweep,
//! `0` skips the soak). CI smoke: `bench_pr6 3 42 2048 0` and
//! `bench_pr6 3 42 none 1000000`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use protean::ProteanBuilder;
use protean_baselines::Baseline;
use protean_cluster::{
    run_simulation_on, run_simulation_streaming, DispatchPolicy, Scheme, SchemeBuilder,
    SimulationResult,
};
use protean_experiments::report::{banner, table};
use protean_experiments::setup::LANGUAGE_RPS;
use protean_experiments::{golden, PaperSetup};
use protean_metrics::record::Class;
use protean_models::ModelId;
use protean_sim::{RngFactory, SimDuration};
use protean_trace::{TraceConfig, TraceShape};

/// INFless/Llama placement with a 1-batch consolidation cap: the
/// shallow-packing regime (GPUlet sizes its gpu-lets this tightly)
/// where the fleet's steady state keeps the consolidated prefix at the
/// cap and linear first-fit degenerates to a full O(W) walk.
struct TightConsolidate;

impl SchemeBuilder for TightConsolidate {
    fn build(&self, worker: usize) -> Box<dyn Scheme> {
        Baseline::InflessLlama.build(worker)
    }

    fn name(&self) -> &'static str {
        "INFless/Llama (cap 1)"
    }

    fn dispatch_policy(&self) -> DispatchPolicy {
        DispatchPolicy::Consolidate { cap_batches: 1 }
    }
}

struct CellRow {
    policy: &'static str,
    workers: usize,
    requests: usize,
    batches: u64,
    linear_secs: f64,
    indexed_secs: f64,
    streamed_secs: f64,
    linear_visits: u64,
    indexed_visits: u64,
    index_updates: u64,
}

impl CellRow {
    fn speedup(&self) -> f64 {
        self.linear_secs / self.indexed_secs.max(1e-9)
    }

    fn linear_visits_per_batch(&self) -> f64 {
        self.linear_visits as f64 / (self.batches as f64).max(1.0)
    }

    fn indexed_visits_per_batch(&self) -> f64 {
        self.indexed_visits as f64 / (self.batches as f64).max(1.0)
    }
}

/// The sweep workload: the paper's language trace (batch size 4 — the
/// dispatch-bound regime) with per-worker load held constant as the
/// fleet grows. `load_factor` scales the per-worker rate: 1.0 is the
/// paper's operating point (utilization ≈ 0.2), 3.0 pushes utilization
/// to ≈ 0.6.
fn sweep_trace(setup: &PaperSetup, workers: usize, load_factor: f64) -> TraceConfig {
    let mut trace = setup.wiki_trace(ModelId::Albert);
    trace.shape = TraceShape::wiki(load_factor * LANGUAGE_RPS * workers as f64 / 8.0);
    trace
}

fn run_cell(
    setup: &PaperSetup,
    scheme: &dyn SchemeBuilder,
    policy: &'static str,
    workers: usize,
) -> CellRow {
    let mut config = setup.cluster();
    config.workers = workers;
    // The tight-cap row runs at 3x the paper's per-worker load
    // (utilization ≈ 0.6): shallow caps at elevated utilization keep
    // the consolidated frontier near the fleet edge, which is exactly
    // the regime where Consolidate dispatch is the bottleneck. At the
    // paper's own load the frontier covers ~25% of the fleet and
    // dispatch never dominates (the deep-cap row documents that);
    // above ~3.5x the fleet saturates outright and queueing inflates
    // both runs' engine cost, diluting the dispatch share again (the
    // calibration scan lives in PERF.md).
    let load_factor = if policy == "consolidate_tight" {
        std::env::var("BENCH_PR6_TIGHT_LOAD")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(3.0)
    } else {
        1.0
    };
    let trace_config = sweep_trace(setup, workers, load_factor);
    let factory = RngFactory::new(config.seed);
    let trace = trace_config.generate(&factory);
    let requests = trace.requests().len();

    let mut linear_config = config.clone();
    linear_config.reference_dispatch = true;
    let reps: usize = std::env::var("BENCH_PR6_REPS")
        .ok()
        .and_then(|r| r.parse().ok())
        .unwrap_or(2);
    let mut linear_secs = f64::INFINITY;
    let mut indexed_secs = f64::INFINITY;
    let mut streamed_secs = f64::INFINITY;
    let (mut linear, mut indexed, mut streamed) = (None, None, None);
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let run = run_simulation_on(&linear_config, scheme, trace.clone());
        linear_secs = linear_secs.min(t0.elapsed().as_secs_f64());
        linear = Some(run);
        let t1 = Instant::now();
        let run = run_simulation_on(&config, scheme, trace.clone());
        indexed_secs = indexed_secs.min(t1.elapsed().as_secs_f64());
        indexed = Some(run);
        let t2 = Instant::now();
        let run = run_simulation_streaming(&config, scheme, &trace_config);
        streamed_secs = streamed_secs.min(t2.elapsed().as_secs_f64());
        streamed = Some(run);
    }
    let (linear, indexed, streamed) = (
        linear.expect("reps >= 1"),
        indexed.expect("reps >= 1"),
        streamed.expect("reps >= 1"),
    );

    // Three-way differential: the descent must route every batch to the
    // linear scan's worker, and the streamed arrivals must reproduce
    // the materialised run bit for bit.
    let (dl, di, ds) = (
        golden::digest(&linear),
        golden::digest(&indexed),
        golden::digest(&streamed),
    );
    assert_eq!(dl, di, "{policy} @ {workers}: indexed diverged from linear");
    assert_eq!(
        di, ds,
        "{policy} @ {workers}: streamed diverged from materialised"
    );

    let summarize = |r: &SimulationResult| (r.stats.dispatch_batches, r.stats.dispatch_scan_visits);
    let (batches, linear_visits) = summarize(&linear);
    let (indexed_batches, indexed_visits) = summarize(&indexed);
    assert_eq!(batches, indexed_batches, "dispatch counts diverged");

    CellRow {
        policy,
        workers,
        requests,
        batches,
        linear_secs,
        indexed_secs,
        streamed_secs,
        linear_visits,
        indexed_visits,
        index_updates: indexed.stats.index_updates,
    }
}

// ---- soak ----------------------------------------------------------

struct SoakReport {
    workers: usize,
    mean_rps: f64,
    sim_days: f64,
    requests_target: u64,
    requests_recorded: usize,
    censored: u64,
    batches: u64,
    wall_secs: f64,
    events_pushed: u64,
    events_popped: u64,
    strict_p99_ms: f64,
    be_p99_ms: f64,
    rss_peak_mb: f64,
    rss_quarter_mb: f64,
    rss_end_mb: f64,
    rss_samples: Vec<(f64, f64)>,
    preflight_requests: usize,
}

impl SoakReport {
    /// Requests completed per wall second — the per-request pipeline
    /// rate (each request also implies ~2.5 queue-event traversals).
    fn mreq_per_sec(&self) -> f64 {
        (self.requests_recorded as u64 + self.censored) as f64 / self.wall_secs.max(1e-9) / 1e6
    }

    /// Total engine events per wall second: queue pushes + pops plus
    /// one per recorded request (arrivals dispatch inline under
    /// batch_arrivals and never touch the queue).
    fn mevents_per_sec(&self) -> f64 {
        (self.events_pushed + self.events_popped + self.requests_recorded as u64 + self.censored)
            as f64
            / self.wall_secs.max(1e-9)
            / 1e6
    }

    fn rss_growth_mb(&self) -> f64 {
        self.rss_end_mb - self.rss_quarter_mb
    }
}

/// VmRSS of this process in MB (Linux; `None` elsewhere — RSS
/// assertions are skipped rather than faked).
fn rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kb: f64 = line
        .trim_start_matches("VmRSS:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb / 1024.0)
}

/// The soak workload: per-worker load as in the sweep, but diurnal on
/// a *real* 24 h period so a billion-request run spans multiple days
/// of simulated time.
fn soak_trace(seed_setup: &PaperSetup, workers: usize, sim_secs: f64) -> TraceConfig {
    let mut trace = PaperSetup {
        duration_secs: sim_secs,
        seed: seed_setup.seed,
    }
    .wiki_trace(ModelId::Albert);
    trace.shape = TraceShape::WikiDiurnal {
        mean_rps: LANGUAGE_RPS * workers as f64 / 8.0,
        peak_to_mean: 316.0 / 303.0,
        period: SimDuration::from_secs(86_400.0),
    };
    trace
}

fn run_soak(setup: &PaperSetup, requests_target: u64) -> SoakReport {
    let workers = 256usize;
    let mean_rps = LANGUAGE_RPS * workers as f64 / 8.0;
    let sim_secs = requests_target as f64 / mean_rps;

    let mut config = setup.cluster();
    config.workers = workers;
    config.aggregate_metrics = true;

    // Digest preflight: a truncated slice of the same configuration
    // (full metrics, materialised vs streamed vs linear) must agree bit
    // for bit before we trust the long streamed run.
    let preflight_secs = (2_000_000.0 / mean_rps).min(sim_secs);
    let preflight_trace = soak_trace(setup, workers, preflight_secs);
    let mut full_config = config.clone();
    full_config.aggregate_metrics = false;
    let mut linear_config = full_config.clone();
    linear_config.reference_dispatch = true;
    let factory = RngFactory::new(config.seed);
    let materialised = preflight_trace.generate(&factory);
    let preflight_requests = materialised.requests().len();
    let scheme = ProteanBuilder::paper();
    let a = run_simulation_on(&linear_config, &scheme, materialised.clone());
    let b = run_simulation_on(&full_config, &scheme, materialised);
    let c = run_simulation_streaming(&full_config, &scheme, &preflight_trace);
    assert_eq!(
        golden::digest(&a),
        golden::digest(&b),
        "soak preflight: indexed diverged from linear"
    );
    assert_eq!(
        golden::digest(&b),
        golden::digest(&c),
        "soak preflight: streamed diverged from materialised"
    );
    println!(
        "  preflight clean: {preflight_requests} requests, \
         linear == indexed == streamed"
    );

    // RSS sampler: a background thread reads VmRSS every 250 ms for
    // the duration of the streamed run.
    let stop = Arc::new(AtomicBool::new(false));
    let samples: Arc<Mutex<Vec<(f64, f64)>>> = Arc::new(Mutex::new(Vec::new()));
    let sampler = {
        let stop = Arc::clone(&stop);
        let samples = Arc::clone(&samples);
        let t0 = Instant::now();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if let Some(mb) = rss_mb() {
                    samples
                        .lock()
                        .unwrap()
                        .push((t0.elapsed().as_secs_f64(), mb));
                }
                std::thread::sleep(std::time::Duration::from_millis(250));
            }
        })
    };

    let trace = soak_trace(setup, workers, sim_secs);
    let t0 = Instant::now();
    let result = run_simulation_streaming(&config, &scheme, &trace);
    let wall_secs = t0.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    sampler.join().expect("rss sampler");

    let rss_samples = Arc::try_unwrap(samples)
        .expect("sampler joined")
        .into_inner()
        .unwrap();
    let (rss_peak_mb, rss_quarter_mb, rss_end_mb) = if rss_samples.is_empty() {
        (0.0, 0.0, 0.0)
    } else {
        let peak = rss_samples.iter().map(|s| s.1).fold(0.0, f64::max);
        // Growth is measured from the quarter mark: by then pools,
        // index and histograms are at steady state, so any further
        // climb would be an O(requests) leak.
        let quarter = rss_samples[rss_samples.len() / 4].1;
        let end = rss_samples.last().unwrap().1;
        (peak, quarter, end)
    };

    SoakReport {
        workers,
        mean_rps,
        sim_days: sim_secs / 86_400.0,
        requests_target,
        requests_recorded: result.metrics.count(Class::All),
        censored: result.censored,
        batches: result.stats.dispatch_batches,
        wall_secs,
        events_pushed: result.stats.events_pushed,
        events_popped: result.stats.events_popped,
        strict_p99_ms: result
            .metrics
            .latency_percentile_ms(Class::Strict, 0.99)
            .unwrap_or(0.0),
        be_p99_ms: result
            .metrics
            .latency_percentile_ms(Class::BestEffort, 0.99)
            .unwrap_or(0.0),
        rss_peak_mb,
        rss_quarter_mb,
        rss_end_mb,
        rss_samples,
        preflight_requests,
    }
}

// ---- output --------------------------------------------------------

fn pr6_json(setup: &PaperSetup, rows: &[CellRow], soak: Option<&SoakReport>) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"descent_dispatch_and_streaming_soak\",\n");
    out.push_str("  \"baseline\": \"reference_dispatch (retained O(W) scans)\",\n");
    out.push_str(&format!(
        "  \"duration_secs\": {:.1},\n  \"seed\": {},\n",
        setup.duration_secs, setup.seed
    ));
    out.push_str("  \"cells\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"policy\": \"{}\", \"workers\": {}, \"requests\": {}, \"batches\": {}, \
             \"linear_secs\": {:.6}, \"indexed_secs\": {:.6}, \"streamed_secs\": {:.6}, \
             \"speedup\": {:.3}, \"linear_visits_per_batch\": {:.3}, \
             \"indexed_visits_per_batch\": {:.3}, \"index_updates\": {}}}{}\n",
            r.policy,
            r.workers,
            r.requests,
            r.batches,
            r.linear_secs,
            r.indexed_secs,
            r.streamed_secs,
            r.speedup(),
            r.linear_visits_per_batch(),
            r.indexed_visits_per_batch(),
            r.index_updates,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    match soak {
        None => out.push_str("  \"soak\": null\n"),
        Some(s) => {
            out.push_str("  \"soak\": {\n");
            out.push_str(&format!(
                "    \"workers\": {}, \"mean_rps\": {:.1}, \"sim_days\": {:.3},\n\
                 \x20   \"requests_target\": {}, \"requests_recorded\": {}, \"censored\": {},\n\
                 \x20   \"batches\": {}, \"wall_secs\": {:.1},\n\
                 \x20   \"million_requests_per_sec\": {:.3}, \"million_events_per_sec\": {:.3},\n\
                 \x20   \"strict_p99_ms\": {:.3}, \"be_p99_ms\": {:.3},\n\
                 \x20   \"preflight_requests\": {},\n\
                 \x20   \"rss_peak_mb\": {:.1}, \"rss_quarter_mb\": {:.1}, \
                 \"rss_end_mb\": {:.1}, \"rss_growth_mb\": {:.1},\n",
                s.workers,
                s.mean_rps,
                s.sim_days,
                s.requests_target,
                s.requests_recorded,
                s.censored,
                s.batches,
                s.wall_secs,
                s.mreq_per_sec(),
                s.mevents_per_sec(),
                s.strict_p99_ms,
                s.be_p99_ms,
                s.preflight_requests,
                s.rss_peak_mb,
                s.rss_quarter_mb,
                s.rss_end_mb,
                s.rss_growth_mb(),
            ));
            // Downsample the RSS series to ≤ 64 points for the record.
            let step = (s.rss_samples.len() / 64).max(1);
            let series: Vec<String> = s
                .rss_samples
                .iter()
                .step_by(step)
                .map(|(t, mb)| format!("[{t:.1}, {mb:.1}]"))
                .collect();
            out.push_str(&format!("    \"rss_series_mb\": [{}]\n", series.join(", ")));
            out.push_str("  }\n");
        }
    }
    out.push('}');
    out.push('\n');
    out
}

fn main() {
    let mut args = std::env::args().skip(1);
    let setup = PaperSetup {
        duration_secs: args.next().and_then(|a| a.parse().ok()).unwrap_or(30.0),
        seed: args.next().and_then(|a| a.parse().ok()).unwrap_or(42),
    };
    let fleets_arg = args
        .next()
        .unwrap_or_else(|| "8,32,128,512,2048,8192".to_string());
    let fleets: Vec<usize> = if fleets_arg == "none" {
        Vec::new()
    } else {
        fleets_arg
            .split(',')
            .filter_map(|w| w.trim().parse().ok())
            .filter(|&w| w > 0)
            .collect()
    };
    let soak_requests: u64 = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(1_000_000_000);
    banner(
        "bench_pr6",
        &format!(
            "{} s per sweep cell, fleets {:?}, soak target {} requests",
            setup.duration_secs, fleets, soak_requests
        ),
    );

    let schemes: [(&dyn SchemeBuilder, &'static str); 3] = [
        (&ProteanBuilder::paper(), "load_balance"),
        (&Baseline::InflessLlama, "consolidate"),
        (&TightConsolidate, "consolidate_tight"),
    ];
    let mut rows = Vec::new();
    for &workers in &fleets {
        for (scheme, policy) in schemes {
            rows.push(run_cell(&setup, scheme, policy, workers));
            let r = rows.last().unwrap();
            println!(
                "  {} @ {:>4} workers: {:.2}s linear / {:.2}s indexed / {:.2}s streamed \
                 ({:.2}x), {:.1} -> {:.2} visits/batch",
                r.policy,
                r.workers,
                r.linear_secs,
                r.indexed_secs,
                r.streamed_secs,
                r.speedup(),
                r.linear_visits_per_batch(),
                r.indexed_visits_per_batch(),
            );
        }
    }

    if !rows.is_empty() {
        let printable: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.policy.to_string(),
                    r.workers.to_string(),
                    r.requests.to_string(),
                    format!("{:.2}", r.linear_secs),
                    format!("{:.2}", r.indexed_secs),
                    format!("{:.2}", r.streamed_secs),
                    format!("{:.2}x", r.speedup()),
                    format!("{:.1}", r.linear_visits_per_batch()),
                    format!("{:.2}", r.indexed_visits_per_batch()),
                ]
            })
            .collect();
        table(
            &[
                "policy",
                "workers",
                "requests",
                "linear s",
                "indexed s",
                "streamed s",
                "speedup",
                "lin v/b",
                "idx v/b",
            ],
            &printable,
        );
    }

    for r in &rows {
        // Deterministic acceptance first: the scan counters don't move
        // with host load. Every policy's descent answers in ≤2 visits
        // per batch at any fleet size.
        assert!(
            r.indexed_visits_per_batch() <= 2.0,
            "{} @ {}: indexed visits {:.2}/batch not flat",
            r.policy,
            r.workers,
            r.indexed_visits_per_batch()
        );
        if r.policy == "load_balance" {
            assert!(
                r.linear_visits_per_batch() >= r.workers as f64,
                "{} @ {}: linear baseline visited {:.1}/batch, expected >= W",
                r.policy,
                r.workers,
                r.linear_visits_per_batch()
            );
        }
        // Wall-clock floors at fleet scale, conservative against host
        // noise (the measured curves live in results/bench_pr6.json and
        // PERF.md). Sub-second CI smoke cells (3 s duration) are too
        // noisy for timing floors, so these gate on a real cell
        // duration — the visit-count asserts above are the
        // deterministic guard that runs everywhere. The deep-cap
        // consolidate row carries *no* speedup floor: its linear scan
        // only walks the saturated prefix, so the descent's win there
        // is visits, not wall-clock.
        if setup.duration_secs < 10.0 {
            continue;
        }
        if r.workers >= 512 && r.policy == "load_balance" {
            assert!(
                r.speedup() >= 1.2,
                "{} @ {}: speedup {:.2}x — index no longer wins at fleet scale",
                r.policy,
                r.workers,
                r.speedup()
            );
        }
        if r.workers >= 2048 && r.policy == "consolidate_tight" {
            assert!(
                r.speedup() >= 2.0,
                "{} @ {}: speedup {:.2}x below the 2x descent floor",
                r.policy,
                r.workers,
                r.speedup()
            );
        }
    }

    let soak = if soak_requests > 0 {
        println!("\nsoak: streaming {} requests...", soak_requests);
        let s = run_soak(&setup, soak_requests);
        println!(
            "  {} recorded + {} censored over {:.2} simulated days in {:.1}s wall\n  \
             {:.2}M req/s, {:.2}M events/s, RSS peak {:.0} MB (growth {:+.1} MB)",
            s.requests_recorded,
            s.censored,
            s.sim_days,
            s.wall_secs,
            s.mreq_per_sec(),
            s.mevents_per_sec(),
            s.rss_peak_mb,
            s.rss_growth_mb(),
        );
        // Flat-RSS contract: past the quarter mark (pools, index and
        // histograms at steady state) the footprint must not climb —
        // any O(requests) retention would add gigabytes at 1e9
        // requests, so a 256 MB allowance is noise, not leak.
        if s.rss_peak_mb > 0.0 {
            assert!(
                s.rss_growth_mb() <= 256.0,
                "soak RSS grew {:.1} MB — the streaming path is retaining per-request state",
                s.rss_growth_mb()
            );
            if rows.is_empty() {
                // Without sweep cells in-process the allocator holds no
                // prior high-water mark, so an absolute ceiling is
                // meaningful too (CI smoke runs use this form).
                assert!(
                    s.rss_peak_mb <= 1024.0,
                    "soak peak RSS {:.1} MB exceeds the 1 GB ceiling",
                    s.rss_peak_mb
                );
            }
        } else {
            println!("  (no /proc/self/status — RSS assertions skipped)");
        }
        Some(s)
    } else {
        None
    };

    let path = std::path::Path::new("results/bench_pr6.json");
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).expect("create results/");
    }
    std::fs::write(path, pr6_json(&setup, &rows, soak.as_ref()))
        .expect("write results/bench_pr6.json");
    println!("\nwrote {}", path.display());
}
