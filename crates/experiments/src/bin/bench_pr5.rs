//! PR-5 benchmark reporter: fleet-scale dispatch sweep, written to
//! `results/bench_pr5.json`.
//!
//! Scales the cluster from the paper's 8-GPU testbed up to 512+
//! workers with the arrival rate scaled proportionally (constant per-worker
//! load, the honest fleet-growth regime). The workload is the paper's
//! language trace — batch size 4, so every fourth request pays a
//! dispatch decision, the regime where target selection binds. Each
//! cell is timed twice on the *same* materialised trace:
//!
//! 1. **linear** — `ClusterConfig::reference_dispatch` selects the
//!    retained O(W) scans the dispatcher used before the index;
//! 2. **indexed** — the incremental [`DispatchIndex`] (O(log W)
//!    least-loaded lookup, first-fit cursor for `Consolidate`).
//!
//! Both runs must produce bit-identical digests — every cell is a
//! fleet-scale differential test — and `EngineStats`' dispatch
//! counters report the scan cost per batch, which should grow ~W for
//! the linear baseline and stay near-flat for the index.
//!
//! Usage: `bench_pr5 [duration_secs] [seed] [workers_csv]`
//! (defaults 150 s — ≥1M requests at the 512-worker cell — seed 42,
//! fleets `8,32,128,512,2048`; the 2048 cell extends the sweep past
//! the paper-scale 512 point to show the divergence of the O(W) scan).
//!
//! The scan-visit counters are deterministic and asserted here; the
//! wall-clock ratio is load-dependent (the dispatch scan is one term
//! in the per-batch pipeline) and only a conservative floor is
//! asserted — see DESIGN.md for the measured curve and the arithmetic.
//!
//! [`DispatchIndex`]: protean_cluster::DispatchIndex

use std::time::Instant;

use protean::ProteanBuilder;
use protean_baselines::Baseline;
use protean_cluster::{run_simulation_on, SchemeBuilder, SimulationResult};
use protean_experiments::report::{banner, table};
use protean_experiments::setup::LANGUAGE_RPS;
use protean_experiments::{golden, PaperSetup};
use protean_models::ModelId;
use protean_sim::RngFactory;
use protean_trace::TraceShape;

/// One (scheme, fleet-size) cell: the same trace timed under the
/// linear-scan baseline and the dispatch index.
struct CellRow {
    scheme: String,
    policy: &'static str,
    workers: usize,
    requests: usize,
    batches: u64,
    linear_secs: f64,
    indexed_secs: f64,
    linear_visits: u64,
    indexed_visits: u64,
    index_updates: u64,
    backlog_requeued: u64,
}

impl CellRow {
    fn speedup(&self) -> f64 {
        self.linear_secs / self.indexed_secs.max(1e-9)
    }

    fn linear_visits_per_batch(&self) -> f64 {
        self.linear_visits as f64 / (self.batches as f64).max(1.0)
    }

    fn indexed_visits_per_batch(&self) -> f64 {
        self.indexed_visits as f64 / (self.batches as f64).max(1.0)
    }
}

fn run_cell(
    setup: &PaperSetup,
    scheme: &dyn SchemeBuilder,
    policy: &'static str,
    workers: usize,
) -> CellRow {
    let mut config = setup.cluster();
    config.workers = workers;
    // Language serving is the dispatch-bound regime — batch size 4
    // means every 4 requests pay one O(W) scan, 32× the dispatch rate
    // of the vision models. Per-worker load is held constant as the
    // fleet grows: the paper's 128 rps feeds 8 workers, so W workers
    // see 128 × W / 8.
    let mut trace_config = setup.wiki_trace(ModelId::Albert);
    trace_config.shape = TraceShape::wiki(LANGUAGE_RPS * workers as f64 / 8.0);
    let factory = RngFactory::new(config.seed);
    let trace = trace_config.generate(&factory);
    let requests = trace.requests().len();

    let mut linear_config = config.clone();
    linear_config.reference_dispatch = true;
    // Wall-clock is the min over `reps` alternating pairs: single runs
    // on a busy host can swing tens of percent, and min-of-reps is the
    // standard robust estimator for "how fast does this actually go".
    let reps: usize = std::env::var("BENCH_PR5_REPS")
        .ok()
        .and_then(|r| r.parse().ok())
        .unwrap_or(2);
    let mut linear_secs = f64::INFINITY;
    let mut indexed_secs = f64::INFINITY;
    let mut linear = None;
    let mut indexed = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let run = run_simulation_on(&linear_config, scheme, trace.clone());
        linear_secs = linear_secs.min(t0.elapsed().as_secs_f64());
        linear = Some(run);
        let t1 = Instant::now();
        let run = run_simulation_on(&config, scheme, trace.clone());
        indexed_secs = indexed_secs.min(t1.elapsed().as_secs_f64());
        indexed = Some(run);
    }
    let (linear, indexed) = (linear.expect("reps >= 1"), indexed.expect("reps >= 1"));

    // Fleet-scale differential: the index must route every batch to the
    // worker the linear scan would have picked.
    assert_eq!(
        golden::digest(&linear),
        golden::digest(&indexed),
        "{policy} @ {workers} workers: indexed run diverged from the linear reference"
    );
    let summarize = |r: &SimulationResult| (r.stats.dispatch_batches, r.stats.dispatch_scan_visits);
    let (batches, linear_visits) = summarize(&linear);
    let (indexed_batches, indexed_visits) = summarize(&indexed);
    assert_eq!(batches, indexed_batches, "dispatch counts diverged");

    CellRow {
        scheme: linear.scheme,
        policy,
        workers,
        requests,
        batches,
        linear_secs,
        indexed_secs,
        linear_visits,
        indexed_visits,
        index_updates: indexed.stats.index_updates,
        backlog_requeued: indexed.stats.backlog_requeued,
    }
}

fn pr5_json(setup: &PaperSetup, rows: &[CellRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"fleet_scale_dispatch\",\n");
    out.push_str("  \"baseline\": \"reference_dispatch (retained O(W) scans)\",\n");
    out.push_str(&format!(
        "  \"duration_secs\": {:.1},\n  \"seed\": {},\n",
        setup.duration_secs, setup.seed
    ));
    out.push_str("  \"cells\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scheme\": \"{}\", \"policy\": \"{}\", \"workers\": {}, \
             \"requests\": {}, \"batches\": {}, \
             \"linear_secs\": {:.6}, \"indexed_secs\": {:.6}, \"speedup\": {:.3}, \
             \"linear_visits_per_batch\": {:.3}, \"indexed_visits_per_batch\": {:.3}, \
             \"index_updates\": {}, \"backlog_requeued\": {}}}{}\n",
            r.scheme,
            r.policy,
            r.workers,
            r.requests,
            r.batches,
            r.linear_secs,
            r.indexed_secs,
            r.speedup(),
            r.linear_visits_per_batch(),
            r.indexed_visits_per_batch(),
            r.index_updates,
            r.backlog_requeued,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut args = std::env::args().skip(1);
    let setup = PaperSetup {
        duration_secs: args.next().and_then(|a| a.parse().ok()).unwrap_or(150.0),
        seed: args.next().and_then(|a| a.parse().ok()).unwrap_or(42),
    };
    let fleets: Vec<usize> = args
        .next()
        .unwrap_or_else(|| "8,32,128,512,2048".to_string())
        .split(',')
        .filter_map(|w| w.trim().parse().ok())
        .collect();
    banner(
        "bench_pr5",
        &format!(
            "{} s trace per cell, fleets {:?}, arrival rate scaled with fleet size",
            setup.duration_secs, fleets
        ),
    );

    let schemes: [(&dyn SchemeBuilder, &'static str); 2] = [
        (&ProteanBuilder::paper(), "load_balance"),
        (&Baseline::InflessLlama, "consolidate"),
    ];
    let mut rows = Vec::new();
    for &workers in &fleets {
        for (scheme, policy) in schemes {
            rows.push(run_cell(&setup, scheme, policy, workers));
            let r = rows.last().unwrap();
            println!(
                "  {} @ {:>3} workers: {:.2}s linear / {:.2}s indexed ({:.2}x), \
                 {:.1} -> {:.1} visits/batch",
                r.policy,
                r.workers,
                r.linear_secs,
                r.indexed_secs,
                r.speedup(),
                r.linear_visits_per_batch(),
                r.indexed_visits_per_batch(),
            );
        }
    }

    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.policy.to_string(),
                r.workers.to_string(),
                r.requests.to_string(),
                r.batches.to_string(),
                format!("{:.2}", r.linear_secs),
                format!("{:.2}", r.indexed_secs),
                format!("{:.2}x", r.speedup()),
                format!("{:.1}", r.linear_visits_per_batch()),
                format!("{:.1}", r.indexed_visits_per_batch()),
            ]
        })
        .collect();
    table(
        &[
            "policy",
            "workers",
            "requests",
            "batches",
            "linear s",
            "indexed s",
            "speedup",
            "lin v/b",
            "idx v/b",
        ],
        &printable,
    );

    for r in &rows {
        // Deterministic acceptance: the scan-visit counters don't move
        // with host load, so they carry the hard assertions. The
        // load-balance baseline examines every worker per dispatch
        // (O(W) min_by_key); the index answers from the tournament-tree
        // root in ≤2 lookups regardless of fleet size (near-flat
        // per-request dispatch cost).
        if r.policy == "load_balance" {
            assert!(
                r.linear_visits_per_batch() >= r.workers as f64,
                "{} @ {}: linear baseline visited {:.1}/batch, expected >= W",
                r.policy,
                r.workers,
                r.linear_visits_per_batch()
            );
            assert!(
                r.indexed_visits_per_batch() <= 2.0,
                "{} @ {}: indexed visits {:.1}/batch not flat",
                r.policy,
                r.workers,
                r.indexed_visits_per_batch()
            );
        } else {
            // Consolidate's first-fit cursor never re-walks the prefix
            // the linear front scan pays on every dispatch.
            assert!(
                r.indexed_visits <= r.linear_visits,
                "{} @ {}: cursor visited more than the front scan",
                r.policy,
                r.workers
            );
        }
        // Wall-clock floor: the index must strictly win at fleet scale.
        // The full measured curve (1.8x @ 512 up to 3.8x @ 4096 on this
        // engine) lives in results/bench_pr5.json and DESIGN.md; only a
        // noise-robust floor is asserted so the benchmark stays green
        // on loaded hosts.
        if r.policy == "load_balance" && r.workers >= 512 {
            assert!(
                r.speedup() >= 1.2,
                "{} @ {} workers: speedup {:.2}x — index no longer wins at fleet scale",
                r.policy,
                r.workers,
                r.speedup()
            );
        }
    }

    let path = std::path::Path::new("results/bench_pr5.json");
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).expect("create results/");
    }
    std::fs::write(path, pr5_json(&setup, &rows)).expect("write results/bench_pr5.json");
    println!("\nwrote {}", path.display());
}
