//! Fig. 4 — PROTEAN's design schematic, rendered as text with each
//! numbered component mapped to its implementation in this repository.

fn main() {
    println!(
        r#"
=== Fig. 4: PROTEAN design (component -> implementation) ===

             user requests
                  |
                  v
   +-------------------------------+
   | (1) Gateway                   |  protean_cluster::engine (request ingest,
   |     batching + (3) reordering |  gateway accumulators, strict-first queue:
   |                               |  protean_cluster::worker::SchedQueue)
   +-------------------------------+
                  |
                  v
   +-------------------------------+
   | (2) Dispatcher                |  protean_cluster::scheme::DispatchPolicy
   |     load balancing            |  (least-loaded; consolidation for the
   |                               |  INFless/Llama + GPUlet baselines)
   +-------------------------------+
        |        |        |
        v        v        v
   worker 0  worker 1 .. worker 7      protean_cluster::worker::Worker
   +-------------------------------+
   | (4) Autoscaler                |  protean_cluster::container::Pool
   |     reactive scale-up,        |  (one container per batch, delayed
   |     delayed termination       |  termination keep-alive, optional
   |                               |  predictive pre-provisioning)
   | (5) Job Distribution          |  protean::distribution (Algorithm 1:
   |     (6) tag_values            |  tag_slices / choose_strict_slice by
   |     (7) choose_strict_slice   |  Eq. 2 eta / choose_best_effort_slice
   |     (8) choose_BE_slice       |  first-fit packing)
   | (6) GPU Reconfigurator        |  protean::reconfigurator (Algorithm 2:
   |     EWMA + T_low/T_high +     |  protean::ewma, wait counter, <=30%%
   |     wait counter              |  concurrent reconfigs in the engine)
   |                               |
   |   GPU (MIG slices + MPS)      |  protean_gpu::{{Gpu, Slice, Geometry,
   |                               |  placement}} (Eq. 1 interference)
   +-------------------------------+
                  ^
                  |
   +-------------------------------+
   | (7) Cost-aware Procurement    |  protean_spot::{{SpotMarket,
   |     spot VMs w/ on-demand     |  ProcurementPolicy, VmLedger}} +
   |     fallback                  |  the engine's eviction lifecycle
   +-------------------------------+
"#
    );
}
