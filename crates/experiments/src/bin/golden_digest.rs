//! Prints the golden result digests `tests/golden_seed.rs` pins.
//!
//! Run after an *intentional* behaviour change and paste the output
//! into the `EXPECTED` table of the test. An unintentional mismatch is
//! a regression — the engine's results must be bit-identical across
//! pure-performance refactors.

fn main() {
    for line in protean_experiments::golden::golden_digests() {
        println!("{line}");
    }
}
