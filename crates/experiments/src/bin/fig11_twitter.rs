//! Fig. 11 — tail-latency breakdown and SLO compliance under the
//! erratic Twitter trace (MobileNet, ~5000 rps peak, ~3000 rps mean).
//! Request surges find under-provisioned containers; PROTEAN limits
//! the queueing damage through strict-first reordering.

use protean_experiments::chart::stacked_breakdown_chart;
use protean_experiments::report::{banner, breakdown_table};
use protean_experiments::{run_scheme, schemes, PaperSetup};
use protean_models::ModelId;

fn main() {
    let setup = PaperSetup::from_args();
    let config = setup.cluster();
    let trace = setup.twitter_trace(ModelId::MobileNet);
    banner(
        "Fig. 11",
        "Twitter trace, MobileNet: P99 breakdown and SLO%",
    );
    let rows: Vec<_> = schemes::primary()
        .iter()
        .map(|s| run_scheme(&config, s.as_ref(), &trace))
        .collect();
    breakdown_table(
        &rows
            .iter()
            .map(|r| (r.scheme.clone(), r.tail_breakdown, r.slo_compliance_pct))
            .collect::<Vec<_>>(),
    );
    stacked_breakdown_chart(
        &rows
            .iter()
            .map(|r| (r.scheme.clone(), r.tail_breakdown))
            .collect::<Vec<_>>(),
    );
}
