//! Fig. 16 — PROTEAN versus GPUlet, the strategic MPS-only scheme that
//! caps strict requests at ~60–65% of the SMs. GPUlet still shares
//! cache and memory bandwidth between classes, so PROTEAN's MIG
//! isolation retains the edge.

use protean::ProteanBuilder;
use protean_baselines::Baseline;
use protean_cluster::SchemeBuilder;
use protean_experiments::report::{banner, table};
use protean_experiments::{run_scheme, PaperSetup};
use protean_models::ModelId;

fn main() {
    let setup = PaperSetup::from_args();
    let lineup: Vec<Box<dyn SchemeBuilder>> = vec![
        Box::new(Baseline::Gpulet),
        Box::new(ProteanBuilder::paper()),
    ];
    // At the default 3x SLO both schemes are near-saturating this
    // cluster's load comfortably; the cache/bandwidth sharing GPUlet
    // cannot partition shows up at the tight 2x SLO, so report both.
    for (caption, multiplier) in [("default 3x SLO", 3.0), ("tight 2x SLO", 2.0)] {
        banner("Fig. 16", &format!("PROTEAN vs GPUlet, SLO % ({caption})"));
        let mut config = setup.cluster();
        config.slo_multiplier = multiplier;
        let mut rows = Vec::new();
        for model in [
            ModelId::ResNet50,
            ModelId::Vgg19,
            ModelId::DenseNet121,
            ModelId::Dpn92,
            ModelId::ShuffleNetV2,
        ] {
            let trace = setup.wiki_trace(model);
            let mut row = vec![model.to_string()];
            for s in &lineup {
                let r = run_scheme(&config, s.as_ref(), &trace);
                row.push(format!("{:.2}", r.slo_compliance_pct));
            }
            rows.push(row);
            eprintln!("  done: {model} ({caption})");
        }
        table(&["model", "GPUlet", "PROTEAN"], &rows);
    }
}
