//! Fig. 16 — PROTEAN versus GPUlet, the strategic MPS-only scheme that
//! caps strict requests at ~60–65% of the SMs. GPUlet still shares
//! cache and memory bandwidth between classes, so PROTEAN's MIG
//! isolation retains the edge.
//!
//! The `multiplier x model x scheme` grid runs on the parallel harness
//! (`PROTEAN_THREADS` overrides the worker count).

use protean::ProteanBuilder;
use protean_baselines::Baseline;
use protean_cluster::SchemeBuilder;
use protean_experiments::harness::{run_grid, thread_count, GridCell};
use protean_experiments::report::{banner, table};
use protean_experiments::PaperSetup;
use protean_models::ModelId;

const MODELS: [ModelId; 5] = [
    ModelId::ResNet50,
    ModelId::Vgg19,
    ModelId::DenseNet121,
    ModelId::Dpn92,
    ModelId::ShuffleNetV2,
];

fn main() {
    let setup = PaperSetup::from_args();
    let lineup: Vec<Box<dyn SchemeBuilder>> = vec![
        Box::new(Baseline::Gpulet),
        Box::new(ProteanBuilder::paper()),
    ];
    // At the default 3x SLO both schemes are near-saturating this
    // cluster's load comfortably; the cache/bandwidth sharing GPUlet
    // cannot partition shows up at the tight 2x SLO, so report both.
    for (caption, multiplier) in [("default 3x SLO", 3.0), ("tight 2x SLO", 2.0)] {
        banner("Fig. 16", &format!("PROTEAN vs GPUlet, SLO % ({caption})"));
        let mut config = setup.cluster();
        config.slo_multiplier = multiplier;
        let cells: Vec<GridCell<'_>> = MODELS
            .iter()
            .flat_map(|&model| lineup.iter().map(move |s| (model, s)))
            .map(|(model, s)| {
                GridCell::new(config.clone(), s.as_ref(), setup.wiki_trace(model))
                    .labeled(format!("{model} / {} ({caption})", s.name()))
            })
            .collect();
        let results = run_grid(&cells, thread_count());
        let rows: Vec<Vec<String>> =
            MODELS
                .iter()
                .enumerate()
                .map(|(m, &model)| {
                    let mut row = vec![model.to_string()];
                    row.extend((0..lineup.len()).map(|i| {
                        format!("{:.2}", results[m * lineup.len() + i].slo_compliance_pct)
                    }));
                    row
                })
                .collect();
        table(&["model", "GPUlet", "PROTEAN"], &rows);
    }
}
