//! Fig. 9 — normalized dollar cost vs SLO compliance under high,
//! medium and low spot-VM availability, for: the comparison schemes
//! (which procure only on-demand VMs), the aggressive `Spot Only`
//! variant, and PROTEAN's hybrid spot/on-demand procurement.
//!
//! Costs are normalized to the on-demand-only cost of the same run.
//!
//! The `availability x procurement` grid runs on the parallel harness
//! (`PROTEAN_THREADS` overrides the worker count).

use protean::ProteanBuilder;
use protean_cluster::ClusterConfig;
use protean_experiments::harness::{run_grid, thread_count, GridCell};
use protean_experiments::report::{banner, table};
use protean_experiments::PaperSetup;
use protean_models::ModelId;
use protean_sim::SimDuration;
use protean_spot::{ProcurementPolicy, SpotAvailability};

/// Short simulations need a denser revocation/procurement cadence than
/// the defaults to resolve the spot dynamics (the paper's runs are
/// hour-scale).
fn spot_cadence(mut config: ClusterConfig) -> ClusterConfig {
    config.revocation_check = SimDuration::from_secs(20.0);
    config.vm_startup = SimDuration::from_secs(20.0);
    config.procurement_retry = SimDuration::from_secs(20.0);
    config
}

const AVAILABILITIES: [SpotAvailability; 3] = [
    SpotAvailability::High,
    SpotAvailability::Moderate,
    SpotAvailability::Low,
];

const POLICIES: [(&str, ProcurementPolicy); 3] = [
    ("Other schemes (on-demand)", ProcurementPolicy::OnDemandOnly),
    ("Spot Only", ProcurementPolicy::SpotOnly),
    ("PROTEAN (hybrid)", ProcurementPolicy::Hybrid),
];

fn main() {
    let setup = PaperSetup::from_args();
    let trace = setup.wiki_trace(ModelId::ResNet50);
    banner(
        "Fig. 9",
        "normalized cost vs SLO compliance under spot availability regimes (ResNet 50)",
    );
    let scheme = ProteanBuilder::paper();
    let cells: Vec<GridCell<'_>> = AVAILABILITIES
        .iter()
        .flat_map(|&availability| {
            POLICIES
                .iter()
                .map(move |&(label, policy)| (availability, label, policy))
        })
        .map(|(availability, label, policy)| {
            let mut config = spot_cadence(setup.cluster());
            config.availability = availability;
            config.procurement = policy;
            GridCell::new(config, &scheme, trace.clone())
                .labeled(format!("{availability} / {label}"))
        })
        .collect();
    let results = run_grid(&cells, thread_count());

    let mut rows = Vec::new();
    for (a, availability) in AVAILABILITIES.iter().enumerate() {
        // Baseline cost: on-demand only (what the comparison schemes
        // pay), always the first policy of the availability's block.
        let od_cost = results[a * POLICIES.len()].cost_usd;
        for (p, (label, _)) in POLICIES.iter().enumerate() {
            let row = &results[a * POLICIES.len() + p];
            rows.push(vec![
                availability.to_string(),
                label.to_string(),
                format!("{:.3}", row.cost_usd / od_cost),
                format!("{:.2}", row.slo_compliance_pct),
                row.evictions.to_string(),
                row.censored.to_string(),
            ]);
        }
    }
    table(
        &[
            "availability",
            "procurement",
            "norm. cost",
            "SLO%",
            "evictions",
            "censored",
        ],
        &rows,
    );
}
