//! Fig. 9 — normalized dollar cost vs SLO compliance under high,
//! medium and low spot-VM availability, for: the comparison schemes
//! (which procure only on-demand VMs), the aggressive `Spot Only`
//! variant, and PROTEAN's hybrid spot/on-demand procurement.
//!
//! Costs are normalized to the on-demand-only cost of the same run.

use protean::ProteanBuilder;
use protean_cluster::ClusterConfig;
use protean_experiments::report::{banner, table};
use protean_experiments::{run_scheme, PaperSetup};
use protean_models::ModelId;
use protean_sim::SimDuration;
use protean_spot::{ProcurementPolicy, SpotAvailability};

/// Short simulations need a denser revocation/procurement cadence than
/// the defaults to resolve the spot dynamics (the paper's runs are
/// hour-scale).
fn spot_cadence(mut config: ClusterConfig) -> ClusterConfig {
    config.revocation_check = SimDuration::from_secs(20.0);
    config.vm_startup = SimDuration::from_secs(20.0);
    config.procurement_retry = SimDuration::from_secs(20.0);
    config
}

fn main() {
    let setup = PaperSetup::from_args();
    let trace = setup.wiki_trace(ModelId::ResNet50);
    banner(
        "Fig. 9",
        "normalized cost vs SLO compliance under spot availability regimes (ResNet 50)",
    );
    let mut rows = Vec::new();
    for availability in [
        SpotAvailability::High,
        SpotAvailability::Moderate,
        SpotAvailability::Low,
    ] {
        // Baseline cost: on-demand only (what the comparison schemes pay).
        let mut od = spot_cadence(setup.cluster());
        od.availability = availability;
        od.procurement = ProcurementPolicy::OnDemandOnly;
        let od_row = run_scheme(&od, &ProteanBuilder::paper(), &trace);
        let od_cost = od_row.cost_usd;

        for (label, policy) in [
            ("Other schemes (on-demand)", ProcurementPolicy::OnDemandOnly),
            ("Spot Only", ProcurementPolicy::SpotOnly),
            ("PROTEAN (hybrid)", ProcurementPolicy::Hybrid),
        ] {
            let mut config = spot_cadence(setup.cluster());
            config.availability = availability;
            config.procurement = policy;
            let row = if policy == ProcurementPolicy::OnDemandOnly {
                od_row.clone()
            } else {
                run_scheme(&config, &ProteanBuilder::paper(), &trace)
            };
            rows.push(vec![
                availability.to_string(),
                label.to_string(),
                format!("{:.3}", row.cost_usd / od_cost),
                format!("{:.2}", row.slo_compliance_pct),
                row.evictions.to_string(),
                row.censored.to_string(),
            ]);
        }
    }
    table(
        &[
            "availability",
            "procurement",
            "norm. cost",
            "SLO%",
            "evictions",
            "censored",
        ],
        &rows,
    );
}
