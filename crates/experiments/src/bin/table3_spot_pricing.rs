//! Table 3 — on-demand vs spot hourly pricing for an 8×A100 instance
//! across the three main IaaS providers, with the cost-saving column.

use protean_experiments::report::{banner, table};
use protean_spot::{PricingTable, Provider, VmTier};

fn main() {
    banner(
        "Table 3",
        "8xA100 hourly pricing (USD), averaged US-east/west",
    );
    let t = PricingTable::paper_table3();
    let rows: Vec<Vec<String>> = Provider::ALL
        .iter()
        .map(|&p| {
            vec![
                p.to_string(),
                format!("{:.4}", t.price(p, VmTier::OnDemand)),
                format!("{:.4}", t.price(p, VmTier::Spot)),
                format!("{:.2}%", t.savings(p) * 100.0),
            ]
        })
        .collect();
    table(
        &["IaaS provider", "on-demand $/h", "spot $/h", "cost savings"],
        &rows,
    );
}
