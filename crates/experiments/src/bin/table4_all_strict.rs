//! Table 4 — SLO compliance for the 100%-strict case (ResNet 50): the
//! "default" scenario INFless/Llama were designed for. With every
//! request an HI model, MPS consolidation interferes with itself.

use protean_experiments::report::{banner, table};
use protean_experiments::{run_scheme, schemes, PaperSetup};
use protean_models::ModelId;

fn main() {
    let setup = PaperSetup::from_args();
    let config = setup.cluster();
    let mut trace = setup.wiki_trace_with_ratio(ModelId::ResNet50, 1.0);
    trace.be_pool.clear();
    banner("Table 4", "SLO compliance (%), 100% strict ResNet 50");
    let rows: Vec<Vec<String>> = schemes::primary()
        .iter()
        .map(|s| {
            let r = run_scheme(&config, s.as_ref(), &trace);
            vec![r.scheme.clone(), format!("{:.2}", r.slo_compliance_pct)]
        })
        .collect();
    table(&["scheme", "SLO%"], &rows);
}
