//! Runs schemes over workloads and condenses results into table rows.

use protean_cluster::{run_simulation, ClusterConfig, SchemeBuilder, SimulationResult};
use protean_metrics::record::Class;
use protean_metrics::LatencyBreakdown;
use protean_models::{Catalog, ModelId};
use protean_sim::SimDuration;
use protean_trace::TraceConfig;

/// One scheme's condensed results for one workload — the numbers the
/// paper's figures plot.
#[derive(Debug, Clone)]
pub struct SchemeRow {
    /// Scheme label.
    pub scheme: String,
    /// Strict SLO compliance, percent.
    pub slo_compliance_pct: f64,
    /// Strict P50 latency, ms.
    pub strict_p50_ms: f64,
    /// Strict P99 latency, ms.
    pub strict_p99_ms: f64,
    /// Best-effort P50 latency, ms.
    pub be_p50_ms: f64,
    /// Best-effort P99 latency, ms.
    pub be_p99_ms: f64,
    /// Mean latency breakdown over the strict P99 tail (the stacked
    /// bars of Figs. 2/6/11).
    pub tail_breakdown: LatencyBreakdown,
    /// Strict requests served per GPU per second (Fig. 10a).
    pub strict_throughput: f64,
    /// All requests served per GPU per second.
    pub total_throughput: f64,
    /// Mean GPU compute utilization, percent (Fig. 10b).
    pub gpu_util_pct: f64,
    /// Mean GPU memory utilization, percent (Fig. 10b).
    pub mem_util_pct: f64,
    /// Total dollar cost of the run.
    pub cost_usd: f64,
    /// Spot-VM evictions suffered.
    pub evictions: u64,
    /// Requests censored at cutoff (overload indicator).
    pub censored: u64,
    /// Completed MIG reconfigurations.
    pub reconfigs: u64,
    /// The full simulation result, for figure-specific post-processing
    /// (CDFs, timelines).
    pub result: SimulationResult,
}

/// Runs `scheme` over `trace` under `config` and condenses the result.
pub fn run_scheme(
    config: &ClusterConfig,
    scheme: &dyn SchemeBuilder,
    trace: &TraceConfig,
) -> SchemeRow {
    let result = run_simulation(config, scheme, trace);
    let catalog = Catalog::new();
    let multiplier = config.slo_multiplier;
    let slo = move |m: ModelId| catalog.profile(m).slo_with_multiplier(multiplier);
    let measured = duration_after_warmup(config, trace);
    let m = &result.metrics;
    // One sort per class serves every percentile and the tail cut.
    let strict = m.sorted_latencies(Class::Strict);
    let be = m.sorted_latencies(Class::BestEffort);
    SchemeRow {
        scheme: result.scheme.clone(),
        slo_compliance_pct: m.slo_compliance(&slo) * 100.0,
        strict_p50_ms: strict.p50().unwrap_or(0.0),
        strict_p99_ms: strict.p99().unwrap_or(0.0),
        be_p50_ms: be.p50().unwrap_or(0.0),
        be_p99_ms: be.p99().unwrap_or(0.0),
        tail_breakdown: m
            .tail_breakdown_with(Class::Strict, &strict, 0.99)
            .unwrap_or_default(),
        strict_throughput: m.throughput_per_gpu(Class::Strict, measured, result.workers),
        total_throughput: m.throughput_per_gpu(Class::All, measured, result.workers),
        gpu_util_pct: result.compute_utilization * 100.0,
        mem_util_pct: result.memory_utilization * 100.0,
        cost_usd: result.cost.total_usd,
        evictions: result.cost.evictions,
        censored: result.censored,
        reconfigs: result.reconfigs,
        result,
    }
}

fn duration_after_warmup(config: &ClusterConfig, trace: &TraceConfig) -> SimDuration {
    let total = trace.duration;
    if total > config.warmup {
        total - config.warmup
    } else {
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::PaperSetup;
    use protean_baselines::Baseline;

    #[test]
    fn row_is_populated_and_consistent() {
        let setup = PaperSetup {
            duration_secs: 30.0,
            seed: 1,
        };
        let mut config = setup.cluster();
        config.workers = 2;
        let trace = setup.constant_trace(ModelId::ResNet50, 400.0);
        let row = run_scheme(&config, &Baseline::InflessLlama, &trace);
        assert_eq!(row.scheme, "INFless/Llama");
        assert!((0.0..=100.0).contains(&row.slo_compliance_pct));
        assert!(row.strict_p99_ms >= row.strict_p50_ms);
        assert!(row.strict_throughput > 0.0);
        assert!(row.total_throughput >= row.strict_throughput);
        assert!(row.cost_usd > 0.0);
    }
}
