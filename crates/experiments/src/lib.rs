//! Experiment harness: regenerates every table and figure of the
//! paper's evaluation (§6).
//!
//! Each `fig*`/`table*` binary in `src/bin/` wires the paper's workload
//! (models, traces, strictness mix) to the scheme(s) under test and
//! prints the same rows/series the paper reports. The shared pieces
//! live here:
//!
//! * [`setup`] — the paper's experimental setup as constructors: the
//!   Wiki trace scaled to ~5000 rps mean for vision (128 rps for
//!   language), the Twitter trace scaled to ~5000 rps peak, the 50/50
//!   strict/BE mix with the BE model rotating through the opposite
//!   interference class every ~20 s, and the 8-worker cluster.
//! * [`runner`] — runs one scheme over one workload and condenses the
//!   result into a [`runner::SchemeRow`].
//! * [`harness`] — fans a grid of independent cells out over a
//!   `std::thread::scope` worker pool ([`harness::run_grid`]) with
//!   bit-identical results to a sequential run; thread count comes
//!   from `--threads` / `PROTEAN_THREADS` / available parallelism.
//! * [`report`] — fixed-width table and CSV-series printers so every
//!   binary's output is regular enough to diff across runs.
//!
//! Run e.g.:
//!
//! ```text
//! cargo run --release -p protean-experiments --bin fig05_slo_vision
//! ```
//!
//! Every binary accepts an optional first argument overriding the
//! simulated trace length in seconds (default 120) and a second
//! argument overriding the seed (default 42), so quick smoke runs and
//! full regenerations use the same code path.

pub mod chart;
pub mod golden;
pub mod harness;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod schemes;
pub mod setup;

pub use harness::{run_grid, run_parallel, thread_count, thread_count_or, GridCell};
pub use runner::{run_scheme, SchemeRow};
pub use setup::PaperSetup;
