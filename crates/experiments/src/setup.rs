//! The paper's experimental setup (§5) as reusable constructors.

use protean_cluster::ClusterConfig;
use protean_models::{catalog, Domain, ModelId};
use protean_sim::SimDuration;
use protean_trace::{TraceConfig, TraceShape};

/// Mean request rate for the vision models (§5: ~5000 rps).
pub const VISION_RPS: f64 = 5000.0;
/// Request rate for the language models (§5: 128 rps).
pub const LANGUAGE_RPS: f64 = 128.0;

/// Parameters shared by every experiment: trace length and seed. The
/// paper runs hour-scale traces on real hardware; the simulated default
/// is 120 s (plus the cluster's 15 s measurement warmup), which is long
/// enough for tens of thousands of batches per scheme while keeping a
/// full figure regeneration under a few minutes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperSetup {
    /// Simulated trace length, seconds.
    pub duration_secs: f64,
    /// Root seed.
    pub seed: u64,
}

impl Default for PaperSetup {
    fn default() -> Self {
        PaperSetup {
            duration_secs: 120.0,
            seed: 42,
        }
    }
}

impl PaperSetup {
    /// Builds a setup from a binary's command-line arguments: the first
    /// overrides the duration (seconds), the second the seed.
    pub fn from_args() -> Self {
        let mut setup = PaperSetup::default();
        let mut args = std::env::args().skip(1);
        if let Some(d) = args.next().and_then(|a| a.parse().ok()) {
            setup.duration_secs = d;
        }
        if let Some(s) = args.next().and_then(|a| a.parse().ok()) {
            setup.seed = s;
        }
        setup
    }

    /// The 8-worker cluster of the paper, on-demand VMs, 3× SLO.
    pub fn cluster(&self) -> ClusterConfig {
        ClusterConfig {
            seed: self.seed,
            ..ClusterConfig::paper_default()
        }
    }

    /// The Wiki trace for `strict` at the domain-appropriate rate with
    /// the paper's 50/50 strictness mix and ~20 s BE-model rotation
    /// through the opposite interference class.
    pub fn wiki_trace(&self, strict: ModelId) -> TraceConfig {
        self.trace_with(strict, 0.5, WorkloadTrace::Wiki)
    }

    /// The Twitter (erratic) trace for `strict` (§6.2), scaled to
    /// ~5000 rps peak.
    pub fn twitter_trace(&self, strict: ModelId) -> TraceConfig {
        self.trace_with(strict, 0.5, WorkloadTrace::Twitter)
    }

    /// A constant-rate trace (the §2.2 motivational study).
    pub fn constant_trace(&self, strict: ModelId, rps: f64) -> TraceConfig {
        let mut t = self.trace_with(strict, 0.5, WorkloadTrace::Wiki);
        t.shape = TraceShape::constant(rps);
        t
    }

    /// A Wiki trace with a custom strictness fraction (§6.2 skewed
    /// ratios: 0.75, 0.25, 1.0, 0.0).
    pub fn wiki_trace_with_ratio(&self, strict: ModelId, strict_fraction: f64) -> TraceConfig {
        self.trace_with(strict, strict_fraction, WorkloadTrace::Wiki)
    }

    fn trace_with(
        &self,
        strict: ModelId,
        strict_fraction: f64,
        which: WorkloadTrace,
    ) -> TraceConfig {
        let cat = catalog();
        let rate = match cat.profile(strict).domain {
            Domain::Vision => VISION_RPS,
            Domain::Language => LANGUAGE_RPS,
        };
        let shape = match which {
            WorkloadTrace::Wiki => TraceShape::wiki(rate),
            WorkloadTrace::Twitter => TraceShape::twitter(rate),
        };
        let mut be_pool = cat.opposite_pool(strict);
        if be_pool.is_empty() {
            // Degenerate pools (not expected for catalog models) fall
            // back to the strict model itself.
            be_pool.push(strict);
        }
        TraceConfig {
            shape,
            duration: SimDuration::from_secs(self.duration_secs),
            strict_model: strict,
            strict_fraction,
            be_pool,
            be_rotation_period: SimDuration::from_secs(20.0),
            // §5 workloads arrive as pre-formed batches (see
            // `TraceConfig::batch_arrivals`).
            batch_arrivals: true,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum WorkloadTrace {
    Wiki,
    Twitter,
}

#[cfg(test)]
mod tests {
    use super::*;
    use protean_models::InterferenceClass;

    #[test]
    fn vision_and_language_rates_match_paper() {
        let s = PaperSetup::default();
        let vision = s.wiki_trace(ModelId::ResNet50);
        match vision.shape {
            TraceShape::WikiDiurnal { mean_rps, .. } => assert_eq!(mean_rps, 5000.0),
            _ => panic!("expected wiki shape"),
        }
        let lang = s.wiki_trace(ModelId::Albert);
        match lang.shape {
            TraceShape::WikiDiurnal { mean_rps, .. } => assert_eq!(mean_rps, 128.0),
            _ => panic!("expected wiki shape"),
        }
    }

    #[test]
    fn be_pool_is_opposite_class() {
        let s = PaperSetup::default();
        let cat = catalog();
        let t = s.wiki_trace(ModelId::ResNet50); // HI strict
        for m in &t.be_pool {
            assert_eq!(cat.profile(*m).class, InterferenceClass::Li);
        }
    }

    #[test]
    fn twitter_trace_targets_peak() {
        let s = PaperSetup::default();
        let t = s.twitter_trace(ModelId::MobileNet);
        match t.shape {
            TraceShape::TwitterBursty { peak_rps, .. } => assert_eq!(peak_rps, 5000.0),
            _ => panic!("expected twitter shape"),
        }
    }

    #[test]
    fn cluster_matches_paper_scale() {
        let s = PaperSetup::default();
        let c = s.cluster();
        assert_eq!(c.workers, 8);
        assert_eq!(c.slo_multiplier, 3.0);
    }
}
