//! Parallel experiment harness: fans independent simulation cells out
//! over a scoped worker pool.
//!
//! Every figure/table in the reproduction is a grid of independent
//! `(scheme, seed, trace)` simulations. Each cell derives all of its
//! randomness from its own `ClusterConfig::seed` via
//! `protean_sim::RngFactory`, and shares no mutable state with any
//! other cell, so cells can run on any thread in any order and the
//! grid's results are **bit-identical** to a sequential run. The
//! harness exploits that: [`run_grid`] executes cells on
//! `std::thread::scope` workers pulling from an atomic work index and
//! writes each result back into its input slot, so output order always
//! matches input order regardless of scheduling.
//!
//! Thread count resolution (first match wins):
//!
//! 1. an explicit `--threads` CLI override, where the binary passes one
//!    (see [`thread_count_or`]) — taken verbatim;
//! 2. the `PROTEAN_THREADS` environment variable, capped at
//!    [`std::thread::available_parallelism`] — simulation cells are
//!    CPU-bound, so oversubscribing physical cores only adds context
//!    switches (the PR-1 `bench_pr1.json` run recorded a < 1× "speedup"
//!    from exactly this: 8 requested threads on a 1-core container);
//! 3. [`std::thread::available_parallelism`].
//!
//! [`run_grid`] additionally shrinks the pool so each worker gets at
//! least [`MIN_CELLS_PER_THREAD`] cells, degrading to a plain
//! sequential loop for small grids where thread startup would dominate.
//!
//! [`TimingReport`] / [`write_bench_json`] record wall-clock for the
//! `harness_timing` binary, which writes `results/bench_pr1.json` so
//! later PRs have a perf trajectory to regress against.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

use protean_cluster::{ClusterConfig, SchemeBuilder};
use protean_trace::TraceConfig;

use crate::runner::{run_scheme, SchemeRow};

/// Resolves the worker-pool size from `PROTEAN_THREADS` or the
/// machine's available parallelism.
pub fn thread_count() -> usize {
    thread_count_or(None)
}

/// Resolves the worker-pool size, preferring an explicit override
/// (e.g. a `--threads` CLI flag) over `PROTEAN_THREADS` over
/// [`std::thread::available_parallelism`].
pub fn thread_count_or(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit {
        return n.max(1);
    }
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    if let Some(n) = std::env::var("PROTEAN_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        if n >= 1 {
            // Cells are CPU-bound; more workers than cores is pure
            // context-switch overhead.
            return n.min(hw);
        }
    }
    hw
}

/// Per-item result slots written lock-free by the worker pool.
///
/// The atomic work index hands each item index to exactly one worker,
/// so the `UnsafeCell` writes are disjoint, and `thread::scope`'s join
/// happens-before the reads at collection time. A `Mutex` here is not
/// wrong, just contended: every cell completion serialized on one lock,
/// which is measurable on grids of millisecond-scale cells.
struct ResultSlots<R>(Vec<UnsafeCell<Option<R>>>);

// SAFETY: see the struct docs — slot access is partitioned by the work
// index, never concurrent on the same element.
unsafe impl<R: Send> Sync for ResultSlots<R> {}

impl<R> ResultSlots<R> {
    /// Fills slot `i`.
    ///
    /// # Safety
    ///
    /// The caller must be the only thread holding index `i` (here:
    /// guaranteed by the atomic work index).
    unsafe fn write(&self, i: usize, value: R) {
        unsafe { *self.0[i].get() = Some(value) };
    }
}

/// Runs `f` over `items` on `threads` scoped workers, returning results
/// in input order. With `threads <= 1` (or one item) it degenerates to
/// a plain sequential loop on the calling thread.
///
/// Workers claim items through an atomic index and write results back
/// into the item's own slot, so the output order is deterministic even
/// though execution order is not. A panic inside `f` propagates once
/// the scope joins.
pub fn run_parallel<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots = ResultSlots((0..items.len()).map(|_| UnsafeCell::new(None)).collect());
    std::thread::scope(|scope| {
        let slots = &slots;
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = f(i, &items[i]);
                // SAFETY: index `i` was claimed by this worker alone.
                unsafe { slots.write(i, result) };
            });
        }
    });
    slots
        .0
        .into_iter()
        .map(|slot| slot.into_inner().expect("every slot filled by a worker"))
        .collect()
}

/// One independent simulation of a grid: a scheme over a trace under a
/// cluster config (which carries the cell's seed).
pub struct GridCell<'a> {
    /// Cluster configuration, including the cell's root seed.
    pub config: ClusterConfig,
    /// The scheme under test.
    pub scheme: &'a dyn SchemeBuilder,
    /// The workload.
    pub trace: TraceConfig,
    /// Progress label (e.g. `"ResNet50/PROTEAN"`); when non-empty the
    /// grid prints `[done/total] label` to stderr as cells finish.
    pub label: String,
}

impl<'a> GridCell<'a> {
    /// A cell with no progress label.
    pub fn new(config: ClusterConfig, scheme: &'a dyn SchemeBuilder, trace: TraceConfig) -> Self {
        GridCell {
            config,
            scheme,
            trace,
            label: String::new(),
        }
    }

    /// Attaches a progress label.
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

/// Minimum grid cells per worker thread before [`run_grid`] spawns it.
/// A cell simulates in single-digit milliseconds at the reduced
/// durations the timing harness uses, so a thread must have a few cells
/// of work to amortize its spawn cost; small grids run sequentially.
pub const MIN_CELLS_PER_THREAD: usize = 4;

/// Threads a single cell's engine occupies while it runs: 1 for a
/// sequential cell, otherwise the sharded engine's thread budget
/// ([`ClusterConfig::shard_threads`], where 0 means "auto" = the
/// machine) clamped to its shard count.
pub fn cell_thread_use(config: &ClusterConfig, hw: usize) -> usize {
    let shards = config.effective_shards();
    if shards <= 1 {
        return 1;
    }
    let budget = if config.shard_threads > 0 {
        config.shard_threads
    } else {
        hw
    };
    budget.min(shards).max(1)
}

/// Divides the grid's global thread budget by the widest cell's own
/// thread use, so grid-level and shard-level parallelism share one pool
/// instead of multiplying: a 16-thread budget over cells that each run
/// 4 shard threads gets 4 grid workers, not 16 × 4 live threads
/// fighting over the cores.
pub fn grid_thread_budget(threads: usize, widest_cell_threads: usize) -> usize {
    (threads / widest_cell_threads.max(1)).max(1)
}

/// Runs every cell on a pool of `threads` workers and returns one
/// [`SchemeRow`] per cell, in input order. Results are bit-identical
/// for any `threads` value (each cell owns its seed; see module docs).
///
/// The pool is shrunk twice: divided by the widest cell's own shard
/// parallelism (see [`grid_thread_budget`] — sharded cells spawn their
/// own threads), then so every spawned worker has at least
/// [`MIN_CELLS_PER_THREAD`] cells; grids smaller than that threshold
/// fall back to a sequential loop on the calling thread.
pub fn run_grid(cells: &[GridCell<'_>], threads: usize) -> Vec<SchemeRow> {
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let widest = cells
        .iter()
        .map(|c| cell_thread_use(&c.config, hw))
        .max()
        .unwrap_or(1);
    let threads = grid_thread_budget(threads, widest)
        .min(cells.len() / MIN_CELLS_PER_THREAD)
        .max(1);
    let done = AtomicUsize::new(0);
    run_parallel(cells, threads, |_, cell| {
        let row = run_scheme(&cell.config, cell.scheme, &cell.trace);
        let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
        if !cell.label.is_empty() {
            eprintln!("  [{finished}/{}] {}", cells.len(), cell.label);
        }
        row
    })
}

/// Wall-clock record for one experiment grid, written to
/// `results/bench_pr1.json` by the `harness_timing` binary.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// Experiment name (e.g. `"fig05_slo_vision"`).
    pub experiment: String,
    /// Cells in the grid.
    pub cells: usize,
    /// Worker threads used for the parallel run.
    pub threads: usize,
    /// Wall-clock of the sequential (1-thread) run, seconds.
    pub sequential_secs: f64,
    /// Wall-clock of the parallel run, seconds.
    pub parallel_secs: f64,
}

impl TimingReport {
    /// Sequential / parallel wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        if self.parallel_secs > 0.0 {
            self.sequential_secs / self.parallel_secs
        } else {
            0.0
        }
    }

    /// Cells completed per second in the parallel run.
    pub fn cells_per_sec(&self) -> f64 {
        if self.parallel_secs > 0.0 {
            self.cells as f64 / self.parallel_secs
        } else {
            0.0
        }
    }
}

/// Serializes timing reports as JSON (hand-rolled — the workspace has
/// no serde) in the `results/bench_pr1.json` format documented in
/// DESIGN.md.
pub fn timing_json(threads: usize, reports: &[TimingReport]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"harness\": \"run_grid\",\n");
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str("  \"experiments\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"cells\": {}, \"threads\": {}, \
             \"sequential_secs\": {:.6}, \"parallel_secs\": {:.6}, \
             \"speedup\": {:.3}, \"cells_per_sec\": {:.3}}}{}\n",
            r.experiment,
            r.cells,
            r.threads,
            r.sequential_secs,
            r.parallel_secs,
            r.speedup(),
            r.cells_per_sec(),
            if i + 1 < reports.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes `timing_json` to `path`, creating parent directories.
pub fn write_bench_json(
    path: &std::path::Path,
    threads: usize,
    reports: &[TimingReport],
) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, timing_json(threads, reports))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::PaperSetup;
    use protean_baselines::Baseline;
    use protean_models::ModelId;

    #[test]
    fn run_parallel_preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 7] {
            let out = run_parallel(&items, threads, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_parallel_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(run_parallel(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(run_parallel(&[5u32], 8, |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn grid_budget_divides_by_widest_cell() {
        // Sequential cells leave the grid budget alone.
        let seq = ClusterConfig::small_test();
        assert_eq!(cell_thread_use(&seq, 16), 1);
        assert_eq!(grid_thread_budget(16, 1), 16);
        // A 4-shard cell with an explicit 4-thread budget quarters it.
        let mut sharded = ClusterConfig::small_test();
        sharded.workers = 8;
        sharded.shards = 4;
        sharded.shard_threads = 4;
        assert_eq!(cell_thread_use(&sharded, 16), 4);
        assert_eq!(grid_thread_budget(16, 4), 4);
        // Auto shard threads (0) claim the machine, capped by shards.
        sharded.shard_threads = 0;
        assert_eq!(cell_thread_use(&sharded, 16), 4);
        assert_eq!(cell_thread_use(&sharded, 2), 2);
        // Shards never exceed workers, so neither does thread use.
        let mut narrow = ClusterConfig::small_test();
        narrow.workers = 2;
        narrow.shards = 64;
        narrow.shard_threads = 64;
        assert_eq!(cell_thread_use(&narrow, 16), 2);
        // The budget never collapses to zero.
        assert_eq!(grid_thread_budget(2, 8), 1);
        assert_eq!(grid_thread_budget(0, 0), 1);
    }

    #[test]
    fn thread_count_prefers_explicit_override() {
        assert_eq!(thread_count_or(Some(3)), 3);
        assert_eq!(thread_count_or(Some(0)), 1);
        assert!(thread_count_or(None) >= 1);
    }

    #[test]
    fn grid_rows_match_sequential_run_scheme() {
        let setup = PaperSetup {
            duration_secs: 10.0,
            seed: 11,
        };
        let mut config = setup.cluster();
        config.workers = 2;
        let schemes: [&dyn protean_cluster::SchemeBuilder; 2] =
            [&Baseline::MoleculeBeta, &Baseline::NaiveSlicing];
        let cells: Vec<GridCell<'_>> = schemes
            .iter()
            .map(|s| {
                GridCell::new(
                    config.clone(),
                    *s,
                    setup.constant_trace(ModelId::MobileNet, 300.0),
                )
            })
            .collect();
        let parallel = run_grid(&cells, 2);
        let sequential = run_grid(&cells, 1);
        assert_eq!(parallel.len(), 2);
        for (p, s) in parallel.iter().zip(&sequential) {
            assert_eq!(p.scheme, s.scheme);
            assert_eq!(p.slo_compliance_pct, s.slo_compliance_pct);
            assert_eq!(p.strict_p99_ms, s.strict_p99_ms);
            assert_eq!(p.cost_usd, s.cost_usd);
        }
    }

    #[test]
    fn timing_json_shape() {
        let reports = vec![TimingReport {
            experiment: "demo".into(),
            cells: 8,
            threads: 4,
            sequential_secs: 2.0,
            parallel_secs: 0.5,
        }];
        let json = timing_json(4, &reports);
        assert!(json.contains("\"harness\": \"run_grid\""));
        assert!(json.contains("\"name\": \"demo\""));
        assert!(json.contains("\"speedup\": 4.000"));
        assert!(json.contains("\"cells_per_sec\": 16.000"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
