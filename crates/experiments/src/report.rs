//! Fixed-width table and CSV-series printers for the figure binaries.

use protean_metrics::LatencyBreakdown;

use crate::runner::SchemeRow;

/// Prints a figure/table header banner.
pub fn banner(id: &str, caption: &str) {
    println!();
    println!("=== {id}: {caption} ===");
}

/// Renders a fixed-width table. `headers` and each row must have equal
/// length.
///
/// # Panics
///
/// Panics if a row's length differs from the header's.
pub fn table(headers: &[&str], rows: &[Vec<String>]) {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let print_row = |cells: &[String]| {
        let line: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
            .collect();
        println!("  {}", line.join("  "));
    };
    print_row(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    print_row(&rule);
    for row in rows {
        print_row(row);
    }
}

/// The standard per-scheme comparison table used by most figures.
pub fn scheme_table(rows: &[SchemeRow]) {
    table(
        &[
            "scheme",
            "SLO%",
            "P50 ms",
            "P99 ms",
            "BE P99 ms",
            "thr/GPU",
            "censored",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.scheme.clone(),
                    format!("{:.2}", r.slo_compliance_pct),
                    format!("{:.1}", r.strict_p50_ms),
                    format!("{:.1}", r.strict_p99_ms),
                    format!("{:.1}", r.be_p99_ms),
                    format!("{:.1}", r.strict_throughput),
                    format!("{}", r.censored),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// The stacked-bar breakdown table of Figs. 2/6/11 (components of the
/// strict P99 tail, ms).
pub fn breakdown_table(rows: &[(String, LatencyBreakdown, f64)]) {
    table(
        &[
            "scheme",
            "queueing",
            "cold",
            "interf.",
            "defic.",
            "min exec",
            "P99 total",
            "SLO%",
        ],
        &rows
            .iter()
            .map(|(name, b, slo)| {
                vec![
                    name.clone(),
                    format!("{:.1}", b.queueing_ms),
                    format!("{:.1}", b.cold_start_ms),
                    format!("{:.1}", b.interference_ms),
                    format!("{:.1}", b.deficiency_ms),
                    format!("{:.1}", b.min_exec_ms),
                    format!("{:.1}", b.total_ms()),
                    format!("{:.2}", slo),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// JSON fragment (trailing comma included) describing the host's
/// `std::thread::available_parallelism` and the armed/gated status of
/// every wall-clock floor a benchmark asserts, so a bench JSON written
/// on a single-core container is self-describing instead of relying on
/// prose in PERF.md. Each floor is `(name, armed, gate)`: `armed` is
/// whether the assertion actually ran on this host, `gate` the
/// condition that arms it.
pub fn floors_json(host_parallelism: usize, floors: &[(&str, bool, &str)]) -> String {
    let mut out = format!("  \"host_parallelism\": {host_parallelism},\n  \"floors\": [\n");
    for (i, (name, armed, gate)) in floors.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{name}\", \"armed\": {armed}, \"gate\": \"{gate}\"}}{}\n",
            if i + 1 < floors.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out
}

/// Prints an `(x, y…)` series as CSV, one line per point, for the
/// curve-style figures (CDFs, timelines).
pub fn csv_series(title: &str, headers: &[&str], points: &[Vec<f64>]) {
    println!("-- {title} (CSV) --");
    println!("{}", headers.join(","));
    for p in points {
        let line: Vec<String> = p.iter().map(|v| format!("{v:.4}")).collect();
        println!("{}", line.join(","));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_accepts_regular_rows() {
        table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }

    #[test]
    #[should_panic]
    fn table_rejects_ragged_rows() {
        table(&["a"], &[vec!["1".into(), "2".into()]]);
    }
}
