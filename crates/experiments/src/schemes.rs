//! Scheme line-ups used across figures.

use protean::ProteanBuilder;
use protean_baselines::Baseline;
use protean_cluster::SchemeBuilder;

/// The primary comparison of Figs. 5–15: Molecule (beta),
/// INFless/Llama, Naïve Slicing and PROTEAN.
pub fn primary() -> Vec<Box<dyn SchemeBuilder>> {
    vec![
        Box::new(Baseline::MoleculeBeta),
        Box::new(Baseline::InflessLlama),
        Box::new(Baseline::NaiveSlicing),
        Box::new(ProteanBuilder::paper()),
    ]
}

/// Resolves a scheme by its CLI/scenario-file name. `None` for an
/// unknown name — callers own the error message (and should list
/// `protean | oracle | molecule | infless | naive | migonly | mpsmig |
/// smart | gpulet` in it).
pub fn by_name(name: &str) -> Option<Box<dyn SchemeBuilder>> {
    Some(match name.to_ascii_lowercase().as_str() {
        "protean" => Box::new(ProteanBuilder::paper()),
        "oracle" => Box::new(ProteanBuilder::oracle()),
        "molecule" => Box::new(Baseline::MoleculeBeta),
        "infless" | "llama" => Box::new(Baseline::InflessLlama),
        "naive" => Box::new(Baseline::NaiveSlicing),
        "migonly" => Box::new(Baseline::MigOnly),
        "mpsmig" => Box::new(Baseline::MpsMigEven),
        "smart" => Box::new(Baseline::SmartMpsMig),
        "gpulet" => Box::new(Baseline::Gpulet),
        _ => return None,
    })
}

/// The §2.2 motivational line-up (Fig. 2): No MPS or MIG, MPS Only,
/// MIG Only, MPS+MIG, and the 'Smart' MPS+MIG straw man.
pub fn motivational() -> Vec<Box<dyn SchemeBuilder>> {
    vec![
        Box::new(Baseline::MoleculeBeta), // "No MPS or MIG"
        Box::new(Baseline::InflessLlama), // "MPS Only"
        Box::new(Baseline::MigOnly),
        Box::new(Baseline::MpsMigEven),
        Box::new(Baseline::SmartMpsMig),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineups_have_expected_members() {
        let names: Vec<&str> = primary().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "Molecule (beta)",
                "INFless/Llama",
                "Naive Slicing",
                "PROTEAN"
            ]
        );
        assert_eq!(motivational().len(), 5);
    }
}
