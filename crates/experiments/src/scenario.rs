//! Scenario DSL: declarative adversarial market/trace/fleet scripts.
//!
//! One TOML file declares everything a run needs — a scripted spot
//! market (eviction storms with notice-lead jitter, denial bursts), a
//! trace (diurnal base plus superimposed flash-crowd bursts, or a
//! user-authored CSV), and a fleet/scheme configuration — and this
//! module compiles it onto the existing engine types:
//! [`ScriptedMarket`], [`TraceConfig`] and [`ClusterConfig`]. Every
//! scenario runs through the audited engine **twice** — sequential and
//! sharded (`shards = 4`) — and the runner asserts bit-identical
//! digests between the arms, so the catalog doubles as a standing
//! differential test of the parallel engine under adversarial
//! schedules.
//!
//! The parser is a deliberate TOML *subset* (single-line scalars,
//! `[table]` and `[[array-of-tables]]` headers, `#` comments, no
//! nesting beyond one dotted level) implemented by hand because the
//! workspace takes no serde/toml dependency. It is strict where it
//! matters: unknown keys and unknown sections fail loudly with the
//! offending line number — the `deny_unknown_fields` contract — and
//! every value is type- and range-checked at parse time.
//!
//! # Schema
//!
//! ```toml
//! name = "az_eviction_storm"          # required
//! description = "..."                 # optional
//!
//! [fleet]                             # all keys optional
//! workers = 6                         # default 4
//! seed = 42
//! scheme = "protean"                  # protean | oracle | molecule | ...
//! procurement = "hybrid"              # ondemand | spot | hybrid
//! availability = "low"                # high | moderate | low
//! provider = "aws"                    # aws | azure | gcp
//! slo_mult = 3.0
//! revocation_check_secs = 5.0
//! vm_startup_secs = 5.0
//! procurement_retry_secs = 5.0
//! prewarm = 4
//! cold_start_secs = 8.0
//!
//! [trace]
//! model = "resnet50"
//! kind = "wiki"                       # constant | wiki | twitter | pulse
//! rps = 300.0
//! duration_secs = 60.0
//! strict_fraction = 0.5
//! be_pool = ["mobilenet", "dpn92"]    # default: opposite interference pool
//! be_rotation_secs = 20.0
//! batch_arrivals = false
//! # csv = "trace.csv"                 # exclusive with every key above
//!
//! [[trace.burst]]                     # flash crowds, additive over the base
//! start_secs = 20.0
//! duration_secs = 10.0
//! add_rps = 500.0
//!
//! [market]
//! script = "gdd"                      # per-roll grant/deny prefix
//! deny_rest = false
//!
//! [[market.eviction]]                 # one scripted notice
//! worker = 1
//! at_secs = 20.0
//! lead_secs = 30.0
//!
//! [[market.storm]]                    # correlated notices, jittered leads
//! workers = [0, 1, 2]
//! at_secs = 20.0
//! lead_secs = 30.0
//! lead_jitter_secs = 10.0             # lead ~ U[lead, lead + jitter]
//! jitter_seed = 7
//!
//! [expect]                            # optional post-run assertions
//! min_evictions = 3
//! min_reconfigs = 1
//! max_censored = 100
//! ```
//!
//! Storm leads are drawn from a dedicated labelled RNG stream
//! (`RngFactory::new(jitter_seed)`, stream `scenario.storm.lead`
//! indexed by storm position), in the listed worker order — fully
//! deterministic, independent of the engine's own streams.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use protean_cluster::{run_trace_with_oracle, ClusterConfig, ScriptedMarket, SimulationResult};
use protean_metrics::record::Class;
use protean_models::{catalog, ModelId};
use protean_sim::{RngFactory, SimDuration, SimTime};
use protean_spot::{ProcurementPolicy, Provider, SpotAvailability};
use protean_trace::{BurstWindow, Trace, TraceConfig, TraceShape};

use crate::golden;
use crate::schemes;

/// Smoke mode scales request *rates* by this factor. Durations are
/// never scaled: scripted evictions fire at absolute times, and
/// truncating the clock would make storm scenarios vacuous.
pub const SMOKE_RPS_FACTOR: f64 = 0.25;

/// Error from parsing, compiling or running a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// A malformed or rejected scenario file (1-based line number).
    Parse {
        /// Line the error points at.
        line: usize,
        /// What was wrong.
        msg: String,
    },
    /// A semantically invalid scenario or a failed run-time assertion
    /// (digest divergence, audit violation, unmet expectation).
    Invalid(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
            ScenarioError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

fn perr<T>(line: usize, msg: impl Into<String>) -> Result<T, ScenarioError> {
    Err(ScenarioError::Parse {
        line,
        msg: msg.into(),
    })
}

// ---------------------------------------------------------------------------
// Spec types (what a file parses into; `PartialEq` powers round-trip tests)
// ---------------------------------------------------------------------------

/// Base trace shape selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Flat rate.
    Constant,
    /// Wikipedia-like diurnal curve.
    Wiki,
    /// Twitter-like bursty curve.
    Twitter,
    /// ON/OFF square wave (see the `pulse_*` keys).
    Pulse,
}

impl TraceKind {
    fn as_str(self) -> &'static str {
        match self {
            TraceKind::Constant => "constant",
            TraceKind::Wiki => "wiki",
            TraceKind::Twitter => "twitter",
            TraceKind::Pulse => "pulse",
        }
    }
}

/// `[fleet]` section.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// Worker count (default 4).
    pub workers: usize,
    /// Root seed (default 42).
    pub seed: u64,
    /// Scheme name, resolved via [`schemes::by_name`].
    pub scheme: String,
    /// VM procurement policy.
    pub procurement: ProcurementPolicy,
    /// Spot availability regime (only used by unscripted rolls).
    pub availability: SpotAvailability,
    /// Pricing provider.
    pub provider: Provider,
    /// Strict SLO multiplier.
    pub slo_mult: f64,
    /// Revocation check interval, seconds.
    pub revocation_check_secs: f64,
    /// VM grant-to-serving delay, seconds.
    pub vm_startup_secs: f64,
    /// Procurement retry interval, seconds.
    pub procurement_retry_secs: f64,
    /// Warm containers pre-provisioned per (worker, model).
    pub prewarm: usize,
    /// Container cold-start latency, seconds.
    pub cold_start_secs: f64,
}

impl Default for FleetSpec {
    fn default() -> Self {
        FleetSpec {
            workers: 4,
            seed: 42,
            scheme: "protean".into(),
            procurement: ProcurementPolicy::OnDemandOnly,
            availability: SpotAvailability::High,
            provider: Provider::Aws,
            slo_mult: 3.0,
            revocation_check_secs: 5.0,
            vm_startup_secs: 5.0,
            procurement_retry_secs: 5.0,
            prewarm: 4,
            cold_start_secs: 8.0,
        }
    }
}

/// `[[trace.burst]]` entry: a flash crowd added on top of the base.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstSpec {
    /// Window start, seconds.
    pub start_secs: f64,
    /// Window length, seconds.
    pub duration_secs: f64,
    /// Extra arrival rate inside the window.
    pub add_rps: f64,
}

/// `[trace]` section.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpec {
    /// CSV trace path (relative to the scenario file). Exclusive with
    /// every generated-trace key.
    pub csv: Option<String>,
    /// Strict model.
    pub model: ModelId,
    /// Base shape.
    pub kind: TraceKind,
    /// Mean (wiki/constant) or peak (twitter) or ON (pulse) rate.
    pub rps: f64,
    /// Trace length, seconds.
    pub duration_secs: f64,
    /// Fraction of arrivals that are strict.
    pub strict_fraction: f64,
    /// Best-effort rotation pool; empty = the model's opposite
    /// interference pool (the paper's default mix).
    pub be_pool: Vec<ModelId>,
    /// BE pool rotation period, seconds.
    pub be_rotation_secs: f64,
    /// Draw whole batches per arrival instant instead of singletons.
    pub batch_arrivals: bool,
    /// Pulse OFF rate (kind = pulse only).
    pub pulse_low_rps: f64,
    /// Pulse period, seconds (kind = pulse only).
    pub pulse_period_secs: f64,
    /// Pulse ON duty fraction (kind = pulse only).
    pub pulse_duty: f64,
    /// Flash-crowd windows, additive over the base shape.
    pub bursts: Vec<BurstSpec>,
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec {
            csv: None,
            model: ModelId::ResNet50,
            kind: TraceKind::Constant,
            rps: 200.0,
            duration_secs: 60.0,
            strict_fraction: 0.5,
            be_pool: Vec::new(),
            be_rotation_secs: 20.0,
            batch_arrivals: false,
            pulse_low_rps: 0.0,
            pulse_period_secs: 10.0,
            pulse_duty: 0.5,
            bursts: Vec::new(),
        }
    }
}

/// `[[market.eviction]]` entry.
#[derive(Debug, Clone, PartialEq)]
pub struct EvictionSpec {
    /// Target worker index.
    pub worker: usize,
    /// Notice arms at the first revocation check at or after this.
    pub at_secs: f64,
    /// Notice lead (reclaim delay), seconds.
    pub lead_secs: f64,
}

/// `[[market.storm]]` entry: correlated evictions with jittered leads.
#[derive(Debug, Clone, PartialEq)]
pub struct StormSpec {
    /// Workers hit by the storm, in lead-draw order.
    pub workers: Vec<usize>,
    /// Notice arm time for every member.
    pub at_secs: f64,
    /// Base notice lead, seconds.
    pub lead_secs: f64,
    /// Leads are drawn uniformly from `[lead, lead + jitter]`.
    pub lead_jitter_secs: f64,
    /// Seed of the dedicated jitter stream.
    pub jitter_seed: u64,
}

/// `[market]` section.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MarketSpec {
    /// Per-roll grant/deny prefix: `g` grants, `d` denies.
    pub script: String,
    /// Deny every roll after the script is exhausted.
    pub deny_rest: bool,
    /// Individually scripted evictions, in file order.
    pub evictions: Vec<EvictionSpec>,
    /// Correlated eviction storms, in file order (armed after the
    /// individual evictions).
    pub storms: Vec<StormSpec>,
}

/// `[expect]` section: post-run assertions the runner enforces.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExpectSpec {
    /// The run must suffer at least this many evictions.
    pub min_evictions: Option<u64>,
    /// The run must complete at least this many MIG reconfigurations.
    pub min_reconfigs: Option<u64>,
    /// The run must censor at most this many requests.
    pub max_censored: Option<u64>,
}

/// A parsed scenario file.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (required; used for report cards and `--name`).
    pub name: String,
    /// Free-text description.
    pub description: String,
    /// `[fleet]`.
    pub fleet: FleetSpec,
    /// `[trace]`.
    pub trace: TraceSpec,
    /// `[market]`.
    pub market: MarketSpec,
    /// `[expect]`.
    pub expect: ExpectSpec,
}

// ---------------------------------------------------------------------------
// TOML-subset parser
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Num(f64),
    Bool(bool),
    Arr(Vec<Value>),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Num(_) => "number",
            Value::Bool(_) => "boolean",
            Value::Arr(_) => "array",
        }
    }
}

/// Truncates `line` at the first `#` outside a string literal.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Splits a bracketless array body on top-level commas (string-aware).
fn split_array(inner: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut in_str = false;
    let mut start = 0;
    for (i, c) in inner.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&inner[start..]);
    parts
}

fn parse_scalar(raw: &str, line: usize) -> Result<Value, ScenarioError> {
    let raw = raw.trim();
    if let Some(rest) = raw.strip_prefix('"') {
        let Some(end) = rest.find('"') else {
            return perr(line, "unterminated string");
        };
        if !rest[end + 1..].trim().is_empty() {
            return perr(line, "trailing content after string");
        }
        return Ok(Value::Str(rest[..end].to_string()));
    }
    match raw {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    match raw.parse::<f64>() {
        Ok(n) if n.is_finite() => Ok(Value::Num(n)),
        _ => perr(line, format!("cannot parse value '{raw}'")),
    }
}

fn parse_value(raw: &str, line: usize) -> Result<Value, ScenarioError> {
    let raw = raw.trim();
    if raw.is_empty() {
        return perr(line, "missing value");
    }
    if let Some(rest) = raw.strip_prefix('[') {
        let Some(inner) = rest.strip_suffix(']') else {
            return perr(line, "unterminated array (arrays must be single-line)");
        };
        if inner.trim().is_empty() {
            return Ok(Value::Arr(Vec::new()));
        }
        let items = split_array(inner)
            .into_iter()
            .map(|p| parse_scalar(p, line))
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(Value::Arr(items));
    }
    parse_scalar(raw, line)
}

/// One table's worth of keys, each remembering its source line.
/// Consumers `take_*` the keys they know; [`Table::finish`] then
/// rejects whatever is left — the deny-unknown-fields contract.
struct Table {
    section: String,
    entries: BTreeMap<String, (Value, usize)>,
}

impl Table {
    fn new(section: &str) -> Self {
        Table {
            section: section.to_string(),
            entries: BTreeMap::new(),
        }
    }

    fn insert(&mut self, key: &str, value: Value, line: usize) -> Result<(), ScenarioError> {
        if self
            .entries
            .insert(key.to_string(), (value, line))
            .is_some()
        {
            return perr(line, format!("duplicate key '{key}'"));
        }
        Ok(())
    }

    fn take(&mut self, key: &str) -> Option<(Value, usize)> {
        self.entries.remove(key)
    }

    fn take_f64(&mut self, key: &str, default: f64) -> Result<f64, ScenarioError> {
        match self.take(key) {
            None => Ok(default),
            Some((Value::Num(n), _)) => Ok(n),
            Some((v, line)) => perr(
                line,
                format!("'{key}' must be a number, got {}", v.type_name()),
            ),
        }
    }

    fn take_unsigned(&mut self, key: &str, default: u64) -> Result<u64, ScenarioError> {
        match self.take(key) {
            None => Ok(default),
            Some((Value::Num(n), line)) => {
                if n < 0.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
                    perr(line, format!("'{key}' must be a non-negative integer"))
                } else {
                    Ok(n as u64)
                }
            }
            Some((v, line)) => perr(
                line,
                format!("'{key}' must be an integer, got {}", v.type_name()),
            ),
        }
    }

    fn take_bool(&mut self, key: &str, default: bool) -> Result<bool, ScenarioError> {
        match self.take(key) {
            None => Ok(default),
            Some((Value::Bool(b), _)) => Ok(b),
            Some((v, line)) => perr(
                line,
                format!("'{key}' must be a boolean, got {}", v.type_name()),
            ),
        }
    }

    fn take_str(&mut self, key: &str) -> Result<Option<(String, usize)>, ScenarioError> {
        match self.take(key) {
            None => Ok(None),
            Some((Value::Str(s), line)) => Ok(Some((s, line))),
            Some((v, line)) => perr(
                line,
                format!("'{key}' must be a string, got {}", v.type_name()),
            ),
        }
    }

    fn take_arr(&mut self, key: &str) -> Result<Option<(Vec<Value>, usize)>, ScenarioError> {
        match self.take(key) {
            None => Ok(None),
            Some((Value::Arr(a), line)) => Ok(Some((a, line))),
            Some((v, line)) => perr(
                line,
                format!("'{key}' must be an array, got {}", v.type_name()),
            ),
        }
    }

    /// Errors on any key nobody consumed, naming it and its line.
    fn finish(self) -> Result<(), ScenarioError> {
        if let Some((key, (_, line))) = self.entries.into_iter().next() {
            let section = if self.section.is_empty() {
                "top level".to_string()
            } else {
                format!("[{}]", self.section)
            };
            return perr(line, format!("unknown key '{key}' in {section}"));
        }
        Ok(())
    }
}

fn parse_model(name: &str, line: usize) -> Result<ModelId, ScenarioError> {
    ModelId::from_slug(name).ok_or_else(|| ScenarioError::Parse {
        line,
        msg: format!("unknown model slug '{name}'"),
    })
}

/// Parses scenario text. See the module docs for the schema.
///
/// # Errors
///
/// Returns [`ScenarioError::Parse`] with the offending 1-based line for
/// any syntax error, unknown section, unknown key, type mismatch or
/// out-of-range value.
pub fn parse(text: &str) -> Result<ScenarioSpec, ScenarioError> {
    // Pass 1: split the file into tables.
    let mut root = Table::new("");
    let mut singles: BTreeMap<&'static str, Table> = BTreeMap::new();
    let mut arrays: Vec<(&'static str, Table)> = Vec::new();
    const SINGLE: [&str; 4] = ["fleet", "trace", "market", "expect"];
    const ARRAY: [&str; 3] = ["trace.burst", "market.eviction", "market.storm"];
    let mut current: &mut Table = &mut root;
    for (i, raw_line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[") {
            let Some(name) = header.strip_suffix("]]") else {
                return perr(line_no, "malformed [[section]] header");
            };
            let name = name.trim();
            let Some(known) = ARRAY.iter().find(|s| **s == name) else {
                if SINGLE.contains(&name) {
                    return perr(
                        line_no,
                        format!("[{name}] is a table, not an array — use [{name}]"),
                    );
                }
                return perr(line_no, format!("unknown section [[{name}]]"));
            };
            arrays.push((known, Table::new(known)));
            current = &mut arrays.last_mut().expect("just pushed").1;
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let Some(name) = header.strip_suffix(']') else {
                return perr(line_no, "malformed [section] header");
            };
            let name = name.trim();
            let Some(known) = SINGLE.iter().find(|s| **s == name) else {
                if ARRAY.contains(&name) {
                    return perr(
                        line_no,
                        format!("[{name}] is an array of tables — use [[{name}]]"),
                    );
                }
                return perr(line_no, format!("unknown section [{name}]"));
            };
            if singles.contains_key(known) {
                return perr(line_no, format!("duplicate section [{name}]"));
            }
            singles.insert(known, Table::new(known));
            current = singles.get_mut(known).expect("just inserted");
            continue;
        }
        let Some(eq) = line.find('=') else {
            return perr(line_no, "expected 'key = value' or a [section] header");
        };
        let key = line[..eq].trim();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return perr(line_no, format!("malformed key '{key}'"));
        }
        let value = parse_value(&line[eq + 1..], line_no)?;
        current.insert(key, value, line_no)?;
    }

    // Pass 2: consume tables into the spec, rejecting leftovers.
    let Some((name, _)) = root.take_str("name")? else {
        return perr(1, "scenario is missing the required top-level 'name' key");
    };
    let description = root
        .take_str("description")?
        .map(|(s, _)| s)
        .unwrap_or_default();
    root.finish()?;

    let fleet = {
        let mut t = singles
            .remove("fleet")
            .unwrap_or_else(|| Table::new("fleet"));
        let d = FleetSpec::default();
        let workers = t.take_unsigned("workers", d.workers as u64)? as usize;
        let seed = t.take_unsigned("seed", d.seed)?;
        let (scheme, scheme_line) = t
            .take_str("scheme")?
            .unwrap_or_else(|| (d.scheme.clone(), 0));
        if schemes::by_name(&scheme).is_none() {
            return perr(
                scheme_line,
                format!("unknown scheme '{scheme}' (protean | oracle | molecule | infless | naive | migonly | mpsmig | smart | gpulet)"),
            );
        }
        let procurement = match t.take_str("procurement")? {
            None => d.procurement,
            Some((s, line)) => match s.as_str() {
                "ondemand" | "on-demand" => ProcurementPolicy::OnDemandOnly,
                "spot" => ProcurementPolicy::SpotOnly,
                "hybrid" => ProcurementPolicy::Hybrid,
                other => {
                    return perr(
                        line,
                        format!("unknown procurement '{other}' (ondemand | spot | hybrid)"),
                    )
                }
            },
        };
        let availability = match t.take_str("availability")? {
            None => d.availability,
            Some((s, line)) => match s.as_str() {
                "high" => SpotAvailability::High,
                "moderate" | "medium" => SpotAvailability::Moderate,
                "low" => SpotAvailability::Low,
                other => {
                    return perr(
                        line,
                        format!("unknown availability '{other}' (high | moderate | low)"),
                    )
                }
            },
        };
        let provider = match t.take_str("provider")? {
            None => d.provider,
            Some((s, line)) => match s.as_str() {
                "aws" => Provider::Aws,
                "azure" => Provider::Azure,
                "gcp" => Provider::Gcp,
                other => {
                    return perr(
                        line,
                        format!("unknown provider '{other}' (aws | azure | gcp)"),
                    )
                }
            },
        };
        let spec = FleetSpec {
            workers,
            seed,
            scheme,
            procurement,
            availability,
            provider,
            slo_mult: t.take_f64("slo_mult", d.slo_mult)?,
            revocation_check_secs: t.take_f64("revocation_check_secs", d.revocation_check_secs)?,
            vm_startup_secs: t.take_f64("vm_startup_secs", d.vm_startup_secs)?,
            procurement_retry_secs: t
                .take_f64("procurement_retry_secs", d.procurement_retry_secs)?,
            prewarm: t.take_unsigned("prewarm", d.prewarm as u64)? as usize,
            cold_start_secs: t.take_f64("cold_start_secs", d.cold_start_secs)?,
        };
        t.finish()?;
        if spec.workers == 0 {
            return Err(ScenarioError::Invalid(
                "[fleet] workers must be at least 1".into(),
            ));
        }
        if spec.slo_mult < 1.0 {
            return Err(ScenarioError::Invalid(
                "[fleet] slo_mult must be >= 1".into(),
            ));
        }
        spec
    };

    let mut bursts = Vec::new();
    let mut evictions = Vec::new();
    let mut storms = Vec::new();
    for (section, mut t) in arrays {
        match section {
            "trace.burst" => {
                let b = BurstSpec {
                    start_secs: t.take_f64("start_secs", -1.0)?,
                    duration_secs: t.take_f64("duration_secs", -1.0)?,
                    add_rps: t.take_f64("add_rps", -1.0)?,
                };
                t.finish()?;
                if b.start_secs < 0.0 || b.duration_secs <= 0.0 || b.add_rps <= 0.0 {
                    return Err(ScenarioError::Invalid(
                        "[[trace.burst]] needs start_secs >= 0, duration_secs > 0 and add_rps > 0"
                            .into(),
                    ));
                }
                bursts.push(b);
            }
            "market.eviction" => {
                let e = EvictionSpec {
                    worker: t.take_unsigned("worker", u64::MAX)? as usize,
                    at_secs: t.take_f64("at_secs", -1.0)?,
                    lead_secs: t.take_f64("lead_secs", -1.0)?,
                };
                t.finish()?;
                if e.worker == u64::MAX as usize || e.at_secs < 0.0 || e.lead_secs < 0.0 {
                    return Err(ScenarioError::Invalid(
                        "[[market.eviction]] needs worker, at_secs >= 0 and lead_secs >= 0".into(),
                    ));
                }
                evictions.push(e);
            }
            "market.storm" => {
                let workers = match t.take_arr("workers")? {
                    None => Vec::new(),
                    Some((items, line)) => items
                        .into_iter()
                        .map(|v| match v {
                            Value::Num(n) if n >= 0.0 && n.fract() == 0.0 => Ok(n as usize),
                            _ => perr(line, "storm 'workers' must be non-negative integers"),
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                };
                let s = StormSpec {
                    workers,
                    at_secs: t.take_f64("at_secs", -1.0)?,
                    lead_secs: t.take_f64("lead_secs", -1.0)?,
                    lead_jitter_secs: t.take_f64("lead_jitter_secs", 0.0)?,
                    jitter_seed: t.take_unsigned("jitter_seed", 0)?,
                };
                t.finish()?;
                if s.workers.is_empty()
                    || s.at_secs < 0.0
                    || s.lead_secs < 0.0
                    || s.lead_jitter_secs < 0.0
                {
                    return Err(ScenarioError::Invalid(
                        "[[market.storm]] needs non-empty workers, at_secs >= 0, lead_secs >= 0 and lead_jitter_secs >= 0"
                            .into(),
                    ));
                }
                storms.push(s);
            }
            _ => unreachable!("section filtered in pass 1"),
        }
    }

    let trace = {
        let mut t = singles
            .remove("trace")
            .unwrap_or_else(|| Table::new("trace"));
        let d = TraceSpec::default();
        let csv = t.take_str("csv")?.map(|(s, _)| s);
        if csv.is_some() {
            // Every generated-trace key is meaningless with a CSV; a
            // leftover is reported as unknown by `finish`, and bursts
            // cannot overlay a materialised trace.
            t.finish()?;
            if !bursts.is_empty() {
                return Err(ScenarioError::Invalid(
                    "[[trace.burst]] cannot overlay a csv trace".into(),
                ));
            }
            TraceSpec { csv, ..d }
        } else {
            let model = match t.take_str("model")? {
                None => d.model,
                Some((s, line)) => parse_model(&s, line)?,
            };
            let kind = match t.take_str("kind")? {
                None => d.kind,
                Some((s, line)) => match s.as_str() {
                    "constant" => TraceKind::Constant,
                    "wiki" => TraceKind::Wiki,
                    "twitter" => TraceKind::Twitter,
                    "pulse" => TraceKind::Pulse,
                    other => {
                        return perr(
                            line,
                            format!(
                                "unknown trace kind '{other}' (constant | wiki | twitter | pulse)"
                            ),
                        )
                    }
                },
            };
            if kind != TraceKind::Pulse {
                for key in ["pulse_low_rps", "pulse_period_secs", "pulse_duty"] {
                    if let Some((_, line)) = t.take(key) {
                        return perr(line, format!("'{key}' is only valid with kind = \"pulse\""));
                    }
                }
            }
            let be_pool = match t.take_arr("be_pool")? {
                None => Vec::new(),
                Some((items, line)) => items
                    .into_iter()
                    .map(|v| match v {
                        Value::Str(s) => parse_model(&s, line),
                        other => perr(
                            line,
                            format!(
                                "be_pool entries must be model slugs, got {}",
                                other.type_name()
                            ),
                        ),
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            };
            let spec = TraceSpec {
                csv: None,
                model,
                kind,
                rps: t.take_f64("rps", d.rps)?,
                duration_secs: t.take_f64("duration_secs", d.duration_secs)?,
                strict_fraction: t.take_f64("strict_fraction", d.strict_fraction)?,
                be_pool,
                be_rotation_secs: t.take_f64("be_rotation_secs", d.be_rotation_secs)?,
                batch_arrivals: t.take_bool("batch_arrivals", d.batch_arrivals)?,
                pulse_low_rps: t.take_f64("pulse_low_rps", d.pulse_low_rps)?,
                pulse_period_secs: t.take_f64("pulse_period_secs", d.pulse_period_secs)?,
                pulse_duty: t.take_f64("pulse_duty", d.pulse_duty)?,
                bursts,
            };
            t.finish()?;
            if spec.rps <= 0.0 || spec.duration_secs <= 0.0 {
                return Err(ScenarioError::Invalid(
                    "[trace] rps and duration_secs must be positive".into(),
                ));
            }
            if !(0.0..=1.0).contains(&spec.strict_fraction) {
                return Err(ScenarioError::Invalid(
                    "[trace] strict_fraction must be in [0, 1]".into(),
                ));
            }
            if spec.kind == TraceKind::Pulse
                && !(spec.pulse_low_rps >= 0.0
                    && spec.pulse_period_secs > 0.0
                    && spec.pulse_duty > 0.0
                    && spec.pulse_duty <= 1.0)
            {
                return Err(ScenarioError::Invalid(
                    "[trace] pulse needs pulse_low_rps >= 0, pulse_period_secs > 0 and pulse_duty in (0, 1]".into(),
                ));
            }
            spec
        }
    };

    let market = {
        let mut t = singles
            .remove("market")
            .unwrap_or_else(|| Table::new("market"));
        let (script, script_line) = t.take_str("script")?.unwrap_or_default();
        if let Some(bad) = script.chars().find(|c| *c != 'g' && *c != 'd') {
            return perr(
                script_line,
                format!("market script may contain only 'g' and 'd', found '{bad}'"),
            );
        }
        let spec = MarketSpec {
            script,
            deny_rest: t.take_bool("deny_rest", false)?,
            evictions,
            storms,
        };
        t.finish()?;
        spec
    };

    let expect = {
        let mut t = singles
            .remove("expect")
            .unwrap_or_else(|| Table::new("expect"));
        let take_opt = |t: &mut Table, key: &str| -> Result<Option<u64>, ScenarioError> {
            match t.take_unsigned(key, u64::MAX)? {
                u64::MAX => Ok(None),
                n => Ok(Some(n)),
            }
        };
        let spec = ExpectSpec {
            min_evictions: take_opt(&mut t, "min_evictions")?,
            min_reconfigs: take_opt(&mut t, "min_reconfigs")?,
            max_censored: take_opt(&mut t, "max_censored")?,
        };
        t.finish()?;
        spec
    };

    let spec = ScenarioSpec {
        name,
        description,
        fleet,
        trace,
        market,
        expect,
    };
    // Cross-field validation.
    for e in &spec.market.evictions {
        if e.worker >= spec.fleet.workers {
            return Err(ScenarioError::Invalid(format!(
                "[[market.eviction]] worker {} is out of range for a {}-worker fleet",
                e.worker, spec.fleet.workers
            )));
        }
    }
    for s in &spec.market.storms {
        for w in &s.workers {
            if *w >= spec.fleet.workers {
                return Err(ScenarioError::Invalid(format!(
                    "[[market.storm]] worker {} is out of range for a {}-worker fleet",
                    w, spec.fleet.workers
                )));
            }
        }
    }
    Ok(spec)
}

/// Reads and parses a scenario file, prefixing errors with the path.
///
/// # Errors
///
/// Returns [`ScenarioError::Invalid`] for I/O failures and a
/// path-prefixed variant of whatever [`parse`] reports.
pub fn load_file(path: &Path) -> Result<ScenarioSpec, ScenarioError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ScenarioError::Invalid(format!("{}: {e}", path.display())))?;
    parse(&text).map_err(|e| match e {
        ScenarioError::Parse { line, msg } => ScenarioError::Parse {
            line,
            msg: format!("{}: {msg}", path.display()),
        },
        ScenarioError::Invalid(msg) => ScenarioError::Invalid(format!("{}: {msg}", path.display())),
    })
}

// ---------------------------------------------------------------------------
// Canonical serialization (round-trip contract: parse(to_toml(s)) == s)
// ---------------------------------------------------------------------------

impl ScenarioSpec {
    /// Serializes the spec back to canonical scenario TOML. The output
    /// reparses to an identical spec (`parse(s.to_toml()) == s`), which
    /// the proptest round-trip pins.
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        let p = &mut out;
        use std::fmt::Write;
        writeln!(p, "name = \"{}\"", self.name).unwrap();
        writeln!(p, "description = \"{}\"", self.description).unwrap();
        let f = &self.fleet;
        writeln!(p, "\n[fleet]").unwrap();
        writeln!(p, "workers = {}", f.workers).unwrap();
        writeln!(p, "seed = {}", f.seed).unwrap();
        writeln!(p, "scheme = \"{}\"", f.scheme).unwrap();
        let procurement = match f.procurement {
            ProcurementPolicy::OnDemandOnly => "ondemand",
            ProcurementPolicy::SpotOnly => "spot",
            ProcurementPolicy::Hybrid => "hybrid",
        };
        writeln!(p, "procurement = \"{procurement}\"").unwrap();
        let availability = match f.availability {
            SpotAvailability::High => "high",
            SpotAvailability::Moderate => "moderate",
            SpotAvailability::Low => "low",
        };
        writeln!(p, "availability = \"{availability}\"").unwrap();
        let provider = match f.provider {
            Provider::Aws => "aws",
            Provider::Azure => "azure",
            Provider::Gcp => "gcp",
        };
        writeln!(p, "provider = \"{provider}\"").unwrap();
        writeln!(p, "slo_mult = {}", f.slo_mult).unwrap();
        writeln!(p, "revocation_check_secs = {}", f.revocation_check_secs).unwrap();
        writeln!(p, "vm_startup_secs = {}", f.vm_startup_secs).unwrap();
        writeln!(p, "procurement_retry_secs = {}", f.procurement_retry_secs).unwrap();
        writeln!(p, "prewarm = {}", f.prewarm).unwrap();
        writeln!(p, "cold_start_secs = {}", f.cold_start_secs).unwrap();
        let t = &self.trace;
        writeln!(p, "\n[trace]").unwrap();
        if let Some(csv) = &t.csv {
            writeln!(p, "csv = \"{csv}\"").unwrap();
        } else {
            writeln!(p, "model = \"{}\"", t.model.slug()).unwrap();
            writeln!(p, "kind = \"{}\"", t.kind.as_str()).unwrap();
            writeln!(p, "rps = {}", t.rps).unwrap();
            writeln!(p, "duration_secs = {}", t.duration_secs).unwrap();
            writeln!(p, "strict_fraction = {}", t.strict_fraction).unwrap();
            if !t.be_pool.is_empty() {
                let pool: Vec<String> = t
                    .be_pool
                    .iter()
                    .map(|m| format!("\"{}\"", m.slug()))
                    .collect();
                writeln!(p, "be_pool = [{}]", pool.join(", ")).unwrap();
            }
            writeln!(p, "be_rotation_secs = {}", t.be_rotation_secs).unwrap();
            writeln!(p, "batch_arrivals = {}", t.batch_arrivals).unwrap();
            if t.kind == TraceKind::Pulse {
                writeln!(p, "pulse_low_rps = {}", t.pulse_low_rps).unwrap();
                writeln!(p, "pulse_period_secs = {}", t.pulse_period_secs).unwrap();
                writeln!(p, "pulse_duty = {}", t.pulse_duty).unwrap();
            }
            for b in &t.bursts {
                writeln!(p, "\n[[trace.burst]]").unwrap();
                writeln!(p, "start_secs = {}", b.start_secs).unwrap();
                writeln!(p, "duration_secs = {}", b.duration_secs).unwrap();
                writeln!(p, "add_rps = {}", b.add_rps).unwrap();
            }
        }
        let m = &self.market;
        writeln!(p, "\n[market]").unwrap();
        writeln!(p, "script = \"{}\"", m.script).unwrap();
        writeln!(p, "deny_rest = {}", m.deny_rest).unwrap();
        for e in &m.evictions {
            writeln!(p, "\n[[market.eviction]]").unwrap();
            writeln!(p, "worker = {}", e.worker).unwrap();
            writeln!(p, "at_secs = {}", e.at_secs).unwrap();
            writeln!(p, "lead_secs = {}", e.lead_secs).unwrap();
        }
        for s in &m.storms {
            writeln!(p, "\n[[market.storm]]").unwrap();
            let workers: Vec<String> = s.workers.iter().map(|w| w.to_string()).collect();
            writeln!(p, "workers = [{}]", workers.join(", ")).unwrap();
            writeln!(p, "at_secs = {}", s.at_secs).unwrap();
            writeln!(p, "lead_secs = {}", s.lead_secs).unwrap();
            writeln!(p, "lead_jitter_secs = {}", s.lead_jitter_secs).unwrap();
            writeln!(p, "jitter_seed = {}", s.jitter_seed).unwrap();
        }
        let e = &self.expect;
        if e.min_evictions.is_some() || e.min_reconfigs.is_some() || e.max_censored.is_some() {
            writeln!(p, "\n[expect]").unwrap();
            if let Some(n) = e.min_evictions {
                writeln!(p, "min_evictions = {n}").unwrap();
            }
            if let Some(n) = e.min_reconfigs {
                writeln!(p, "min_reconfigs = {n}").unwrap();
            }
            if let Some(n) = e.max_censored {
                writeln!(p, "max_censored = {n}").unwrap();
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Compilation onto engine types
// ---------------------------------------------------------------------------

/// Where the compiled scenario's requests come from.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceSource {
    /// Generate from a [`TraceConfig`] with the run seed.
    Config(TraceConfig),
    /// Read a CSV trace (path already resolved against the scenario
    /// file's directory).
    Csv(PathBuf),
}

/// A scenario lowered onto the engine's own types.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledScenario {
    /// Cluster configuration (auditing is always enabled).
    pub config: ClusterConfig,
    /// Request source.
    pub trace: TraceSource,
    /// Fully-armed scripted market (evictions, storms with drawn
    /// jitter, grant/deny script).
    pub market: ScriptedMarket,
    /// Scheme name (resolve with [`schemes::by_name`]).
    pub scheme: String,
}

impl ScenarioSpec {
    /// Lowers the spec onto [`ClusterConfig`] / [`TraceConfig`] /
    /// [`ScriptedMarket`]. `base_dir` anchors relative CSV paths;
    /// `smoke` scales request rates by [`SMOKE_RPS_FACTOR`] (never
    /// durations — scripted evictions fire at absolute times).
    pub fn compile(&self, base_dir: &Path, smoke: bool) -> CompiledScenario {
        let f = &self.fleet;
        let mut config = ClusterConfig::paper_default();
        config.workers = f.workers;
        config.seed = f.seed;
        config.slo_multiplier = f.slo_mult;
        config.procurement = f.procurement;
        config.availability = f.availability;
        config.provider = f.provider;
        config.revocation_check = SimDuration::from_secs(f.revocation_check_secs);
        config.vm_startup = SimDuration::from_secs(f.vm_startup_secs);
        config.procurement_retry = SimDuration::from_secs(f.procurement_retry_secs);
        config.prewarm_containers = f.prewarm;
        config.cold_start = SimDuration::from_secs(f.cold_start_secs);
        config.audit = true;

        let rps_factor = if smoke { SMOKE_RPS_FACTOR } else { 1.0 };
        let trace = if let Some(csv) = &self.trace.csv {
            TraceSource::Csv(base_dir.join(csv))
        } else {
            let t = &self.trace;
            let rps = t.rps * rps_factor;
            let base = match t.kind {
                TraceKind::Constant => TraceShape::constant(rps),
                TraceKind::Wiki => TraceShape::wiki(rps),
                TraceKind::Twitter => TraceShape::twitter(rps),
                TraceKind::Pulse => TraceShape::Pulse {
                    high_rps: rps,
                    low_rps: t.pulse_low_rps * rps_factor,
                    period: SimDuration::from_secs(t.pulse_period_secs),
                    duty: t.pulse_duty,
                },
            };
            let shape = if t.bursts.is_empty() {
                base
            } else {
                TraceShape::overlay(
                    base,
                    t.bursts
                        .iter()
                        .map(|b| BurstWindow {
                            start: SimTime::from_secs(b.start_secs),
                            duration: SimDuration::from_secs(b.duration_secs),
                            add_rps: b.add_rps * rps_factor,
                        })
                        .collect(),
                )
            };
            let be_pool = if t.be_pool.is_empty() {
                let mut pool = catalog().opposite_pool(t.model);
                if pool.is_empty() {
                    pool.push(t.model);
                }
                pool
            } else {
                t.be_pool.clone()
            };
            TraceSource::Config(TraceConfig {
                shape,
                duration: SimDuration::from_secs(t.duration_secs),
                strict_model: t.model,
                strict_fraction: t.strict_fraction,
                be_pool,
                be_rotation_period: SimDuration::from_secs(t.be_rotation_secs),
                batch_arrivals: t.batch_arrivals,
            })
        };

        let mut market = ScriptedMarket::new();
        for e in &self.market.evictions {
            market = market.evict(
                e.worker,
                SimTime::from_secs(e.at_secs),
                SimDuration::from_secs(e.lead_secs),
            );
        }
        for (i, s) in self.market.storms.iter().enumerate() {
            let mut rng =
                RngFactory::new(s.jitter_seed).indexed_stream("scenario.storm.lead", i as u64);
            for w in &s.workers {
                let lead = s.lead_secs + rng.uniform() * s.lead_jitter_secs;
                market = market.evict(
                    *w,
                    SimTime::from_secs(s.at_secs),
                    SimDuration::from_secs(lead),
                );
            }
        }
        for c in self.market.script.chars() {
            market = if c == 'g' {
                market.grant_next(1)
            } else {
                market.deny_next(1)
            };
        }
        if self.market.deny_rest {
            market = market.deny_rest();
        }

        CompiledScenario {
            config,
            trace,
            market,
            scheme: self.fleet.scheme.clone(),
        }
    }
}

// ---------------------------------------------------------------------------
// Runner + report cards
// ---------------------------------------------------------------------------

/// Condensed SLO/cost report card for one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub name: String,
    /// Scheme label as the engine reports it.
    pub scheme: String,
    /// Whether request rates were smoke-scaled.
    pub smoke: bool,
    /// Golden digest (identical across the sequential/sharded arms).
    pub digest: String,
    /// Post-warmup requests measured.
    pub requests: usize,
    /// Strict SLO compliance, percent.
    pub slo_pct: f64,
    /// Strict P50 latency, ms.
    pub strict_p50_ms: f64,
    /// Strict P99 latency, ms.
    pub strict_p99_ms: f64,
    /// Best-effort P99 latency, ms.
    pub be_p99_ms: f64,
    /// Total dollar cost.
    pub cost_usd: f64,
    /// Spot share of the cost.
    pub spot_usd: f64,
    /// On-demand share of the cost.
    pub on_demand_usd: f64,
    /// Spot evictions suffered.
    pub evictions: u64,
    /// Completed MIG reconfigurations.
    pub reconfigs: u64,
    /// Cold starts triggered.
    pub cold_starts: u64,
    /// Requests censored at cutoff.
    pub censored: u64,
    /// Invariant sweeps performed (both arms were clean).
    pub audit_checks: u64,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl ScenarioOutcome {
    fn from_result(
        name: &str,
        smoke: bool,
        digest: String,
        slo_mult: f64,
        r: &SimulationResult,
    ) -> Self {
        let cat = catalog();
        let slo = SimulationResult::slo_fn(&cat, slo_mult);
        ScenarioOutcome {
            name: name.to_string(),
            scheme: r.scheme.clone(),
            smoke,
            digest,
            requests: r.metrics.count(Class::All),
            slo_pct: r.metrics.slo_compliance(&slo) * 100.0,
            strict_p50_ms: r
                .metrics
                .latency_percentile_ms(Class::Strict, 0.5)
                .unwrap_or(0.0),
            strict_p99_ms: r
                .metrics
                .latency_percentile_ms(Class::Strict, 0.99)
                .unwrap_or(0.0),
            be_p99_ms: r
                .metrics
                .latency_percentile_ms(Class::BestEffort, 0.99)
                .unwrap_or(0.0),
            cost_usd: r.cost.total_usd,
            spot_usd: r.cost.spot_usd,
            on_demand_usd: r.cost.on_demand_usd,
            evictions: r.cost.evictions,
            reconfigs: r.reconfigs,
            cold_starts: r.cold_starts,
            censored: r.censored,
            audit_checks: r.audit.checks,
        }
    }

    /// Renders the report card as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"scenario\": \"{}\", \"scheme\": \"{}\", \"smoke\": {}, \"digest\": \"{}\", ",
                "\"requests\": {}, \"slo_pct\": {:.4}, \"strict_p50_ms\": {:.4}, ",
                "\"strict_p99_ms\": {:.4}, \"be_p99_ms\": {:.4}, \"cost_usd\": {:.6}, ",
                "\"spot_usd\": {:.6}, \"on_demand_usd\": {:.6}, \"evictions\": {}, ",
                "\"reconfigs\": {}, \"cold_starts\": {}, \"censored\": {}, \"audit_checks\": {}}}"
            ),
            json_escape(&self.name),
            json_escape(&self.scheme),
            self.smoke,
            json_escape(&self.digest),
            self.requests,
            self.slo_pct,
            self.strict_p50_ms,
            self.strict_p99_ms,
            self.be_p99_ms,
            // `+ 0.0` normalizes IEEE negative zero out of the JSON.
            self.cost_usd + 0.0,
            self.spot_usd + 0.0,
            self.on_demand_usd + 0.0,
            self.evictions,
            self.reconfigs,
            self.cold_starts,
            self.censored,
            self.audit_checks,
        )
    }

    /// One row for the rendered report-card table; pair with
    /// [`card_headers`].
    pub fn table_row(&self) -> Vec<String> {
        vec![
            self.name.clone(),
            self.scheme.clone(),
            format!("{}", self.requests),
            format!("{:.2}", self.slo_pct),
            format!("{:.1}", self.strict_p99_ms),
            format!("{:.4}", self.cost_usd),
            format!("{}", self.evictions),
            format!("{}", self.reconfigs),
            format!("{}", self.censored),
        ]
    }
}

/// Headers matching [`ScenarioOutcome::table_row`].
pub fn card_headers() -> Vec<&'static str> {
    vec![
        "scenario", "scheme", "requests", "SLO%", "P99 ms", "cost $", "evict", "reconf", "censored",
    ]
}

/// Runs one scenario through both engine arms and condenses the result.
///
/// The sequential arm (`shards = 1`) and the sharded arm (`shards = 4`,
/// two threads) run the identical compiled scenario; their golden
/// digests must match bit-for-bit and both audits must be clean, or the
/// run fails. `[expect]` assertions are enforced on the sequential arm.
///
/// # Errors
///
/// Returns [`ScenarioError::Invalid`] on an unknown scheme, an
/// unreadable CSV trace, digest divergence, an audit violation or an
/// unmet expectation.
pub fn run(
    spec: &ScenarioSpec,
    base_dir: &Path,
    smoke: bool,
) -> Result<ScenarioOutcome, ScenarioError> {
    let compiled = spec.compile(base_dir, smoke);
    let scheme = schemes::by_name(&compiled.scheme)
        .ok_or_else(|| ScenarioError::Invalid(format!("unknown scheme '{}'", compiled.scheme)))?;
    let trace = match &compiled.trace {
        TraceSource::Config(tc) => tc.generate(&RngFactory::new(compiled.config.seed)),
        TraceSource::Csv(path) => {
            Trace::read_csv_file(path).map_err(|e| ScenarioError::Invalid(e.to_string()))?
        }
    };

    let mut arms = Vec::with_capacity(2);
    for shards in [1usize, 4] {
        let mut config = compiled.config.clone();
        config.shards = shards;
        config.shard_threads = if shards > 1 { 2 } else { 0 };
        let mut market = compiled.market.clone();
        let result = run_trace_with_oracle(&config, scheme.as_ref(), trace.clone(), &mut market);
        if !result.audit.is_clean() {
            return Err(ScenarioError::Invalid(format!(
                "scenario '{}' ({} shard(s)): audit violations: {:?}",
                spec.name, shards, result.audit.violations
            )));
        }
        arms.push(result);
    }
    let sequential = &arms[0];
    let sharded = &arms[1];
    let digest = golden::digest(sequential);
    if digest != golden::digest(sharded) {
        return Err(ScenarioError::Invalid(format!(
            "scenario '{}': sequential and sharded digests diverge:\n  seq: {}\n  shd: {}",
            spec.name,
            digest,
            golden::digest(sharded)
        )));
    }

    if let Some(min) = spec.expect.min_evictions {
        if sequential.cost.evictions < min {
            return Err(ScenarioError::Invalid(format!(
                "scenario '{}': expected >= {min} evictions, saw {}",
                spec.name, sequential.cost.evictions
            )));
        }
    }
    if let Some(min) = spec.expect.min_reconfigs {
        if sequential.reconfigs < min {
            return Err(ScenarioError::Invalid(format!(
                "scenario '{}': expected >= {min} reconfigs, saw {}",
                spec.name, sequential.reconfigs
            )));
        }
    }
    if let Some(max) = spec.expect.max_censored {
        if sequential.censored > max {
            return Err(ScenarioError::Invalid(format!(
                "scenario '{}': expected <= {max} censored requests, saw {}",
                spec.name, sequential.censored
            )));
        }
    }

    Ok(ScenarioOutcome::from_result(
        &spec.name,
        smoke,
        digest,
        spec.fleet.slo_mult,
        sequential,
    ))
}

/// Lists `*.toml` scenario files under `dir`, sorted by file name.
///
/// # Errors
///
/// Returns [`ScenarioError::Invalid`] if the directory is unreadable.
pub fn catalog_files(dir: &Path) -> Result<Vec<PathBuf>, ScenarioError> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| ScenarioError::Invalid(format!("{}: {e}", dir.display())))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
        .collect();
    files.sort();
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;
    use protean_cluster::SpotOracle;

    const MINIMAL: &str = "name = \"minimal\"\n";

    #[test]
    fn minimal_scenario_parses_with_defaults() {
        let spec = parse(MINIMAL).unwrap();
        assert_eq!(spec.name, "minimal");
        assert_eq!(spec.fleet, FleetSpec::default());
        assert_eq!(spec.trace, TraceSpec::default());
        assert_eq!(spec.market, MarketSpec::default());
        assert_eq!(spec.expect, ExpectSpec::default());
    }

    #[test]
    fn full_scenario_parses_and_round_trips() {
        let text = r#"
# A kitchen-sink scenario.
name = "full"
description = "all features # not a comment"

[fleet]
workers = 6
seed = 7
scheme = "protean"
procurement = "hybrid"
availability = "low"
provider = "gcp"
slo_mult = 3.5

[trace]
model = "resnet50"
kind = "wiki"
rps = 320
duration_secs = 50
be_pool = ["mobilenet", "dpn92"]

[[trace.burst]]
start_secs = 20
duration_secs = 8
add_rps = 600

[market]
script = "gdd"
deny_rest = true

[[market.eviction]]
worker = 1
at_secs = 15
lead_secs = 10

[[market.storm]]
workers = [0, 2, 3]
at_secs = 25
lead_secs = 20
lead_jitter_secs = 5
jitter_seed = 9

[expect]
min_evictions = 4
"#;
        let spec = parse(text).unwrap();
        assert_eq!(spec.fleet.workers, 6);
        assert_eq!(spec.fleet.provider, Provider::Gcp);
        assert_eq!(spec.trace.bursts.len(), 1);
        assert_eq!(spec.market.evictions.len(), 1);
        assert_eq!(spec.market.storms[0].workers, vec![0, 2, 3]);
        assert_eq!(spec.expect.min_evictions, Some(4));
        let reparsed = parse(&spec.to_toml()).unwrap();
        assert_eq!(reparsed, spec);
    }

    #[test]
    fn unknown_keys_and_sections_fail_with_line_numbers() {
        let err = parse("name = \"x\"\n\n[fleet]\nworkerz = 3\n").unwrap_err();
        assert_eq!(
            err,
            ScenarioError::Parse {
                line: 4,
                msg: "unknown key 'workerz' in [fleet]".into()
            }
        );
        let err = parse("name = \"x\"\n[flleet]\n").unwrap_err();
        assert!(matches!(err, ScenarioError::Parse { line: 2, .. }), "{err}");
        let err = parse("name = \"x\"\ntypo = 1\n").unwrap_err();
        assert!(err.to_string().contains("unknown key 'typo'"), "{err}");
        // Array/table confusion gets a pointed message.
        let err = parse("name = \"x\"\n[trace.burst]\n").unwrap_err();
        assert!(err.to_string().contains("[[trace.burst]]"), "{err}");
        let err = parse("name = \"x\"\n[[fleet]]\n").unwrap_err();
        assert!(err.to_string().contains("use [fleet]"), "{err}");
    }

    #[test]
    fn malformed_values_are_rejected() {
        assert!(parse("name = \"x\"\n[fleet]\nworkers = \"three\"\n").is_err());
        assert!(parse("name = \"x\"\n[fleet]\nworkers = 2.5\n").is_err());
        assert!(parse("name = \"x\"\n[fleet]\nworkers = -1\n").is_err());
        assert!(parse("name = \"x\"\n[market]\nscript = \"gx\"\n").is_err());
        assert!(parse("name = \"x\"\n[trace]\nkind = \"cosine\"\n").is_err());
        assert!(parse("name = \"x\"\n[trace]\nmodel = \"gpt5\"\n").is_err());
        assert!(parse("name = \"x\"\n[fleet]\nscheme = \"magic\"\n").is_err());
        assert!(parse("no_name_key = 1\n").is_err());
        assert!(parse("name = \"x\"\n[fleet]\nworkers = 2\nworkers = 3\n").is_err());
        // Pulse keys outside kind = pulse.
        assert!(parse("name = \"x\"\n[trace]\npulse_duty = 0.3\n").is_err());
        // Out-of-range worker in a script.
        let err = parse("name = \"x\"\n[fleet]\nworkers = 2\n\n[[market.eviction]]\nworker = 5\nat_secs = 1\nlead_secs = 1\n")
            .unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn csv_traces_exclude_generated_keys_and_bursts() {
        let spec = parse("name = \"x\"\n[trace]\ncsv = \"t.csv\"\n").unwrap();
        assert_eq!(spec.trace.csv.as_deref(), Some("t.csv"));
        assert!(parse("name = \"x\"\n[trace]\ncsv = \"t.csv\"\nrps = 100\n").is_err());
        assert!(parse("name = \"x\"\n[trace]\ncsv = \"t.csv\"\n\n[[trace.burst]]\nstart_secs = 1\nduration_secs = 1\nadd_rps = 10\n").is_err());
        // Round trip with csv.
        let reparsed = parse(&spec.to_toml()).unwrap();
        assert_eq!(reparsed, spec);
    }

    #[test]
    fn compile_maps_fleet_and_market_onto_engine_types() {
        let text = r#"
name = "c"
[fleet]
workers = 5
seed = 11
procurement = "spot"
availability = "moderate"
provider = "azure"

[market]
script = "dg"
deny_rest = true

[[market.eviction]]
worker = 2
at_secs = 10
lead_secs = 5

[[market.storm]]
workers = [0, 1]
at_secs = 20
lead_secs = 10
lead_jitter_secs = 0
jitter_seed = 3
"#;
        let spec = parse(text).unwrap();
        let compiled = spec.compile(Path::new("."), false);
        assert_eq!(compiled.config.workers, 5);
        assert_eq!(compiled.config.seed, 11);
        assert_eq!(compiled.config.procurement, ProcurementPolicy::SpotOnly);
        assert_eq!(compiled.config.availability, SpotAvailability::Moderate);
        assert_eq!(compiled.config.provider, Provider::Azure);
        assert!(compiled.config.audit);
        // 1 scripted + 2 storm members armed.
        assert_eq!(compiled.market.pending_evictions(), 3);
        // Zero jitter: storm leads are exactly lead_secs.
        let mut m = compiled.market.clone();
        assert_eq!(
            m.roll_revocation(SimTime::from_secs(20.0), 0),
            Some(SimDuration::from_secs(10.0))
        );
        // Compilation is deterministic.
        assert_eq!(compiled, spec.compile(Path::new("."), false));
    }

    #[test]
    fn storm_jitter_is_deterministic_and_bounded() {
        let text = "name = \"j\"\n[fleet]\nworkers = 4\n\n[[market.storm]]\nworkers = [0, 1, 2, 3]\nat_secs = 10\nlead_secs = 20\nlead_jitter_secs = 10\njitter_seed = 5\n";
        let spec = parse(text).unwrap();
        let a = spec.compile(Path::new("."), false);
        let b = spec.compile(Path::new("."), false);
        assert_eq!(a.market, b.market);
        let mut m = a.market.clone();
        let mut leads = Vec::new();
        for w in 0..4 {
            let lead = m.roll_revocation(SimTime::from_secs(10.0), w).unwrap();
            let secs = lead.as_secs_f64();
            assert!(
                (20.0..30.0).contains(&secs),
                "lead {secs} outside jitter band"
            );
            leads.push(secs);
        }
        // Jitter actually varies the leads.
        assert!(leads.iter().any(|l| (l - leads[0]).abs() > 1e-9));
    }

    #[test]
    fn smoke_scales_rates_but_not_times() {
        let text = "name = \"s\"\n[trace]\nkind = \"wiki\"\nrps = 400\nduration_secs = 50\n\n[[trace.burst]]\nstart_secs = 20\nduration_secs = 10\nadd_rps = 100\n";
        let spec = parse(text).unwrap();
        let full = spec.compile(Path::new("."), false);
        let smoke = spec.compile(Path::new("."), true);
        let (TraceSource::Config(f), TraceSource::Config(s)) = (&full.trace, &smoke.trace) else {
            panic!("expected generated traces");
        };
        assert_eq!(f.duration, s.duration);
        let TraceShape::Overlay {
            base: fb,
            bursts: fbu,
        } = &f.shape
        else {
            panic!()
        };
        let TraceShape::Overlay {
            base: sb,
            bursts: sbu,
        } = &s.shape
        else {
            panic!()
        };
        let TraceShape::WikiDiurnal { mean_rps: fr, .. } = **fb else {
            panic!()
        };
        let TraceShape::WikiDiurnal { mean_rps: sr, .. } = **sb else {
            panic!()
        };
        assert!((sr - fr * SMOKE_RPS_FACTOR).abs() < 1e-12);
        assert_eq!(fbu[0].start, sbu[0].start);
        assert!((sbu[0].add_rps - fbu[0].add_rps * SMOKE_RPS_FACTOR).abs() < 1e-12);
    }

    #[test]
    fn outcome_json_is_well_formed_enough_to_eyeball() {
        let spec =
            parse("name = \"tiny\"\n[fleet]\nworkers = 2\n[trace]\nrps = 80\nduration_secs = 25\n")
                .unwrap();
        let outcome = run(&spec, Path::new("."), true).unwrap();
        let json = outcome.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"scenario\": \"tiny\""));
        assert!(json.contains("\"smoke\": true"));
        assert!(outcome.requests > 0);
        assert!(outcome.audit_checks > 0);
    }
}
